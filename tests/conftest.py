"""Shared fixtures for the test suite.

Heavyweight artifacts (a trained policy network) are built once per
session at tiny scale; everything else is cheap enough to rebuild per
test.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.config import (
    ClusterConfig,
    EnvConfig,
    TrainingConfig,
    WorkloadConfig,
)
from repro.core.pipeline import default_network, pretrain_network, training_graphs
from repro.dag.examples import MOTIVATING_CAPACITY, motivating_example
from repro.dag.generators import chain_dag, fork_join_dag, random_layered_dag
from repro.env.scheduling_env import SchedulingEnv


@pytest.fixture
def rng():
    """Deterministic NumPy generator."""
    return np.random.default_rng(12345)


@pytest.fixture
def small_cluster_config():
    """A 10x10 cluster with a short horizon (fast observations)."""
    return ClusterConfig(capacities=(10, 10), horizon=8)


@pytest.fixture
def env_config(small_cluster_config):
    """Environment with slot-granularity processing."""
    return EnvConfig(cluster=small_cluster_config, max_ready=5)


@pytest.fixture
def event_env_config(small_cluster_config):
    """Environment with event-skipping processing (MCTS mode)."""
    return EnvConfig(
        cluster=small_cluster_config, max_ready=5, process_until_completion=True
    )


@pytest.fixture
def chain3():
    """A 3-task chain: runtimes 2, 3, 1; demands (2, 1) each."""
    return chain_dag([2, 3, 1], demands=[(2, 1), (2, 1), (2, 1)])


@pytest.fixture
def diamond():
    """Fork-join: head -> 3 branches -> tail."""
    return fork_join_dag(3, branch_runtime=2, demand=(2, 2))


@pytest.fixture
def small_random_graph():
    """A 12-task random layered DAG sized for the test cluster."""
    workload = WorkloadConfig(
        num_tasks=12, max_runtime=5, max_demand=4,
        runtime_mean=3, runtime_std=1, demand_mean=2, demand_std=1,
    )
    return random_layered_dag(workload, seed=99)


@pytest.fixture
def motivating():
    """The Fig. 3 example with its capacity."""
    return motivating_example(), MOTIVATING_CAPACITY


@pytest.fixture
def chain_env(chain3, env_config):
    """Fresh environment over the 3-chain."""
    return SchedulingEnv(chain3, env_config)


@pytest.fixture(scope="session")
def tiny_training_setup():
    """A tiny pre-trained network + its env config, shared per session.

    Imitation-only (no REINFORCE epochs) keeps it fast while still giving
    a policy that meaningfully prefers good actions.
    """
    env_config = EnvConfig(process_until_completion=True)
    training = TrainingConfig(
        num_examples=6,
        example_num_tasks=8,
        rollouts_per_example=4,
        supervised_epochs=25,
        batch_size=4,
    )
    graphs = training_graphs(training, WorkloadConfig(), seed=7)
    network = default_network(env_config, seed=3)
    pretrain_network(network, graphs, env_config=env_config, training=training, seed=5)
    return network, env_config, graphs, training
