"""Property-based tests on the cluster simulator and resource-time space."""

import hypothesis.strategies as st
from hypothesis import assume, given, settings

from repro.cluster import ClusterState, ResourceTimeSpace
from repro.errors import CapacityError


@st.composite
def task_requests(draw, max_tasks=12, capacity=12):
    count = draw(st.integers(1, max_tasks))
    tasks = []
    for tid in range(count):
        demands = (
            draw(st.integers(0, capacity)),
            draw(st.integers(0, capacity)),
        )
        runtime = draw(st.integers(1, 8))
        tasks.append((tid, demands, runtime))
    return tasks


@settings(max_examples=60, deadline=None)
@given(requests=task_requests(), capacity=st.integers(6, 12))
def test_cluster_conserves_resources(requests, capacity):
    """At any moment available + sum(running demands) == capacities, and
    every admitted task is eventually released in full."""
    cluster = ClusterState((capacity, capacity))
    admitted = []
    for tid, demands, runtime in requests:
        if max(demands) > capacity:
            continue
        if cluster.can_fit(demands):
            cluster.start(tid, demands, runtime)
            admitted.append(tid)
        used = [
            sum(e.demands[r] for e in cluster.running_tasks()) for r in (0, 1)
        ]
        assert tuple(a + u for a, u in zip(cluster.available, used)) == (
            capacity,
            capacity,
        )
    completed = []
    while not cluster.is_idle:
        _, done = cluster.advance_to_next_event()
        completed.extend(done)
    assert sorted(completed) == sorted(admitted)
    assert cluster.available == (capacity, capacity)


@settings(max_examples=60, deadline=None)
@given(requests=task_requests())
def test_cluster_never_oversubscribes(requests):
    cluster = ClusterState((10, 10))
    for tid, demands, runtime in requests:
        try:
            cluster.start(tid, demands, runtime)
        except CapacityError:
            pass
        assert all(a >= 0 for a in cluster.available)


@st.composite
def placements(draw, capacity=10):
    count = draw(st.integers(1, 10))
    result = []
    for _ in range(count):
        demands = (draw(st.integers(1, capacity)), draw(st.integers(1, capacity)))
        duration = draw(st.integers(1, 6))
        result.append((demands, duration))
    return result


@settings(max_examples=60, deadline=None)
@given(items=placements())
def test_earliest_start_placements_never_overlap_capacity(items):
    """Packing every rectangle at its earliest feasible start keeps usage
    within capacity at every slot, and earliest_start is minimal: one slot
    earlier always fails."""
    space = ResourceTimeSpace((10, 10))
    for demands, duration in items:
        start = space.earliest_start(demands, duration)
        if start > 0:
            assert not space.fits_at(demands, start - 1, duration)
        space.place(demands, start, duration)
    horizon = space.makespan()
    for t in range(horizon):
        assert space.usage(0, t) <= 10
        assert space.usage(1, t) <= 10


@settings(max_examples=60, deadline=None)
@given(items=placements())
def test_place_remove_is_identity(items):
    space = ResourceTimeSpace((10, 10))
    starts = []
    for demands, duration in items:
        start = space.earliest_start(demands, duration)
        space.place(demands, start, duration)
        starts.append(start)
    for (demands, duration), start in zip(reversed(items), reversed(starts)):
        space.remove(demands, start, duration)
    assert space.makespan() == 0
