"""Property-based certification of schedulers against the exact optimum.

On small random instances the branch-and-bound optimum is computable, so
we can *certify* that:

* no scheduler ever beats the optimum (would indicate a validation bug);
* MCTS with a healthy budget stays close to the optimum;
* Graphene's derived orders are permutations and its best-of-8 result is
  never worse than the worst single plan.
"""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.config import ClusterConfig, EnvConfig, MctsConfig, WorkloadConfig
from repro.dag.generators import random_layered_dag
from repro.mcts import MctsScheduler
from repro.metrics import validate_schedule
from repro.schedulers import (
    BranchAndBoundScheduler,
    GrapheneScheduler,
    make_scheduler,
)

ENV = EnvConfig(
    cluster=ClusterConfig(capacities=(10, 10), horizon=8),
    max_ready=8,
    process_until_completion=True,
)


def tiny_graph(seed, num_tasks):
    workload = WorkloadConfig(
        num_tasks=num_tasks,
        max_runtime=4,
        max_demand=7,
        runtime_mean=2,
        runtime_std=1,
        demand_mean=4,
        demand_std=2,
    )
    return random_layered_dag(workload, seed=seed)


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 2**32 - 1), num_tasks=st.integers(2, 7))
def test_no_heuristic_beats_the_certified_optimum(seed, num_tasks):
    graph = tiny_graph(seed, num_tasks)
    optimal = BranchAndBoundScheduler(ENV).schedule(graph).makespan
    for name in ("tetris", "sjf", "cp", "graphene", "heft", "lpt", "fifo"):
        heuristic = make_scheduler(name, ENV).schedule(graph)
        validate_schedule(heuristic, graph, ENV.cluster.capacities)
        assert heuristic.makespan >= optimal


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 2**32 - 1), num_tasks=st.integers(2, 6))
def test_mcts_tracks_the_optimum_on_tiny_instances(seed, num_tasks):
    graph = tiny_graph(seed, num_tasks)
    optimal = BranchAndBoundScheduler(ENV).schedule(graph).makespan
    mcts = MctsScheduler(
        MctsConfig(initial_budget=60, min_budget=15), ENV, seed=seed % 1000
    )
    found = mcts.schedule(graph).makespan
    assert found >= optimal
    # Tiny search spaces: a 60-iteration budget should land within 25%.
    assert found <= optimal * 1.25 + 1


@settings(max_examples=20, deadline=None)
@given(
    seed=st.integers(0, 2**32 - 1),
    num_tasks=st.integers(2, 12),
    threshold=st.sampled_from([0.2, 0.4, 0.6, 0.8]),
    direction=st.sampled_from(["forward", "backward"]),
)
def test_graphene_plans_are_permutations(seed, num_tasks, threshold, direction):
    graph = tiny_graph(seed, num_tasks)
    scheduler = GrapheneScheduler(env_config=ENV)
    plan = scheduler.build_plan(graph, threshold, direction)
    assert sorted(plan.order) == list(graph.task_ids)
    assert set(plan.troublesome) <= set(graph.task_ids)
    # Virtual placement may legally violate dependencies (the online pass
    # restores feasibility), so the virtual makespan is only bounded below
    # by the longest single task, not by the critical path.
    assert plan.virtual_makespan >= max(t.runtime for t in graph)


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 2**32 - 1), num_tasks=st.integers(2, 6))
def test_every_registered_scheduler_is_verifier_clean(seed, num_tasks):
    """Every scheduler in the registry emits a schedule that passes the
    full invariant set of repro.analysis.verifier — both through the
    ``validate=True`` wrapper (which would raise) and by direct report."""
    from repro.analysis import verify_schedule
    from repro.schedulers import available_schedulers

    graph = tiny_graph(seed, num_tasks)
    for name in available_schedulers():
        schedule = make_scheduler(name, ENV, validate=True).schedule(graph)
        report = verify_schedule(schedule, graph, ENV.cluster.capacities)
        assert report.ok, f"{name}: {report.summary()}"
        assert not report.violations


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 2**32 - 1), num_tasks=st.integers(2, 10))
def test_graphene_best_of_candidates_is_minimal(seed, num_tasks):
    from repro.env import SchedulingEnv
    from repro.schedulers import PriorityListPolicy, run_policy

    graph = tiny_graph(seed, num_tasks)
    scheduler = GrapheneScheduler(env_config=ENV)
    best = scheduler.schedule(graph).makespan
    singles = []
    for plan in scheduler.candidate_plans(graph):
        env = SchedulingEnv(graph, ENV)
        singles.append(run_policy(env, PriorityListPolicy(plan.order)).makespan)
    assert best == min(singles)
