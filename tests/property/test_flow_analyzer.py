"""Analyzer robustness over the real repository.

Two guarantees the CI gate depends on:

* the flow analyzer never raises on any file of ``src/repro`` — a
  crashing rule would turn every future commit's gate red for the wrong
  reason (and is exactly what ``LintInternalError``/exit 2 is reserved
  for);
* a clean re-run of the full gate against the committed baseline finds
  nothing new, i.e. the repository as committed satisfies its own
  contracts.
"""

from pathlib import Path

from repro.analysis import apply_baseline, lint_paths, load_baseline
from repro.analysis.flow.engine import analyze_graph, analyze_project
from repro.analysis.flow.modgraph import ProjectGraph

REPO_ROOT = Path(__file__).resolve().parents[2]
REPO_SRC = REPO_ROOT / "src" / "repro"
BASELINE = REPO_ROOT / "lint-baseline.json"


class TestNeverRaises:
    def test_whole_tree_analyzes_without_error(self):
        # LintInternalError (or anything else) escaping here means an
        # analyzer bug, not a lint finding.
        analyze_project([REPO_SRC])

    def test_every_file_analyzes_in_isolation(self):
        # Per-file graphs exercise unresolved-import paths the whole-tree
        # run never sees (helpers missing from the graph, etc.).
        for file in sorted(REPO_SRC.rglob("*.py")):
            source = file.read_text(encoding="utf-8")
            graph = ProjectGraph.from_sources({str(file): source})
            analyze_graph(graph)


class TestRepositoryIsClean:
    def test_full_gate_against_committed_baseline_is_empty(self):
        violations = lint_paths([REPO_SRC], flow=True)
        fresh = apply_baseline(violations, load_baseline(BASELINE))
        assert not fresh, "\n".join(v.format() for v in fresh)

    def test_analyzer_package_is_clean_without_baseline(self):
        # The dogfood gate from CI: the flow analyzer lints itself.
        assert not lint_paths([REPO_SRC / "analysis" / "flow"], flow=True)
