"""Frozen pre-kernel online simulator — the equivalence oracle.

This is the monolithic ``OnlineSimulator._run`` event loop exactly as it
shipped before the :mod:`repro.sim` kernel extraction, with telemetry
stripped (the oracle compares results, not instrumentation).  It exists
only so property tests can assert the re-layered engine realizes
bit-identical runs; do not "improve" it — its value is being frozen.

Note ``mean_utilization`` here carries the *historical* definition
(busy / nominal-capacity x horizon), which the new engine reports as
``nominal_utilization``.
"""

import heapq
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.cluster.resources import fits, validate_demands
from repro.cluster.state import ClusterState
from repro.config import ClusterConfig
from repro.errors import ConfigError, EnvironmentStateError, ReproError
from repro.faults.events import (
    CRASH,
    JOB_FAILED,
    RECOVERY,
    RETRY,
    TASK_FAILURE,
    FaultEvent,
)
from repro.faults.injector import FaultInjector, TaskAttempt
from repro.faults.plan import FaultContext, FaultPlan
from repro.metrics.schedule import Schedule
from repro.online.execution import ActiveJob
from repro.online.rankers import Ranker, TaskContext
from repro.online.results import ArrivingJob, JobOutcome, OnlineResult
from repro.schedulers.base import ClusterSnapshot, Scheduler, ScheduleRequest

__all__ = ["legacy_run"]


@dataclass
class _FaultState:
    plan: FaultPlan
    injector: FaultInjector
    timeline: List
    timeline_pos: int = 0
    delayed: List[Tuple[int, int, int]] = field(default_factory=list)  # heap
    events: List[FaultEvent] = field(default_factory=list)
    crashes: int = 0
    recoveries: int = 0
    total_retries: int = 0


def legacy_run(
    jobs: Sequence[ArrivingJob],
    ranker: Ranker,
    cluster: Optional[ClusterConfig] = None,
    max_steps: int = 1_000_000,
    faults: Optional[FaultPlan] = None,
    rescheduler: Optional[Scheduler] = None,
) -> OnlineResult:
    """The pre-kernel event loop, verbatim (minus telemetry)."""
    cluster_config = cluster if cluster is not None else ClusterConfig()
    if not jobs:
        raise ConfigError("need at least one arriving job")
    capacities = cluster_config.capacities
    for job in jobs:
        if job.graph.num_resources != len(capacities):
            raise ConfigError(
                f"job graph has {job.graph.num_resources} resource dims, "
                f"cluster has {len(capacities)}"
            )
        for task in job.graph:
            validate_demands(task.demands, capacities, label=task.label())

    fstate: Optional[_FaultState] = None
    if faults is not None and not faults.is_null:
        faults.validate_against(capacities)
        injector = FaultInjector(faults)
        fstate = _FaultState(
            plan=faults, injector=injector, timeline=injector.timeline()
        )

    ordered = sorted(enumerate(jobs), key=lambda e: (e[1].arrival_time, e[0]))
    pending = [(job.arrival_time, index, job) for index, job in ordered]
    pending_pos = 0

    state = ClusterState(capacities)
    active: Dict[int, ActiveJob] = {}
    offset = 1 + max(max(job.graph.task_ids) for job in jobs)
    running_info: Dict[int, Tuple[int, TaskAttempt]] = {}
    outcomes: List[JobOutcome] = []
    executed: Dict[int, Schedule] = {}
    plan_rank: Optional[Dict[int, Dict[int, int]]] = (
        {} if rescheduler is not None else None
    )
    exec_label = rescheduler.name if rescheduler is not None else "online"
    busy_area = [0] * len(capacities)
    last_time = 0
    steps = 0

    def emit_fault(event: FaultEvent) -> None:
        assert fstate is not None
        fstate.events.append(event)

    def replan_job(job: ActiveJob, trigger: str) -> None:
        assert rescheduler is not None and plan_rank is not None
        running_tids = {
            handle % offset: handle
            for handle in running_info
            if handle // offset == job.index
        }
        residual = [
            tid
            for tid in job.graph.task_ids
            if tid not in job.executed and tid not in running_tids
        ]
        if not residual:
            plan_rank.pop(job.index, None)
            return
        pinned = {}
        for tid, handle in running_tids.items():
            start, attempt = running_info[handle]
            pinned[tid] = (start, start + attempt.runtime)
        request = ScheduleRequest(
            graph=job.graph.subgraph(residual),
            cluster=ClusterSnapshot(
                capacities=tuple(state.capacities),
                available=state.available,
                now=state.now,
            ),
            frozen=dict(job.executed),
            pinned=pinned,
            faults=(
                FaultContext(
                    plan=fstate.plan,
                    trigger=trigger,
                    time=state.now,
                    retries_so_far=fstate.total_retries,
                )
                if fstate is not None
                else None
            ),
        )
        try:
            schedule = rescheduler.plan(request)
        except ReproError:
            return
        order = sorted(schedule.placements, key=lambda p: (p.start, p.task_id))
        plan_rank[job.index] = {p.task_id: r for r, p in enumerate(order)}

    def replan_all(trigger: str) -> None:
        if rescheduler is None:
            return
        for job in sorted(active.values(), key=lambda j: j.index):
            replan_job(job, trigger)

    def admit_arrivals() -> None:
        nonlocal pending_pos
        while pending_pos < len(pending) and pending[pending_pos][0] <= state.now:
            _, index, job = pending[pending_pos]
            active[index] = ActiveJob(index, job.arrival_time, job.graph)
            pending_pos += 1
            if rescheduler is not None:
                replan_job(active[index], "admit")

    def fail_job(job: ActiveJob, reason: str) -> None:
        for handle in [h for h in running_info if h // offset == job.index]:
            running_info.pop(handle)
            for entry in state.running_tasks():
                if entry.task_id == handle:
                    state.kill(entry)
                    break
        outcomes.append(job.outcome(state.now, failed=True))
        executed[job.index] = job.executed_schedule(exec_label)
        emit_fault(FaultEvent(state.now, JOB_FAILED, job=job.index, detail=reason))
        del active[job.index]
        if plan_rank is not None:
            plan_rank.pop(job.index, None)

    def fire_crash(entry) -> None:
        assert fstate is not None
        loss = entry.capacity
        killed = 0
        while any(state.available[r] < loss[r] for r in range(len(loss))):
            victims = sorted(
                state.running_tasks(), key=lambda e: (-e.finish_time, -e.task_id)
            )
            victim = next(
                (
                    v
                    for v in victims
                    if any(
                        v.demands[r] > 0 and state.available[r] < loss[r]
                        for r in range(len(loss))
                    )
                ),
                None,
            )
            if victim is None:
                break
            state.kill(victim)
            killed += 1
            handle = victim.task_id
            running_info.pop(handle)
            job_index, tid = divmod(handle, offset)
            job = active[job_index]
            job.crash_kills += 1
            job.retries += 1
            fstate.total_retries += 1
            job.ready.append(tid)
            emit_fault(
                FaultEvent(
                    state.now,
                    RETRY,
                    job=job_index,
                    task=tid,
                    attempt=job.attempts.get(tid, 0),
                    detail="crash_kill",
                )
            )
        state.adjust_capacity([-c for c in loss])
        fstate.crashes += 1
        emit_fault(
            FaultEvent(
                state.now,
                CRASH,
                detail=f"machine {entry.machine} lost {loss}, killed {killed}",
            )
        )

    def fire_recovery(entry) -> None:
        assert fstate is not None
        state.adjust_capacity(entry.capacity)
        fstate.recoveries += 1
        emit_fault(
            FaultEvent(
                state.now,
                RECOVERY,
                detail=f"machine {entry.machine} restored {entry.capacity}",
            )
        )

    def process_externals() -> None:
        admit_arrivals()
        if fstate is None:
            return
        fault_fired = False
        while (
            fstate.timeline_pos < len(fstate.timeline)
            and fstate.timeline[fstate.timeline_pos].time <= state.now
        ):
            entry = fstate.timeline[fstate.timeline_pos]
            fstate.timeline_pos += 1
            if entry.kind == "crash":
                fire_crash(entry)
            else:
                fire_recovery(entry)
            fault_fired = True
        while fstate.delayed and fstate.delayed[0][0] <= state.now:
            _, job_index, tid = heapq.heappop(fstate.delayed)
            job = active.get(job_index)
            if job is not None:
                job.ready.append(tid)
        if fault_fired:
            replan_all("crash")

    def next_external() -> Optional[int]:
        times = []
        if pending_pos < len(pending):
            times.append(pending[pending_pos][0])
        if fstate is not None:
            if fstate.timeline_pos < len(fstate.timeline):
                times.append(fstate.timeline[fstate.timeline_pos].time)
            if fstate.delayed:
                times.append(fstate.delayed[0][0])
        return min(times) if times else None

    def dispatch(job: ActiveJob, tid: int) -> None:
        task = job.graph.task(tid)
        attempt_no = job.attempts.get(tid, 0) + 1
        job.attempts[tid] = attempt_no
        if fstate is not None:
            attempt = fstate.injector.attempt(job.index, tid, attempt_no, task.runtime)
        else:
            attempt = TaskAttempt(runtime=task.runtime, fails=False, straggled=False)
        handle = job.index * offset + tid
        state.start(handle, task.demands, attempt.runtime)
        running_info[handle] = (state.now, attempt)
        job.ready.remove(tid)

    def start_fitting() -> None:
        while True:
            free = state.available
            candidates: List[Tuple[Tuple, int, int]] = []
            for job in active.values():
                ranks = plan_rank.get(job.index) if plan_rank is not None else None
                for tid in job.ready:
                    task = job.graph.task(tid)
                    if fits(task.demands, free):
                        if ranks is not None and tid in ranks:
                            key: Tuple = (0, job.arrival, job.index, ranks[tid], tid)
                        else:
                            ctx = TaskContext(
                                task=task,
                                job_index=job.index,
                                arrival_time=job.arrival,
                                features=job.features,
                                free=free,
                                now=state.now,
                            )
                            key = (1,) + tuple(ranker(ctx))
                        candidates.append((key, job.index, tid))
            if not candidates:
                return
            _, job_index, tid = min(candidates)
            dispatch(active[job_index], tid)

    def account_usage(until: int) -> None:
        nonlocal last_time
        if until <= last_time:
            return
        span = until - last_time
        for r in range(len(capacities)):
            busy_area[r] += span * (state.capacities[r] - state.available[r])
        last_time = until

    def handle_completion(handle: int) -> None:
        job_index, tid = divmod(handle, offset)
        job = active.get(job_index)
        if job is None:
            running_info.pop(handle, None)
            return
        start, attempt = running_info.pop(handle)
        if attempt.fails:
            assert fstate is not None
            job.transient_failures += 1
            strikes = job.strikes.get(tid, 0) + 1
            job.strikes[tid] = strikes
            emit_fault(
                FaultEvent(
                    state.now,
                    TASK_FAILURE,
                    job=job_index,
                    task=tid,
                    attempt=job.attempts[tid],
                    detail="straggler" if attempt.straggled else "",
                )
            )
            if strikes >= fstate.injector.max_attempts:
                fail_job(
                    job,
                    reason=(
                        f"task {tid} failed {strikes} attempts "
                        f"(budget {fstate.injector.max_attempts})"
                    ),
                )
                return
            delay = fstate.injector.backoff(strikes)
            ready_at = state.now + delay
            heapq.heappush(fstate.delayed, (ready_at, job_index, tid))
            job.retries += 1
            fstate.total_retries += 1
            emit_fault(
                FaultEvent(
                    state.now,
                    RETRY,
                    job=job_index,
                    task=tid,
                    attempt=job.attempts[tid],
                    detail=f"backoff {delay}, ready at {ready_at}",
                )
            )
            if rescheduler is not None:
                replan_job(job, "task_failure")
            return
        job.executed[tid] = (start, state.now)
        job.remaining -= 1
        for child in job.graph.children(tid):
            job.unmet[child] -= 1
            if job.unmet[child] == 0:
                job.ready.append(child)
        if job.remaining == 0:
            outcomes.append(job.outcome(state.now))
            executed[job.index] = job.executed_schedule(exec_label)
            del active[job_index]
            if plan_rank is not None:
                plan_rank.pop(job_index, None)

    first_arrival = pending[0][0]
    if first_arrival > 0:
        state.now = first_arrival
        last_time = first_arrival

    process_externals()
    start_fitting()
    while active or pending_pos < len(pending):
        steps += 1
        if steps > max_steps:
            raise EnvironmentStateError("online simulation exceeded step cap")
        ext = next_external()
        if state.is_idle:
            if ext is None:
                if fstate is not None:
                    for job in sorted(active.values(), key=lambda j: j.index):
                        fail_job(job, reason="unschedulable residual work")
                    continue
                raise EnvironmentStateError(
                    "idle cluster with active jobs but nothing ready: "
                    "inconsistent DAG state"
                )
            account_usage(ext)
            state.now = max(state.now, ext)
            process_externals()
            start_fitting()
            continue
        next_completion = state.earliest_finish_time()
        if ext is not None and ext < next_completion:
            account_usage(ext)
            if ext > state.now:
                state.advance(ext - state.now)
            process_externals()
            start_fitting()
            continue
        account_usage(next_completion)
        _, completed = state.advance_to_next_event()
        process_externals()
        for handle in completed:
            handle_completion(handle)
        start_fitting()

    makespan = state.now
    horizon = max(1, makespan - first_arrival)
    utilization = tuple(
        busy_area[r] / (horizon * capacities[r]) for r in range(len(capacities))
    )
    outcomes.sort(key=lambda o: o.job_index)
    return OnlineResult(
        outcomes=tuple(outcomes),
        makespan=makespan,
        mean_utilization=utilization,
        crashes=fstate.crashes if fstate is not None else 0,
        recoveries=fstate.recoveries if fstate is not None else 0,
        total_retries=fstate.total_retries if fstate is not None else 0,
        fault_events=tuple(fstate.events) if fstate is not None else (),
        executed=tuple(executed[o.job_index] for o in outcomes),
    )
