"""Property-based tests on the synthetic production trace.

The calibration claims of EXPERIMENTS.md must hold for *every* seed, not
just the one the benchmarks use.
"""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.traces import (
    TraceConfig,
    filter_jobs,
    generate_production_trace,
    trace_statistics,
)


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 2**32 - 1))
def test_calibration_bounds_hold_for_every_seed(seed):
    trace = generate_production_trace(TraceConfig(num_jobs=40), seed=seed)
    stats = trace_statistics(trace)
    assert stats.num_jobs == 40
    # Hard bounds from the paper.
    assert stats.max_map_count <= 29
    assert stats.max_reduce_count <= 38
    assert min(stats.map_counts) >= 6
    assert min(stats.reduce_counts) >= 6
    # Medians stay in a band around the published 14 / 17.
    assert 9 <= stats.median_map_count <= 20
    assert 11 <= stats.median_reduce_count <= 24
    # Reduce stage is heavier than the map stage (the paper's qualitative
    # claim; calibrated mean ranges are 2-17 s vs 17-141 s).
    assert stats.median_reduce_runtime > stats.median_map_runtime


@settings(max_examples=10, deadline=None)
@given(seed=st.integers(0, 2**32 - 1))
def test_filter_is_idempotent_and_monotone(seed):
    raw = generate_production_trace(
        TraceConfig(num_jobs=15, small_job_fraction=0.4),
        seed=seed,
        include_filtered=True,
    )
    once = filter_jobs(raw)
    twice = filter_jobs(once)
    assert len(once) == len(twice)
    assert len(once) <= len(raw)
    assert all(j.num_map > 5 and j.num_reduce > 5 for j in once)


@settings(max_examples=8, deadline=None)
@given(
    seed=st.integers(0, 2**32 - 1),
    scale=st.sampled_from([0.1, 0.5, 1.0]),
)
def test_runtime_scale_is_monotone(seed, scale):
    """Compressed traces never have longer total runtimes than the
    original at the same seed."""
    full = generate_production_trace(
        TraceConfig(num_jobs=10, runtime_scale=1.0), seed=seed
    )
    compressed = generate_production_trace(
        TraceConfig(num_jobs=10, runtime_scale=scale), seed=seed
    )

    def total(trace):
        return sum(
            sum(job.map_runtimes) + sum(job.reduce_runtimes) for job in trace
        )

    assert total(compressed) <= total(full)
    # Structure (counts, topology) is identical across scales.
    assert [j.num_map for j in compressed] == [j.num_map for j in full]
    assert [j.num_reduce for j in compressed] == [j.num_reduce for j in full]
