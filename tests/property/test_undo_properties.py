"""Property-based tests for the undo-log state restore and fused rollout.

The optimization work (snapshot-based ``apply``/``undo``, the fused
``random_playout``, clone-mode vs undo-mode MCTS) is only admissible if
it is *invisible*: every path through the environment must produce
bit-identical states and schedules.  These tests drive random action
sequences through the different code paths and require exact equality —
of ``signature()``, of legal-action lists, and (for the fused rollout)
of the NumPy generator state, which proves the RNG stream itself is
untouched.
"""

import hypothesis.strategies as st
import numpy as np
from hypothesis import given, settings

from repro.config import ClusterConfig, EnvConfig, MctsConfig, WorkloadConfig
from repro.dag.generators import random_layered_dag
from repro.env.scheduling_env import SchedulingEnv
from repro.mcts.search import MctsScheduler

CAPS = (10, 10)


def make_graph(seed, num_tasks):
    workload = WorkloadConfig(
        num_tasks=num_tasks,
        max_runtime=6,
        max_demand=8,
        runtime_mean=3,
        runtime_std=2,
        demand_mean=4,
        demand_std=2,
    )
    return random_layered_dag(workload, seed=seed)


def make_env(graph, until_completion=True):
    return SchedulingEnv(
        graph,
        EnvConfig(
            cluster=ClusterConfig(capacities=CAPS, horizon=8),
            max_ready=6,
            process_until_completion=until_completion,
        ),
    )


@settings(max_examples=40, deadline=None)
@given(
    seed=st.integers(0, 2**32 - 1),
    num_tasks=st.integers(1, 14),
    play_seed=st.integers(0, 1000),
    until_completion=st.booleans(),
)
def test_apply_undo_restores_every_prefix(
    seed, num_tasks, play_seed, until_completion
):
    """Unwinding an apply stack restores the exact state at every depth."""
    env = make_env(make_graph(seed, num_tasks), until_completion)
    rng = np.random.default_rng(play_seed)

    stack = []
    snapshots = [(env.signature(), list(env.legal_actions()))]
    while not env.done and len(stack) < 60:
        actions = env.expansion_actions(work_conserving=True)
        action = actions[int(rng.integers(0, len(actions)))]
        stack.append(env.apply(action))
        snapshots.append((env.signature(), list(env.legal_actions())))

    while stack:
        env.undo(stack.pop())
        expected_sig, expected_actions = snapshots[len(stack)]
        assert env.signature() == expected_sig
        assert list(env.legal_actions()) == expected_actions
    assert env.steps_taken == 0


@settings(max_examples=40, deadline=None)
@given(
    seed=st.integers(0, 2**32 - 1),
    num_tasks=st.integers(1, 14),
    play_seed=st.integers(0, 1000),
    until_completion=st.booleans(),
)
def test_apply_matches_step_exactly(
    seed, num_tasks, play_seed, until_completion
):
    """``apply`` and ``step`` drive two envs through identical trajectories."""
    graph = make_graph(seed, num_tasks)
    via_step = make_env(graph, until_completion)
    via_apply = make_env(graph, until_completion)
    rng = np.random.default_rng(play_seed)

    while not via_step.done:
        actions = via_step.expansion_actions(work_conserving=True)
        action = actions[int(rng.integers(0, len(actions)))]
        result = via_step.step(action)
        record = via_apply.apply(action)
        assert record.result == result
        assert via_apply.signature() == via_step.signature()

    assert via_apply.done
    assert via_apply.start_times() == via_step.start_times()
    via_apply.verify_terminal_state()


@settings(max_examples=30, deadline=None)
@given(
    seed=st.integers(0, 2**32 - 1),
    num_tasks=st.integers(1, 14),
    play_seed=st.integers(0, 1000),
    until_completion=st.booleans(),
)
def test_random_playout_matches_generic_loop(
    seed, num_tasks, play_seed, until_completion
):
    """The fused rollout equals a step-by-step loop, RNG stream included.

    Comparing ``bit_generator.state`` proves ``random_playout`` consumed
    exactly the same draws — the property that keeps MCTS schedules
    bit-identical to the pre-optimization implementation.
    """
    graph = make_graph(seed, num_tasks)
    reference = make_env(graph, until_completion)
    fused = reference.clone()
    rng_ref = np.random.default_rng(play_seed)
    rng_fused = np.random.default_rng(play_seed)

    while not reference.done:
        actions = reference.expansion_actions(work_conserving=True)
        reference.step(actions[int(rng_ref.integers(0, len(actions)))])

    makespan = fused.random_playout(rng_fused, limit=10_000)

    assert makespan == reference.makespan
    assert fused.signature() == reference.signature()
    assert fused.start_times() == reference.start_times()
    assert rng_fused.bit_generator.state == rng_ref.bit_generator.state


@settings(max_examples=8, deadline=None)
@given(
    seed=st.integers(0, 2**32 - 1),
    num_tasks=st.integers(2, 12),
    search_seed=st.integers(0, 100),
)
def test_clone_and_undo_search_identical_schedules(
    seed, num_tasks, search_seed
):
    """Clone-based and undo-based MCTS emit the same terminal schedule."""
    graph = make_graph(seed, num_tasks)
    env_config = EnvConfig(
        cluster=ClusterConfig(capacities=CAPS, horizon=8),
        max_ready=6,
        process_until_completion=True,
    )
    schedules = {}
    for mode in ("clone", "undo"):
        config = MctsConfig(
            initial_budget=16, min_budget=4, state_restore=mode
        )
        scheduler = MctsScheduler(config, env_config, seed=search_seed)
        schedule = scheduler.schedule(graph)
        schedules[mode] = {p.task_id: p.start for p in schedule.placements}
    assert schedules["clone"] == schedules["undo"]
