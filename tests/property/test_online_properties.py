"""Property-based tests on the online multi-job simulator."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.config import ClusterConfig, WorkloadConfig
from repro.dag.generators import random_layered_dag
from repro.online import (
    ArrivingJob,
    OnlineSimulator,
    cp_ranker,
    fifo_ranker,
    sjf_ranker,
    tetris_ranker,
)

SIM = OnlineSimulator(ClusterConfig(capacities=(10, 10), horizon=8))


@st.composite
def job_streams(draw):
    count = draw(st.integers(1, 5))
    stream = []
    for i in range(count):
        arrival = draw(st.integers(0, 20))
        seed = draw(st.integers(0, 2**31 - 1))
        num_tasks = draw(st.integers(1, 8))
        workload = WorkloadConfig(
            num_tasks=num_tasks,
            max_runtime=4,
            max_demand=7,
            runtime_mean=2,
            runtime_std=1,
            demand_mean=4,
            demand_std=2,
        )
        stream.append(ArrivingJob(arrival, random_layered_dag(workload, seed=seed)))
    return stream


@settings(max_examples=30, deadline=None)
@given(stream=job_streams())
def test_every_job_completes_with_consistent_times(stream):
    for ranker in (fifo_ranker, sjf_ranker, cp_ranker, tetris_ranker):
        result = SIM.run(stream, ranker)
        assert len(result.outcomes) == len(stream)
        for outcome, arriving in zip(result.outcomes, stream):
            # Completion after arrival + at least the critical path.
            assert (
                outcome.completion_time
                >= arriving.arrival_time + arriving.graph.critical_path_length()
            )
            assert outcome.num_tasks == arriving.graph.num_tasks
        assert result.makespan == max(o.completion_time for o in result.outcomes)
        assert all(0.0 <= u <= 1.0 for u in result.mean_utilization)


@settings(max_examples=20, deadline=None)
@given(stream=job_streams())
def test_makespan_bounded_by_serial_execution(stream):
    """No ranker can be worse than running everything back to back after
    the last arrival."""
    total_runtime = sum(t.runtime for job in stream for t in job.graph)
    last_arrival = max(job.arrival_time for job in stream)
    for ranker in (fifo_ranker, tetris_ranker):
        result = SIM.run(stream, ranker)
        assert result.makespan <= last_arrival + total_runtime


@settings(max_examples=20, deadline=None)
@given(stream=job_streams())
def test_determinism(stream):
    a = SIM.run(stream, fifo_ranker)
    b = SIM.run(stream, fifo_ranker)
    assert a == b
