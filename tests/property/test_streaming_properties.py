"""Streaming-engine properties.

The load-bearing one is closed-batch equivalence: a finite stream fed
through :class:`~repro.streaming.StreamingSimulator` via
:class:`~repro.streaming.TraceArrivals` with unbounded admission must
reproduce :class:`~repro.online.OnlineSimulator` *exactly* — the same
outcomes, makespan, fault log, and executed schedules — with every
queueing delay zero.  That pins the open-system layer as a strict
superset of the closed-batch engine: arrivals-as-events, backlog
release, and in-system sampling must all be no-ops when backpressure
never engages.

The rest are open-system invariants: determinism of the metrics
surface, and conservation of jobs under bounded admission (every
arrival is admitted or reported rejected, never lost).
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import ClusterConfig, WorkloadConfig
from repro.dag.generators import random_layered_dag
from repro.faults import (
    FaultPlan,
    RetryPolicy,
    TransientFaults,
    random_crash_plan,
)
from repro.online import (
    ArrivingJob,
    OnlineSimulator,
    cp_ranker,
    fifo_ranker,
    sjf_ranker,
    tetris_ranker,
)
from repro.streaming import (
    AdmissionConfig,
    PoissonProcess,
    StreamingSimulator,
    TraceArrivals,
    layered_job_factory,
    streaming_workload,
)

CAPACITIES = (10, 10)
CLUSTER = ClusterConfig(capacities=CAPACITIES, horizon=8)
RANKERS = {
    "fifo": fifo_ranker,
    "sjf": sjf_ranker,
    "cp": cp_ranker,
    "tetris": tetris_ranker,
}


@st.composite
def job_streams(draw, max_gap=6):
    n_jobs = draw(st.integers(min_value=1, max_value=4))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    gap = draw(st.integers(min_value=0, max_value=max_gap))
    workload = WorkloadConfig(
        num_tasks=6, max_runtime=5, max_demand=4, runtime_mean=3.0, demand_mean=2.0
    )
    return [
        ArrivingJob(gap * i, random_layered_dag(workload, seed=seed + i))
        for i in range(n_jobs)
    ]


@st.composite
def fault_plans(draw):
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    transient = draw(st.floats(min_value=0.0, max_value=0.3))
    n_crashes = draw(st.integers(min_value=0, max_value=2))
    crashes = random_crash_plan(
        n_crashes, CAPACITIES, horizon=60, fraction=0.3, seed=seed
    )
    return FaultPlan(
        crashes=crashes,
        transient=TransientFaults(transient),
        retry=RetryPolicy(max_attempts=3, backoff_base=1, backoff_cap=4),
        seed=seed,
    )


def assert_closed_batch_equivalent(streaming, online):
    assert streaming.online.outcomes == online.outcomes
    assert streaming.online.makespan == online.makespan
    assert streaming.online.fault_events == online.fault_events
    assert streaming.online.executed == online.executed
    assert streaming.online == online
    assert streaming.queueing_delays == (0,) * len(online.outcomes)
    assert not streaming.rejected
    assert streaming.horizon_cutoff == -1


@given(stream=job_streams(max_gap=0), ranker_name=st.sampled_from(sorted(RANKERS)))
@settings(max_examples=25, deadline=None)
def test_batch_at_t0_reproduces_online_simulator(stream, ranker_name):
    """All arrivals at t=0 + unbounded admission == OnlineSimulator."""
    ranker = RANKERS[ranker_name]
    online = OnlineSimulator(CLUSTER).run(stream, ranker)
    streaming = StreamingSimulator(CLUSTER).run(TraceArrivals(stream), ranker)
    assert_closed_batch_equivalent(streaming, online)


@given(stream=job_streams(), ranker_name=st.sampled_from(sorted(RANKERS)))
@settings(max_examples=25, deadline=None)
def test_staggered_batch_reproduces_online_simulator(stream, ranker_name):
    ranker = RANKERS[ranker_name]
    online = OnlineSimulator(CLUSTER).run(stream, ranker)
    streaming = StreamingSimulator(CLUSTER).run(TraceArrivals(stream), ranker)
    assert_closed_batch_equivalent(streaming, online)


@given(plan=fault_plans(), stream=job_streams())
@settings(max_examples=15, deadline=None)
def test_faulty_batch_reproduces_online_simulator(plan, stream):
    online = OnlineSimulator(CLUSTER).run(stream, sjf_ranker, faults=plan)
    streaming = StreamingSimulator(CLUSTER).run(
        TraceArrivals(stream), sjf_ranker, faults=plan
    )
    assert_closed_batch_equivalent(streaming, online)


@given(
    seed=st.integers(min_value=0, max_value=10_000),
    rate=st.floats(min_value=0.05, max_value=0.8),
)
@settings(max_examples=15, deadline=None)
def test_streaming_run_is_deterministic(seed, rate):
    def run():
        arrivals = PoissonProcess(
            rate, 12, layered_job_factory(streaming_workload(num_tasks=5)), seed=seed
        )
        return StreamingSimulator(CLUSTER).run(arrivals, sjf_ranker)

    a, b = run(), run()
    assert a == b
    assert a.metrics_dict() == b.metrics_dict()


@given(
    seed=st.integers(min_value=0, max_value=10_000),
    max_concurrent=st.integers(min_value=1, max_value=4),
    max_queue=st.none() | st.integers(min_value=0, max_value=3),
)
@settings(max_examples=20, deadline=None)
def test_bounded_admission_conserves_jobs(seed, max_concurrent, max_queue):
    """arrivals == admitted + rejected; backpressure sheds loudly."""
    arrivals = PoissonProcess(
        0.6, 15, layered_job_factory(streaming_workload(num_tasks=5)), seed=seed
    )
    admission = AdmissionConfig(max_concurrent=max_concurrent, max_queue=max_queue)
    result = StreamingSimulator(CLUSTER).run(arrivals, sjf_ranker, admission=admission)
    assert result.arrivals == 15
    assert result.admitted + len(result.rejected) == result.arrivals
    if max_queue is None:
        assert not result.rejected
    # in-system counts active + backlog, bounded by both limits when set
    if max_queue is not None:
        assert result.peak_in_system <= max_concurrent + max_queue
    assert all(delay >= 0 for delay in result.queueing_delays)
