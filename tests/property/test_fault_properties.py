"""Property tests for fault-aware execution.

Two system-level invariants, under *any* seeded fault plan:

1. No silent loss: every submitted job either completes or is reported
   failed, and each executed schedule passes the full schedule-invariant
   verifier on its realized graph.
2. Determinism: the same plan and stream produce an identical
   :class:`OnlineResult`, retry counts and fault-event log included.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import ClusterConfig
from repro.dag import independent_tasks_dag
from repro.dag.generators import random_layered_dag
from repro.config import WorkloadConfig
from repro.faults import (
    FaultPlan,
    RetryPolicy,
    RuntimeNoise,
    StragglerModel,
    TransientFaults,
    random_crash_plan,
)
from repro.online import ArrivingJob, OnlineSimulator, fifo_ranker, verify_execution

CAPACITIES = (10, 10)


@st.composite
def fault_plans(draw):
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    transient = draw(st.floats(min_value=0.0, max_value=0.4))
    straggle = draw(st.floats(min_value=0.0, max_value=0.3))
    noise = draw(st.floats(min_value=0.0, max_value=0.5))
    kind = draw(st.sampled_from(["lognormal", "uniform"]))
    n_crashes = draw(st.integers(min_value=0, max_value=2))
    crashes = random_crash_plan(
        n_crashes, CAPACITIES, horizon=60, fraction=0.3, seed=seed
    )
    return FaultPlan(
        crashes=crashes,
        transient=TransientFaults(transient),
        straggler=StragglerModel(straggle, slowdown=2.0),
        noise=RuntimeNoise(kind=kind, scale=noise) if noise > 0 else None,
        retry=RetryPolicy(max_attempts=4, backoff_base=1, backoff_cap=4),
        seed=seed,
    )


@st.composite
def job_streams(draw):
    n_jobs = draw(st.integers(min_value=1, max_value=3))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    workload = WorkloadConfig(
        num_tasks=6, max_runtime=5, max_demand=4, runtime_mean=3.0, demand_mean=2.0
    )
    return [
        ArrivingJob(4 * i, random_layered_dag(workload, seed=seed + i))
        for i in range(n_jobs)
    ]


def run(stream, plan):
    simulator = OnlineSimulator(ClusterConfig(capacities=CAPACITIES, horizon=8))
    return simulator.run(stream, fifo_ranker, faults=plan)


@given(plan=fault_plans(), stream=job_streams())
@settings(max_examples=40, deadline=None)
def test_no_silent_loss_and_verifier_clean(plan, stream):
    result = run(stream, plan)
    # Every job is accounted for exactly once.
    assert sorted(o.job_index for o in result.outcomes) == list(range(len(stream)))
    assert result.completed_jobs + result.failed_jobs == len(stream)
    # A completed job executed all of its tasks.
    for outcome, schedule in zip(result.outcomes, result.executed):
        if not outcome.failed:
            graph = stream[outcome.job_index].graph
            assert len(schedule.placements) == graph.num_tasks
    # Executed placements satisfy the full invariant set on realized graphs.
    for report in verify_execution(result, stream, CAPACITIES):
        assert report is None or not report.violations


@given(plan=fault_plans(), stream=job_streams())
@settings(max_examples=25, deadline=None)
def test_same_seed_identical_result(plan, stream):
    first = run(stream, plan)
    second = run(stream, plan)
    assert first == second
    assert first.fault_events == second.fault_events
    assert [o.retries for o in first.outcomes] == [
        o.retries for o in second.outcomes
    ]
    assert [o.transient_failures for o in first.outcomes] == [
        o.transient_failures for o in second.outcomes
    ]


@given(
    seed=st.integers(min_value=0, max_value=500),
    runtimes=st.lists(st.integers(min_value=1, max_value=6), min_size=1, max_size=5),
)
@settings(max_examples=40, deadline=None)
def test_fault_free_run_unaffected_by_null_plan(seed, runtimes):
    stream = [ArrivingJob(0, independent_tasks_dag(runtimes))]
    plain = OnlineSimulator(
        ClusterConfig(capacities=CAPACITIES, horizon=8)
    ).run(stream, fifo_ranker)
    nulled = run(stream, FaultPlan(seed=seed))
    assert nulled.makespan == plain.makespan
    assert [o.jct for o in nulled.outcomes] == [o.jct for o in plain.outcomes]
    assert nulled.fault_events == ()
