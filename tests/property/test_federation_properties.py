"""Federation properties.

The load-bearing one is 1-shard equivalence: a federation of exactly
one shard (any router — routing over a singleton is trivial) must
reproduce :class:`~repro.streaming.StreamingSimulator` *exactly* — the
aggregate :class:`~repro.streaming.results.StreamingResult` compares
equal, metrics dict included — across rankers, seeds, admission limits,
horizons and fault plans.  That pins the federation as a strict
superset of the streaming engine: routing, the shard kernel namespace,
the ledger split, and the aggregate assembly must all be identities
when there is nothing to federate.

The rest are multi-shard invariants: job conservation across shards
(every arrival is admitted somewhere or reported rejected, even when
the work stealer migrates it mid-flight — no silent loss, no double
count), steal-record consistency, and determinism of the federated
metrics surface.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import ClusterConfig, WorkloadConfig
from repro.dag.generators import random_layered_dag
from repro.faults import (
    FaultPlan,
    RetryPolicy,
    TransientFaults,
    random_crash_plan,
)
from repro.federation import FederatedStreamingSimulator, ShardSpec
from repro.online import ArrivingJob, resolve_ranker
from repro.streaming import (
    AdmissionConfig,
    PoissonProcess,
    StreamingSimulator,
    TraceArrivals,
    layered_job_factory,
    streaming_workload,
)

CAPACITIES = (10, 10)
CLUSTER = ClusterConfig(capacities=CAPACITIES, horizon=8)
RANKER_NAMES = ("cp", "fifo", "sjf", "tetris")
ROUTERS = ("round-robin", "least-load", "hash:salt=3", "affinity")


@st.composite
def job_streams(draw, max_gap=6):
    n_jobs = draw(st.integers(min_value=1, max_value=4))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    gap = draw(st.integers(min_value=0, max_value=max_gap))
    workload = WorkloadConfig(
        num_tasks=6, max_runtime=5, max_demand=4, runtime_mean=3.0, demand_mean=2.0
    )
    return [
        ArrivingJob(gap * i, random_layered_dag(workload, seed=seed + i))
        for i in range(n_jobs)
    ]


@st.composite
def fault_plans(draw, capacities=CAPACITIES):
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    transient = draw(st.floats(min_value=0.0, max_value=0.3))
    n_crashes = draw(st.integers(min_value=0, max_value=2))
    crashes = random_crash_plan(
        n_crashes, capacities, horizon=60, fraction=0.3, seed=seed
    )
    return FaultPlan(
        crashes=crashes,
        transient=TransientFaults(transient),
        retry=RetryPolicy(max_attempts=3, backoff_base=1, backoff_cap=4),
        seed=seed,
    )


def poisson(seed, n=12, rate=0.5):
    return PoissonProcess(
        rate, n, layered_job_factory(streaming_workload(num_tasks=5)), seed=seed
    )


def assert_streaming_equivalent(federation, streaming):
    """The 1-shard aggregate equals the streaming result — not merely
    equivalent: same outcomes, delays, rejections, series, schedules."""
    assert federation.aggregate.online == streaming.online
    assert federation.aggregate == streaming
    assert federation.aggregate.metrics_dict() == streaming.metrics_dict()
    assert not federation.steals


@given(
    stream=job_streams(),
    ranker_name=st.sampled_from(RANKER_NAMES),
    router=st.sampled_from(ROUTERS),
)
@settings(max_examples=25, deadline=None)
def test_single_shard_reproduces_streaming_simulator(stream, ranker_name, router):
    """1 shard + any router == StreamingSimulator, across rankers."""
    ranker = resolve_ranker(ranker_name)
    streaming = StreamingSimulator(CLUSTER).run(TraceArrivals(stream), ranker)
    federation = FederatedStreamingSimulator(
        [ShardSpec(CAPACITIES, ranker)], router=router
    ).run(TraceArrivals(stream))
    assert_streaming_equivalent(federation, streaming)


@given(plan=fault_plans(), stream=job_streams())
@settings(max_examples=15, deadline=None)
def test_single_shard_equivalence_under_faults(plan, stream):
    ranker = resolve_ranker("sjf")
    streaming = StreamingSimulator(CLUSTER).run(
        TraceArrivals(stream), ranker, faults=plan
    )
    federation = FederatedStreamingSimulator(
        [ShardSpec(CAPACITIES, ranker, faults=plan)], router="round-robin"
    ).run(TraceArrivals(stream))
    assert_streaming_equivalent(federation, streaming)


@given(
    seed=st.integers(min_value=0, max_value=10_000),
    max_concurrent=st.integers(min_value=1, max_value=4),
    max_queue=st.none() | st.integers(min_value=0, max_value=3),
    horizon=st.none() | st.integers(min_value=5, max_value=40),
)
@settings(max_examples=20, deadline=None)
def test_single_shard_equivalence_with_admission_and_horizon(
    seed, max_concurrent, max_queue, horizon
):
    ranker = resolve_ranker("sjf")
    admission = AdmissionConfig(max_concurrent=max_concurrent, max_queue=max_queue)
    streaming = StreamingSimulator(CLUSTER).run(
        poisson(seed), ranker, admission=admission, horizon=horizon
    )
    federation = FederatedStreamingSimulator(
        [ShardSpec(CAPACITIES, ranker, admission=admission)],
        router="least-load",
    ).run(poisson(seed), horizon=horizon)
    assert_streaming_equivalent(federation, streaming)


@given(
    seed=st.integers(min_value=0, max_value=10_000),
    shards=st.integers(min_value=2, max_value=4),
    router=st.sampled_from(ROUTERS),
    threshold=st.none() | st.integers(min_value=0, max_value=3),
    max_concurrent=st.none() | st.integers(min_value=1, max_value=3),
)
@settings(max_examples=25, deadline=None)
def test_sharded_run_conserves_jobs(seed, shards, router, threshold, max_concurrent):
    """arrivals == admitted + rejected across shards, steals included."""
    admission = (
        AdmissionConfig(max_concurrent=max_concurrent, max_queue=2)
        if max_concurrent is not None
        else None
    )
    specs = [ShardSpec((4, 4), resolve_ranker("fifo"), admission=admission)
             for _ in range(shards)]
    result = FederatedStreamingSimulator(
        specs, router=router, steal_threshold=threshold
    ).run(poisson(seed, n=15, rate=0.8))
    aggregate = result.aggregate
    assert aggregate.arrivals == 15
    assert aggregate.admitted + len(aggregate.rejected) == aggregate.arrivals
    # No double count: every outcome and rejection is a distinct arrival
    # index, even for jobs that migrated between shards mid-flight.
    outcome_indices = [o.job_index for o in aggregate.online.outcomes]
    rejected_indices = [r.index for r in aggregate.rejected]
    seen = outcome_indices + rejected_indices
    assert len(seen) == len(set(seen)) == 15
    # Per-shard admissions tie out with routing and stealing flows.
    for report in result.shards:
        assert report.result.admitted + len(report.result.rejected) <= 15
    assert sum(r.result.admitted for r in result.shards) == aggregate.admitted
    # Steal records reference real shards and jobs that ended somewhere.
    for steal in result.steals:
        assert steal.from_shard != steal.to_shard
        assert 0 <= steal.from_shard < shards and 0 <= steal.to_shard < shards
        assert steal.job_index in set(seen)


@given(plan_seed=st.integers(min_value=0, max_value=2**31 - 1),
       seed=st.integers(min_value=0, max_value=10_000))
@settings(max_examples=10, deadline=None)
def test_sharded_run_with_faults_conserves_jobs(plan_seed, seed):
    """Per-shard fault domains never lose a job: each arrival completes,
    fails loudly, or is rejected — even with rescue migrations."""
    crashes = random_crash_plan(1, (5, 5), horizon=40, fraction=0.5, seed=plan_seed)
    plan = FaultPlan(crashes=crashes, seed=plan_seed)
    specs = [
        ShardSpec((5, 5), resolve_ranker("sjf"), faults=plan),
        ShardSpec((5, 5), resolve_ranker("sjf")),
    ]
    result = FederatedStreamingSimulator(
        specs, router="round-robin", steal_threshold=1
    ).run(poisson(seed, n=12, rate=0.6))
    aggregate = result.aggregate
    assert aggregate.arrivals == 12
    assert aggregate.admitted + len(aggregate.rejected) == 12
    indices = sorted(
        [o.job_index for o in aggregate.online.outcomes]
        + [r.index for r in aggregate.rejected]
    )
    assert indices == list(range(12))


@given(
    seed=st.integers(min_value=0, max_value=10_000),
    shards=st.integers(min_value=1, max_value=3),
    router=st.sampled_from(ROUTERS),
)
@settings(max_examples=15, deadline=None)
def test_federated_run_is_deterministic(seed, shards, router):
    def run():
        specs = [ShardSpec((4, 4), resolve_ranker("sjf")) for _ in range(shards)]
        return FederatedStreamingSimulator(
            specs, router=router, steal_threshold=1
        ).run(poisson(seed))

    a, b = run(), run()
    assert a.aggregate == b.aggregate
    assert a.steals == b.steals
    assert a.metrics_dict() == b.metrics_dict()
