"""Property-based tests on metrics: CDFs, win rates, schedule validation."""

import hypothesis.strategies as st
import pytest
from hypothesis import assume, given, settings

from repro.dag import Task, TaskGraph
from repro.errors import ScheduleError
from repro.metrics import (
    Schedule,
    ScheduledTask,
    empirical_cdf,
    percentile,
    reduction_series,
    validate_schedule,
    win_rate,
)

values = st.lists(st.integers(1, 1000), min_size=1, max_size=50)


@settings(max_examples=60, deadline=None)
@given(data=values)
def test_cdf_is_a_distribution_function(data):
    points = empirical_cdf(data)
    xs = [x for x, _ in points]
    fs = [f for _, f in points]
    assert xs == sorted(set(xs))
    assert fs == sorted(fs)
    assert fs[-1] == pytest.approx(1.0)
    assert all(0 < f <= 1 for f in fs)


@settings(max_examples=60, deadline=None)
@given(data=values, q=st.floats(0, 100))
def test_percentile_is_an_order_statistic(data, q):
    p = percentile(data, q)
    assert min(data) <= p <= max(data)
    assert p in [float(v) for v in data]


@settings(max_examples=60, deadline=None)
@given(
    pairs=st.lists(
        st.tuples(st.integers(1, 1000), st.integers(0, 100)),
        min_size=1,
        max_size=50,
    )
)
def test_win_rate_bounds_and_dominance(pairs):
    ours = [o for o, _ in pairs]
    baseline = [o + d for o, d in pairs]
    rate = win_rate(ours, baseline)
    assert 0.0 <= rate <= 1.0
    # We are never worse, so the non-strict rate is exactly 1.
    assert win_rate(ours, baseline, strict=False) == 1.0
    # Reductions are all non-negative.
    assert all(r >= 0 for r in reduction_series(ours, baseline))


@st.composite
def serial_schedules(draw):
    """A random serial (hence always feasible) schedule over a chain."""
    count = draw(st.integers(1, 8))
    runtimes = [draw(st.integers(1, 5)) for _ in range(count)]
    tasks = [Task(i, runtimes[i], (2, 2)) for i in range(count)]
    graph = TaskGraph(tasks, [(i, i + 1) for i in range(count - 1)])
    gaps = [draw(st.integers(0, 3)) for _ in range(count)]
    starts, t = {}, 0
    for i in range(count):
        t += gaps[i]
        starts[i] = t
        t += runtimes[i]
    return graph, starts


@settings(max_examples=60, deadline=None)
@given(data=serial_schedules())
def test_serial_schedules_always_validate(data):
    graph, starts = data
    schedule = Schedule.from_starts(starts, graph)
    validate_schedule(schedule, graph, (10, 10))


@settings(max_examples=60, deadline=None)
@given(data=serial_schedules(), shift=st.integers(1, 10))
def test_validator_catches_dependency_mutations(data, shift):
    """Moving any non-first task earlier past its parent must be caught."""
    graph, starts = data
    assume(len(starts) >= 2)
    victim = max(starts)  # last task in the chain
    parent_finish = starts[victim - 1] + graph.task(victim - 1).runtime
    mutated = dict(starts)
    mutated[victim] = max(0, parent_finish - shift)
    assume(mutated[victim] < parent_finish)
    with pytest.raises(ScheduleError):
        validate_schedule(
            Schedule.from_starts(mutated, graph), graph, (10, 10)
        )


@settings(max_examples=40, deadline=None)
@given(data=serial_schedules())
def test_validator_catches_capacity_mutations(data):
    """Stacking a duplicate oversized task at the same slot must be caught
    via the capacity sweep."""
    graph, starts = data
    first = graph.task(0)
    fat_graph = TaskGraph(
        [Task(t.task_id, t.runtime, (6, 6)) for t in graph],
        list(graph.edges()),
    )
    # Squash all tasks to overlapping starts: dependencies break first or
    # capacity breaks -- either way validation must fail for >= 2 tasks.
    assume(len(starts) >= 2)
    squashed = {tid: 0 for tid in starts}
    with pytest.raises(ScheduleError):
        validate_schedule(
            Schedule.from_starts(squashed, fat_graph), fat_graph, (10, 10)
        )
