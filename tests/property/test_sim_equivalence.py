"""Old-vs-new equivalence: the kernel-layered engine vs the frozen loop.

:mod:`tests.property._legacy_online` is the pre-kernel monolithic event
loop, kept verbatim as an oracle.  Under arbitrary seeded fault plans,
arrival streams, rankers, and with/without dynamic rescheduling, the
re-layered :class:`~repro.online.OnlineSimulator` must realize the
*identical* run: outcomes, makespan, the ordered fault-event log,
executed schedules, retry accounting — and its ``nominal_utilization``
must equal the legacy ``mean_utilization`` bit-for-bit.
"""

import importlib.util
from pathlib import Path

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import ClusterConfig, EnvConfig, WorkloadConfig
from repro.dag.generators import random_layered_dag
from repro.faults import (
    FaultPlan,
    RetryPolicy,
    RuntimeNoise,
    StragglerModel,
    TransientFaults,
    random_crash_plan,
)
from repro.online import (
    ArrivingJob,
    OnlineSimulator,
    cp_ranker,
    fifo_ranker,
    sjf_ranker,
    tetris_ranker,
)
from repro.schedulers import compose_scheduler

def _load_legacy():
    # tests/ is not a package; load the frozen oracle by file path.
    path = Path(__file__).resolve().parent / "_legacy_online.py"
    spec = importlib.util.spec_from_file_location("_legacy_online", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module.legacy_run


legacy_run = _load_legacy()

CAPACITIES = (10, 10)
CLUSTER = ClusterConfig(capacities=CAPACITIES, horizon=8)
RANKERS = {
    "fifo": fifo_ranker,
    "sjf": sjf_ranker,
    "cp": cp_ranker,
    "tetris": tetris_ranker,
}


@st.composite
def fault_plans(draw):
    seed = draw(st.integers(min_value=0, max_value=2**31 - 1))
    transient = draw(st.floats(min_value=0.0, max_value=0.4))
    straggle = draw(st.floats(min_value=0.0, max_value=0.3))
    noise = draw(st.floats(min_value=0.0, max_value=0.5))
    kind = draw(st.sampled_from(["lognormal", "uniform"]))
    n_crashes = draw(st.integers(min_value=0, max_value=2))
    # backoff_base=0 exercises zero-delay retries, the trickiest
    # same-instant case of the old loop (released only after a dispatch
    # round at the failure instant).
    backoff_base = draw(st.integers(min_value=0, max_value=2))
    crashes = random_crash_plan(
        n_crashes, CAPACITIES, horizon=60, fraction=0.3, seed=seed
    )
    return FaultPlan(
        crashes=crashes,
        transient=TransientFaults(transient),
        straggler=StragglerModel(straggle, slowdown=2.0),
        noise=RuntimeNoise(kind=kind, scale=noise) if noise > 0 else None,
        retry=RetryPolicy(max_attempts=3, backoff_base=backoff_base, backoff_cap=4),
        seed=seed,
    )


@st.composite
def job_streams(draw):
    n_jobs = draw(st.integers(min_value=1, max_value=3))
    seed = draw(st.integers(min_value=0, max_value=10_000))
    gap = draw(st.integers(min_value=0, max_value=6))
    workload = WorkloadConfig(
        num_tasks=6, max_runtime=5, max_demand=4, runtime_mean=3.0, demand_mean=2.0
    )
    return [
        ArrivingJob(gap * i, random_layered_dag(workload, seed=seed + i))
        for i in range(n_jobs)
    ]


def fresh_rescheduler():
    """HEFT replanner with CP fallback (stateful: one per run)."""
    return compose_scheduler(
        "heft", EnvConfig(cluster=CLUSTER), reschedule=True, fallback="cp"
    )


def assert_equivalent(new, old):
    assert new.outcomes == old.outcomes
    assert new.makespan == old.makespan
    assert new.fault_events == old.fault_events
    assert new.executed == old.executed
    assert new.crashes == old.crashes
    assert new.recoveries == old.recoveries
    assert new.total_retries == old.total_retries
    # The historical utilization definition survives, bit-for-bit.
    assert new.nominal_utilization == old.mean_utilization


@given(
    plan=fault_plans(),
    stream=job_streams(),
    ranker_name=st.sampled_from(sorted(RANKERS)),
)
@settings(max_examples=40, deadline=None)
def test_faulty_runs_bit_identical(plan, stream, ranker_name):
    ranker = RANKERS[ranker_name]
    new = OnlineSimulator(CLUSTER).run(stream, ranker, faults=plan)
    old = legacy_run(stream, ranker, cluster=CLUSTER, faults=plan)
    assert_equivalent(new, old)


@given(stream=job_streams(), ranker_name=st.sampled_from(sorted(RANKERS)))
@settings(max_examples=25, deadline=None)
def test_fault_free_runs_bit_identical(stream, ranker_name):
    ranker = RANKERS[ranker_name]
    new = OnlineSimulator(CLUSTER).run(stream, ranker)
    old = legacy_run(stream, ranker, cluster=CLUSTER)
    assert_equivalent(new, old)
    # Fault-free, effective == nominal utilization exactly.
    assert new.mean_utilization == new.nominal_utilization


@given(plan=fault_plans(), stream=job_streams())
@settings(max_examples=15, deadline=None)
def test_rescheduled_faulty_runs_bit_identical(plan, stream):
    new = OnlineSimulator(CLUSTER).run(
        stream, fifo_ranker, faults=plan, rescheduler=fresh_rescheduler()
    )
    old = legacy_run(
        stream,
        fifo_ranker,
        cluster=CLUSTER,
        faults=plan,
        rescheduler=fresh_rescheduler(),
    )
    assert_equivalent(new, old)
