"""Property-based tests on the scheduling MDP and the schedulers.

The central invariant: *any* legal play of the environment terminates with
a schedule that passes full feasibility validation and whose makespan is
bounded below by the analytic lower bound and above by the serial
makespan.
"""

import hypothesis.strategies as st
import numpy as np
from hypothesis import given, settings

from repro.config import ClusterConfig, EnvConfig, WorkloadConfig
from repro.dag.analysis import makespan_lower_bound
from repro.dag.generators import random_layered_dag
from repro.env import PROCESS, SchedulingEnv
from repro.metrics import validate_schedule
from repro.schedulers import (
    CriticalPathPolicy,
    RandomPolicy,
    SjfPolicy,
    TetrisPolicy,
    run_policy,
)

CAPS = (10, 10)


def make_graph(seed, num_tasks):
    workload = WorkloadConfig(
        num_tasks=num_tasks,
        max_runtime=6,
        max_demand=8,
        runtime_mean=3,
        runtime_std=2,
        demand_mean=4,
        demand_std=2,
    )
    return random_layered_dag(workload, seed=seed)


def make_env(graph, until_completion):
    return SchedulingEnv(
        graph,
        EnvConfig(
            cluster=ClusterConfig(capacities=CAPS, horizon=8),
            max_ready=6,
            process_until_completion=until_completion,
        ),
    )


@settings(max_examples=40, deadline=None)
@given(
    seed=st.integers(0, 2**32 - 1),
    num_tasks=st.integers(1, 16),
    play_seed=st.integers(0, 1000),
    until_completion=st.booleans(),
)
def test_random_legal_play_terminates_feasibly(
    seed, num_tasks, play_seed, until_completion
):
    graph = make_graph(seed, num_tasks)
    env = make_env(graph, until_completion)
    rng = np.random.default_rng(play_seed)
    rewards = 0
    for _ in range(100_000):
        if env.done:
            break
        actions = env.legal_actions()
        assert actions, "a live environment must always offer an action"
        rewards += env.step(actions[int(rng.integers(len(actions)))]).reward

    assert env.done
    assert rewards == -env.makespan

    schedule = env.to_schedule("random-play")
    validate_schedule(schedule, graph, CAPS)
    assert schedule.makespan >= makespan_lower_bound(graph, CAPS)
    assert schedule.makespan <= sum(t.runtime for t in graph) * 2 + 1


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 2**32 - 1), num_tasks=st.integers(2, 14))
def test_all_baseline_policies_produce_feasible_schedules(seed, num_tasks):
    graph = make_graph(seed, num_tasks)
    serial = sum(task.runtime for task in graph)
    bound = makespan_lower_bound(graph, CAPS)
    for policy in (
        SjfPolicy(),
        CriticalPathPolicy(),
        TetrisPolicy(),
        RandomPolicy(seed=0),
    ):
        env = make_env(graph, until_completion=True)
        schedule = run_policy(env, policy)
        validate_schedule(schedule, graph, CAPS)
        assert bound <= schedule.makespan <= serial


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 2**32 - 1), num_tasks=st.integers(2, 12))
def test_event_granularity_does_not_change_policy_outcomes(seed, num_tasks):
    """Deterministic work-conserving policies must reach identical
    makespans whether PROCESS advances one slot or jumps to the next
    completion — the two granularities are observationally equivalent."""
    graph = make_graph(seed, num_tasks)
    for policy_factory in (SjfPolicy, CriticalPathPolicy, TetrisPolicy):
        slotwise = run_policy(
            make_env(graph, until_completion=False), policy_factory()
        )
        eventwise = run_policy(
            make_env(graph, until_completion=True), policy_factory()
        )
        assert slotwise.makespan == eventwise.makespan
        assert slotwise.as_dict() == eventwise.as_dict()


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 2**32 - 1), num_tasks=st.integers(2, 12))
def test_clone_divergence_never_leaks(seed, num_tasks):
    """Mutating a clone never changes the original (deep-enough copies)."""
    graph = make_graph(seed, num_tasks)
    env = make_env(graph, until_completion=True)
    env.step(env.legal_actions()[0])
    snapshot = env.signature()
    clone = env.clone()
    rng = np.random.default_rng(0)
    while not clone.done:
        actions = clone.legal_actions()
        clone.step(actions[int(rng.integers(len(actions)))])
    assert env.signature() == snapshot
