"""Property-based tests on the policy network's mathematical invariants."""

import hypothesis.extra.numpy as hnp
import hypothesis.strategies as st
import numpy as np
from hypothesis import assume, given, settings

from repro.config import NetworkConfig
from repro.rl import PolicyNetwork

INPUT = 6
ACTIONS = 4  # max_ready 3 + PROCESS


def make_net(seed):
    return PolicyNetwork(
        INPUT, NetworkConfig(hidden_sizes=(8, 5), max_ready=ACTIONS - 1), seed=seed
    )


state_batches = hnp.arrays(
    np.float64,
    shape=st.tuples(st.integers(1, 6), st.just(INPUT)),
    elements=st.floats(-5, 5, allow_nan=False),
)

@st.composite
def states_with_masks(draw):
    """A batch of states plus an aligned mask batch (>= 1 legal per row)."""
    batch = draw(st.integers(1, 6))
    states = draw(
        hnp.arrays(
            np.float64,
            shape=(batch, INPUT),
            elements=st.floats(-5, 5, allow_nan=False),
        )
    )
    masks = [
        draw(st.lists(st.booleans(), min_size=ACTIONS, max_size=ACTIONS).filter(any))
        for _ in range(batch)
    ]
    return states, np.asarray(masks, dtype=bool)


@settings(max_examples=60, deadline=None)
@given(states=state_batches, seed=st.integers(0, 100))
def test_probabilities_form_a_distribution(states, seed):
    net = make_net(seed)
    masks = np.ones((states.shape[0], ACTIONS), dtype=bool)
    probs = net.probabilities(states, masks)
    assert np.all(probs >= 0)
    assert np.all(probs <= 1)
    assert np.allclose(probs.sum(axis=1), 1.0)


@settings(max_examples=60, deadline=None)
@given(data=states_with_masks(), seed=st.integers(0, 100))
def test_masked_probabilities_exactly_zero(data, seed):
    states, masks_arr = data
    net = make_net(seed)
    probs = net.probabilities(states, masks_arr)
    assert np.all(probs[~masks_arr] == 0.0)
    assert np.allclose(probs.sum(axis=1), 1.0)


@settings(max_examples=40, deadline=None)
@given(states=state_batches, seed=st.integers(0, 100))
def test_gradients_are_finite(states, seed):
    net = make_net(seed)
    batch = states.shape[0]
    masks = np.ones((batch, ACTIONS), dtype=bool)
    actions = [0] * batch
    weights = [1.0] * batch
    grads, nll = net.policy_gradient(states, masks, actions, weights)
    assert np.isfinite(nll)
    for grad in grads.values():
        assert np.isfinite(grad).all()


@settings(max_examples=30, deadline=None)
@given(
    states=state_batches,
    seed=st.integers(0, 100),
    scale=st.floats(0.1, 10.0),
)
def test_gradient_scales_linearly_with_weights(states, seed, scale):
    """policy_gradient is linear in the advantage weights."""
    net = make_net(seed)
    batch = states.shape[0]
    masks = np.ones((batch, ACTIONS), dtype=bool)
    actions = [1] * batch
    base, _ = net.policy_gradient(states, masks, actions, [1.0] * batch)
    scaled, _ = net.policy_gradient(states, masks, actions, [scale] * batch)
    for key in base:
        assert np.allclose(scaled[key], scale * base[key], atol=1e-9)


@settings(max_examples=30, deadline=None)
@given(states=state_batches, seed=st.integers(0, 100))
def test_masking_equals_renormalization(states, seed):
    """Masked softmax equals the full softmax renormalized over the legal
    set (the defining property of masking at the logit level)."""
    net = make_net(seed)
    batch = states.shape[0]
    full_mask = np.ones((batch, ACTIONS), dtype=bool)
    partial = full_mask.copy()
    partial[:, -1] = False
    full = net.probabilities(states, full_mask)
    masked = net.probabilities(states, partial)
    renorm = full[:, :-1] / full[:, :-1].sum(axis=1, keepdims=True)
    assert np.allclose(masked[:, :-1], renorm, atol=1e-9)
