"""Property-based tests on graphs, features and generators."""

import hypothesis.strategies as st
from hypothesis import given, settings

from repro.config import WorkloadConfig
from repro.dag import (
    TaskGraph,
    compute_features,
    graph_from_dict,
    graph_to_dict,
    random_layered_dag,
)
from repro.dag.analysis import makespan_lower_bound

workload_strategy = st.builds(
    WorkloadConfig,
    num_tasks=st.integers(1, 30),
    min_width=st.just(1),
    max_width=st.integers(1, 6),
    max_runtime=st.integers(1, 10),
    max_demand=st.integers(1, 8),
    runtime_mean=st.floats(1, 10),
    runtime_std=st.floats(0, 5),
    demand_mean=st.floats(1, 8),
    demand_std=st.floats(0, 4),
    edge_probability=st.floats(0, 1),
)


@settings(max_examples=40, deadline=None)
@given(config=workload_strategy, seed=st.integers(0, 2**32 - 1))
def test_generated_graphs_are_structurally_sound(config, seed):
    graph = random_layered_dag(config, seed=seed)

    # Exactly the requested number of tasks, all within bounds.
    assert graph.num_tasks == config.num_tasks
    for task in graph:
        assert 1 <= task.runtime <= config.max_runtime
        assert all(1 <= d <= config.max_demand for d in task.demands)

    # Acyclicity is established by construction (TaskGraph validates), but
    # double-check the topological order is consistent.
    position = {tid: i for i, tid in enumerate(graph.topological_order())}
    for up, down in graph.edges():
        assert position[up] < position[down]

    # Width never exceeds the configured maximum.
    assert graph.width() <= max(config.max_width, 1)


@settings(max_examples=40, deadline=None)
@given(config=workload_strategy, seed=st.integers(0, 2**32 - 1))
def test_feature_invariants(config, seed):
    graph = random_layered_dag(config, seed=seed)
    features = compute_features(graph)

    for tid in graph.task_ids:
        task = graph.task(tid)
        # b-level includes own runtime and is bounded by the critical path.
        assert features.b_level[tid] >= task.runtime
        assert features.b_level[tid] <= features.critical_path
        # t-level + b-level never exceeds the critical path.
        assert features.t_level[tid] + features.b_level[tid] <= features.critical_path
        # b-load at least the task's own load in every dimension.
        for r in range(graph.num_resources):
            assert features.b_load[tid][r] >= task.load(r)

    # Parents dominate children in b-level along every edge.
    for up, down in graph.edges():
        assert (
            features.b_level[up]
            >= graph.task(up).runtime + features.b_level[down]
        )

    # The critical path matches the graph-level computation.
    assert features.critical_path == graph.critical_path_length()


@settings(max_examples=40, deadline=None)
@given(config=workload_strategy, seed=st.integers(0, 2**32 - 1))
def test_json_roundtrip_identity(config, seed):
    graph = random_layered_dag(config, seed=seed)
    assert graph_from_dict(graph_to_dict(graph)) == graph


@settings(max_examples=40, deadline=None)
@given(
    config=workload_strategy,
    seed=st.integers(0, 2**32 - 1),
    capacity=st.integers(8, 30),
)
def test_lower_bound_dominated_by_serial_schedule(config, seed, capacity):
    """The bound must never exceed the trivially-valid serial makespan."""
    graph = random_layered_dag(config, seed=seed)
    serial = sum(task.runtime for task in graph)
    max_demand = max(max(t.demands) for t in graph)
    caps = (max(capacity, max_demand),) * 2
    assert makespan_lower_bound(graph, caps) <= serial
