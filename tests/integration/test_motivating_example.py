"""Integration test: the full Fig. 3 story, end to end.

Claims reproduced (see DESIGN.md for the reconstruction caveat):

* the true optimum of the 8-task instance is exactly 2T (certified by
  exhaustive branch and bound);
* pure MCTS and Spear both find 2T;
* the dependency-blind packers (Tetris, and SJF via its id tiebreak) land
  at 3T;
* CP and Graphene reach 2T on this reconstruction (the paper's exact
  instance data is unpublished; the Tetris/optimal separation is the
  load-bearing claim).
"""

import pytest

from repro.config import ClusterConfig, EnvConfig, MctsConfig
from repro.core import SpearScheduler
from repro.dag import motivating_example
from repro.dag.examples import MOTIVATING_CAPACITY, MOTIVATING_T
from repro.mcts import MctsScheduler
from repro.metrics import validate_schedule
from repro.schedulers import make_scheduler


@pytest.fixture(scope="module")
def setup():
    graph = motivating_example()
    env_config = EnvConfig(
        cluster=ClusterConfig(capacities=MOTIVATING_CAPACITY, horizon=20),
        process_until_completion=True,
    )
    return graph, env_config


def run(scheduler, graph):
    schedule = scheduler.schedule(graph)
    validate_schedule(schedule, graph, MOTIVATING_CAPACITY)
    return schedule.makespan


class TestFig3:
    def test_optimum_is_exactly_2t(self, setup):
        graph, env_config = setup
        assert run(make_scheduler("optimal", env_config), graph) == 2 * MOTIVATING_T

    def test_tetris_needs_3t(self, setup):
        graph, env_config = setup
        assert run(make_scheduler("tetris", env_config), graph) == 3 * MOTIVATING_T

    def test_sjf_needs_3t(self, setup):
        graph, env_config = setup
        assert run(make_scheduler("sjf", env_config), graph) == 3 * MOTIVATING_T

    def test_cp_and_graphene_feasible_and_at_least_2t(self, setup):
        graph, env_config = setup
        for name in ("cp", "graphene"):
            assert run(make_scheduler(name, env_config), graph) >= 2 * MOTIVATING_T

    def test_mcts_finds_the_optimum(self, setup):
        graph, env_config = setup
        mcts = MctsScheduler(
            MctsConfig(initial_budget=300, min_budget=50), env_config, seed=0
        )
        assert run(mcts, graph) == 2 * MOTIVATING_T

    def test_spear_finds_the_optimum(self, setup, tiny_training_setup):
        graph, _ = setup
        network, _, _, _ = tiny_training_setup
        env_config = EnvConfig(
            cluster=ClusterConfig(capacities=MOTIVATING_CAPACITY, horizon=20),
            process_until_completion=True,
        )
        spear = SpearScheduler(
            network,
            MctsConfig(initial_budget=200, min_budget=40),
            env_config,
            seed=0,
        )
        assert run(spear, graph) == 2 * MOTIVATING_T

    def test_mcts_robust_across_seeds(self, setup):
        graph, env_config = setup
        for seed in range(3):
            mcts = MctsScheduler(
                MctsConfig(initial_budget=300, min_budget=50),
                env_config,
                seed=seed,
            )
            assert run(mcts, graph) == 2 * MOTIVATING_T
