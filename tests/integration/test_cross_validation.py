"""Cross-validation between independent subsystems.

Two implementations of "the same thing" must agree:

* the online simulator with a single job arriving at t=0 vs the offline
  environment executor under the matching policy;
* the network policy's empirical sampling frequencies vs the distribution
  the network reports;
* Graphene's virtual makespan vs the online execution of its own order on
  an empty cluster (the virtual plan ignores dependencies, so online can
  only be equal or later for dependency-free jobs).
"""

import numpy as np
import pytest

from repro.config import ClusterConfig, EnvConfig
from repro.dag import independent_tasks_dag
from repro.dag.generators import random_layered_dag
from repro.config import WorkloadConfig
from repro.env import SchedulingEnv
from repro.online import ArrivingJob, OnlineSimulator, fifo_ranker, sjf_ranker, tetris_ranker
from repro.schedulers import FifoPolicy, SjfPolicy, TetrisPolicy, run_policy


def workload(seed, num_tasks=10):
    config = WorkloadConfig(
        num_tasks=num_tasks, max_runtime=5, max_demand=7,
        runtime_mean=3, runtime_std=1, demand_mean=4, demand_std=2,
    )
    return random_layered_dag(config, seed=seed)


class TestOnlineVsOffline:
    """A single job at t=0 must behave identically in both simulators."""

    @pytest.mark.parametrize(
        "ranker,policy_factory",
        [
            (fifo_ranker, FifoPolicy),
            (sjf_ranker, SjfPolicy),
            (tetris_ranker, TetrisPolicy),
        ],
    )
    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_single_job_makespans_agree(self, ranker, policy_factory, seed):
        graph = workload(seed)
        capacities = (10, 10)

        online = OnlineSimulator(
            ClusterConfig(capacities=capacities, horizon=8)
        ).run([ArrivingJob(0, graph)], ranker)

        env = SchedulingEnv(
            graph,
            EnvConfig(
                cluster=ClusterConfig(capacities=capacities, horizon=8),
                max_ready=graph.num_tasks,  # online has no backlog window
                process_until_completion=True,
            ),
        )
        offline = run_policy(env, policy_factory())
        assert online.makespan == offline.makespan


class TestSamplingDistribution:
    def test_network_policy_samples_match_reported_probabilities(
        self, tiny_training_setup
    ):
        from repro.rl import NetworkPolicy

        network, env_config, graphs, _ = tiny_training_setup
        env = SchedulingEnv(graphs[0], env_config)
        policy = NetworkPolicy(network, mode="sample", seed=0)
        policy.begin_episode(env)
        probs = policy.action_probabilities(env)

        draws = 3000
        counts = {action: 0 for action in probs}
        for _ in range(draws):
            counts[policy.select(env)] += 1
        for action, p in probs.items():
            observed = counts[action] / draws
            # Three-sigma band of the binomial proportion.
            sigma = (p * (1 - p) / draws) ** 0.5
            assert abs(observed - p) <= max(3.5 * sigma, 0.02)


class TestGrapheneVirtualVsOnline:
    def test_dependency_free_virtual_makespan_is_achievable(self):
        """Without dependencies the virtual space-time plan is a real
        schedule, so executing the derived order reproduces its makespan
        exactly."""
        from repro.schedulers import GrapheneScheduler

        graph = independent_tasks_dag(
            [3, 4, 2, 5, 1], demands=[(4, 3), (5, 5), (2, 2), (6, 4), (3, 3)]
        )
        env_config = EnvConfig(
            cluster=ClusterConfig(capacities=(10, 10), horizon=8),
            max_ready=8,
        )
        scheduler = GrapheneScheduler(env_config=env_config)
        best_virtual = min(
            plan.virtual_makespan
            for plan in scheduler.candidate_plans(graph)
        )
        executed = scheduler.schedule(graph).makespan
        assert executed <= best_virtual + 1  # online pass can only tie or
        # improve (it re-packs greedily); the +1 covers rounding at window
        # boundaries in backward plans.
