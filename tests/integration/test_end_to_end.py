"""End-to-end integration: train -> checkpoint -> Spear -> beat baselines."""

import numpy as np
import pytest

from repro.config import EnvConfig, MctsConfig, WorkloadConfig
from repro.core import SpearScheduler, build_spear
from repro.dag.generators import random_layered_dag
from repro.metrics import validate_schedule, win_rate
from repro.mcts import MctsScheduler
from repro.rl import load_checkpoint, save_checkpoint
from repro.schedulers import make_scheduler


@pytest.fixture(scope="module")
def eval_graphs():
    workload = WorkloadConfig(num_tasks=18)
    return [random_layered_dag(workload, seed=500 + i) for i in range(4)]


class TestCheckpointDeployment:
    def test_reloaded_network_schedules_identically(
        self, tiny_training_setup, eval_graphs, tmp_path
    ):
        network, env_config, _, _ = tiny_training_setup
        path = tmp_path / "net.npz"
        save_checkpoint(network, path)
        restored = load_checkpoint(path)

        config = MctsConfig(initial_budget=20, min_budget=5)
        original = SpearScheduler(network, config, env_config, seed=9)
        reloaded = SpearScheduler(restored, config, env_config, seed=9)
        for graph in eval_graphs[:2]:
            assert (
                original.schedule(graph).makespan
                == reloaded.schedule(graph).makespan
            )


class TestSpearVsBaselines:
    def test_spear_competitive_on_random_dags(
        self, tiny_training_setup, eval_graphs
    ):
        """Spear (tiny network, small budget) must beat or match the mean
        of the weakest baselines and stay feasible everywhere."""
        network, env_config, _, _ = tiny_training_setup
        capacities = env_config.cluster.capacities
        spear = build_spear(
            network, MctsConfig(initial_budget=40, min_budget=10), env_config, seed=0
        )

        makespans = {"spear": [], "sjf": [], "random": [], "tetris": []}
        for graph in eval_graphs:
            for name in ("sjf", "random", "tetris"):
                schedule = make_scheduler(name, env_config).schedule(graph)
                validate_schedule(schedule, graph, capacities)
                makespans[name].append(schedule.makespan)
            schedule = spear.schedule(graph)
            validate_schedule(schedule, graph, capacities)
            makespans["spear"].append(schedule.makespan)

        mean = {k: float(np.mean(v)) for k, v in makespans.items()}
        assert mean["spear"] <= mean["sjf"] + 1
        assert mean["spear"] <= mean["random"] + 1

    def test_search_beats_its_own_rollout_policy(
        self, tiny_training_setup, eval_graphs
    ):
        """Adding MCTS on top of the network should never hurt on average:
        Spear's makespan is the best over many guided rollouts."""
        from repro.rl import NetworkPolicy
        from repro.schedulers.base import PolicyScheduler

        network, env_config, _, _ = tiny_training_setup
        greedy = PolicyScheduler(
            lambda: NetworkPolicy(network, mode="greedy"), env_config
        )
        spear = build_spear(
            network, MctsConfig(initial_budget=40, min_budget=10), env_config, seed=1
        )
        greedy_mean = np.mean(
            [greedy.schedule(g).makespan for g in eval_graphs]
        )
        spear_mean = np.mean([spear.schedule(g).makespan for g in eval_graphs])
        assert spear_mean <= greedy_mean


class TestMctsBudgetMonotonicity:
    def test_more_budget_never_hurts_much(self, eval_graphs):
        """Mean makespan with a 10x budget must be <= the tiny-budget mean
        plus a small noise allowance (the Fig. 7(a) trend)."""
        env_config = EnvConfig(process_until_completion=True)
        small = MctsScheduler(
            MctsConfig(initial_budget=5, min_budget=2), env_config, seed=3
        )
        large = MctsScheduler(
            MctsConfig(initial_budget=60, min_budget=15), env_config, seed=3
        )
        small_mean = np.mean([small.schedule(g).makespan for g in eval_graphs])
        large_mean = np.mean([large.schedule(g).makespan for g in eval_graphs])
        assert large_mean <= small_mean + 2


class TestTraceEndToEnd:
    def test_trace_jobs_schedule_feasibly_with_all_schedulers(
        self, tiny_training_setup
    ):
        from repro.traces import TraceConfig, generate_production_trace

        network, env_config, _, _ = tiny_training_setup
        capacities = env_config.cluster.capacities
        trace = generate_production_trace(
            TraceConfig(num_jobs=3, runtime_scale=0.15), seed=11
        )
        spear = build_spear(
            network, MctsConfig(initial_budget=10, min_budget=5), env_config, seed=0
        )
        for job in trace:
            for scheduler in (
                make_scheduler("graphene", env_config),
                make_scheduler("tetris", env_config),
                spear,
            ):
                schedule = scheduler.schedule(job.graph)
                validate_schedule(schedule, job.graph, capacities)
