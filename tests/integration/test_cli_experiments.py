"""Integration: the CLI experiment commands end to end at micro scale."""

import pytest

from repro.cli import main
from tests.integration.test_experiments_smoke import MICRO


@pytest.fixture(autouse=True)
def micro_scale(monkeypatch, tmp_path):
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    monkeypatch.delenv("REPRO_PAPER_SCALE", raising=False)
    import repro.experiments.scale as scale_module

    monkeypatch.setattr(scale_module, "LAPTOP", MICRO)
    yield


class TestExperimentCommands:
    def test_fig6a(self, capsys):
        assert main(["experiment", "fig6a"]) == 0
        out = capsys.readouterr().out
        assert "Fig 6(a)" in out
        assert "spear" in out

    def test_fig6b(self, capsys):
        assert main(["experiment", "fig6b"]) == 0
        out = capsys.readouterr().out
        assert "spear" in out and "graphene" in out

    def test_fig7(self, capsys):
        assert main(["experiment", "fig7"]) == 0
        assert "Tetris" in capsys.readouterr().out

    def test_fig8a(self, capsys):
        assert main(["experiment", "fig8a"]) == 0
        assert "Fig 8(a)" in capsys.readouterr().out

    def test_fig8b(self, capsys):
        assert main(["experiment", "fig8b"]) == 0
        assert "learning curve" in capsys.readouterr().out

    def test_fig9ab(self, capsys):
        assert main(["experiment", "fig9ab"]) == 0
        out = capsys.readouterr().out
        assert "Fig 9(a)" in out

    def test_fig9c(self, capsys):
        assert main(["experiment", "fig9c"]) == 0
        assert "Fig 9(c)" in capsys.readouterr().out

    def test_table1(self, capsys):
        assert main(["experiment", "table1"]) == 0
        assert "Table I" in capsys.readouterr().out


class TestAblationCommands:
    def test_named_ablation(self, capsys):
        assert main(["ablation", "budget-decay"]) == 0
        assert "budget-decay" in capsys.readouterr().out

    def test_graph_features_ablation(self, capsys):
        assert main(["ablation", "graph-features"]) == 0
        assert "graph-features" in capsys.readouterr().out
