"""Stress and edge-case integration tests (failure injection included)."""

import numpy as np
import pytest

from repro.config import ClusterConfig, EnvConfig, MctsConfig, WorkloadConfig
from repro.dag import (
    Task,
    TaskGraph,
    chain_dag,
    disjoint_union,
    independent_tasks_dag,
    random_layered_dag,
)
from repro.env import PROCESS, SchedulingEnv
from repro.errors import CapacityError
from repro.mcts import MctsScheduler
from repro.metrics import validate_schedule
from repro.schedulers import make_scheduler


class TestNarrowVisibilityWindow:
    """max_ready=1: the scheduler sees a single task at a time."""

    def test_all_baselines_complete(self, small_random_graph):
        env_config = EnvConfig(
            cluster=ClusterConfig(capacities=(10, 10), horizon=8),
            max_ready=1,
            process_until_completion=True,
        )
        for name in ("tetris", "sjf", "cp", "fifo"):
            schedule = make_scheduler(name, env_config).schedule(
                small_random_graph
            )
            validate_schedule(schedule, small_random_graph, (10, 10))

    def test_mcts_completes(self, small_random_graph):
        env_config = EnvConfig(
            cluster=ClusterConfig(capacities=(10, 10), horizon=8),
            max_ready=1,
            process_until_completion=True,
        )
        scheduler = MctsScheduler(
            MctsConfig(initial_budget=10, min_budget=3), env_config, seed=0
        )
        schedule = scheduler.schedule(small_random_graph)
        validate_schedule(schedule, small_random_graph, (10, 10))


class TestWideGraphsAndBacklog:
    def test_hundred_independent_tasks_through_small_window(self):
        graph = independent_tasks_dag([1] * 100, demands=[(1, 1)] * 100)
        env_config = EnvConfig(
            cluster=ClusterConfig(capacities=(10, 10), horizon=8),
            max_ready=5,
            process_until_completion=True,
        )
        schedule = make_scheduler("tetris", env_config).schedule(graph)
        validate_schedule(schedule, graph, (10, 10))
        # 100 unit tasks, 10 concurrently (CPU-bound): exactly 10 slots.
        assert schedule.makespan == 10

    def test_backlog_never_starves(self):
        """Every backlogged task eventually runs (completeness check)."""
        graph = independent_tasks_dag(
            list(range(1, 41)), demands=[(2, 2)] * 40
        )
        env_config = EnvConfig(
            cluster=ClusterConfig(capacities=(10, 10), horizon=8),
            max_ready=3,
            process_until_completion=True,
        )
        schedule = make_scheduler("sjf", env_config).schedule(graph)
        validate_schedule(schedule, graph, (10, 10))


class TestDegenerateTasks:
    def test_zero_demand_tasks_schedule_concurrently(self):
        graph = independent_tasks_dag([5] * 6, demands=[(0, 0)] * 6)
        env_config = EnvConfig(
            cluster=ClusterConfig(capacities=(10, 10), horizon=8),
            process_until_completion=True,
        )
        schedule = make_scheduler("tetris", env_config).schedule(graph)
        validate_schedule(schedule, graph, (10, 10))
        assert schedule.makespan == 5  # all six run at once

    def test_full_cluster_tasks_serialize(self):
        graph = independent_tasks_dag([2] * 4, demands=[(10, 10)] * 4)
        env_config = EnvConfig(
            cluster=ClusterConfig(capacities=(10, 10), horizon=8),
            process_until_completion=True,
        )
        schedule = make_scheduler("tetris", env_config).schedule(graph)
        validate_schedule(schedule, graph, (10, 10))
        assert schedule.makespan == 8

    def test_single_task_graph(self):
        graph = TaskGraph([Task(0, 7, (3, 3))])
        env_config = EnvConfig(
            cluster=ClusterConfig(capacities=(10, 10), horizon=8),
            process_until_completion=True,
        )
        for name in ("tetris", "graphene", "optimal"):
            schedule = make_scheduler(name, env_config).schedule(graph)
            assert schedule.makespan == 7

    def test_oversized_task_fails_fast_everywhere(self):
        graph = TaskGraph([Task(0, 1, (99, 1))])
        env_config = EnvConfig(
            cluster=ClusterConfig(capacities=(10, 10), horizon=8)
        )
        with pytest.raises(CapacityError):
            make_scheduler("tetris", env_config).schedule(graph)
        with pytest.raises(CapacityError):
            MctsScheduler(
                MctsConfig(initial_budget=5, min_budget=2), env_config
            ).schedule(graph)


class TestDeepChains:
    def test_eighty_task_chain_is_serial_for_everyone(self):
        runtimes = [1 + (i % 3) for i in range(80)]
        graph = chain_dag(runtimes, demands=[(1, 1)] * 80)
        env_config = EnvConfig(
            cluster=ClusterConfig(capacities=(10, 10), horizon=8),
            process_until_completion=True,
        )
        expected = sum(runtimes)
        for name in ("tetris", "sjf", "cp", "graphene", "heft"):
            schedule = make_scheduler(name, env_config).schedule(graph)
            assert schedule.makespan == expected


class TestBatchWorkloads:
    def test_union_of_trace_jobs_schedules(self):
        from repro.traces import TraceConfig, generate_production_trace

        trace = generate_production_trace(
            TraceConfig(num_jobs=3, runtime_scale=0.1), seed=5
        )
        batch = disjoint_union(trace.graphs())
        env_config = EnvConfig(process_until_completion=True)
        schedule = make_scheduler("tetris", env_config).schedule(batch)
        validate_schedule(schedule, batch, env_config.cluster.capacities)
        # Batch completion is bounded below by the slowest job alone.
        slowest = max(
            make_scheduler("tetris", env_config).schedule(g).makespan
            for g in trace.graphs()
        )
        assert schedule.makespan >= slowest

    def test_serialized_batch_is_sum_like(self):
        jobs = [chain_dag([2, 2], demands=[(2, 2)] * 2) for _ in range(3)]
        from repro.dag import serialize_jobs

        batch = serialize_jobs(jobs)
        env_config = EnvConfig(
            cluster=ClusterConfig(capacities=(10, 10), horizon=8),
            process_until_completion=True,
        )
        schedule = make_scheduler("tetris", env_config).schedule(batch)
        assert schedule.makespan == 12  # strict barriers: 3 x 4 slots


class TestLargePaperScaleGraphSanity:
    def test_100_task_dag_all_schedulers_feasible(self):
        graph = random_layered_dag(WorkloadConfig(), seed=77)
        env_config = EnvConfig(process_until_completion=True)
        makespans = {}
        for name in ("tetris", "sjf", "cp", "graphene", "heft", "lpt", "fifo"):
            schedule = make_scheduler(name, env_config).schedule(graph)
            validate_schedule(schedule, graph, env_config.cluster.capacities)
            makespans[name] = schedule.makespan
        from repro.dag import makespan_lower_bound

        bound = makespan_lower_bound(graph, env_config.cluster.capacities)
        assert all(m >= bound for m in makespans.values())
        spread = max(makespans.values()) / min(makespans.values())
        assert spread < 2.0  # sane heuristics stay within 2x of each other
