"""Smoke integration of every experiment entry point at micro scale.

These verify the harness wiring (data flow, report rendering, result
invariants), not the paper's quantitative claims — those live in
``benchmarks/`` where the laptop-scale configurations run.
"""

import pytest

from repro.experiments import (
    budget_reduction,
    budget_sweep,
    learning_curve,
    makespan_comparison,
    reduction_cdf,
    runtime_comparison,
    runtime_grid,
    trace_characteristics,
)
from repro.experiments.ablations import run_ablation
from repro.experiments.scale import ExperimentScale

MICRO = ExperimentScale(
    label="micro",
    num_dags=2,
    num_tasks=10,
    spear_budget=6,
    spear_min_budget=3,
    mcts_budget=6,
    mcts_min_budget=3,
    sweep_budgets=(3, 6),
    sweep_num_dags=2,
    sweep_min_budget=2,
    grid_sizes=(8,),
    grid_budgets=(3, 6),
    fig8_budget_divisor=2,
    train_examples=2,
    train_tasks=6,
    train_epochs=1,
    train_rollouts=2,
    supervised_epochs=3,
    trace_jobs=2,
    trace_spear_budget=4,
    trace_spear_min_budget=2,
)


@pytest.fixture(autouse=True)
def micro_scale(monkeypatch, tmp_path):
    """Force every experiment to the micro scale with an isolated cache."""
    monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
    monkeypatch.delenv("REPRO_PAPER_SCALE", raising=False)
    import repro.experiments.scale as scale_module

    monkeypatch.setattr(scale_module, "LAPTOP", MICRO)
    yield


class TestFig6:
    def test_makespan_comparison(self):
        result = makespan_comparison(seed=0)
        assert set(result.makespans) == {"spear", "graphene", "tetris", "sjf", "cp"}
        assert all(len(v) == 2 for v in result.makespans.values())
        assert all(
            len(v) == 2 and all(t >= 0 for t in v)
            for v in result.wall_times.values()
        )
        rows = result.rows()
        assert rows[0].mean <= rows[-1].mean
        assert 0.0 <= result.win_rate_over("graphene") <= 1.0
        assert "Fig 6(a)" in result.report()

    def test_runtime_comparison_reuses_result(self):
        result = makespan_comparison(seed=0)
        times = runtime_comparison(result=result)
        assert times["spear"] == result.wall_times["spear"]
        assert times["graphene"] == result.wall_times["graphene"]


class TestFig7:
    def test_budget_sweep(self):
        result = budget_sweep(seed=0)
        assert [p.budget for p in result.points] == [3, 6]
        for point in result.points:
            assert point.mean_makespan > 0
            assert 0.0 <= point.win_rate_vs_tetris <= 1.0
            assert len(point.makespans) == 2
        assert len(result.mean_makespans()) == 2
        assert "budget" in result.report()


class TestTable1:
    def test_runtime_grid(self):
        result = runtime_grid(seed=0)
        assert set(result.seconds) == {(8, 3), (8, 6)}
        assert all(s >= 0 for s in result.seconds.values())
        assert all(m > 0 for m in result.makespans.values())
        assert "Table I" in result.report()

    def test_more_budget_more_time(self):
        result = runtime_grid(seed=0)
        row = result.row(8)
        assert row[1] >= row[0] * 0.5  # noisy at micro scale; sanity only


class TestFig8:
    def test_budget_reduction(self):
        result = budget_reduction(seed=0)
        assert set(result.makespans) == {"mcts", "spear", "tetris", "sjf", "cp"}
        assert result.budget_ratio() == 2.0
        assert "Fig 8(a)" in result.report()

    def test_learning_curve(self):
        result = learning_curve(seed=0, epochs=2)
        assert len(result.history) == 2
        assert result.tetris_mean > 0
        assert result.sjf_mean > 0
        assert result.final_mean() > 0
        assert len(result.curve()) == 2
        assert "learning curve" in result.report()


class TestFig9:
    def test_trace_characteristics(self):
        stats = trace_characteristics(seed=0)
        assert stats.num_jobs == 2
        map_cdf, reduce_cdf = stats.count_cdfs()
        assert map_cdf[-1][1] == pytest.approx(1.0)
        assert reduce_cdf[-1][1] == pytest.approx(1.0)

    def test_reduction_cdf(self):
        result = reduction_cdf(seed=0)
        assert result.num_jobs == 2
        assert len(result.reductions) == 2
        assert all(-1.0 < r < 1.0 for r in result.reductions)
        assert 0.0 <= result.no_worse_fraction() <= 1.0
        assert "Fig 9(c)" in result.report()


class TestAblations:
    @pytest.mark.parametrize(
        "name",
        ["expansion-filters", "budget-decay", "max-value-ucb", "guided-rollout"],
    )
    def test_each_named_ablation_runs(self, name):
        result = run_ablation(name, seed=0)
        assert set(result.makespans) == {"on", "off"}
        assert result.mean("on") > 0
        assert result.mean("off") > 0
        assert name in result.report()

    def test_unknown_ablation_rejected(self):
        with pytest.raises(KeyError):
            run_ablation("warp-drive")

    def test_exploration_sensitivity(self):
        from repro.experiments.ablations import exploration_sensitivity

        result = exploration_sensitivity(seed=0, scales=(0.5, 1.0))
        assert set(result.makespans) == {"c=0.5x", "c=1x"}
        assert all(
            all(m > 0 for m in series) for series in result.makespans.values()
        )
