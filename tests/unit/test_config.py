"""Unit tests for the configuration dataclasses."""

import pytest

from repro.config import (
    ClusterConfig,
    EnvConfig,
    GrapheneConfig,
    MctsConfig,
    NetworkConfig,
    TrainingConfig,
    WorkloadConfig,
    paper_scale,
)
from repro.errors import ConfigError


class TestClusterConfig:
    def test_defaults_match_paper(self):
        cfg = ClusterConfig()
        assert cfg.capacities == (20, 20)
        assert cfg.horizon == 20
        assert cfg.num_resources == 2

    def test_rejects_empty_capacities(self):
        with pytest.raises(ConfigError):
            ClusterConfig(capacities=())

    def test_rejects_non_positive_capacity(self):
        with pytest.raises(ConfigError):
            ClusterConfig(capacities=(10, 0))

    def test_rejects_non_positive_horizon(self):
        with pytest.raises(ConfigError):
            ClusterConfig(horizon=0)

    def test_single_resource_allowed(self):
        assert ClusterConfig(capacities=(5,)).num_resources == 1


class TestWorkloadConfig:
    def test_defaults_match_paper(self):
        cfg = WorkloadConfig()
        assert cfg.num_tasks == 100
        assert (cfg.min_width, cfg.max_width) == (2, 5)
        assert cfg.max_runtime == 20
        assert cfg.max_demand == 20

    def test_rejects_inverted_width_range(self):
        with pytest.raises(ConfigError):
            WorkloadConfig(min_width=5, max_width=2)

    def test_rejects_zero_tasks(self):
        with pytest.raises(ConfigError):
            WorkloadConfig(num_tasks=0)

    def test_rejects_bad_edge_probability(self):
        with pytest.raises(ConfigError):
            WorkloadConfig(edge_probability=1.5)

    def test_rejects_negative_std(self):
        with pytest.raises(ConfigError):
            WorkloadConfig(runtime_std=-1)


class TestMctsConfig:
    def test_defaults_match_paper(self):
        cfg = MctsConfig()
        assert cfg.initial_budget == 1000
        assert cfg.min_budget == 100
        assert cfg.use_expansion_filters
        assert cfg.use_budget_decay
        assert cfg.use_max_value_ucb

    def test_rejects_zero_budget(self):
        with pytest.raises(ConfigError):
            MctsConfig(initial_budget=0)

    def test_rejects_zero_min_budget(self):
        with pytest.raises(ConfigError):
            MctsConfig(min_budget=0)

    def test_rejects_non_positive_exploration(self):
        with pytest.raises(ConfigError):
            MctsConfig(exploration_scale=0.0)


class TestNetworkConfig:
    def test_defaults_match_paper(self):
        cfg = NetworkConfig()
        assert cfg.hidden_sizes == (256, 32, 32)
        assert cfg.max_ready == 15
        assert cfg.num_actions == 16

    def test_rejects_empty_hidden(self):
        with pytest.raises(ConfigError):
            NetworkConfig(hidden_sizes=())

    def test_rejects_zero_width_layer(self):
        with pytest.raises(ConfigError):
            NetworkConfig(hidden_sizes=(256, 0))


class TestTrainingConfig:
    def test_defaults_match_paper(self):
        cfg = TrainingConfig()
        assert cfg.learning_rate == pytest.approx(1e-4)
        assert cfg.rho == pytest.approx(0.9)
        assert cfg.eps == pytest.approx(1e-9)
        assert cfg.rollouts_per_example == 20
        assert cfg.num_examples == 144
        assert cfg.example_num_tasks == 25
        assert cfg.epochs == 7000

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"learning_rate": 0},
            {"rho": 1.0},
            {"eps": 0},
            {"rollouts_per_example": 0},
            {"batch_size": 0},
            {"entropy_bonus": -0.1},
        ],
    )
    def test_rejects_bad_values(self, kwargs):
        with pytest.raises(ConfigError):
            TrainingConfig(**kwargs)


class TestGrapheneConfig:
    def test_defaults_match_paper(self):
        cfg = GrapheneConfig()
        assert cfg.thresholds == (0.2, 0.4, 0.6, 0.8)

    def test_rejects_empty_thresholds(self):
        with pytest.raises(ConfigError):
            GrapheneConfig(thresholds=())

    def test_rejects_out_of_range_threshold(self):
        with pytest.raises(ConfigError):
            GrapheneConfig(thresholds=(0.0,))
        with pytest.raises(ConfigError):
            GrapheneConfig(thresholds=(1.5,))


class TestEnvConfig:
    def test_defaults(self):
        cfg = EnvConfig()
        assert cfg.max_ready == 15
        assert not cfg.process_until_completion
        assert cfg.include_graph_features

    def test_rejects_zero_window(self):
        with pytest.raises(ConfigError):
            EnvConfig(max_ready=0)


class TestPaperScale:
    def test_paper_scale_returns_paper_values(self):
        workload, mcts = paper_scale(True)
        assert workload.num_tasks == 100
        assert mcts.initial_budget == 1000

    def test_reduced_scale_shrinks_both(self):
        workload, mcts = paper_scale(False)
        assert workload.num_tasks < 100
        assert mcts.initial_budget < 1000
