"""Unit tests for the microbenchmark runner."""

import pytest

from repro.bench.runner import (
    BenchmarkSpec,
    BenchResult,
    BenchRun,
    machine_metadata,
    run_benchmarks,
)
from repro.errors import ConfigError


def counting_spec(name="demo.count", group="demo", **kwargs):
    """A spec whose thunk just counts invocations into ``calls``."""
    calls = []

    def setup(seed):
        def thunk():
            calls.append(seed)

        return thunk

    spec = BenchmarkSpec(name, group, setup, **kwargs)
    return spec, calls


class TestRunBenchmarks:
    def test_warmup_plus_repeats_invocations(self):
        spec, calls = counting_spec(warmup=2, repeats=7, quick_repeats=3)
        run = run_benchmarks([spec], seed=5)
        assert len(calls) == 2 + 7
        assert calls[0] == 5  # setup saw the run seed
        assert run.result("demo.count").repeats == 7

    def test_quick_uses_quick_repeats(self):
        spec, calls = counting_spec(warmup=1, repeats=9, quick_repeats=2)
        run = run_benchmarks([spec], quick=True)
        assert len(calls) == 1 + 2
        assert run.quick and run.meta["quick"] is True
        assert run.result("demo.count").repeats == 2

    def test_thunk_ops_attribute_overrides_inner_ops(self):
        def setup(seed):
            def thunk():
                pass

            thunk.ops = 42
            return thunk

        spec = BenchmarkSpec("demo.ops", "demo", setup, inner_ops=7)
        run = run_benchmarks([spec])
        assert run.result("demo.ops").inner_ops == 42

    def test_name_filter_selects_substring(self):
        hit, hit_calls = counting_spec("env.step", "env", repeats=1, warmup=0)
        miss, miss_calls = counting_spec("mcts.search", "mcts")
        run = run_benchmarks([hit, miss], name_filter="env")
        assert [r.name for r in run.results] == ["env.step"]
        assert hit_calls and not miss_calls

    def test_empty_filter_raises(self):
        spec, _ = counting_spec()
        with pytest.raises(ConfigError):
            run_benchmarks([spec], name_filter="nonexistent")

    def test_progress_callback_called_per_benchmark(self):
        lines = []
        a, _ = counting_spec("demo.a", repeats=1, warmup=0)
        b, _ = counting_spec("demo.b", repeats=1, warmup=0)
        run_benchmarks([a, b], progress=lines.append)
        assert len(lines) == 2
        assert "demo.a" in lines[0] and "demo.b" in lines[1]


class TestBenchResult:
    def test_from_samples_statistics(self):
        spec, _ = counting_spec("demo.stats", warmup=1)
        # 10 ops per invocation, samples in seconds.
        result = BenchResult.from_samples(
            spec, [1e-3, 2e-3, 3e-3], warmup=1, inner_ops=10
        )
        assert result.mean_us == pytest.approx(200.0)
        assert result.median_us == pytest.approx(200.0)
        assert result.min_us == pytest.approx(100.0)
        assert result.max_us == pytest.approx(300.0)
        assert result.stdev_us == pytest.approx(100.0)
        assert result.repeats == 3 and result.inner_ops == 10

    def test_single_sample_has_zero_stdev(self):
        spec, _ = counting_spec("demo.one")
        result = BenchResult.from_samples(spec, [5e-6], warmup=0, inner_ops=1)
        assert result.stdev_us == 0.0

    def test_as_dict_round_trips_fields(self):
        spec, _ = counting_spec("demo.dict")
        result = BenchResult.from_samples(spec, [1e-6], warmup=0, inner_ops=1)
        payload = result.as_dict()
        assert payload["name"] == "demo.dict"
        assert payload["group"] == "demo"
        assert set(payload) == {
            "name",
            "group",
            "inner_ops",
            "repeats",
            "warmup",
            "mean_us",
            "median_us",
            "stdev_us",
            "min_us",
            "max_us",
        }


class TestBenchRun:
    def test_by_group_preserves_order(self):
        a, _ = counting_spec("env.a", "env", repeats=1, warmup=0)
        b, _ = counting_spec("mcts.b", "mcts", repeats=1, warmup=0)
        c, _ = counting_spec("env.c", "env", repeats=1, warmup=0)
        run = run_benchmarks([a, b, c])
        groups = run.by_group()
        assert list(groups) == ["env", "mcts"]
        assert [r.name for r in groups["env"]] == ["env.a", "env.c"]

    def test_result_lookup_unknown_raises(self):
        run = BenchRun(seed=0, quick=False, meta={})
        with pytest.raises(ConfigError):
            run.result("missing")


def test_machine_metadata_fields():
    meta = machine_metadata(seed=3, quick=True)
    assert meta["seed"] == 3 and meta["quick"] is True
    for key in ("timestamp", "platform", "python", "cpu_count"):
        assert key in meta
