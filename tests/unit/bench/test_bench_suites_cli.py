"""Registry sanity checks and CLI coverage for ``repro bench``."""

import json

import pytest

from repro.bench.suites import default_suite
from repro.cli import main

EXPECTED_GROUPS = {
    "env",
    "cluster",
    "mcts",
    "observation",
    "envarr",
    "rl",
    "faults",
    "online",
    "streaming",
    "federation",
    "telemetry",
    "lint",
}


class TestDefaultSuite:
    def test_names_unique_and_grouped(self):
        suite = default_suite()
        names = [spec.name for spec in suite]
        assert len(names) == len(set(names))
        assert {spec.group for spec in suite} == EXPECTED_GROUPS
        for spec in suite:
            assert spec.name.startswith(spec.group + ".")

    def test_covers_required_hot_paths(self):
        names = {spec.name for spec in default_suite()}
        assert {
            "env.step",
            "env.clone",
            "cluster.event_sweep",
            "online.run_fault_free",
            "online.run_faulty",
            "mcts.search_budget_unit",
            "mcts.rollout_random",
            "observation.build",
            "telemetry.span_disabled",
            "telemetry.span_enabled",
        } <= names

    @pytest.mark.parametrize("name", ["env.clone", "env.legal_actions_cached"])
    def test_cheap_setups_build_runnable_thunks(self, name):
        (spec,) = [s for s in default_suite() if s.name == name]
        thunk = spec.setup(seed=0)
        thunk()  # must run without error and without shared-state setup


class TestBenchCli:
    def test_list_mode(self, capsys):
        assert main(["bench", "--list"]) == 0
        out = capsys.readouterr().out
        assert "env.step" in out and "mcts.search_budget_unit" in out

    def test_update_baselines_requires_baseline_path(self, capsys):
        assert main(["bench", "--update-baselines"]) == 2
        assert "requires --baseline" in capsys.readouterr().err

    def test_unmatched_filter_fails(self, capsys):
        assert main(["bench", "--filter", "nope"]) == 2
        assert "no benchmark matches" in capsys.readouterr().err

    def test_quick_filtered_run_exports_artifact(self, tmp_path, capsys):
        code = main(
            [
                "bench",
                "--quick",
                "--filter",
                "env.legal_actions_cached",
                "--out-dir",
                str(tmp_path),
            ]
        )
        assert code == 0
        payload = json.loads((tmp_path / "BENCH_env.json").read_text())
        assert payload["group"] == "env"
        (result,) = payload["results"]
        assert result["name"] == "env.legal_actions_cached"
        assert result["mean_us"] > 0

    def test_json_output_mode(self, tmp_path, capsys):
        code = main(
            [
                "bench",
                "--quick",
                "--filter",
                "env.legal_actions_cached",
                "--out-dir",
                str(tmp_path),
                "--json",
            ]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["meta"]["quick"] is True
        assert payload["results"][0]["name"] == "env.legal_actions_cached"

    def test_baseline_gate_detects_regression(self, tmp_path, capsys):
        baseline = tmp_path / "baselines.json"
        baseline.write_text(
            json.dumps({"budgets_us": {"env.legal_actions_cached": 1e-9}})
        )
        code = main(
            [
                "bench",
                "--quick",
                "--filter",
                "env.legal_actions_cached",
                "--out-dir",
                str(tmp_path),
                "--baseline",
                str(baseline),
            ]
        )
        assert code == 1
        captured = capsys.readouterr()
        assert "REGRESSION" in captured.out
        assert "performance regression" in captured.err

    def test_baseline_gate_passes_generous_budget(self, tmp_path, capsys):
        baseline = tmp_path / "baselines.json"
        baseline.write_text(
            json.dumps({"budgets_us": {"env.legal_actions_cached": 1e9}})
        )
        code = main(
            [
                "bench",
                "--quick",
                "--filter",
                "env.legal_actions_cached",
                "--out-dir",
                str(tmp_path),
                "--baseline",
                str(baseline),
            ]
        )
        assert code == 0
        assert "ok" in capsys.readouterr().out
