"""Unit tests for benchmark JSON export and the baseline regression gate."""

import json

import pytest

from repro.bench.export import (
    compare_to_baselines,
    export_groups,
    load_baselines,
    write_baselines,
)
from repro.bench.runner import BenchResult, BenchRun
from repro.errors import ConfigError


def make_run(means):
    """A BenchRun with one result per ``{name: mean_us}`` entry."""
    results = [
        BenchResult(
            name=name,
            group=name.split(".")[0],
            inner_ops=1,
            repeats=3,
            warmup=1,
            mean_us=mean,
            median_us=mean,
            stdev_us=0.0,
            min_us=mean,
            max_us=mean,
        )
        for name, mean in means.items()
    ]
    return BenchRun(seed=0, quick=True, meta={"seed": 0}, results=results)


class TestExportGroups:
    def test_one_file_per_group(self, tmp_path):
        run = make_run({"env.step": 1.0, "env.clone": 2.0, "mcts.search": 3.0})
        paths = export_groups(run, tmp_path)
        assert sorted(p.name for p in paths) == [
            "BENCH_env.json",
            "BENCH_mcts.json",
        ]
        payload = json.loads((tmp_path / "BENCH_env.json").read_text())
        assert payload["group"] == "env"
        assert payload["meta"] == {"seed": 0}
        assert [r["name"] for r in payload["results"]] == [
            "env.step",
            "env.clone",
        ]

    def test_creates_output_directory(self, tmp_path):
        run = make_run({"env.step": 1.0})
        paths = export_groups(run, tmp_path / "nested" / "dir")
        assert paths[0].is_file()


class TestBaselines:
    def test_write_then_load_round_trip(self, tmp_path):
        run = make_run({"env.step": 10.0, "mcts.search": 100.0})
        path = write_baselines(run, tmp_path / "baselines.json", headroom=2.0)
        budgets = load_baselines(path)
        assert budgets == {"env.step": 20.0, "mcts.search": 200.0}
        payload = json.loads(path.read_text())
        assert payload["meta"]["headroom"] == 2.0

    def test_load_rejects_missing_file(self, tmp_path):
        with pytest.raises(ConfigError):
            load_baselines(tmp_path / "absent.json")

    def test_load_rejects_malformed_payload(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps({"budgets_us": {"x": "fast"}}))
        with pytest.raises(ConfigError):
            load_baselines(path)
        path.write_text(json.dumps({"wrong_key": {}}))
        with pytest.raises(ConfigError):
            load_baselines(path)


class TestCompare:
    def test_within_budget_passes(self):
        run = make_run({"env.step": 10.0})
        comparisons = compare_to_baselines(
            run, {"env.step": 10.0}, max_regression=0.25
        )
        assert len(comparisons) == 1 and comparisons[0].ok
        assert comparisons[0].ratio == pytest.approx(1.0)
        assert "ok" in comparisons[0].line()

    def test_regression_beyond_tolerance_fails(self):
        run = make_run({"env.step": 12.6})
        (comparison,) = compare_to_baselines(
            run, {"env.step": 10.0}, max_regression=0.25
        )
        assert not comparison.ok
        assert "REGRESSION" in comparison.line()

    def test_boundary_is_inclusive(self):
        run = make_run({"env.step": 12.5})
        (comparison,) = compare_to_baselines(
            run, {"env.step": 10.0}, max_regression=0.25
        )
        assert comparison.ok

    def test_unknown_benchmark_is_skipped(self):
        run = make_run({"env.step": 1.0, "env.new_path": 999.0})
        comparisons = compare_to_baselines(run, {"env.step": 2.0})
        assert [c.name for c in comparisons] == ["env.step"]

    def test_zero_budget_always_fails(self):
        run = make_run({"env.step": 1.0})
        (comparison,) = compare_to_baselines(run, {"env.step": 0.0})
        assert not comparison.ok and comparison.ratio == float("inf")


def test_committed_baselines_cover_default_suite():
    """The repo's committed budgets gate every registered benchmark."""
    from pathlib import Path

    from repro.bench.suites import default_suite

    repo_root = Path(__file__).resolve().parents[3]
    budgets = load_baselines(repo_root / "benchmarks" / "baselines.json")
    names = {spec.name for spec in default_suite()}
    assert names == set(budgets)
