"""Unit tests for fault-aware online simulation.

Covers crash/recovery accounting, transient retries, attempt budgets with
reported job failures, determinism, fault-free equivalence, rescheduler
integration, and post-hoc verification of executed schedules.
"""

import pytest

from repro.config import ClusterConfig, EnvConfig
from repro.dag import chain_dag, independent_tasks_dag
from repro.dag.generators import random_layered_dag
from repro.config import WorkloadConfig
from repro.errors import ConfigError
from repro.faults import (
    CRASH,
    JOB_FAILED,
    RECOVERY,
    RETRY,
    TASK_FAILURE,
    FaultPlan,
    MachineCrash,
    RetryPolicy,
    RuntimeNoise,
    StragglerModel,
    TransientFaults,
)
from repro.online import (
    ArrivingJob,
    OnlineSimulator,
    cp_ranker,
    fifo_ranker,
    verify_execution,
)
from repro.schedulers import compose_scheduler

CAPACITIES = (10, 10)


@pytest.fixture
def simulator():
    return OnlineSimulator(ClusterConfig(capacities=CAPACITIES, horizon=8))


def job(arrival, runtimes, demands=None):
    return ArrivingJob(arrival, independent_tasks_dag(runtimes, demands=demands))


def random_stream(n_jobs=4, seed=7):
    workload = WorkloadConfig(
        num_tasks=8, max_runtime=6, max_demand=4, runtime_mean=3.0, demand_mean=2.0
    )
    return [
        ArrivingJob(3 * i, random_layered_dag(workload, seed=seed + i))
        for i in range(n_jobs)
    ]


class TestCrashRecovery:
    def test_crash_and_recovery_counted(self, simulator):
        faults = FaultPlan(
            crashes=(MachineCrash(0, 2, (5, 5), recover_at=6),), seed=1
        )
        stream = [job(0, [8], demands=[(2, 2)])]
        result = simulator.run(stream, fifo_ranker, faults=faults)
        assert result.crashes == 1
        assert result.recoveries == 1
        kinds = [e.kind for e in result.fault_events]
        assert CRASH in kinds and RECOVERY in kinds

    def test_crash_displaces_running_work(self, simulator):
        # One task holds 8/10 slots; losing 5 slots must kill and re-run it.
        faults = FaultPlan(
            crashes=(MachineCrash(0, 2, (5, 5), recover_at=20),), seed=1
        )
        stream = [job(0, [6], demands=[(8, 8)])]
        result = simulator.run(stream, fifo_ranker, faults=faults)
        outcome = result.outcomes[0]
        assert not outcome.failed
        assert outcome.crash_kills == 1
        # Killed at t=2, cannot refit until recovery at t=20, runs 6 more.
        assert outcome.completion_time == 26
        retry_events = [e for e in result.fault_events if e.kind == RETRY]
        assert any("crash" in e.detail for e in retry_events)

    def test_crash_kills_do_not_exhaust_attempt_budget(self, simulator):
        faults = FaultPlan(
            crashes=(MachineCrash(0, 1, (9, 9), recover_at=4),),
            retry=RetryPolicy(max_attempts=1),
            seed=1,
        )
        stream = [job(0, [3], demands=[(4, 4)])]
        result = simulator.run(stream, fifo_ranker, faults=faults)
        assert not result.outcomes[0].failed
        assert result.outcomes[0].crash_kills == 1


class TestTransientRetries:
    def test_certain_failure_exhausts_budget_and_reports(self, simulator):
        # Seed 0 makes all three attempts of (job 0, task 0) fail at p=0.99.
        faults = FaultPlan(
            transient=TransientFaults(0.99),
            retry=RetryPolicy(max_attempts=3, backoff_base=1),
            seed=0,
        )
        stream = [job(0, [2], demands=[(2, 2)])]
        result = simulator.run(stream, fifo_ranker, faults=faults)
        outcome = result.outcomes[0]
        assert outcome.failed
        assert outcome.transient_failures == 3
        assert outcome.retries == 2  # third strike fails the job instead
        assert result.failed_jobs == 1
        assert result.completed_jobs == 0
        kinds = [e.kind for e in result.fault_events]
        assert kinds.count(TASK_FAILURE) == 3
        assert JOB_FAILED in kinds

    def test_retry_eventually_succeeds(self, simulator):
        faults = FaultPlan(
            transient=TransientFaults(0.4),
            retry=RetryPolicy(max_attempts=8, backoff_base=1),
            seed=5,
        )
        result = simulator.run(random_stream(), fifo_ranker, faults=faults)
        assert all(not o.failed for o in result.outcomes)
        assert result.total_retries > 0
        assert result.total_retries == sum(o.retries for o in result.outcomes)

    def test_backoff_delays_retry(self, simulator):
        # Seed 35: attempt 1 of (job 0, task 0) fails, attempt 2 succeeds.
        faults = FaultPlan(
            transient=TransientFaults(0.99),
            retry=RetryPolicy(max_attempts=2, backoff_base=4),
            seed=35,
        )
        stream = [job(0, [2], demands=[(2, 2)])]
        result = simulator.run(stream, fifo_ranker, faults=faults)
        retry = next(e for e in result.fault_events if e.kind == RETRY)
        assert "backoff 4" in retry.detail


class TestDeterminismAndEquivalence:
    def test_same_plan_same_result(self, simulator):
        faults = FaultPlan(
            crashes=(MachineCrash(0, 5, (4, 4), recover_at=15),),
            transient=TransientFaults(0.2),
            straggler=StragglerModel(0.2, slowdown=2.0),
            noise=RuntimeNoise(kind="lognormal", scale=0.2),
            seed=13,
        )
        first = simulator.run(random_stream(), cp_ranker, faults=faults)
        second = OnlineSimulator(
            ClusterConfig(capacities=CAPACITIES, horizon=8)
        ).run(random_stream(), cp_ranker, faults=faults)
        assert first == second
        assert first.fault_events == second.fault_events
        assert [o.retries for o in first.outcomes] == [
            o.retries for o in second.outcomes
        ]

    def test_null_plan_matches_faultless_run(self, simulator):
        stream = random_stream()
        plain = simulator.run(stream, fifo_ranker)
        nulled = OnlineSimulator(
            ClusterConfig(capacities=CAPACITIES, horizon=8)
        ).run(random_stream(), fifo_ranker, faults=FaultPlan())
        assert nulled.makespan == plain.makespan
        assert [o.jct for o in nulled.outcomes] == [o.jct for o in plain.outcomes]
        assert nulled.crashes == 0 and nulled.total_retries == 0
        assert nulled.fault_events == ()

    def test_noise_changes_runtimes_but_stays_clean(self, simulator):
        faults = FaultPlan(noise=RuntimeNoise(kind="uniform", scale=0.5), seed=9)
        stream = random_stream()
        result = simulator.run(stream, fifo_ranker, faults=faults)
        assert all(not o.failed for o in result.outcomes)
        reports = verify_execution(result, stream, CAPACITIES)
        assert all(r is None or not r.violations for r in reports)


class TestRescheduling:
    def test_rescheduler_runs_and_replans(self, simulator):
        faults = FaultPlan(
            crashes=(MachineCrash(0, 4, (4, 4), recover_at=12),),
            transient=TransientFaults(0.15),
            seed=21,
        )
        env_config = EnvConfig(
            cluster=ClusterConfig(capacities=CAPACITIES, horizon=8)
        )
        rescheduler = compose_scheduler(
            "heft", env_config, reschedule=True, fallback="fifo"
        )
        stream = random_stream()
        result = simulator.run(
            stream, cp_ranker, faults=faults, rescheduler=rescheduler
        )
        assert rescheduler.replans > 0
        assert all(not o.failed for o in result.outcomes)
        reports = verify_execution(result, stream, CAPACITIES)
        assert all(r is None or not r.violations for r in reports)

    def test_rescheduler_without_faults_plans_on_admission(self, simulator):
        env_config = EnvConfig(
            cluster=ClusterConfig(capacities=CAPACITIES, horizon=8)
        )
        rescheduler = compose_scheduler("cp", env_config, reschedule=True)
        stream = [ArrivingJob(0, chain_dag([2, 3, 1], demands=[(2, 1)] * 3))]
        result = simulator.run(stream, fifo_ranker, rescheduler=rescheduler)
        assert rescheduler.replans >= 1
        assert result.makespan == 6


class TestVerifyExecution:
    def test_failed_job_partial_schedule_verified(self, simulator):
        # Seed 0: the single attempt of (job 0, task 0) fails at p=0.99.
        faults = FaultPlan(
            transient=TransientFaults(0.99),
            retry=RetryPolicy(max_attempts=1),
            seed=0,
        )
        stream = [ArrivingJob(0, chain_dag([2, 2], demands=[(2, 2)] * 2))]
        result = simulator.run(stream, fifo_ranker, faults=faults)
        assert result.outcomes[0].failed
        reports = verify_execution(result, stream, CAPACITIES)
        assert len(reports) == 1
        report = reports[0]
        assert report is None or not report.violations

    def test_mismatched_inputs_raise(self, simulator):
        stream = random_stream(2)
        result = simulator.run(stream, fifo_ranker)
        with pytest.raises(ConfigError):
            verify_execution(result, stream[:1], CAPACITIES)
