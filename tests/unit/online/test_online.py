"""Unit tests for online multi-job cluster scheduling."""

import pytest

from repro.config import ClusterConfig
from repro.dag import chain_dag, independent_tasks_dag
from repro.dag.generators import random_layered_dag
from repro.config import WorkloadConfig
from repro.errors import ConfigError
from repro.online import (
    ArrivingJob,
    OnlineSimulator,
    cp_ranker,
    fifo_ranker,
    plan_priority_ranker,
    sjf_ranker,
    tetris_ranker,
)


@pytest.fixture
def simulator():
    return OnlineSimulator(ClusterConfig(capacities=(10, 10), horizon=8))


def job(arrival, runtimes, demands=None):
    return ArrivingJob(arrival, independent_tasks_dag(runtimes, demands=demands))


class TestSingleJob:
    def test_chain_is_serial(self, simulator):
        stream = [ArrivingJob(0, chain_dag([2, 3], demands=[(2, 2)] * 2))]
        result = simulator.run(stream, fifo_ranker)
        assert result.makespan == 5
        assert result.outcomes[0].jct == 5

    def test_arrival_offset_shifts_completion(self, simulator):
        stream = [ArrivingJob(7, chain_dag([2], demands=[(2, 2)]))]
        result = simulator.run(stream, fifo_ranker)
        assert result.outcomes[0].completion_time == 9
        assert result.outcomes[0].jct == 2

    def test_parallel_fill(self, simulator):
        stream = [job(0, [4, 4], demands=[(5, 5), (5, 5)])]
        result = simulator.run(stream, fifo_ranker)
        assert result.makespan == 4

    def test_capacity_serializes(self, simulator):
        stream = [job(0, [4, 4], demands=[(6, 6), (6, 6)])]
        result = simulator.run(stream, fifo_ranker)
        assert result.makespan == 8


class TestMultiJob:
    def test_two_jobs_share_cluster(self, simulator):
        stream = [
            job(0, [4], demands=[(5, 5)]),
            job(0, [4], demands=[(5, 5)]),
        ]
        result = simulator.run(stream, fifo_ranker)
        assert result.makespan == 4
        assert [o.jct for o in result.outcomes] == [4, 4]

    def test_late_arrival_waits_for_capacity(self, simulator):
        stream = [
            job(0, [10], demands=[(8, 8)]),
            job(2, [1], demands=[(5, 5)]),
        ]
        result = simulator.run(stream, fifo_ranker)
        # Job 1 cannot start until job 0's task releases at t=10.
        assert result.outcomes[1].completion_time == 11
        assert result.outcomes[1].jct == 9

    def test_small_late_job_fits_alongside(self, simulator):
        stream = [
            job(0, [10], demands=[(8, 8)]),
            job(2, [1], demands=[(2, 2)]),
        ]
        result = simulator.run(stream, fifo_ranker)
        assert result.outcomes[1].completion_time == 3

    def test_idle_gap_between_jobs(self, simulator):
        stream = [
            job(0, [2], demands=[(2, 2)]),
            job(10, [2], demands=[(2, 2)]),
        ]
        result = simulator.run(stream, fifo_ranker)
        assert result.makespan == 12
        assert result.mean_jct == 2.0

    def test_outcomes_sorted_by_job_index(self, simulator):
        stream = [
            job(0, [9], demands=[(2, 2)]),
            job(0, [1], demands=[(2, 2)]),
        ]
        result = simulator.run(stream, sjf_ranker)
        assert [o.job_index for o in result.outcomes] == [0, 1]


class TestRankers:
    def test_sjf_prioritizes_short_tasks(self, simulator):
        # One slot of capacity: order decided purely by ranker.
        stream = [job(0, [9, 1], demands=[(10, 10), (10, 10)])]
        result = simulator.run(stream, sjf_ranker)
        assert result.makespan == 10  # 1 then 9 -> still 10 total, but
        # the short task finished first; verify through utilization shape:
        # makespan identical, so check with two jobs instead.
        stream = [
            job(0, [9], demands=[(10, 10)]),
            job(0, [1], demands=[(10, 10)]),
        ]
        result = simulator.run(stream, sjf_ranker)
        assert result.outcomes[1].completion_time == 1
        assert result.outcomes[0].completion_time == 10

    def test_fifo_prioritizes_first_job(self, simulator):
        stream = [
            job(0, [9], demands=[(10, 10)]),
            job(0, [1], demands=[(10, 10)]),
        ]
        result = simulator.run(stream, fifo_ranker)
        assert result.outcomes[0].completion_time == 9
        assert result.outcomes[1].completion_time == 10

    def test_tetris_prefers_aligned_big_tasks(self, simulator):
        stream = [
            job(0, [2, 2], demands=[(2, 2), (9, 9)]),
        ]
        result = simulator.run(stream, tetris_ranker)
        # Big task scores higher -> starts at 0; small cannot co-run.
        assert result.makespan == 4

    def test_cp_ranker_uses_blevel(self, simulator):
        graph = chain_dag([1, 8], demands=[(10, 10), (10, 10)])
        other = independent_tasks_dag([8], demands=[(10, 10)])
        stream = [ArrivingJob(0, graph), ArrivingJob(0, other)]
        result = simulator.run(stream, cp_ranker)
        # Chain head has b-level 9 > 8: runs first, so the chain finishes
        # at 1 + 8 = 9 ... then other runs [9, 17) or interleaved: chain
        # tail (b-level 8) ties with other (8); job order breaks the tie.
        assert result.outcomes[0].completion_time == 9
        assert result.outcomes[1].completion_time == 17

    def test_plan_priority_ranker_follows_plan(self, simulator):
        stream = [job(0, [2, 2, 2], demands=[(10, 10)] * 3)]
        result = simulator.run(stream, plan_priority_ranker([[2, 0, 1]]))
        # Serial by capacity; order 2, 0, 1 -> completions at 2, 4, 6.
        # Outcome is per job (single job completes at 6).
        assert result.makespan == 6


class TestMetrics:
    def test_full_utilization_on_saturated_cluster(self, simulator):
        stream = [job(0, [5, 5], demands=[(10, 10), (10, 10)])]
        result = simulator.run(stream, fifo_ranker)
        assert result.mean_utilization == (1.0, 1.0)

    def test_partial_utilization(self, simulator):
        stream = [job(0, [10], demands=[(5, 2)])]
        result = simulator.run(stream, fifo_ranker)
        assert result.mean_utilization[0] == pytest.approx(0.5)
        assert result.mean_utilization[1] == pytest.approx(0.2)

    def test_mean_and_max_jct(self, simulator):
        stream = [
            job(0, [2], demands=[(10, 10)]),
            job(0, [2], demands=[(10, 10)]),
        ]
        result = simulator.run(stream, fifo_ranker)
        assert result.mean_jct == pytest.approx(3.0)  # 2 and 4
        assert result.max_jct == 4


class TestEventOrdering:
    def test_equal_time_arrival_admitted_before_refill(self, simulator):
        # Job 0 is a chain 5 -> 3 that fills the cluster; its first task
        # completes at t=5, exactly when job 1 arrives.  The documented
        # tie-break admits the arrival before the completion's follow-up
        # placements, so under SJF job 1's runtime-1 task takes the freed
        # capacity ahead of job 0's runtime-3 successor.  Were admission
        # to happen after the refill, job 1 would finish at 9, not 6.
        stream = [
            ArrivingJob(0, chain_dag([5, 3], demands=[(10, 10), (10, 10)])),
            job(5, [1], demands=[(10, 10)]),
        ]
        result = simulator.run(stream, sjf_ranker)
        assert result.outcomes[1].completion_time == 6
        assert result.outcomes[1].jct == 1
        assert result.outcomes[0].completion_time == 9
        assert result.makespan == 9


class TestValidation:
    def test_empty_stream_rejected(self, simulator):
        with pytest.raises(ConfigError):
            simulator.run([], fifo_ranker)

    def test_negative_arrival_rejected(self):
        with pytest.raises(ConfigError):
            ArrivingJob(-1, chain_dag([1]))

    def test_oversized_task_rejected(self, simulator):
        from repro.errors import CapacityError

        stream = [job(0, [1], demands=[(99, 1)])]
        with pytest.raises(CapacityError):
            simulator.run(stream, fifo_ranker)

    def test_dimension_mismatch_rejected(self):
        simulator = OnlineSimulator(ClusterConfig(capacities=(10,), horizon=8))
        stream = [job(0, [1], demands=[(2, 2)])]
        with pytest.raises(ConfigError):
            simulator.run(stream, fifo_ranker)


class TestRandomStreams:
    def test_random_stream_consistency(self, simulator):
        """All jobs complete; makespan >= the last arrival; mean JCT is
        bounded by total serial work."""
        workload = WorkloadConfig(
            num_tasks=8, max_runtime=4, max_demand=6,
            runtime_mean=2, runtime_std=1, demand_mean=3, demand_std=2,
        )
        stream = [
            ArrivingJob(i * 3, random_layered_dag(workload, seed=i))
            for i in range(5)
        ]
        for ranker in (fifo_ranker, sjf_ranker, cp_ranker, tetris_ranker):
            result = simulator.run(stream, ranker)
            assert len(result.outcomes) == 5
            assert result.makespan >= 12  # last arrival
            total_work = sum(
                t.runtime for j in stream for t in j.graph
            )
            assert result.max_jct <= total_work
