"""Golden-trace regression: fixed-seed runs asserted byte-for-byte.

The committed traces under ``tests/data/`` pin the entire observable
surface of one fault-free and one fault-injected fixed-seed run —
outcomes, executed schedules, the ordered fault-event log, the ordered
telemetry stream (wall-clock fields stripped), and the metric snapshot.
Any change to event ordering, however subtle, shows up as a byte diff.

Scenario definitions and serialization live in
``tests/data/make_golden.py`` (also the regeneration script), so this
test can never disagree with what regeneration writes.
"""

import importlib.util
from pathlib import Path

import pytest


def _load_make_golden():
    path = Path(__file__).resolve().parents[2] / "data" / "make_golden.py"
    spec = importlib.util.spec_from_file_location("make_golden", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


make_golden = _load_make_golden()


@pytest.mark.parametrize("scenario", sorted(make_golden.GOLDEN_FILES))
def test_golden_trace_byte_identical(scenario):
    path = make_golden.GOLDEN_FILES[scenario]
    assert path.exists(), (
        f"missing golden trace {path.name}; regenerate with "
        "PYTHONPATH=src python tests/data/make_golden.py"
    )
    expected = path.read_text(encoding="utf-8")
    actual = make_golden.serialize(make_golden.run_scenario(scenario))
    assert actual == expected, (
        f"golden trace {path.name} diverged — the realized event order or "
        "result surface changed; if intentional, regenerate and document"
    )


def test_faulty_golden_exercises_every_incident_kind():
    payload = make_golden.run_scenario("faulty")
    kinds = {row[1] for row in payload["result"]["fault_events"]}
    assert {"crash", "recovery", "task_failure", "retry"} <= kinds
    assert payload["result"]["crashes"] == 2
    assert payload["result"]["recoveries"] == 2


def test_goldens_are_verifier_clean():
    """Executed schedules in both scenarios pass the invariant verifier."""
    from repro.config import ClusterConfig
    from repro.online import OnlineSimulator, cp_ranker, verify_execution

    stream = make_golden.golden_stream()
    simulator = OnlineSimulator(
        ClusterConfig(capacities=make_golden.CAPACITIES, horizon=8)
    )
    for faults, rescheduler in (
        (None, None),
        (make_golden.golden_faults(), make_golden.golden_rescheduler()),
    ):
        result = simulator.run(
            stream, cp_ranker, faults=faults, rescheduler=rescheduler
        )
        for report in verify_execution(result, stream, make_golden.CAPACITIES):
            assert report is None or not report.violations
