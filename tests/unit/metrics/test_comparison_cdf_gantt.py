"""Unit tests for comparison metrics, CDF helpers and Gantt rendering."""

import pytest

from repro.dag import chain_dag
from repro.metrics import (
    Schedule,
    compare_makespans,
    empirical_cdf,
    percentile,
    reduction,
    reduction_series,
    win_rate,
)
from repro.metrics.gantt import render_gantt, render_utilization


class TestCompareMakespans:
    def test_sorted_by_mean(self):
        rows = compare_makespans({"b": [10, 20], "a": [5, 7]})
        assert [r.scheduler for r in rows] == ["a", "b"]
        assert rows[0].mean == 6.0
        assert rows[1].worst == 20

    def test_median_even_and_odd(self):
        rows = compare_makespans({"x": [1, 2, 3, 10]})
        assert rows[0].median == 2.5
        rows = compare_makespans({"x": [1, 2, 9]})
        assert rows[0].median == 2

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            compare_makespans({})

    def test_mismatched_lengths_rejected(self):
        with pytest.raises(ValueError):
            compare_makespans({"a": [1], "b": [1, 2]})


class TestWinRate:
    def test_strict(self):
        assert win_rate([1, 5, 5], [2, 5, 4]) == pytest.approx(1 / 3)

    def test_non_strict_counts_ties(self):
        assert win_rate([1, 5, 5], [2, 5, 4], strict=False) == pytest.approx(2 / 3)

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            win_rate([], [])

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            win_rate([1], [1, 2])


class TestReduction:
    def test_positive_when_faster(self):
        assert reduction(80, 100) == pytest.approx(0.2)

    def test_negative_when_slower(self):
        assert reduction(110, 100) == pytest.approx(-0.1)

    def test_zero_baseline_rejected(self):
        with pytest.raises(ValueError):
            reduction(1, 0)

    def test_series(self):
        assert reduction_series([80, 100], [100, 100]) == pytest.approx([0.2, 0.0])

    def test_series_length_mismatch(self):
        with pytest.raises(ValueError):
            reduction_series([1], [1, 2])


class TestCdf:
    def test_monotone_and_ends_at_one(self):
        points = empirical_cdf([3, 1, 2, 2])
        values = [v for v, _ in points]
        fractions = [f for _, f in points]
        assert values == sorted(values)
        assert fractions[-1] == pytest.approx(1.0)
        assert all(b > a for a, b in zip(fractions, fractions[1:]))

    def test_duplicates_collapsed(self):
        points = empirical_cdf([5, 5, 5])
        assert points == [(5.0, 1.0)]

    def test_empty_rejected(self):
        with pytest.raises(ValueError):
            empirical_cdf([])

    def test_percentile_median(self):
        assert percentile([1, 2, 3, 4, 5], 50) == 3

    def test_percentile_bounds(self):
        assert percentile([1, 9], 0) == 1
        assert percentile([1, 9], 100) == 9

    def test_percentile_out_of_range(self):
        with pytest.raises(ValueError):
            percentile([1], 101)

    def test_percentile_empty(self):
        with pytest.raises(ValueError):
            percentile([], 50)


class TestGantt:
    @pytest.fixture
    def schedule_and_graph(self):
        graph = chain_dag([2, 3], demands=[(2, 1), (2, 1)])
        schedule = Schedule.from_starts({0: 0, 1: 2}, graph, "x")
        return schedule, graph

    def test_gantt_has_row_per_task_plus_footer(self, schedule_and_graph):
        schedule, graph = schedule_and_graph
        lines = render_gantt(schedule, graph).splitlines()
        assert len(lines) == 3
        assert "makespan" in lines[-1]
        assert "0..2" in lines[0]
        assert "2..5" in lines[1]

    def test_gantt_scales_long_makespans(self, schedule_and_graph):
        schedule, graph = schedule_and_graph
        out = render_gantt(schedule, graph, width=4)
        bar_section = out.splitlines()[0].split("|")[1]
        assert len(bar_section) <= 5

    def test_utilization_strip_per_resource(self, schedule_and_graph):
        schedule, graph = schedule_and_graph
        out = render_utilization(schedule, graph, (10, 10))
        lines = out.splitlines()
        assert len(lines) == 2
        assert lines[0].startswith("resource 0")
        # demand 2 of 10 -> decile 2 throughout.
        assert "2" in lines[0]
