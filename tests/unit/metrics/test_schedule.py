"""Unit tests for schedule records and feasibility validation."""

import pytest

from repro.dag import Task, TaskGraph, chain_dag
from repro.errors import ScheduleError
from repro.metrics import Schedule, ScheduledTask, validate_schedule


class TestScheduledTask:
    def test_duration(self):
        assert ScheduledTask(0, 2, 7).duration == 5

    def test_negative_start_rejected(self):
        with pytest.raises(ScheduleError):
            ScheduledTask(0, -1, 3)

    def test_empty_interval_rejected(self):
        with pytest.raises(ScheduleError):
            ScheduledTask(0, 3, 3)


class TestSchedule:
    def test_makespan_is_last_finish(self):
        schedule = Schedule(
            (ScheduledTask(0, 0, 3), ScheduledTask(1, 1, 7)), "x"
        )
        assert schedule.makespan == 7
        assert schedule.num_tasks == 2

    def test_empty_schedule_makespan_zero(self):
        assert Schedule((), "x").makespan == 0

    def test_from_starts_uses_graph_runtimes(self, chain3):
        schedule = Schedule.from_starts({0: 0, 1: 2, 2: 5}, chain3, "x")
        assert schedule.as_dict() == {0: (0, 2), 1: (2, 5), 2: (5, 6)}

    def test_start_of(self, chain3):
        schedule = Schedule.from_starts({0: 0, 1: 2, 2: 5}, chain3)
        assert schedule.start_of(1) == 2
        with pytest.raises(ScheduleError):
            schedule.start_of(99)

    def test_tasks_running_at(self, chain3):
        schedule = Schedule.from_starts({0: 0, 1: 2, 2: 5}, chain3)
        assert schedule.tasks_running_at(0, chain3) == [0]
        assert schedule.tasks_running_at(2, chain3) == [1]
        assert schedule.tasks_running_at(6, chain3) == []


class TestValidation:
    @pytest.fixture
    def graph(self):
        # 0 (r=2, d=(2,1)) -> 1 (r=3); 2 independent.
        tasks = [Task(0, 2, (2, 1)), Task(1, 3, (2, 1)), Task(2, 1, (9, 9))]
        return TaskGraph(tasks, [(0, 1)])

    def test_valid_schedule_passes(self, graph):
        schedule = Schedule.from_starts({0: 0, 1: 2, 2: 5}, graph)
        validate_schedule(schedule, graph, (10, 10))

    def test_missing_task_rejected(self, graph):
        schedule = Schedule((ScheduledTask(0, 0, 2),), "x")
        with pytest.raises(ScheduleError, match="completeness"):
            validate_schedule(schedule, graph, (10, 10))

    def test_unknown_task_rejected(self, graph):
        schedule = Schedule.from_starts({0: 0, 1: 2, 2: 5}, graph)
        extra = Schedule(
            schedule.placements + (ScheduledTask(9, 0, 1),), "x"
        )
        with pytest.raises(ScheduleError, match="completeness"):
            validate_schedule(extra, graph, (10, 10))

    def test_duplicate_task_rejected(self, graph):
        placements = (
            ScheduledTask(0, 0, 2),
            ScheduledTask(0, 2, 4),
            ScheduledTask(1, 4, 7),
            ScheduledTask(2, 0, 1),
        )
        with pytest.raises(ScheduleError):
            validate_schedule(Schedule(placements, "x"), graph, (10, 10))

    def test_wrong_duration_rejected(self, graph):
        placements = (
            ScheduledTask(0, 0, 5),  # runtime is 2, not 5
            ScheduledTask(1, 5, 8),
            ScheduledTask(2, 0, 1),
        )
        with pytest.raises(ScheduleError, match="duration"):
            validate_schedule(Schedule(placements, "x"), graph, (10, 10))

    def test_dependency_violation_rejected(self, graph):
        schedule = Schedule.from_starts({0: 0, 1: 1, 2: 5}, graph)
        with pytest.raises(ScheduleError, match="dependency"):
            validate_schedule(schedule, graph, (10, 10))

    def test_dependency_back_to_back_allowed(self, graph):
        schedule = Schedule.from_starts({0: 0, 1: 2, 2: 5}, graph)
        validate_schedule(schedule, graph, (10, 10))

    def test_capacity_violation_rejected(self, graph):
        # Task 2 demands (9,9); overlapping with task 0 busts CPU 10.
        schedule = Schedule.from_starts({0: 0, 1: 2, 2: 1}, graph)
        with pytest.raises(ScheduleError, match="capacity"):
            validate_schedule(schedule, graph, (10, 10))

    def test_release_before_grab_at_same_slot(self, graph):
        # Task 2 starts exactly when task 0 finishes (task 1 comes later):
        # no violation even though the slot boundary is shared.
        schedule = Schedule.from_starts({0: 0, 1: 3, 2: 2}, graph)
        validate_schedule(schedule, graph, (10, 10))

    def test_capacity_dimension_mismatch_rejected(self, graph):
        schedule = Schedule.from_starts({0: 0, 1: 2, 2: 5}, graph)
        with pytest.raises(ScheduleError, match="dims"):
            validate_schedule(schedule, graph, (10,))
