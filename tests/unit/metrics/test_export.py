"""Unit tests for schedule JSON export."""

import pytest

from repro.dag import chain_dag
from repro.errors import ScheduleError
from repro.metrics import (
    Schedule,
    load_schedule,
    save_schedule,
    schedule_from_dict,
    schedule_to_dict,
)


@pytest.fixture
def schedule(chain3):
    return Schedule.from_starts(
        {0: 0, 1: 2, 2: 5}, chain3, scheduler="test", wall_time=1.5
    )


class TestRoundTrip:
    def test_dict_roundtrip(self, schedule):
        restored = schedule_from_dict(schedule_to_dict(schedule))
        assert restored == schedule

    def test_file_roundtrip(self, schedule, tmp_path):
        path = tmp_path / "schedule.json"
        save_schedule(schedule, path)
        restored = load_schedule(path)
        assert restored.as_dict() == schedule.as_dict()
        assert restored.scheduler == "test"
        assert restored.wall_time == 1.5

    def test_makespan_recorded(self, schedule):
        payload = schedule_to_dict(schedule)
        assert payload["makespan"] == schedule.makespan


class TestValidation:
    def test_non_dict_rejected(self):
        with pytest.raises(ScheduleError):
            schedule_from_dict([1, 2])

    def test_bad_version_rejected(self, schedule):
        payload = schedule_to_dict(schedule)
        payload["version"] = 42
        with pytest.raises(ScheduleError):
            schedule_from_dict(payload)

    def test_missing_fields_rejected(self):
        with pytest.raises(ScheduleError):
            schedule_from_dict(
                {"version": 1, "placements": [{"task_id": 0}]}
            )

    def test_inconsistent_makespan_rejected(self, schedule):
        payload = schedule_to_dict(schedule)
        payload["makespan"] = 999
        with pytest.raises(ScheduleError, match="makespan"):
            schedule_from_dict(payload)

    def test_invalid_json_file_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{{{")
        with pytest.raises(ScheduleError):
            load_schedule(path)


class TestEndToEnd:
    def test_scheduler_output_roundtrips(self, tmp_path, small_random_graph):
        from repro.config import ClusterConfig, EnvConfig
        from repro.schedulers import make_scheduler

        env_config = EnvConfig(
            cluster=ClusterConfig(capacities=(10, 10), horizon=8)
        )
        schedule = make_scheduler("tetris", env_config).schedule(
            small_random_graph
        )
        path = tmp_path / "out.json"
        save_schedule(schedule, path)
        restored = load_schedule(path)
        from repro.metrics import validate_schedule

        validate_schedule(restored, small_random_graph, (10, 10))
        assert restored.makespan == schedule.makespan
