"""Unit tests for statistical helpers and Chrome-trace export."""

import numpy as np
import pytest

from repro.dag import chain_dag, independent_tasks_dag
from repro.metrics import (
    Schedule,
    bootstrap_ci,
    paired_permutation_test,
    to_chrome_trace,
)


class TestBootstrapCi:
    def test_contains_the_mean_for_stable_samples(self, rng):
        values = list(rng.normal(100, 5, size=80))
        low, high = bootstrap_ci(values, seed=0)
        assert low <= np.mean(values) <= high

    def test_narrower_with_more_data(self, rng):
        small = list(rng.normal(100, 5, size=10))
        large = list(rng.normal(100, 5, size=400))
        low_s, high_s = bootstrap_ci(small, seed=0)
        low_l, high_l = bootstrap_ci(large, seed=0)
        assert (high_l - low_l) < (high_s - low_s)

    def test_constant_sample_degenerate(self):
        low, high = bootstrap_ci([7.0] * 20, seed=0)
        assert low == high == 7.0

    def test_reproducible(self, rng):
        values = list(rng.normal(0, 1, size=30))
        assert bootstrap_ci(values, seed=5) == bootstrap_ci(values, seed=5)

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            bootstrap_ci([])
        with pytest.raises(ValueError):
            bootstrap_ci([1.0], confidence=1.0)
        with pytest.raises(ValueError):
            bootstrap_ci([1.0], resamples=0)


class TestPairedPermutationTest:
    def test_identical_series_give_one(self):
        assert paired_permutation_test([1, 2, 3], [1, 2, 3]) == 1.0

    def test_consistent_difference_is_significant(self):
        ours = [100.0] * 12
        baseline = [110.0] * 12
        p = paired_permutation_test(ours, baseline, seed=0)
        assert p < 0.01

    def test_noise_is_not_significant(self, rng):
        base = rng.normal(100, 10, size=10)
        noise = base + rng.normal(0, 0.1, size=10) * rng.choice([-1, 1], 10)
        p = paired_permutation_test(list(base), list(noise), seed=1)
        assert p > 0.05

    def test_p_value_in_unit_interval(self, rng):
        a = list(rng.normal(0, 1, size=8))
        b = list(rng.normal(0, 1, size=8))
        assert 0.0 < paired_permutation_test(a, b, seed=2) <= 1.0

    def test_invalid_inputs(self):
        with pytest.raises(ValueError):
            paired_permutation_test([], [])
        with pytest.raises(ValueError):
            paired_permutation_test([1], [1, 2])


class TestChromeTrace:
    @pytest.fixture
    def schedule_and_graph(self):
        graph = independent_tasks_dag([3, 3, 2], demands=[(4, 4)] * 3)
        schedule = Schedule.from_starts({0: 0, 1: 0, 2: 3}, graph, "test")
        return schedule, graph

    def test_one_event_per_task(self, schedule_and_graph):
        schedule, graph = schedule_and_graph
        trace = to_chrome_trace(schedule, graph)
        assert len(trace["traceEvents"]) == 3
        assert all(e["ph"] == "X" for e in trace["traceEvents"])

    def test_timestamps_scaled(self, schedule_and_graph):
        schedule, graph = schedule_and_graph
        trace = to_chrome_trace(schedule, graph, slot_microseconds=10)
        by_task = {e["args"]["task_id"]: e for e in trace["traceEvents"]}
        assert by_task[2]["ts"] == 30
        assert by_task[0]["dur"] == 30

    def test_concurrent_tasks_get_distinct_lanes(self, schedule_and_graph):
        schedule, graph = schedule_and_graph
        trace = to_chrome_trace(schedule, graph)
        lanes = {
            e["args"]["task_id"]: e["tid"] for e in trace["traceEvents"]
        }
        assert lanes[0] != lanes[1]  # overlap at t=0
        # Task 2 starts when one lane is free again.
        assert lanes[2] in (lanes[0], lanes[1])

    def test_names_and_args_from_graph(self, schedule_and_graph):
        schedule, graph = schedule_and_graph
        trace = to_chrome_trace(schedule, graph)
        event = trace["traceEvents"][0]
        assert "demands" in event["args"]
        assert event["name"].startswith("task-")

    def test_works_without_graph(self):
        graph = chain_dag([2, 2])
        schedule = Schedule.from_starts({0: 0, 1: 2}, graph, "x")
        trace = to_chrome_trace(schedule)
        assert len(trace["traceEvents"]) == 2
        assert trace["otherData"]["makespan_slots"] == 4

    def test_json_serializable(self, schedule_and_graph):
        import json

        schedule, graph = schedule_and_graph
        json.dumps(to_chrome_trace(schedule, graph))
