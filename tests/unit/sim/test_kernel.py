"""Unit tests for the repro.sim discrete-event kernel."""

import pytest

from repro.cluster.sim_adapter import COMPLETION_KIND, ClusterProcess
from repro.cluster.state import ClusterState
from repro.errors import ConfigError, EnvironmentStateError
from repro.faults.injector import TimelineCursor, TimelineEntry
from repro.sim import Event, EventClass, EventQueue, SimClock, SimKernel


class TestSimClock:
    def test_starts_at_given_time(self):
        assert SimClock(7).now == 7

    def test_negative_start_rejected(self):
        with pytest.raises(EnvironmentStateError):
            SimClock(-1)

    def test_advance_moves_forward(self):
        clock = SimClock()
        assert clock.advance_to(5) == 5
        assert clock.now == 5

    def test_advance_clamps_backwards_jumps(self):
        clock = SimClock(10)
        assert clock.advance_to(3) == 10
        assert clock.now == 10


class TestEventQueue:
    def test_orders_by_time_then_class_then_seq(self):
        q = EventQueue()
        q.push(5, EventClass.ARRIVAL, "late")
        q.push(5, EventClass.CRASH, "crash")
        q.push(3, EventClass.REPLAN, "early")
        q.push(5, EventClass.CRASH, "crash2")
        kinds = [q.pop().kind for _ in range(4)]
        assert kinds == ["early", "crash", "crash2", "late"]

    def test_full_class_table_order_at_one_instant(self):
        q = EventQueue()
        order = [
            EventClass.REPLAN,
            EventClass.STEAL,
            EventClass.ROUTE,
            EventClass.ARRIVAL,
            EventClass.RETRY_READY,
            EventClass.COMPLETION,
            EventClass.RECOVERY,
            EventClass.CRASH,
        ]
        for klass in order:
            q.push(9, klass)
        popped = [q.pop().klass for _ in range(len(order))]
        assert popped == sorted(order, key=int)

    def test_federation_classes_order_after_arrivals(self):
        # The federation contract: at one instant every arrival is
        # offered before placement runs, placements settle before
        # stealing reads the loads, and replans react last.
        q = EventQueue()
        q.push(7, EventClass.REPLAN, "replan")
        q.push(7, EventClass.STEAL, "steal")
        q.push(7, EventClass.ARRIVAL, "arrival")
        q.push(7, EventClass.ROUTE, "route")
        kinds = [q.pop().kind for _ in range(4)]
        assert kinds == ["arrival", "route", "steal", "replan"]

    def test_equal_key_events_pop_in_insertion_order(self):
        q = EventQueue()
        events = [q.push(4, EventClass.COMPLETION, payload=i) for i in range(50)]
        assert [q.pop().payload for _ in events] == list(range(50))

    def test_negative_time_rejected(self):
        with pytest.raises(EnvironmentStateError):
            EventQueue().push(-1, EventClass.ARRIVAL)

    def test_pop_empty_raises(self):
        with pytest.raises(EnvironmentStateError):
            EventQueue().pop()

    def test_cancel_tombstones_event(self):
        q = EventQueue()
        doomed = q.push(1, EventClass.ARRIVAL, "doomed")
        q.push(2, EventClass.ARRIVAL, "kept")
        q.cancel(doomed)
        assert len(q) == 1
        assert q.peek_time() == 2
        assert q.pop().kind == "kept"
        assert not q

    def test_double_cancel_is_noop(self):
        q = EventQueue()
        event = q.push(1, EventClass.ARRIVAL)
        q.cancel(event)
        q.cancel(event)
        assert len(q) == 0

    def test_pop_due_respects_now(self):
        q = EventQueue()
        q.push(3, EventClass.ARRIVAL, "due")
        q.push(8, EventClass.ARRIVAL, "future")
        assert q.pop_due(5).kind == "due"
        assert q.pop_due(5) is None
        assert len(q) == 1

    def test_default_kind_is_class_name(self):
        q = EventQueue()
        assert q.push(0, EventClass.RETRY_READY).kind == "retry_ready"


class TestSimKernel:
    def test_duplicate_handler_rejected(self):
        kernel = SimKernel()
        kernel.register("x", lambda e: None)
        with pytest.raises(ConfigError):
            kernel.register("x", lambda e: None)

    def test_unhandled_event_raises(self):
        kernel = SimKernel()
        kernel.schedule(1, EventClass.ARRIVAL, "mystery")
        with pytest.raises(EnvironmentStateError):
            kernel.tick()

    def test_tick_advances_and_drains_in_order(self):
        kernel = SimKernel()
        seen = []
        kernel.register("a", lambda e: seen.append((e.kind, kernel.now)))
        kernel.register("crash", lambda e: seen.append((e.kind, kernel.now)))
        kernel.schedule(10, EventClass.ARRIVAL, "a")
        kernel.schedule(10, EventClass.CRASH)
        assert kernel.tick() == 10
        assert seen == [("crash", 10), ("a", 10)]

    def test_backlog_event_processes_at_now(self):
        kernel = SimKernel(start=5)
        times = []
        kernel.register("a", lambda e: times.append((e.time, kernel.now)))
        kernel.schedule(2, EventClass.ARRIVAL, "a")
        assert kernel.next_event_time() == 5
        kernel.tick()
        assert times == [(2, 5)]

    def test_tick_returns_none_when_exhausted(self):
        assert SimKernel().tick() is None

    def test_handler_can_schedule_same_instant_followup(self):
        kernel = SimKernel()
        seen = []
        kernel.register(
            "first",
            lambda e: (
                seen.append("first"),
                kernel.schedule(kernel.now, EventClass.REPLAN, "second"),
            ),
        )
        kernel.register("second", lambda e: seen.append("second"))
        kernel.schedule(4, EventClass.CRASH, "first")
        kernel.tick()
        assert seen == ["first", "second"]

    def test_processes_inject_events_on_advance(self):
        class Pulse:
            def __init__(self):
                self.fired = False

            def next_event_time(self):
                return None if self.fired else 6

            def advance_to(self, now, queue):
                if now >= 6 and not self.fired:
                    self.fired = True
                    queue.push(now, EventClass.COMPLETION, "pulse")

        kernel = SimKernel()
        seen = []
        kernel.register("pulse", lambda e: seen.append(kernel.now))
        kernel.add_process(Pulse())
        assert kernel.next_event_time() == 6
        assert kernel.tick() == 6
        assert seen == [6]
        assert kernel.tick() is None


class TestClusterProcess:
    def test_completions_become_kernel_events(self):
        state = ClusterState((4, 4))
        kernel = SimKernel()
        done = []
        kernel.register(COMPLETION_KIND, lambda e: done.append(e.payload.task_id))
        kernel.add_process(ClusterProcess(state))
        state.start(1, (2, 1), runtime=3)
        state.start(2, (1, 1), runtime=3)
        assert kernel.next_event_time() == 3
        kernel.tick()
        assert done == [1, 2]  # completion order: (finish, task_id)
        assert state.available == (4, 4)
        assert state.now == 3

    def test_capacity_released_before_same_instant_events(self):
        state = ClusterState((4, 4))
        kernel = SimKernel()
        free_at_crash = []
        kernel.register(COMPLETION_KIND, lambda e: None)
        kernel.register("crash", lambda e: free_at_crash.append(state.available))
        kernel.add_process(ClusterProcess(state))
        state.start(1, (4, 4), runtime=2)
        kernel.schedule(2, EventClass.CRASH)
        kernel.tick()
        # The crash sees post-release occupancy: the task's slots are
        # free even though crash (class 0) pops before completion (2).
        assert free_at_crash == [(4, 4)]

    def test_idle_cluster_reports_no_event(self):
        kernel = SimKernel()
        kernel.add_process(ClusterProcess(ClusterState((2,))))
        assert kernel.next_event_time() is None


class TestTimelineCursor:
    def entries(self):
        return [
            TimelineEntry(5, 0, "recovery", 0, (2, 2)),
            TimelineEntry(5, 1, "crash", 1, (3, 3)),
            TimelineEntry(9, 1, "crash", 0, (1, 1)),
        ]

    def test_drains_in_injector_order(self):
        cursor = TimelineCursor(self.entries())
        fired = cursor.drain(5)
        assert [(e.kind, e.machine) for e in fired] == [
            ("recovery", 0),
            ("crash", 1),
        ]
        assert not cursor.exhausted

    def test_second_drain_at_same_instant_is_empty(self):
        cursor = TimelineCursor(self.entries())
        assert cursor.drain(5)
        assert cursor.drain(5) == []
        assert cursor.drain(9) and cursor.exhausted

    def test_pre_history_entries_collapse_onto_now(self):
        cursor = TimelineCursor(self.entries())
        assert len(cursor.drain(100)) == 3


class TestEventRepr:
    def test_describe_mentions_kind_time_class(self):
        from repro.sim.events import describe

        event = Event(time=3, klass=EventClass.CRASH, seq=1, kind="crash")
        text = describe(event)
        assert "crash" in text and "3" in text and "CRASH" in text
        assert describe(None) == "<no event>"
