"""EventQueue behaviour under interleaved ARRIVAL events.

The streaming layer leans on two kernel guarantees the closed-batch
engine never stressed: the same-instant class ordering must slot
ARRIVAL events between RETRY_READY and REPLAN (admission reads a fully
settled cluster instant, replanning sees the arrival), and a cancelled
pending arrival (the horizon cut-off's tombstone) must be skipped by
pop/peek without disturbing anything else in the heap.
"""

import pytest

from repro.errors import EnvironmentStateError
from repro.sim import EventClass, EventQueue


class TestSameInstantOrdering:
    def test_arrival_slots_between_retry_and_replan(self):
        q = EventQueue()
        # pushed in deliberately scrambled order, all at t=7
        q.push(7, EventClass.REPLAN, "replan")
        q.push(7, EventClass.ARRIVAL, "arrival")
        q.push(7, EventClass.COMPLETION, "completion")
        q.push(7, EventClass.RETRY_READY, "retry_ready")
        q.push(7, EventClass.CRASH, "crash")
        q.push(7, EventClass.RECOVERY, "recovery")
        kinds = [q.pop().kind for _ in range(len(q))]
        assert kinds == [
            "crash",
            "recovery",
            "completion",
            "retry_ready",
            "arrival",
            "replan",
        ]

    def test_same_instant_arrivals_pop_in_push_order(self):
        q = EventQueue()
        events = [q.push(3, EventClass.ARRIVAL, "arrival", payload=i) for i in range(5)]
        assert [q.pop().payload for _ in range(5)] == [0, 1, 2, 3, 4]
        assert [e.seq for e in events] == sorted(e.seq for e in events)

    def test_earlier_arrival_beats_earlier_pushed_completion(self):
        q = EventQueue()
        q.push(10, EventClass.COMPLETION, "completion")
        q.push(4, EventClass.ARRIVAL, "arrival")
        assert q.pop().kind == "arrival"
        assert q.pop().kind == "completion"

    def test_arrival_burst_interleaved_with_completions(self):
        # A burst slot shared by completions and arrivals must settle all
        # completion follow-ups before any admission decision fires.
        q = EventQueue()
        q.push(5, EventClass.ARRIVAL, "arrival", payload="a0")
        q.push(5, EventClass.COMPLETION, "completion", payload="c0")
        q.push(5, EventClass.ARRIVAL, "arrival", payload="a1")
        q.push(5, EventClass.COMPLETION, "completion", payload="c1")
        popped = [(e.kind, e.payload) for e in (q.pop() for _ in range(4))]
        assert popped == [
            ("completion", "c0"),
            ("completion", "c1"),
            ("arrival", "a0"),
            ("arrival", "a1"),
        ]


class TestArrivalTombstones:
    def test_cancelled_arrival_skipped_at_pop(self):
        q = EventQueue()
        pending = q.push(4, EventClass.ARRIVAL, "arrival", payload="shed")
        q.push(9, EventClass.COMPLETION, "completion")
        q.cancel(pending)
        assert len(q) == 1
        assert q.peek_time() == 9
        assert q.pop().kind == "completion"
        assert not q

    def test_cancel_head_of_same_instant_run(self):
        q = EventQueue()
        first = q.push(2, EventClass.ARRIVAL, "arrival", payload=0)
        q.push(2, EventClass.ARRIVAL, "arrival", payload=1)
        q.push(2, EventClass.ARRIVAL, "arrival", payload=2)
        q.cancel(first)
        assert [q.pop().payload for _ in range(len(q))] == [1, 2]

    def test_double_cancel_is_noop(self):
        q = EventQueue()
        pending = q.push(1, EventClass.ARRIVAL, "arrival")
        q.cancel(pending)
        q.cancel(pending)
        assert len(q) == 0 and not q
        with pytest.raises(EnvironmentStateError):
            q.pop()

    def test_cancelled_arrival_invisible_to_pop_due(self):
        q = EventQueue()
        pending = q.push(3, EventClass.ARRIVAL, "arrival")
        q.push(6, EventClass.ARRIVAL, "arrival", payload="live")
        q.cancel(pending)
        assert q.pop_due(3) is None
        assert q.peek_time() == 6
        due = q.pop_due(6)
        assert due is not None and due.payload == "live"

    def test_chain_reschedule_pattern(self):
        # The streaming workload keeps exactly one pending arrival: pop
        # it, push the next.  Tombstoning the pending one at cut-off must
        # leave the queue empty even mid-chain.
        q = EventQueue()
        pending = q.push(0, EventClass.ARRIVAL, "arrival", payload=0)
        for nxt in range(1, 4):
            event = q.pop()
            assert event.payload == nxt - 1
            pending = q.push(event.time + 5, EventClass.ARRIVAL, "arrival", payload=nxt)
        q.cancel(pending)
        assert len(q) == 0
        assert q.peek_time() is None
