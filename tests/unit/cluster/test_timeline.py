"""Unit tests for the resource-time space grid."""

import numpy as np
import pytest

from repro.cluster import ResourceTimeSpace
from repro.errors import CapacityError, PlacementError


@pytest.fixture
def space():
    return ResourceTimeSpace((10, 10), initial_horizon=16)


class TestConstruction:
    def test_initial_geometry(self, space):
        assert space.num_resources == 2
        assert space.horizon == 16
        assert space.makespan() == 0

    def test_invalid_capacities(self):
        with pytest.raises(CapacityError):
            ResourceTimeSpace((0, 10))

    def test_invalid_horizon(self):
        with pytest.raises(ValueError):
            ResourceTimeSpace((10,), initial_horizon=0)


class TestPlacement:
    def test_place_and_query(self, space):
        space.place((4, 2), start=3, duration=5)
        assert space.usage(0, 3) == 4
        assert space.usage(1, 7) == 2
        assert space.usage(0, 8) == 0
        assert space.usage(0, 2) == 0

    def test_free_complements_usage(self, space):
        space.place((4, 2), 0, 2)
        assert space.free(0, 0) == 6
        assert space.free(1, 1) == 8

    def test_stacking(self, space):
        space.place((4, 4), 0, 4)
        space.place((6, 6), 0, 4)
        assert space.usage(0, 0) == 10
        assert not space.fits_at((1, 1), 0, 1)

    def test_overfull_placement_rejected(self, space):
        space.place((6, 6), 0, 4)
        with pytest.raises(PlacementError):
            space.place((5, 5), 2, 4)

    def test_place_beyond_horizon_grows(self, space):
        space.place((1, 1), 100, 10)
        assert space.horizon >= 110
        assert space.usage(0, 105) == 1

    def test_makespan_tracks_last_occupied(self, space):
        space.place((1, 1), 4, 3)
        assert space.makespan() == 7

    def test_remove_undoes_place(self, space):
        space.place((4, 2), 3, 5)
        space.remove((4, 2), 3, 5)
        assert space.makespan() == 0

    def test_remove_unplaced_rejected(self, space):
        with pytest.raises(PlacementError):
            space.remove((4, 2), 3, 5)

    def test_usage_negative_time_rejected(self, space):
        with pytest.raises(ValueError):
            space.usage(0, -1)


class TestEarliestStart:
    def test_empty_space_starts_at_zero(self, space):
        assert space.earliest_start((5, 5), 4) == 0

    def test_respects_not_before(self, space):
        assert space.earliest_start((5, 5), 4, not_before=7) == 7

    def test_skips_blocked_region(self, space):
        space.place((10, 10), 0, 6)
        assert space.earliest_start((1, 1), 3) == 6

    def test_finds_gap(self, space):
        space.place((10, 10), 0, 2)
        space.place((10, 10), 5, 2)
        assert space.earliest_start((3, 3), 3) == 2

    def test_partial_overlap_moves_past_block(self, space):
        space.place((8, 8), 2, 4)
        # Demands (5, 5) cannot overlap [2, 6); duration 3 from 0 overlaps.
        assert space.earliest_start((5, 5), 3) == 6

    def test_impossible_demand_rejected(self, space):
        with pytest.raises(CapacityError):
            space.earliest_start((11, 1), 1)

    def test_zero_duration_rejected(self, space):
        with pytest.raises(PlacementError):
            space.earliest_start((1, 1), 0)


class TestLatestStart:
    def test_empty_space_packs_at_deadline(self, space):
        assert space.latest_start((5, 5), 4, deadline=12) == 8

    def test_respects_blocks(self, space):
        space.place((10, 10), 8, 4)
        assert space.latest_start((3, 3), 4, deadline=12) == 4

    def test_none_when_no_room(self, space):
        space.place((10, 10), 0, 12)
        assert space.latest_start((3, 3), 4, deadline=12) is None

    def test_respects_not_before(self, space):
        assert space.latest_start((1, 1), 2, deadline=10, not_before=5) == 8
        space.place((10, 10), 6, 4)
        assert space.latest_start((3, 3), 2, deadline=10, not_before=5) is None


class TestShiftAndImage:
    def test_shift_drops_past(self, space):
        space.place((4, 4), 0, 3)
        space.place((2, 2), 5, 2)
        space.shift(3)
        assert space.usage(0, 0) == 0
        assert space.usage(0, 2) == 2

    def test_shift_zero_noop(self, space):
        space.place((4, 4), 0, 3)
        space.shift(0)
        assert space.usage(0, 0) == 4

    def test_shift_negative_rejected(self, space):
        with pytest.raises(ValueError):
            space.shift(-1)

    def test_image_normalized(self, space):
        space.place((5, 10), 0, 2)
        image = space.image(4)
        assert image.shape == (2, 4)
        assert image[0, 0] == pytest.approx(0.5)
        assert image[1, 1] == pytest.approx(1.0)
        assert image[0, 3] == pytest.approx(0.0)

    def test_image_invalid_horizon(self, space):
        with pytest.raises(ValueError):
            space.image(0)

    def test_copy_independent(self, space):
        space.place((4, 4), 0, 2)
        copy = space.copy()
        copy.place((4, 4), 0, 2)
        assert space.usage(0, 0) == 4
        assert copy.usage(0, 0) == 8
