"""Unit tests for the live cluster simulator state."""

import pytest

from repro.cluster import ClusterState
from repro.errors import CapacityError, EnvironmentStateError


@pytest.fixture
def cluster():
    return ClusterState((10, 10))


class TestConstruction:
    def test_initial_state(self, cluster):
        assert cluster.available == (10, 10)
        assert cluster.now == 0
        assert cluster.is_idle
        assert cluster.num_running == 0

    def test_invalid_capacities(self):
        with pytest.raises(CapacityError):
            ClusterState(())
        with pytest.raises(CapacityError):
            ClusterState((10, 0))


class TestStart:
    def test_occupies_resources(self, cluster):
        cluster.start(1, (4, 3), 5)
        assert cluster.available == (6, 7)
        assert cluster.num_running == 1
        assert not cluster.is_idle

    def test_multiple_tasks(self, cluster):
        cluster.start(1, (4, 3), 5)
        cluster.start(2, (6, 7), 2)
        assert cluster.available == (0, 0)

    def test_over_capacity_rejected(self, cluster):
        cluster.start(1, (8, 8), 5)
        with pytest.raises(CapacityError):
            cluster.start(2, (3, 3), 1)
        # State unchanged by the failed start.
        assert cluster.available == (2, 2)
        assert cluster.num_running == 1

    def test_impossible_demand_rejected(self, cluster):
        with pytest.raises(CapacityError):
            cluster.start(1, (11, 1), 1)

    def test_zero_runtime_rejected(self, cluster):
        with pytest.raises(EnvironmentStateError):
            cluster.start(1, (1, 1), 0)

    def test_can_fit(self, cluster):
        cluster.start(1, (9, 9), 3)
        assert cluster.can_fit((1, 1))
        assert not cluster.can_fit((2, 1))


class TestAdvance:
    def test_releases_on_completion(self, cluster):
        cluster.start(1, (4, 4), 3)
        completed = cluster.advance(3)
        assert completed == [1]
        assert cluster.available == (10, 10)
        assert cluster.now == 3

    def test_partial_advance_keeps_task(self, cluster):
        cluster.start(1, (4, 4), 3)
        assert cluster.advance(2) == []
        assert cluster.available == (6, 6)

    def test_completion_order_deterministic(self, cluster):
        cluster.start(2, (2, 2), 3)
        cluster.start(1, (2, 2), 3)
        completed = cluster.advance(3)
        assert completed == [1, 2]  # ties broken by task id

    def test_staggered_completions(self, cluster):
        cluster.start(1, (2, 2), 2)
        cluster.start(2, (2, 2), 5)
        assert cluster.advance(2) == [1]
        assert cluster.advance(3) == [2]
        assert cluster.now == 5

    def test_non_positive_dt_rejected(self, cluster):
        with pytest.raises(EnvironmentStateError):
            cluster.advance(0)


class TestAdvanceToNextEvent:
    def test_jumps_to_earliest_finish(self, cluster):
        cluster.start(1, (2, 2), 7)
        cluster.start(2, (2, 2), 3)
        now, completed = cluster.advance_to_next_event()
        assert now == 3
        assert completed == [2]

    def test_simultaneous_completions(self, cluster):
        cluster.start(1, (2, 2), 4)
        cluster.start(2, (2, 2), 4)
        now, completed = cluster.advance_to_next_event()
        assert now == 4
        assert completed == [1, 2]

    def test_idle_cluster_raises(self, cluster):
        with pytest.raises(EnvironmentStateError):
            cluster.advance_to_next_event()

    def test_earliest_finish_time(self, cluster):
        cluster.start(1, (2, 2), 9)
        cluster.start(2, (2, 2), 4)
        assert cluster.earliest_finish_time() == 4


class TestQueries:
    def test_running_ids_in_completion_order(self, cluster):
        cluster.start(5, (1, 1), 9)
        cluster.start(3, (1, 1), 2)
        assert cluster.running_ids() == [3, 5]

    def test_utilization(self, cluster):
        cluster.start(1, (5, 2), 3)
        assert cluster.utilization() == (0.5, 0.2)


class TestCloneAndEquality:
    def test_clone_is_independent(self, cluster):
        cluster.start(1, (4, 4), 3)
        copy = cluster.clone()
        copy.advance(3)
        assert cluster.now == 0
        assert cluster.available == (6, 6)
        assert copy.available == (10, 10)

    def test_clone_equal_until_diverged(self, cluster):
        cluster.start(1, (4, 4), 3)
        copy = cluster.clone()
        assert copy == cluster
        copy.advance(1)
        assert copy != cluster

    def test_signature_stable_under_insert_order(self):
        a = ClusterState((10, 10))
        a.start(1, (2, 2), 5)
        a.start(2, (3, 3), 5)
        b = ClusterState((10, 10))
        b.start(2, (3, 3), 5)
        b.start(1, (2, 2), 5)
        assert a.signature() == b.signature()

    def test_hashable(self, cluster):
        assert isinstance(hash(cluster), int)

    def test_repr(self, cluster):
        assert "now=0" in repr(cluster)

    def test_clone_preserves_heap_invariant(self, cluster):
        """Regression: a clone's running list must stay a valid heap.

        ``clone`` shallow-copies the running-heap list and relies on its
        order being preserved (no re-``heapify``); interleaved
        ``advance``/``start`` on the clone afterwards must keep popping
        events in finish-time order.
        """
        cluster.start(1, (2, 2), 7)
        cluster.start(2, (1, 1), 3)
        cluster.start(3, (3, 3), 5)
        copy = cluster.clone()
        assert copy.heap_invariant_ok()

        now, done = copy.advance_to_next_event()
        assert (now, done) == (3, [2])
        copy.start(4, (2, 2), 1)
        assert copy.heap_invariant_ok()

        now, done = copy.advance_to_next_event()
        assert (now, done) == (4, [4])
        copy.start(5, (1, 1), 1)
        assert copy.heap_invariant_ok()

        now, done = copy.advance_to_next_event()
        assert (now, done) == (5, [3, 5])
        now, done = copy.advance_to_next_event()
        assert (now, done) == (7, [1])
        assert copy.is_idle and copy.available == (10, 10)
        # The original never moved.
        assert cluster.now == 0 and len(cluster.running_tasks()) == 3


class TestConservation:
    def test_resources_conserved_over_lifecycle(self, cluster):
        """Sum of available + running demands is invariant."""
        cluster.start(1, (3, 2), 4)
        cluster.start(2, (5, 6), 2)

        def total():
            running = cluster.running_tasks()
            used = [sum(e.demands[r] for e in running) for r in range(2)]
            return tuple(a + u for a, u in zip(cluster.available, used))

        assert total() == (10, 10)
        cluster.advance(2)
        assert total() == (10, 10)
        cluster.advance(2)
        assert total() == (10, 10)
