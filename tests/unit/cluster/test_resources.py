"""Unit tests for resource-vector arithmetic."""

import pytest

from repro.cluster import add, fits, subtract
from repro.cluster.resources import validate_demands
from repro.errors import CapacityError


class TestFits:
    def test_exact_fit(self):
        assert fits((3, 4), (3, 4))

    def test_strict_fit(self):
        assert fits((1, 2), (3, 4))

    def test_one_dimension_over(self):
        assert not fits((4, 1), (3, 4))

    def test_zero_demand_always_fits(self):
        assert fits((0, 0), (0, 0))


class TestSubtract:
    def test_allocation(self):
        assert subtract((5, 5), (2, 3)) == (3, 2)

    def test_to_zero(self):
        assert subtract((2, 3), (2, 3)) == (0, 0)

    def test_overdraft_raises(self):
        with pytest.raises(CapacityError):
            subtract((1, 5), (2, 3))

    def test_result_is_tuple(self):
        assert isinstance(subtract((5,), (1,)), tuple)


class TestAdd:
    def test_release(self):
        assert add((3, 2), (2, 3)) == (5, 5)

    def test_inverse_of_subtract(self):
        available, demands = (7, 9), (3, 4)
        assert add(subtract(available, demands), demands) == available


class TestValidateDemands:
    def test_accepts_fitting(self):
        validate_demands((5, 5), (10, 10))

    def test_rejects_oversized(self):
        with pytest.raises(CapacityError):
            validate_demands((11, 5), (10, 10))

    def test_rejects_dimension_mismatch(self):
        with pytest.raises(CapacityError):
            validate_demands((5,), (10, 10))

    def test_error_names_the_resource(self):
        with pytest.raises(CapacityError, match="resource 1"):
            validate_demands((5, 11), (10, 10), label="t9")
