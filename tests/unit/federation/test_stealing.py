"""Unit tests for cross-shard work stealing and crash rescue."""

from repro.dag.graph import TaskGraph
from repro.dag.task import Task
from repro.faults.plan import FaultPlan, MachineCrash
from repro.federation import (
    FROM_ADMITTED,
    FROM_BACKLOG,
    RESCUE,
    FederatedStreamingSimulator,
    ShardSpec,
)
from repro.online.rankers import fifo_ranker
from repro.online.results import ArrivingJob
from repro.streaming import AdmissionConfig, TraceArrivals


class Pin0Router:
    """Test router: everything lands on the lowest-id feasible shard."""

    name = "pin0"

    def route(self, index, job, feasible, num_shards):
        return feasible[0]


def hog_job(arrival, runtime=6):
    """One task occupying a (3, 3) shard completely while it runs."""
    return ArrivingJob(arrival, TaskGraph([Task(0, runtime, (3, 3))]))


def stream(jobs):
    return TraceArrivals(list(jobs))


class TestBacklogStealing:
    def test_backlogged_jobs_migrate_to_idle_shard(self):
        # Everything routes to shard 0 with max_concurrent=1: jobs pile
        # into its backlog, the gap crosses the threshold, and the
        # stealer drains the backlog tail onto shard 1.
        specs = [
            ShardSpec((3, 3), fifo_ranker, admission=AdmissionConfig(max_concurrent=1)),
            ShardSpec((3, 3), fifo_ranker, admission=AdmissionConfig(max_concurrent=1)),
        ]
        result = FederatedStreamingSimulator(
            specs, router=Pin0Router(), steal_threshold=0
        ).run(stream(hog_job(0, runtime=4) for _ in range(4)))
        assert result.aggregate.online.completed_jobs == 4
        counts = result.steal_counts()
        assert counts[FROM_BACKLOG] >= 1
        assert all(s.from_shard == 0 and s.to_shard == 1 for s in result.steals)
        # The thief actually ran what it stole.
        thief = result.shards[1]
        assert thief.stolen_in == len(result.steals)
        assert thief.result.admitted >= 1

    def test_disabled_stealing_leaves_shards_alone(self):
        specs = [
            ShardSpec((3, 3), fifo_ranker),
            ShardSpec((3, 3), fifo_ranker),
        ]
        result = FederatedStreamingSimulator(
            specs, router=Pin0Router(), steal_threshold=None
        ).run(stream(hog_job(t * 2) for t in range(4)))
        assert not result.steals
        assert result.shards[1].result.admitted == 0
        assert result.steal_threshold == -1

    def test_threshold_gates_migration(self):
        # Gap of at most 2 never exceeds a threshold of 4.
        specs = [
            ShardSpec((3, 3), fifo_ranker, admission=AdmissionConfig(max_concurrent=1)),
            ShardSpec((3, 3), fifo_ranker, admission=AdmissionConfig(max_concurrent=1)),
        ]
        result = FederatedStreamingSimulator(
            specs, router=Pin0Router(), steal_threshold=4
        ).run(stream(hog_job(0) for _ in range(3)))
        assert not result.steals


class TestAdmittedStealing:
    def test_admitted_but_never_started_job_migrates(self):
        # Unbounded admission: both jobs are admitted on shard 0, but
        # its (3, 3) capacity runs only one hog at a time — the second
        # has no attempts and is fair game for the stealer.
        specs = [
            ShardSpec((3, 3), fifo_ranker),
            ShardSpec((3, 3), fifo_ranker),
        ]
        result = FederatedStreamingSimulator(
            specs, router=Pin0Router(), steal_threshold=1
        ).run(stream([hog_job(0), hog_job(0), hog_job(0)]))
        assert result.aggregate.online.completed_jobs == 3
        assert result.steal_counts()[FROM_ADMITTED] >= 1
        # Queueing delay semantics survive the migration: admission
        # happened at arrival on the donor, so delays stay zero.
        assert result.aggregate.queueing_delays == (0, 0, 0)

    def test_running_jobs_are_never_stolen(self):
        # A 1-task job that started is untouchable; with each shard able
        # to run its hog immediately there is nothing to steal.
        specs = [
            ShardSpec((3, 3), fifo_ranker),
            ShardSpec((3, 3), fifo_ranker),
        ]
        result = FederatedStreamingSimulator(
            specs, router="round-robin", steal_threshold=0
        ).run(stream([hog_job(0), hog_job(0)]))
        assert not result.steals


class TestRescue:
    def crash_specs(self):
        # Shard 0 permanently loses (2, 2) of (3, 3) at t=0: a (3, 3)
        # hog can never run there again.
        crash = MachineCrash(machine=0, at=0, capacity=(2, 2), recover_at=None)
        return [
            ShardSpec((3, 3), fifo_ranker, faults=FaultPlan(crashes=(crash,))),
            ShardSpec((3, 3), fifo_ranker),
        ]

    def test_rescue_moves_stranded_jobs_off_crashed_shard(self):
        result = FederatedStreamingSimulator(
            self.crash_specs(), router=Pin0Router(), steal_threshold=100
        ).run(stream([hog_job(0), hog_job(0)]))
        assert result.steal_counts()[RESCUE] >= 1
        assert result.aggregate.online.completed_jobs == 2
        assert result.aggregate.online.failed_jobs == 0

    def test_without_stealing_stranded_jobs_fail_loudly(self):
        result = FederatedStreamingSimulator(
            self.crash_specs(), router=Pin0Router()
        ).run(stream([hog_job(0), hog_job(0)]))
        assert result.aggregate.online.failed_jobs == 2
        assert result.aggregate.arrivals == 2
        # Failed, not lost: both jobs appear in the outcome record.
        assert len(result.aggregate.online.outcomes) == 2

    def test_crash_is_shard_local(self):
        # The other shard's capacity is untouched by shard 0's crash.
        result = FederatedStreamingSimulator(
            self.crash_specs(), router="round-robin", steal_threshold=None
        ).run(stream([hog_job(0), hog_job(0)]))
        reports = {r.shard_id: r for r in result.shards}
        assert reports[0].result.online.crashes == 1
        assert reports[1].result.online.crashes == 0
        assert reports[1].result.online.completed_jobs == 1
