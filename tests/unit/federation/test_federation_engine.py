"""Unit tests for the federated streaming engine and result assembly."""

import pytest

from repro.errors import ConfigError
from repro.federation import (
    FederatedStreamingSimulator,
    FederationComparison,
    ShardSpec,
)
from repro.online.rankers import fifo_ranker, sjf_ranker
from repro.streaming import (
    PoissonProcess,
    StreamingSimulator,
    layered_job_factory,
    streaming_workload,
)
from repro.config import ClusterConfig


def poisson(seed=0, n=30, rate=0.3):
    return PoissonProcess(
        rate, n, layered_job_factory(streaming_workload(num_tasks=6)), seed=seed
    )


def two_shards(ranker=sjf_ranker):
    return [ShardSpec((5, 5), ranker), ShardSpec((5, 5), ranker)]


class TestConfigValidation:
    def test_no_shards_rejected(self):
        with pytest.raises(ConfigError, match="at least one shard"):
            FederatedStreamingSimulator([])

    def test_mismatched_dims_rejected(self):
        with pytest.raises(ConfigError, match="dimensionality"):
            FederatedStreamingSimulator(
                [ShardSpec((5, 5), sjf_ranker), ShardSpec((5, 5, 5), sjf_ranker)]
            )

    def test_negative_threshold_rejected(self):
        with pytest.raises(ConfigError, match="threshold"):
            FederatedStreamingSimulator(two_shards(), steal_threshold=-1)

    def test_bad_router_spec_rejected(self):
        with pytest.raises(ConfigError, match="unknown router policy"):
            FederatedStreamingSimulator(two_shards(), router="magic")

    def test_nonpositive_shard_capacity_rejected(self):
        with pytest.raises(ConfigError, match="positive"):
            ShardSpec((5, 0), sjf_ranker)

    def test_empty_stream_rejected(self):
        class Empty:
            task_id_bound = 8

            def jobs(self):
                return iter(())

        with pytest.raises(ConfigError, match="no jobs"):
            FederatedStreamingSimulator(two_shards()).run(Empty())

    def test_negative_horizon_rejected(self):
        with pytest.raises(ConfigError, match="horizon"):
            FederatedStreamingSimulator(two_shards()).run(poisson(), horizon=-1)


class TestFederatedRun:
    def test_all_jobs_accounted_for(self):
        result = FederatedStreamingSimulator(
            two_shards(), router="least-load", steal_threshold=2
        ).run(poisson())
        aggregate = result.aggregate
        assert aggregate.arrivals == 30
        assert aggregate.admitted + len(aggregate.rejected) == 30
        assert aggregate.online.completed_jobs + aggregate.online.failed_jobs == 30
        assert sum(r.routed for r in result.shards) == 30

    def test_determinism(self):
        def run():
            return FederatedStreamingSimulator(
                two_shards(), router="least-load", steal_threshold=1
            ).run(poisson(seed=9))

        a, b = run(), run()
        assert a.aggregate == b.aggregate
        assert a.steals == b.steals
        assert a.metrics_dict() == b.metrics_dict()

    def test_horizon_cuts_off_stream(self):
        result = FederatedStreamingSimulator(two_shards()).run(
            poisson(rate=0.1, n=40), horizon=50
        )
        aggregate = result.aggregate
        assert aggregate.horizon_cutoff != -1
        assert aggregate.rejected
        assert all(r.reason == "horizon" for r in aggregate.rejected)
        assert aggregate.admitted + len(aggregate.rejected) == aggregate.arrivals

    def test_per_shard_utilization_reported(self):
        result = FederatedStreamingSimulator(two_shards()).run(poisson())
        for report in result.shards:
            assert len(report.result.online.mean_utilization) == 2
            assert all(0.0 <= u <= 1.0 for u in report.result.online.mean_utilization)

    def test_heterogeneous_rankers_per_shard(self):
        specs = [ShardSpec((5, 5), fifo_ranker), ShardSpec((5, 5), sjf_ranker)]
        result = FederatedStreamingSimulator(specs, router="round-robin").run(poisson())
        assert result.aggregate.online.completed_jobs == 30


class TestMetricsSchema:
    def test_federation_section_shape(self):
        result = FederatedStreamingSimulator(
            two_shards(), router="hash:salt=2", steal_threshold=3
        ).run(poisson(n=12))
        metrics = result.metrics_dict()
        assert metrics["schema"] == 1
        fed = metrics["federation"]
        assert fed["router"] == "hash"
        assert fed["steal_threshold"] == 3
        assert set(fed["steals"]) == {"total", "backlog", "admitted", "rescue"}
        assert len(fed["shards"]) == 2
        for entry in fed["shards"]:
            assert set(entry) == {
                "id", "capacities", "routed", "admitted", "completed",
                "failed", "rejected", "stolen_in", "stolen_out",
                "utilization", "p99_jct",
            }

    def test_report_mentions_shards(self):
        result = FederatedStreamingSimulator(two_shards()).run(poisson(n=8))
        text = result.report()
        assert "2 shards" in text and "shard 0" in text and "shard 1" in text


class TestComparison:
    def test_comparison_deltas(self):
        fed = FederatedStreamingSimulator(two_shards(), router="least-load").run(
            poisson(n=15)
        )
        glob = StreamingSimulator(
            cluster=ClusterConfig(capacities=(10, 10), horizon=8)
        ).run(poisson(n=15), sjf_ranker)
        comparison = FederationComparison(fed, glob)
        metrics = comparison.metrics_dict()
        assert metrics["mode"] == "federation_vs_global"
        assert metrics["delta"]["p99_jct"] == (
            fed.aggregate.p99_jct - glob.p99_jct
        )
        assert "== delta (federation - global) ==" in comparison.report()
