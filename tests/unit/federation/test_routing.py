"""Unit tests for router policies and the router spec grammar."""

import pytest

from repro.errors import ConfigError
from repro.federation import (
    AffinityRouter,
    FederationLedger,
    HashRouter,
    LeastLoadedRouter,
    RoundRobinRouter,
    Shard,
    ShardSpec,
    parse_router_spec,
    split_capacities,
)
from repro.online.rankers import fifo_ranker
from repro.online.results import ArrivingJob
from repro.sim import SimKernel
from repro.telemetry import runtime as telemetry


def make_shards(n, capacities=(5, 5)):
    kernel = SimKernel()
    tm = telemetry.for_config(None)
    return [
        Shard(k, ShardSpec(capacities, fifo_ranker), kernel, tm, 0, 8)
        for k in range(n)
    ]


def job(arrival=0):
    from repro.config import WorkloadConfig
    from repro.dag.generators import random_layered_dag

    workload = WorkloadConfig(
        num_tasks=4, max_runtime=4, max_demand=3, runtime_mean=2.0, demand_mean=2.0
    )
    return ArrivingJob(arrival, random_layered_dag(workload, seed=1))


class TestSpecGrammar:
    def test_all_policies_parse(self):
        assert isinstance(parse_router_spec("round-robin"), RoundRobinRouter)
        assert isinstance(parse_router_spec("least-load"), LeastLoadedRouter)
        assert isinstance(parse_router_spec("hash"), HashRouter)
        assert isinstance(parse_router_spec("affinity"), AffinityRouter)

    def test_options_parse(self):
        router = parse_router_spec("least-load:metric=tasks")
        assert router.metric == "tasks"
        assert parse_router_spec("hash:salt=7").salt == 7
        assert parse_router_spec("affinity:spill=4").spill == 4

    def test_unknown_policy_rejected(self):
        with pytest.raises(ConfigError, match="unknown router policy"):
            parse_router_spec("random")

    def test_unknown_option_rejected(self):
        with pytest.raises(ConfigError, match="unknown router option"):
            parse_router_spec("hash:pepper=1")

    def test_bad_option_shapes_rejected(self):
        with pytest.raises(ConfigError, match="not key=value"):
            parse_router_spec("hash:salt")
        with pytest.raises(ConfigError, match="bad integer"):
            parse_router_spec("hash:salt=abc")

    def test_bad_option_values_rejected(self):
        with pytest.raises(ConfigError, match="metric must be jobs or tasks"):
            parse_router_spec("least-load:metric=ram")
        with pytest.raises(ConfigError, match="spill must be >= 1"):
            parse_router_spec("affinity:spill=0")


class TestPolicies:
    def test_round_robin_cycles_feasible(self):
        shards = make_shards(3)
        router = RoundRobinRouter()
        picks = [router.route(i, job(), shards, 3).id for i in range(6)]
        assert picks == [0, 1, 2, 0, 1, 2]

    def test_least_loaded_prefers_emptiest_then_lowest_id(self):
        shards = make_shards(3)
        router = LeastLoadedRouter()
        assert router.route(0, job(), shards, 3).id == 0
        shards[0].execution.admit(0, 0, job().graph)
        assert router.route(1, job(), shards, 3).id == 1

    def test_least_loaded_task_metric_counts_tasks(self):
        shards = make_shards(2)
        router = LeastLoadedRouter(metric="tasks")
        shards[0].execution.admit(0, 0, job().graph)
        assert shards[0].task_load() > 0
        assert router.route(1, job(), shards, 2).id == 1

    def test_hash_is_deterministic_and_salt_sensitive(self):
        shards = make_shards(4)
        plain = HashRouter()
        salted = HashRouter(salt=5)
        picks_a = [plain.route(i, job(), shards, 4).id for i in range(16)]
        picks_b = [plain.route(i, job(), shards, 4).id for i in range(16)]
        assert picks_a == picks_b
        assert len(set(picks_a)) > 1  # actually spreads
        assert picks_a != [salted.route(i, job(), shards, 4).id for i in range(16)]

    def test_affinity_homes_by_index_mod_shards(self):
        shards = make_shards(3)
        router = AffinityRouter()
        assert [router.route(i, job(), shards, 3).id for i in range(6)] == [
            0, 1, 2, 0, 1, 2,
        ]

    def test_affinity_spills_hot_home_to_least_loaded(self):
        shards = make_shards(3)
        router = AffinityRouter(spill=1)
        shards[0].execution.admit(0, 0, job().graph)  # home 0 is hot
        assert router.route(3, job(), shards, 3).id == 1

    def test_affinity_falls_back_when_home_infeasible(self):
        shards = make_shards(3)
        router = AffinityRouter()
        # Home shard 0 not in the feasible set at all.
        assert router.route(0, job(), shards[1:], 3).id == 1


class TestSplitCapacities:
    def test_even_split(self):
        assert split_capacities((20, 20), 4) == [(5, 5)] * 4

    def test_remainder_goes_to_low_ids(self):
        assert split_capacities((20, 20), 3) == [(7, 7), (7, 7), (6, 6)]

    def test_too_many_shards_rejected(self):
        with pytest.raises(ConfigError, match="cannot split"):
            split_capacities((2, 2), 3)

    def test_zero_shards_rejected(self):
        with pytest.raises(ConfigError, match="at least one shard"):
            split_capacities((20, 20), 0)


class TestLedger:
    def test_sample_compresses_duplicates(self):
        ledger = FederationLedger(telemetry.for_config(None))
        ledger.sample_in_system(0, 1)
        ledger.sample_in_system(3, 1)  # same count: skipped
        ledger.sample_in_system(5, 2)
        ledger.sample_in_system(5, 3)  # same time: replaced
        assert ledger.in_system_series == [(0, 1), (5, 3)]

    def test_cutoff_is_idempotent(self):
        ledger = FederationLedger(telemetry.for_config(None))
        ledger.record_cutoff(10)
        ledger.record_cutoff(20)
        assert ledger.horizon_cutoff == 10
