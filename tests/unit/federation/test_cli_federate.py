"""Unit tests for the `repro federate` CLI command."""

import json

from repro.cli import build_parser, main


BASE = ["federate", "--arrival", "poisson:rate=0.3,n=20", "--seed", "3"]


class TestParser:
    def test_defaults(self):
        args = build_parser().parse_args(["federate"])
        assert args.shards == 2
        assert args.router == "least-load"
        assert args.steal_threshold is None
        assert args.compare_global is False


class TestFederateCommand:
    def test_basic_run(self, capsys):
        assert main(BASE + ["--shards", "2"]) == 0
        out = capsys.readouterr().out
        assert "2 shards" in out
        assert "shard 0" in out and "shard 1" in out

    def test_metrics_out_is_byte_identical_across_runs(self, tmp_path, capsys):
        paths = [tmp_path / "a.json", tmp_path / "b.json"]
        argv = BASE + [
            "--shards", "4",
            "--router", "least-load",
            "--steal-threshold", "2",
            "--faults", "crashes=1",
        ]
        for path in paths:
            assert main(argv + ["--metrics-out", str(path)]) == 0
        capsys.readouterr()
        blobs = [p.read_bytes() for p in paths]
        assert blobs[0] == blobs[1]
        metrics = json.loads(blobs[0])
        assert metrics["schema"] == 1
        assert len(metrics["federation"]["shards"]) == 4

    def test_compare_global_emits_comparison(self, tmp_path, capsys):
        path = tmp_path / "cmp.json"
        code = main(BASE + ["--compare-global", "--metrics-out", str(path)])
        assert code == 0
        assert "delta (federation - global)" in capsys.readouterr().out
        metrics = json.loads(path.read_text())
        assert metrics["mode"] == "federation_vs_global"
        assert set(metrics) == {"schema", "mode", "federation", "global", "delta"}
        assert set(metrics["delta"]) == {
            "p99_jct", "mean_jct", "throughput_jobs_per_slot", "completed",
        }

    def test_per_shard_scheduler_specs(self, capsys):
        argv = BASE + [
            "--shards", "2",
            "--scheduler", "none",
            "--scheduler", "heft",
        ]
        assert main(argv) == 0
        assert "2 shards" in capsys.readouterr().out

    def test_gate_p99_breach_fails(self, capsys):
        assert main(BASE + ["--gate-p99", "0.5"]) == 1
        assert "exceeds the --gate-p99 bound" in capsys.readouterr().err

    def test_gate_p99_pass(self, capsys):
        assert main(BASE + ["--gate-p99", "100000"]) == 0
        capsys.readouterr()


class TestFederateConfigErrors:
    def test_unknown_router_exits_2(self, capsys):
        assert main(BASE + ["--router", "warp"]) == 2
        assert "unknown router policy" in capsys.readouterr().err

    def test_unknown_ranker_exits_2(self, capsys):
        assert main(BASE + ["--ranker", "warp"]) == 2
        assert "unknown ranker" in capsys.readouterr().err

    def test_too_many_shards_exits_2(self, capsys):
        assert main(BASE + ["--shards", "99"]) == 2
        assert "cannot split" in capsys.readouterr().err

    def test_scheduler_count_mismatch_exits_2(self, capsys):
        assert main(BASE + ["--shards", "3", "--scheduler", "heft",
                            "--scheduler", "none"]) == 2
        assert "--scheduler" in capsys.readouterr().err

    def test_bad_arrival_spec_exits_2(self, capsys):
        assert main(["federate", "--arrival", "meteor"]) == 2
        capsys.readouterr()
