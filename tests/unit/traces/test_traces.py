"""Unit tests for the trace substrate (jobs, generator, filters, stats)."""

import pytest

from repro.dag import mapreduce_dag
from repro.errors import ConfigError, TraceError
from repro.traces import (
    Trace,
    TraceConfig,
    TraceJob,
    filter_jobs,
    generate_production_trace,
    synthesize_job,
    trace_statistics,
)
from repro.utils.rng import as_generator


def make_job(job_id=0, num_map=6, num_reduce=7):
    map_runtimes = [3] * num_map
    reduce_runtimes = [5] * num_reduce
    return TraceJob(
        job_id=job_id,
        graph=mapreduce_dag(map_runtimes, reduce_runtimes),
        num_map=num_map,
        num_reduce=num_reduce,
        map_runtimes=tuple(map_runtimes),
        reduce_runtimes=tuple(reduce_runtimes),
    )


class TestTraceJob:
    def test_basic_fields(self):
        job = make_job()
        assert job.num_tasks == 13
        assert job.mean_map_runtime() == 3
        assert job.mean_reduce_runtime() == 5

    def test_metadata_mismatch_rejected(self):
        with pytest.raises(TraceError):
            TraceJob(
                job_id=0,
                graph=mapreduce_dag([1], [1]),
                num_map=2,
                num_reduce=1,
                map_runtimes=(1, 1),
                reduce_runtimes=(1,),
            )

    def test_runtime_count_mismatch_rejected(self):
        with pytest.raises(TraceError):
            TraceJob(
                job_id=0,
                graph=mapreduce_dag([1], [1]),
                num_map=1,
                num_reduce=1,
                map_runtimes=(1, 2),
                reduce_runtimes=(1,),
            )


class TestTraceContainer:
    def test_iteration_and_indexing(self):
        trace = Trace(jobs=[make_job(0), make_job(1)])
        assert len(trace) == 2
        assert trace[1].job_id == 1
        assert [j.job_id for j in trace] == [0, 1]

    def test_graphs(self):
        trace = Trace(jobs=[make_job(0)])
        assert trace.graphs()[0].num_tasks == 13

    def test_json_roundtrip(self, tmp_path):
        trace = Trace(jobs=[make_job(0), make_job(1)], name="test")
        path = tmp_path / "trace.json"
        trace.save(path)
        restored = Trace.load(path)
        assert len(restored) == 2
        assert restored.name == "test"
        assert restored[0].graph == trace[0].graph
        assert restored[1].map_runtimes == trace[1].map_runtimes

    def test_bad_json_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("[")
        with pytest.raises(TraceError):
            Trace.load(path)

    def test_wrong_version_rejected(self):
        with pytest.raises(TraceError):
            Trace.from_dict({"version": 9, "jobs": []})

    def test_malformed_job_rejected(self):
        with pytest.raises(TraceError):
            Trace.from_dict({"version": 1, "jobs": [{"job_id": 0}]})


class TestSynthesizeJob:
    def test_respects_count_bounds(self):
        cfg = TraceConfig()
        rng = as_generator(0)
        for _ in range(20):
            job = synthesize_job(0, cfg, rng)
            assert cfg.min_map <= job.num_map <= cfg.max_map
            assert cfg.min_reduce <= job.num_reduce <= cfg.max_reduce

    def test_force_small_below_filter(self):
        cfg = TraceConfig()
        rng = as_generator(0)
        job = synthesize_job(0, cfg, rng, force_small=True)
        assert job.num_map <= 5 or job.num_reduce <= 5

    def test_demands_within_bounds(self):
        cfg = TraceConfig()
        rng = as_generator(1)
        job = synthesize_job(0, cfg, rng)
        for task in job.graph:
            assert all(1 <= d <= cfg.max_demand for d in task.demands)

    def test_runtime_scale_compresses(self):
        rng_a, rng_b = as_generator(3), as_generator(3)
        big = synthesize_job(0, TraceConfig(runtime_scale=1.0), rng_a)
        small = synthesize_job(0, TraceConfig(runtime_scale=0.1), rng_b)
        assert sum(small.reduce_runtimes) < sum(big.reduce_runtimes)


class TestGenerateTrace:
    def test_exact_job_count(self):
        trace = generate_production_trace(TraceConfig(num_jobs=12), seed=0)
        assert len(trace) == 12

    def test_all_jobs_pass_filter(self):
        trace = generate_production_trace(TraceConfig(num_jobs=12), seed=0)
        for job in trace:
            assert job.num_map > 5
            assert job.num_reduce > 5

    def test_raw_trace_contains_small_jobs(self):
        raw = generate_production_trace(
            TraceConfig(num_jobs=12, small_job_fraction=0.5),
            seed=0,
            include_filtered=True,
        )
        assert any(j.num_map <= 5 or j.num_reduce <= 5 for j in raw)
        assert len(raw) > 12

    def test_seeded_reproducibility(self):
        a = generate_production_trace(TraceConfig(num_jobs=5), seed=3)
        b = generate_production_trace(TraceConfig(num_jobs=5), seed=3)
        assert [j.graph for j in a] == [j.graph for j in b]

    def test_calibration_close_to_paper(self):
        """The defaults must land near the published statistics."""
        from repro.traces import trace_statistics

        trace = generate_production_trace(seed=0)
        stats = trace_statistics(trace)
        assert stats.num_jobs == 99
        assert 10 <= stats.median_map_count <= 18      # paper: 14
        assert 13 <= stats.median_reduce_count <= 21   # paper: 17
        assert stats.max_map_count <= 29
        assert stats.max_reduce_count <= 38

    def test_invalid_config_rejected(self):
        with pytest.raises(ConfigError):
            TraceConfig(num_jobs=0)
        with pytest.raises(ConfigError):
            TraceConfig(min_map=10, median_map=5, max_map=20)
        with pytest.raises(ConfigError):
            TraceConfig(runtime_scale=0)


class TestFilters:
    def test_filter_removes_small(self):
        jobs = [make_job(0, num_map=6, num_reduce=7)]
        small = TraceJob(
            job_id=1,
            graph=mapreduce_dag([1] * 3, [1] * 7),
            num_map=3,
            num_reduce=7,
            map_runtimes=(1, 1, 1),
            reduce_runtimes=(1,) * 7,
        )
        trace = Trace(jobs=jobs + [small])
        kept = filter_jobs(trace)
        assert len(kept) == 1
        assert kept[0].job_id == 0

    def test_filter_preserves_input(self):
        trace = Trace(jobs=[make_job(0)])
        filter_jobs(trace, min_map=100)
        assert len(trace) == 1


class TestStatistics:
    def test_headline_numbers(self):
        trace = Trace(jobs=[make_job(0, 6, 7), make_job(1, 10, 9)])
        stats = trace_statistics(trace)
        assert stats.num_jobs == 2
        assert stats.max_map_count == 10
        assert stats.median_reduce_count in (7, 8, 9)
        assert len(stats.map_runtimes) == 16
        assert stats.median_map_runtime == 3
        assert stats.median_reduce_runtime == 5

    def test_cdfs_end_at_one(self):
        trace = Trace(jobs=[make_job(0)])
        stats = trace_statistics(trace)
        for cdf in (*stats.count_cdfs(), *stats.runtime_cdfs()):
            assert cdf[-1][1] == pytest.approx(1.0)

    def test_empty_trace_rejected(self):
        with pytest.raises(ValueError):
            trace_statistics(Trace())
