"""Unit tests for trace arrival-stream construction."""

import pytest

from repro.errors import ConfigError
from repro.traces import (
    Trace,
    TraceConfig,
    generate_production_trace,
    poisson_arrivals,
    uniform_arrivals,
)


@pytest.fixture(scope="module")
def trace():
    return generate_production_trace(
        TraceConfig(num_jobs=8, runtime_scale=0.2), seed=0
    )


class TestUniformArrivals:
    def test_fixed_spacing(self, trace):
        stream = uniform_arrivals(trace, 15)
        assert [j.arrival_time for j in stream] == [15 * i for i in range(8)]

    def test_zero_spacing_batch(self, trace):
        stream = uniform_arrivals(trace, 0)
        assert all(j.arrival_time == 0 for j in stream)

    def test_graphs_preserved(self, trace):
        stream = uniform_arrivals(trace, 10)
        assert [j.graph for j in stream] == trace.graphs()

    def test_empty_trace_rejected(self):
        with pytest.raises(ConfigError):
            uniform_arrivals(Trace(), 10)

    def test_negative_spacing_rejected(self, trace):
        with pytest.raises(ConfigError):
            uniform_arrivals(trace, -1)


class TestPoissonArrivals:
    def test_monotone_non_negative(self, trace):
        stream = poisson_arrivals(trace, 20.0, seed=0)
        times = [j.arrival_time for j in stream]
        assert all(t >= 0 for t in times)
        assert times == sorted(times)

    def test_seeded_reproducibility(self, trace):
        a = [j.arrival_time for j in poisson_arrivals(trace, 20.0, seed=3)]
        b = [j.arrival_time for j in poisson_arrivals(trace, 20.0, seed=3)]
        assert a == b

    def test_mean_roughly_matches(self):
        big = generate_production_trace(
            TraceConfig(num_jobs=60, runtime_scale=0.1), seed=1
        )
        stream = poisson_arrivals(big, 10.0, seed=2)
        span = stream[-1].arrival_time - stream[0].arrival_time
        mean_gap = span / (len(stream) - 1)
        assert 6.0 <= mean_gap <= 15.0

    def test_invalid_mean_rejected(self, trace):
        with pytest.raises(ConfigError):
            poisson_arrivals(trace, 0.0)

    def test_runs_through_the_simulator(self, trace):
        from repro.online import OnlineSimulator, fifo_ranker

        stream = poisson_arrivals(trace, 30.0, seed=0)
        result = OnlineSimulator().run(stream, fifo_ranker)
        assert len(result.outcomes) == len(trace)


class TestValueCheckpoints:
    def test_roundtrip(self, tmp_path, rng):
        from repro.rl import (
            ValueNetwork,
            load_value_checkpoint,
            save_value_checkpoint,
        )
        import numpy as np

        net = ValueNetwork(6, hidden_sizes=(8, 4), seed=0)
        states = rng.normal(size=(50, 6))
        targets = 5 + states[:, 0]
        net.fit(states, targets, epochs=5, seed=1)
        path = tmp_path / "value.npz"
        save_value_checkpoint(net, path)
        restored = load_value_checkpoint(path)
        assert np.allclose(restored.predict(states), net.predict(states))

    def test_missing_file(self, tmp_path):
        from repro.errors import CheckpointError
        from repro.rl import load_value_checkpoint

        with pytest.raises(CheckpointError):
            load_value_checkpoint(tmp_path / "none.npz")

    def test_nan_gradient_guard(self):
        import numpy as np

        from repro.errors import ConfigError
        from repro.rl import RmsProp

        params = {"x": np.zeros(2)}
        with pytest.raises(ConfigError, match="non-finite"):
            RmsProp(0.01).step(params, {"x": np.array([np.nan, 1.0])})