"""Unit tests for the differentiable module stack (repro.rl.modules)."""

import numpy as np
import pytest

from repro.errors import ConfigError
from repro.rl.modules import (
    EdgeList,
    Linear,
    MLPStack,
    ReLU,
    entropy_dlogits,
    init_linear,
    masked_softmax,
    policy_entropy,
    segment_sum,
    segment_sum_batch,
)


class TestLinear:
    def test_forward_matches_affine(self, rng):
        params = {}
        init_linear(params, "W", "b", 4, 3, rng)
        layer = Linear(params, "W", "b")
        x = rng.normal(size=(5, 4))
        assert np.allclose(layer.forward(x), x @ params["W"] + params["b"])

    def test_backward_gradients(self, rng):
        params = {}
        init_linear(params, "W", "b", 4, 3, rng)
        layer = Linear(params, "W", "b")
        x = rng.normal(size=(5, 4))
        dout = rng.normal(size=(5, 3))
        layer.forward(x, keep_cache=True)
        grads = {}
        dx = layer.backward(dout, grads)
        assert np.allclose(grads["W"], x.T @ dout)
        assert np.allclose(grads["b"], dout.sum(axis=0))
        assert np.allclose(dx, dout @ params["W"].T)

    def test_backward_without_cache_raises(self, rng):
        params = {}
        init_linear(params, "W", "b", 2, 2, rng)
        layer = Linear(params, "W", "b")
        with pytest.raises(ConfigError, match="no cached forward"):
            layer.backward(np.zeros((1, 2)), {})

    def test_sees_in_place_parameter_updates(self, rng):
        # The optimizer mutates arrays in the shared dict; the layer must
        # read the dict at call time, not hold stale references.
        params = {}
        init_linear(params, "W", "b", 2, 2, rng)
        layer = Linear(params, "W", "b")
        x = np.ones((1, 2))
        before = layer.forward(x).copy()
        params["W"] += 1.0
        after = layer.forward(x)
        assert not np.allclose(before, after)


class TestReLU:
    def test_forward_clamps(self):
        x = np.array([[-1.0, 0.0, 2.0]])
        assert np.array_equal(ReLU().forward(x), [[0.0, 0.0, 2.0]])

    def test_backward_gates_gradient(self):
        relu = ReLU()
        x = np.array([[-1.0, 0.5, 2.0]])
        relu.forward(x, keep_cache=True)
        dx = relu.backward(np.ones((1, 3)), {})
        assert np.array_equal(dx, [[0.0, 1.0, 1.0]])


class TestMaskedSoftmax:
    def test_rows_sum_to_one_and_masked_entries_are_zero(self, rng):
        logits = rng.normal(size=(6, 5))
        masks = rng.random(size=(6, 5)) > 0.4
        masks[:, 0] = True  # every row keeps one legal action
        probs = masked_softmax(logits, masks)
        assert np.allclose(probs.sum(axis=1), 1.0)
        assert np.all(probs[~masks] == 0.0)

    def test_all_legal_matches_plain_softmax(self, rng):
        logits = rng.normal(size=(3, 4))
        probs = masked_softmax(logits, np.ones((3, 4), dtype=bool))
        exp = np.exp(logits - logits.max(axis=1, keepdims=True))
        assert np.allclose(probs, exp / exp.sum(axis=1, keepdims=True))

    def test_no_legal_action_raises(self):
        with pytest.raises(ConfigError, match="no legal action"):
            masked_softmax(np.zeros((2, 3)), np.zeros((2, 3), dtype=bool))

    def test_shape_mismatch_raises(self):
        with pytest.raises(ConfigError, match="mask shape"):
            masked_softmax(np.zeros((2, 3)), np.ones((2, 4), dtype=bool))


class TestEntropy:
    def test_uniform_entropy(self):
        probs = np.full((1, 4), 0.25)
        assert policy_entropy(probs) == pytest.approx(np.log(4))

    def test_entropy_dlogits_matches_finite_differences(self, rng):
        logits = rng.normal(size=(3, 5))
        masks = np.ones((3, 5), dtype=bool)
        masks[0, 2:] = False
        grad = entropy_dlogits(masked_softmax(logits, masks))
        eps = 1e-6
        for b, a in [(0, 0), (0, 3), (1, 2), (2, 4)]:
            bumped = logits.copy()
            bumped[b, a] += eps
            up = policy_entropy(masked_softmax(bumped, masks))
            bumped[b, a] -= 2 * eps
            down = policy_entropy(masked_softmax(bumped, masks))
            fd = (up - down) / (2 * eps)
            assert grad[b, a] == pytest.approx(fd, abs=1e-6)

    def test_masked_entries_get_zero_gradient(self, rng):
        logits = rng.normal(size=(2, 4))
        masks = np.array([[True, True, False, False], [True] * 4])
        grad = entropy_dlogits(masked_softmax(logits, masks))
        assert np.all(grad[~masks] == 0.0)


class TestMLPStack:
    def test_forward_matches_manual_loop(self, rng):
        stack = MLPStack([4, 8, 3], rng=rng)
        x = rng.normal(size=(5, 4))
        h = np.maximum(x @ stack.params["W0"] + stack.params["b0"], 0.0)
        expected = h @ stack.params["W1"] + stack.params["b1"]
        assert np.allclose(stack.forward(x), expected)

    def test_backward_matches_finite_differences(self, rng):
        stack = MLPStack([3, 6, 2], rng=rng)
        x = rng.normal(size=(4, 3))
        target = rng.normal(size=(4, 2))

        def loss():
            return 0.5 * float(np.sum((stack.forward(x) - target) ** 2))

        out = stack.forward(x, keep_cache=True)
        grads = stack.backward(out - target)
        eps = 1e-6
        for key in ["W0", "b0", "W1", "b1"]:
            flat = stack.params[key].ravel()
            index = int(rng.integers(0, flat.size))
            flat[index] += eps
            up = loss()
            flat[index] -= 2 * eps
            down = loss()
            flat[index] += eps
            fd = (up - down) / (2 * eps)
            assert grads[key].ravel()[index] == pytest.approx(fd, rel=1e-4)

    def test_need_dx_returns_input_gradient(self, rng):
        stack = MLPStack([3, 4, 2], rng=rng)
        x = rng.normal(size=(2, 3))
        stack.forward(x, keep_cache=True)
        grads = {}
        dx = stack.backward(np.ones((2, 2)), grads=grads, need_dx=True)
        assert dx.shape == x.shape
        assert set(grads) == {"W0", "b0", "W1", "b1"}

    def test_backward_without_forward_raises(self, rng):
        stack = MLPStack([2, 2], rng=rng)
        with pytest.raises(ConfigError, match="no cached forward"):
            stack.backward(np.zeros((1, 2)))

    def test_cache_is_consumed(self, rng):
        stack = MLPStack([2, 2], rng=rng)
        stack.forward(np.zeros((1, 2)), keep_cache=True)
        assert stack.has_cache
        stack.backward(np.zeros((1, 2)))
        assert not stack.has_cache

    def test_prefix_shares_one_param_dict(self, rng):
        params = {}
        a = MLPStack([3, 2], rng=rng, params=params, prefix="a.")
        b = MLPStack([3, 2], rng=rng, params=params, prefix="b.")
        assert set(params) == {"a.W0", "a.b0", "b.W0", "b.b0"}
        assert a.params is b.params

    def test_rebuild_from_existing_params_needs_no_rng(self, rng):
        params = MLPStack([3, 4, 2], rng=rng).params
        rebuilt = MLPStack([3, 4, 2], params=dict(params))
        x = rng.normal(size=(2, 3))
        assert np.array_equal(
            rebuilt.forward(x), MLPStack([3, 4, 2], params=params).forward(x)
        )

    @pytest.mark.parametrize("sizes", [[4], [3, 0, 2]])
    def test_invalid_sizes_raise(self, sizes, rng):
        with pytest.raises(ConfigError):
            MLPStack(sizes, rng=rng)

    def test_missing_params_without_rng_raise(self):
        with pytest.raises(ConfigError, match="no rng"):
            MLPStack([2, 2])


class TestEdgeList:
    def _diamond(self):
        # 0 -> {1, 2} -> 3
        parent = np.array([0, 0, 1, 2])
        child = np.array([1, 2, 3, 3])
        return EdgeList(4, parent, child)

    def test_aggregate_children(self):
        edges = self._diamond()
        h = np.arange(8, dtype=np.float64).reshape(4, 2)
        out = edges.aggregate_children(h)
        assert np.array_equal(out[0], h[1] + h[2])
        assert np.array_equal(out[1], h[3])
        assert np.array_equal(out[3], [0.0, 0.0])

    def test_aggregate_parents(self):
        edges = self._diamond()
        h = np.arange(8, dtype=np.float64).reshape(4, 2)
        out = edges.aggregate_parents(h)
        assert np.array_equal(out[3], h[1] + h[2])
        assert np.array_equal(out[0], [0.0, 0.0])

    def test_directions_are_adjoint(self, rng):
        # <u, A_child h> == <A_parent u, h> — exactly the identity the
        # backward pass relies on.
        edges = self._diamond()
        h = rng.normal(size=(4, 3))
        u = rng.normal(size=(4, 3))
        lhs = float(np.sum(u * edges.aggregate_children(h)))
        rhs = float(np.sum(edges.aggregate_parents(u) * h))
        assert lhs == pytest.approx(rhs)

    def test_batched_matches_loop(self, rng):
        edges = self._diamond()
        h = rng.normal(size=(3, 4, 2))
        batched = edges.aggregate_children(h)
        for b in range(3):
            assert np.allclose(batched[b], edges.aggregate_children(h[b]))

    def test_from_graph_arrays(self):
        from repro.config import WorkloadConfig
        from repro.dag.generators import random_layered_dag
        from repro.envarr.graphdata import graph_arrays

        graph = random_layered_dag(WorkloadConfig(num_tasks=12), seed=3)
        arrays = graph_arrays(graph)
        edges = EdgeList.from_graph_arrays(arrays)
        assert edges.num_nodes == 12
        assert edges.num_edges == graph.num_edges
        # Every (parent, child) pair is a real precedence edge.
        for p, c in zip(edges.parent, edges.child):
            assert arrays.ids[c] in graph.children(arrays.ids[p])


class TestSegmentSum:
    def test_scatter_accumulates_duplicates(self):
        h = np.array([[1.0], [2.0], [4.0]])
        out = segment_sum(h, np.array([0, 1, 2]), np.array([1, 1, 0]), 3)
        assert np.array_equal(out, [[4.0], [3.0], [0.0]])

    def test_batch_variant(self):
        h = np.array([[[1.0], [2.0]], [[3.0], [5.0]]])
        out = segment_sum_batch(h, np.array([0, 1]), np.array([1, 1]), 2)
        assert np.array_equal(out, [[[0.0], [3.0]], [[0.0], [8.0]]])
