"""Batched leaf evaluation must be indistinguishable from sequential.

:class:`PolicyEvaluator` is MCTS's batched inference path: one network
forward scores a whole wave of leaf states.  These tests drive random
mid-episode state batches and assert the batched distributions match the
per-state policy adapters (``NetworkPolicy`` / ``GraphNetworkPolicy``)
action-for-action, and that batched greedy rollouts reproduce sequential
greedy rollouts exactly.
"""

import hypothesis.strategies as st
import numpy as np
import pytest
from hypothesis import given, settings

from repro.config import ClusterConfig, EnvConfig, GnnConfig, WorkloadConfig
from repro.core.pipeline import default_graph_network, default_network
from repro.dag.generators import random_layered_dag
from repro.envarr.env import ArraySchedulingEnv
from repro.errors import ConfigError
from repro.rl.agent import NetworkPolicy
from repro.rl.evaluator import PolicyEvaluator
from repro.rl.gnn import GraphNetworkPolicy


def make_config(max_ready=6):
    return EnvConfig(
        cluster=ClusterConfig(capacities=(10, 10), horizon=8),
        max_ready=max_ready,
        process_until_completion=True,
        backend="array",
    )


def make_graph(seed, num_tasks):
    workload = WorkloadConfig(
        num_tasks=num_tasks,
        max_runtime=6,
        max_demand=8,
        runtime_mean=3,
        runtime_std=2,
        demand_mean=4,
        demand_std=2,
    )
    return random_layered_dag(workload, seed=seed)


def state_batch(graph, config, seed, count=12):
    """Clones spread along one random work-conserving episode."""
    env = ArraySchedulingEnv(graph, config)
    rng = np.random.default_rng(seed)
    lanes = [env.clone()]
    sim = env.clone()
    while not sim.done and len(lanes) < count:
        actions = sim.expansion_actions(work_conserving=True)
        sim.step(actions[int(rng.integers(0, len(actions)))])
        if not sim.done:
            lanes.append(sim.clone())
    return lanes


def make_network(kind, config, seed):
    if kind == "mlp":
        return default_network(config, seed=seed)
    return default_graph_network(
        config,
        GnnConfig(hidden_size=8, rounds=1, head_hidden=4, global_hidden=8),
        seed=seed,
    )


def sequential_policy(kind, network):
    if kind == "mlp":
        return NetworkPolicy(network, mode="greedy", work_conserving=True)
    return GraphNetworkPolicy(network, mode="greedy", work_conserving=True)


@settings(max_examples=25, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    num_tasks=st.integers(4, 16),
    kind=st.sampled_from(["mlp", "gnn"]),
)
def test_batched_distributions_match_sequential(seed, num_tasks, kind):
    graph = make_graph(seed, num_tasks)
    config = make_config()
    lanes = state_batch(graph, config, seed)
    network = make_network(kind, config, seed)
    evaluator = PolicyEvaluator(network, config, lanes[0].arrays)
    batched = evaluator.action_probabilities(lanes)
    policy = sequential_policy(kind, network)
    for env, dist in zip(lanes, batched):
        expected = policy.action_probabilities(env)
        assert set(dist) == set(expected)
        for action, p in expected.items():
            assert dist[action] == pytest.approx(p, rel=1e-12, abs=1e-12)


@settings(max_examples=10, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    kind=st.sampled_from(["mlp", "gnn"]),
)
def test_batched_greedy_rollouts_match_sequential(seed, kind):
    graph = make_graph(seed, 10)
    config = make_config()
    lanes = state_batch(graph, config, seed, count=6)
    network = make_network(kind, config, seed)
    evaluator = PolicyEvaluator(network, config, lanes[0].arrays)
    limit = 10_000
    batched = evaluator.rollout_many(lanes, limit, mode="greedy")
    policy = sequential_policy(kind, network)
    for env, makespan in zip(lanes, batched):
        sim = env.clone()
        while not sim.done:
            sim.step(policy.select(sim))
        assert sim.makespan == makespan
    # The input lanes were never mutated.
    assert all(not env.done or env.makespan in batched for env in lanes)


class TestEvaluatorValidation:
    def test_rollout_many_does_not_mutate_inputs(self):
        config = make_config()
        graph = make_graph(3, 8)
        lanes = state_batch(graph, config, 3, count=4)
        snapshots = [(env.now, env.num_finished) for env in lanes]
        network = make_network("mlp", config, 3)
        evaluator = PolicyEvaluator(network, config, lanes[0].arrays)
        evaluator.rollout_many(lanes, 10_000, mode="sample", rng=7)
        assert snapshots == [(env.now, env.num_finished) for env in lanes]

    def test_unknown_model_kind_rejected(self):
        config = make_config()
        graph = make_graph(1, 6)

        class Strange:
            kind = "policy_quantum"

        with pytest.raises(ConfigError, match="cannot batch-evaluate"):
            PolicyEvaluator(Strange(), config, graph)

    def test_mlp_window_mismatch_rejected(self):
        config = make_config(max_ready=6)
        network = default_network(make_config(max_ready=3), seed=0)
        with pytest.raises(ConfigError):
            PolicyEvaluator(network, config, make_graph(1, 6))

    def test_gnn_resource_mismatch_rejected(self):
        config = make_config()
        network = default_graph_network(
            EnvConfig(cluster=ClusterConfig(capacities=(5, 5, 5))),
            GnnConfig(hidden_size=4, rounds=1, head_hidden=2, global_hidden=4),
            seed=0,
        )
        with pytest.raises(ConfigError):
            PolicyEvaluator(network, config, make_graph(1, 6))

    def test_empty_batch(self):
        config = make_config()
        network = default_network(config, seed=0)
        evaluator = PolicyEvaluator(network, config, make_graph(1, 6))
        assert evaluator.distributions([]) == []
