"""Unit tests for the scale-invariant graph policy (repro.rl.gnn)."""

import numpy as np
import pytest

from repro.config import EnvConfig, GnnConfig, WorkloadConfig
from repro.dag.generators import random_layered_dag
from repro.dag.graph import TaskGraph
from repro.dag.task import Task
from repro.envarr.backend import make_env
from repro.envarr.graphdata import graph_arrays
from repro.envarr.observation import task_feature_table
from repro.errors import ConfigError
from repro.rl.gnn import (
    GraphNetworkPolicy,
    GraphObservationBuilder,
    GraphPolicyNetwork,
    build_graph_action_mask,
)

SMALL_GNN = GnnConfig(hidden_size=8, rounds=2, head_hidden=4, global_hidden=8)


def _graph(num_tasks=10, seed=0):
    return random_layered_dag(
        WorkloadConfig(num_tasks=num_tasks, max_runtime=10, max_demand=10),
        seed=seed,
    )


def _array_env(graph, config=None):
    config = config if config is not None else EnvConfig(
        process_until_completion=True, backend="array"
    )
    return make_env(graph, config)


class TestPermutationInvariance:
    def test_scores_follow_a_task_relabeling(self, rng):
        """Relabeling the DAG's task ids permutes the per-node scores and
        leaves the global (PROCESS) score unchanged."""
        base = _graph(num_tasks=12, seed=4)
        n = base.num_tasks
        perm = rng.permutation(n)
        tasks = [base.task(tid) for tid in sorted(t.task_id for t in base)]
        relabeled = TaskGraph(
            [
                Task(int(perm[t.task_id]), t.runtime, t.demands)
                for t in tasks
            ],
            [
                (int(perm[u]), int(perm[v]))
                for u in (t.task_id for t in tasks)
                for v in base.children(u)
            ],
        )
        a1, a2 = graph_arrays(base), graph_arrays(relabeled)
        config = EnvConfig()
        static1 = task_feature_table(a1, config)
        static2 = task_feature_table(a2, config)
        # Dense index i of the base graph maps to this dense index of the
        # relabeled one.
        to2 = np.array(
            [a2.index_of[int(perm[a1.ids[i]])] for i in range(n)]
        )
        assert np.allclose(static2[to2], static1)

        network = GraphPolicyNetwork(
            a1.num_resources, SMALL_GNN, seed=7
        )
        batch = 3
        node_state1 = rng.normal(size=(batch, n, 5))
        node_state2 = np.empty_like(node_state1)
        node_state2[:, to2] = node_state1
        globals_vec = rng.normal(size=(batch, a1.num_resources + 3))
        ready1 = [[0, 3, 5], [1], [2, 4]]
        ready2 = [[int(to2[i]) for i in ready] for ready in ready1]
        logits1 = network.forward_group(
            a1, static1, node_state1, globals_vec, ready1
        )
        logits2 = network.forward_group(
            a2, static2, node_state2, globals_vec, ready2
        )
        assert np.allclose(logits1, logits2, rtol=1e-10, atol=1e-10)


class TestScaleInvariance:
    def test_parameter_count_is_independent_of_dag_size(self):
        network = GraphPolicyNetwork(2, SMALL_GNN, seed=0)
        count = network.num_parameters
        for num_tasks in (5, 40):
            env = _array_env(_graph(num_tasks=num_tasks, seed=num_tasks))
            policy = GraphNetworkPolicy(network, mode="greedy")
            while not env.done:
                env.step(policy.select(env))
            assert env.makespan > 0
        assert network.num_parameters == count

    def test_no_visibility_window(self):
        """A ready set wider than any MLP window still scores directly."""
        network = GraphPolicyNetwork(2, SMALL_GNN, seed=1)
        graph = _graph(num_tasks=30, seed=9)
        arrays = graph_arrays(graph)
        config = EnvConfig()
        static = task_feature_table(arrays, config)
        ready = [list(range(25))]
        logits = network.forward_group(
            arrays,
            static,
            np.zeros((1, 30, 5)),
            np.zeros((1, 5)),
            ready,
        )
        assert logits.shape == (1, 26)


class TestGradients:
    def test_backward_matches_finite_differences(self, rng):
        network = GraphPolicyNetwork(2, SMALL_GNN, seed=3)
        graph = _graph(num_tasks=8, seed=2)
        arrays = graph_arrays(graph)
        config = EnvConfig()
        static = task_feature_table(arrays, config)
        node_state = rng.normal(size=(2, 8, 5))
        globals_vec = rng.normal(size=(2, 5))
        ready = [[0, 2], [1, 3, 4]]
        masks = np.array(
            [[True, True, True, False], [True, False, True, True]]
        )
        actions = np.array([0, 2])

        def nll():
            logits = network.forward_group(
                arrays, static, node_state, globals_vec, ready
            )
            from repro.rl.modules import masked_softmax

            probs = masked_softmax(logits, masks)
            chosen = probs[np.arange(2), actions]
            return -float(np.log(chosen).sum()) / 2

        from repro.rl.modules import masked_softmax

        logits = network.forward_group(
            arrays, static, node_state, globals_vec, ready, keep_cache=True
        )
        probs = masked_softmax(logits, masks)
        dlogits = probs.copy()
        dlogits[np.arange(2), actions] -= 1.0
        dlogits /= 2
        grads = network.backward_group(dlogits)
        eps = 1e-6
        for key in ["enc.W", "mp0.Wc", "mp1.Wp", "glob.W", "head.Wn",
                    "head.w", "proc.W", "proc.c"]:
            flat = network.params[key].ravel()
            index = int(rng.integers(0, flat.size))
            flat[index] += eps
            up = nll()
            flat[index] -= 2 * eps
            down = nll()
            flat[index] += eps
            fd = (up - down) / (2 * eps)
            assert grads[key].ravel()[index] == pytest.approx(
                fd, rel=1e-4, abs=1e-8
            ), key

    def test_backward_without_cache_raises(self):
        network = GraphPolicyNetwork(2, SMALL_GNN, seed=0)
        with pytest.raises(ConfigError, match="no cached forward"):
            network.backward_group(np.zeros((1, 2)))


class TestCrossBackendParity:
    def test_object_and_array_builders_agree(self):
        graph = _graph(num_tasks=12, seed=6)
        obj_env = make_env(graph, EnvConfig(process_until_completion=True))
        arr_env = _array_env(graph)
        builder_obj = GraphObservationBuilder(graph, obj_env.config)
        builder_arr = GraphObservationBuilder(graph, arr_env.config)
        rng = np.random.default_rng(11)
        while not obj_env.done:
            obs_o = builder_obj.build(obj_env)
            obs_a = builder_arr.build(arr_env)
            assert np.array_equal(obs_o.node_state, obs_a.node_state)
            assert np.array_equal(obs_o.globals_vec, obs_a.globals_vec)
            assert obs_o.ready == obs_a.ready
            assert np.array_equal(
                build_graph_action_mask(obj_env),
                build_graph_action_mask(arr_env),
            )
            actions = obj_env.expansion_actions(work_conserving=True)
            action = actions[int(rng.integers(0, len(actions)))]
            obj_env.step(action)
            arr_env.step(action)
        assert arr_env.done


class TestGraphNetworkPolicy:
    def test_action_probabilities_sum_to_one(self):
        network = GraphPolicyNetwork(2, SMALL_GNN, seed=5)
        env = _array_env(_graph(seed=1))
        policy = GraphNetworkPolicy(network, mode="sample", seed=0)
        probs = policy.action_probabilities(env)
        assert sum(probs.values()) == pytest.approx(1.0)
        legal = set(env.expansion_actions(work_conserving=True))
        assert set(probs) <= legal

    def test_greedy_select_is_argmax(self):
        network = GraphPolicyNetwork(2, SMALL_GNN, seed=5)
        env = _array_env(_graph(seed=1))
        policy = GraphNetworkPolicy(network, mode="greedy")
        probs = policy.action_probabilities(env)
        best = max(sorted(probs), key=lambda a: probs[a])
        assert policy.select(env) == best

    def test_episode_completes_with_sampling(self):
        network = GraphPolicyNetwork(2, SMALL_GNN, seed=5)
        env = _array_env(_graph(seed=2))
        policy = GraphNetworkPolicy(network, mode="sample", seed=3)
        steps = 0
        while not env.done:
            env.step(policy.select(env))
            steps += 1
            assert steps < 10_000
        assert env.makespan > 0

    def test_resource_mismatch_rejected(self):
        network = GraphPolicyNetwork(3, SMALL_GNN, seed=0)
        env = _array_env(_graph(seed=1))
        policy = GraphNetworkPolicy(network)
        with pytest.raises(ConfigError, match="resources"):
            policy.begin_episode(env)

    def test_unknown_mode_rejected(self):
        network = GraphPolicyNetwork(2, SMALL_GNN, seed=0)
        with pytest.raises(ConfigError, match="mode"):
            GraphNetworkPolicy(network, mode="beam")


class TestParams:
    def test_get_set_roundtrip(self, rng):
        a = GraphPolicyNetwork(2, SMALL_GNN, seed=1)
        b = GraphPolicyNetwork(2, SMALL_GNN, seed=2)
        b.set_params(a.get_params())
        for key in a.params:
            assert np.array_equal(a.params[key], b.params[key])

    def test_missing_parameter_rejected(self):
        network = GraphPolicyNetwork(2, SMALL_GNN, seed=1)
        params = network.get_params()
        params.pop("enc.W")
        with pytest.raises(ConfigError, match="missing parameter"):
            network.set_params(params)

    def test_shape_mismatch_rejected(self):
        network = GraphPolicyNetwork(2, SMALL_GNN, seed=1)
        params = network.get_params()
        params["enc.W"] = np.zeros((2, 2))
        with pytest.raises(ConfigError):
            network.set_params(params)

    def test_invalid_num_resources(self):
        with pytest.raises(ConfigError):
            GraphPolicyNetwork(0)
