"""Unit tests for the value network and its training pipeline."""

import numpy as np
import pytest

from repro.config import ClusterConfig, EnvConfig
from repro.dag import chain_dag
from repro.dag.generators import random_layered_dag
from repro.config import WorkloadConfig
from repro.errors import ConfigError
from repro.rl import ValueNetwork, collect_value_dataset, train_value_network
from repro.schedulers import SjfPolicy


@pytest.fixture
def env_config():
    return EnvConfig(
        cluster=ClusterConfig(capacities=(10, 10), horizon=6),
        max_ready=4,
        process_until_completion=True,
    )


@pytest.fixture
def graphs():
    workload = WorkloadConfig(
        num_tasks=8, max_runtime=4, max_demand=6,
        runtime_mean=2, runtime_std=1, demand_mean=3, demand_std=2,
    )
    return [random_layered_dag(workload, seed=s) for s in range(3)]


class TestValueNetwork:
    def test_prediction_shape_and_nonnegative(self, rng):
        net = ValueNetwork(5, hidden_sizes=(8,), seed=0)
        predictions = net.predict(rng.normal(size=(4, 5)))
        assert predictions.shape == (4,)
        assert np.all(predictions >= 0)

    def test_invalid_construction(self):
        with pytest.raises(ConfigError):
            ValueNetwork(0)
        with pytest.raises(ConfigError):
            ValueNetwork(5, hidden_sizes=())

    def test_wrong_input_width_rejected(self, rng):
        net = ValueNetwork(5, seed=0)
        with pytest.raises(ConfigError):
            net.predict(rng.normal(size=(2, 7)))

    def test_fit_reduces_loss(self, rng):
        net = ValueNetwork(3, hidden_sizes=(16, 8), seed=0)
        states = rng.normal(size=(200, 3))
        targets = 10 + 5 * states[:, 0] + states[:, 1] ** 2
        losses = net.fit(states, targets, epochs=40, seed=1)
        assert losses[-1] < losses[0]

    def test_fit_learns_a_linear_map_well(self, rng):
        net = ValueNetwork(2, hidden_sizes=(32,), seed=0)
        states = rng.normal(size=(400, 2))
        targets = 20 + 3 * states[:, 0] - 2 * states[:, 1]
        net.fit(states, targets, epochs=150, learning_rate=3e-3, seed=1)
        predictions = net.predict(states)
        correlation = np.corrcoef(predictions, targets)[0, 1]
        assert correlation > 0.9

    def test_misaligned_rejected(self, rng):
        net = ValueNetwork(3, seed=0)
        with pytest.raises(ConfigError):
            net.fit(rng.normal(size=(4, 3)), [1.0, 2.0])

    def test_num_parameters(self):
        net = ValueNetwork(4, hidden_sizes=(8,), seed=0)
        # (4*8 + 8) + (8*1 + 1) = 40 + 9 = 49
        assert net.num_parameters() == 49


class TestValueDataset:
    def test_targets_are_remaining_makespans(self, env_config):
        graph = chain_dag([2, 3], demands=[(2, 2), (2, 2)])
        states, targets = collect_value_dataset(
            [graph], SjfPolicy, env_config
        )
        # Serial 5-slot schedule: first decision sees remaining 5 and the
        # last decision happens at the final completion boundary.
        assert targets[0] == 5
        assert np.all(targets > 0)
        assert len(states) == len(targets)

    def test_multiple_episodes(self, env_config, graphs):
        states, targets = collect_value_dataset(
            graphs, SjfPolicy, env_config, episodes_per_graph=2
        )
        single_states, _ = collect_value_dataset(
            graphs, SjfPolicy, env_config, episodes_per_graph=1
        )
        assert len(states) == 2 * len(single_states)

    def test_train_value_network_end_to_end(self, env_config, graphs):
        net = train_value_network(
            graphs, SjfPolicy, env_config, epochs=30, seed=0
        )
        states, targets = collect_value_dataset(graphs, SjfPolicy, env_config)
        predictions = net.predict(states)
        # On its own training distribution the regressor must correlate.
        correlation = np.corrcoef(predictions, targets)[0, 1]
        assert correlation > 0.5


class TestTruncatedRollout:
    def test_truncated_rollout_estimates(self, tiny_training_setup, graphs):
        from repro.core import TruncatedRollout
        from repro.env import SchedulingEnv

        network, env_config, train_graphs, _ = tiny_training_setup
        value_net = train_value_network(
            train_graphs[:3], SjfPolicy, env_config, epochs=15, seed=0
        )
        rollout = TruncatedRollout(network, value_net, depth_limit=3, seed=0)
        env = SchedulingEnv(graphs[0], env_config)
        estimate = rollout.rollout(env)
        assert estimate >= 1

    def test_full_playout_when_depth_suffices(self, tiny_training_setup):
        from repro.core import TruncatedRollout
        from repro.env import SchedulingEnv

        network, env_config, train_graphs, _ = tiny_training_setup
        value_net = train_value_network(
            train_graphs[:2], SjfPolicy, env_config, epochs=5, seed=0
        )
        graph = chain_dag([1, 1], demands=[(1, 1)] * 2)
        rollout = TruncatedRollout(network, value_net, depth_limit=100, seed=0)
        env = SchedulingEnv(graph, env_config)
        assert rollout.rollout(env) == 2  # exact: episode actually finished

    def test_invalid_depth_rejected(self, tiny_training_setup):
        from repro.core import TruncatedRollout

        network, _, _, _ = tiny_training_setup
        with pytest.raises(ValueError):
            TruncatedRollout(network, None, depth_limit=0)

    def test_spear_with_truncated_rollout(self, tiny_training_setup, graphs):
        """The full extension: MCTS + policy expansion + truncated rollout."""
        from repro.config import MctsConfig
        from repro.core import NetworkExpansion, TruncatedRollout
        from repro.mcts import MctsScheduler
        from repro.metrics import validate_schedule

        network, env_config, train_graphs, _ = tiny_training_setup
        value_net = train_value_network(
            train_graphs[:3], SjfPolicy, env_config, epochs=15, seed=0
        )
        scheduler = MctsScheduler(
            MctsConfig(initial_budget=10, min_budget=3),
            env_config,
            expansion=NetworkExpansion(network),
            rollout=TruncatedRollout(network, value_net, depth_limit=5, seed=0),
            seed=0,
            name="spear-truncated",
        )
        schedule = scheduler.schedule(graphs[0])
        validate_schedule(schedule, graphs[0], env_config.cluster.capacities)