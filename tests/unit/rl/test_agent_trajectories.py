"""Unit tests for the network policy adapter and trajectory recording."""

import numpy as np
import pytest

from repro.config import ClusterConfig, EnvConfig, NetworkConfig
from repro.dag import chain_dag, independent_tasks_dag
from repro.env import PROCESS, SchedulingEnv
from repro.env.observation import observation_size
from repro.errors import ConfigError
from repro.rl import NetworkPolicy, PolicyNetwork
from repro.rl.agent import build_action_mask
from repro.rl.trajectories import returns_to_go, rollout_trajectory


@pytest.fixture
def cfg():
    return EnvConfig(
        cluster=ClusterConfig(capacities=(10, 10), horizon=6), max_ready=4
    )


@pytest.fixture
def net(cfg):
    return PolicyNetwork(
        observation_size(cfg),
        NetworkConfig(hidden_sizes=(12, 6), max_ready=cfg.max_ready),
        seed=0,
    )


class TestActionMask:
    def test_layout(self, cfg):
        graph = independent_tasks_dag([2, 2], demands=[(3, 3), (3, 3)])
        env = SchedulingEnv(graph, cfg)
        mask = build_action_mask(env, cfg.max_ready + 1)
        # Two ready tasks fit; PROCESS illegal on an idle cluster.
        assert mask.tolist() == [True, True, False, False, False]

    def test_process_bit_after_start(self, cfg):
        graph = independent_tasks_dag([2, 2], demands=[(3, 3), (3, 3)])
        env = SchedulingEnv(graph, cfg)
        env.step(0)
        mask = build_action_mask(env, cfg.max_ready + 1)
        assert mask[-1]  # PROCESS now legal

    def test_work_conserving_hides_process(self, cfg):
        graph = independent_tasks_dag([2, 2], demands=[(3, 3), (3, 3)])
        env = SchedulingEnv(graph, cfg)
        env.step(0)
        mask = build_action_mask(env, cfg.max_ready + 1, work_conserving=True)
        assert not mask[-1]
        assert mask[0]


class TestNetworkPolicy:
    def test_selects_legal_actions(self, cfg, net, small_random_graph):
        env = SchedulingEnv(small_random_graph, cfg)
        policy = NetworkPolicy(net, mode="sample", seed=0)
        policy.begin_episode(env)
        for _ in range(15):
            if env.done:
                break
            action = policy.select(env)
            assert action in env.legal_actions()
            env.step(action)

    def test_greedy_is_deterministic(self, cfg, net, small_random_graph):
        env = SchedulingEnv(small_random_graph, cfg)
        policy = NetworkPolicy(net, mode="greedy")
        policy.begin_episode(env)
        assert policy.select(env) == policy.select(env)

    def test_action_probabilities_sum_to_one(self, cfg, net, small_random_graph):
        env = SchedulingEnv(small_random_graph, cfg)
        policy = NetworkPolicy(net, mode="greedy")
        probs = policy.action_probabilities(env)
        assert sum(probs.values()) == pytest.approx(1.0)
        assert set(probs) <= set(env.legal_actions()) | {PROCESS}

    def test_unknown_mode_rejected(self, net):
        with pytest.raises(ConfigError):
            NetworkPolicy(net, mode="argmin")

    def test_window_mismatch_rejected(self, net, small_random_graph):
        bad_cfg = EnvConfig(
            cluster=ClusterConfig(capacities=(10, 10), horizon=6), max_ready=9
        )
        env = SchedulingEnv(small_random_graph, bad_cfg)
        policy = NetworkPolicy(net)
        with pytest.raises(ConfigError, match="max_ready"):
            policy.begin_episode(env)

    def test_observation_size_mismatch_rejected(self, cfg, small_random_graph):
        wrong = PolicyNetwork(
            7, NetworkConfig(hidden_sizes=(4,), max_ready=cfg.max_ready), seed=0
        )
        env = SchedulingEnv(small_random_graph, cfg)
        with pytest.raises(ConfigError, match="observation size"):
            NetworkPolicy(wrong).begin_episode(env)


class TestTrajectories:
    def test_rollout_records_every_decision(self, cfg, net):
        graph = chain_dag([2, 1], demands=[(2, 2), (2, 2)])
        env = SchedulingEnv(graph, cfg)
        policy = NetworkPolicy(net, mode="sample", seed=1)
        trajectory = rollout_trajectory(env, policy, max_steps=100)
        assert trajectory.makespan == env.makespan
        assert trajectory.total_reward == -trajectory.makespan
        assert len(trajectory.steps) >= 2  # two schedules + processes

    def test_rollout_step_cap(self, cfg, net, small_random_graph):
        from repro.errors import EnvironmentStateError

        env = SchedulingEnv(small_random_graph, cfg)
        policy = NetworkPolicy(net, mode="sample", seed=1)
        with pytest.raises(EnvironmentStateError):
            rollout_trajectory(env, policy, max_steps=1)

    def test_returns_to_go(self, cfg, net):
        graph = chain_dag([2, 1], demands=[(2, 2), (2, 2)])
        env = SchedulingEnv(graph, cfg)
        policy = NetworkPolicy(net, mode="greedy")
        trajectory = rollout_trajectory(env, policy, max_steps=100)
        returns = returns_to_go(trajectory)
        assert returns[0] == trajectory.total_reward
        assert returns[-1] == trajectory.steps[-1].reward
        # Monotone non-decreasing (rewards are all <= 0).
        assert all(b >= a for a, b in zip(returns, returns[1:]))
