"""Unit tests for RMSProp and checkpoint round-tripping."""

import numpy as np
import pytest

from repro.config import NetworkConfig
from repro.errors import CheckpointError, ConfigError
from repro.rl import PolicyNetwork, RmsProp, load_checkpoint, save_checkpoint


class TestRmsProp:
    def test_descends_a_quadratic(self):
        """Minimize f(x) = x^2 elementwise; rmsprop must reduce |x|."""
        params = {"x": np.array([5.0, -3.0])}
        opt = RmsProp(learning_rate=0.1, rho=0.9, eps=1e-9)
        for _ in range(200):
            grads = {"x": 2 * params["x"]}
            opt.step(params, grads)
        assert np.all(np.abs(params["x"]) < 0.5)

    def test_update_is_in_place(self):
        params = {"x": np.array([1.0])}
        ref = params["x"]
        RmsProp(0.01).step(params, {"x": np.array([1.0])})
        assert params["x"] is ref

    def test_first_step_magnitude_is_learning_rate(self):
        # cache = 0.1 * g^2; step = lr * g / (sqrt(0.1) |g|) ~ lr * 3.16.
        params = {"x": np.array([0.0])}
        RmsProp(learning_rate=0.5, rho=0.9).step(params, {"x": np.array([4.0])})
        assert params["x"][0] == pytest.approx(-0.5 / np.sqrt(0.1), rel=1e-6)

    def test_missing_gradient_rejected(self):
        with pytest.raises(ConfigError):
            RmsProp(0.01).step({"x": np.zeros(2)}, {})

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ConfigError):
            RmsProp(0.01).step({"x": np.zeros(2)}, {"x": np.zeros(3)})

    def test_reset_clears_cache(self):
        opt = RmsProp(0.5)
        params = {"x": np.array([0.0])}
        opt.step(params, {"x": np.array([4.0])})
        first = params["x"][0]
        opt.reset()
        params2 = {"x": np.array([0.0])}
        opt.step(params2, {"x": np.array([4.0])})
        assert params2["x"][0] == pytest.approx(first)

    @pytest.mark.parametrize(
        "kwargs",
        [{"learning_rate": 0}, {"rho": 1.0}, {"rho": -0.1}, {"eps": 0}],
    )
    def test_invalid_hyperparameters(self, kwargs):
        with pytest.raises(ConfigError):
            RmsProp(**{"learning_rate": 0.01, **kwargs})


class TestCheckpoints:
    @pytest.fixture
    def net(self):
        return PolicyNetwork(
            12, NetworkConfig(hidden_sizes=(8, 4), max_ready=3), seed=2
        )

    def test_roundtrip_preserves_weights(self, net, tmp_path):
        path = tmp_path / "net.npz"
        save_checkpoint(net, path)
        restored = load_checkpoint(path)
        assert restored.input_size == net.input_size
        assert restored.config.hidden_sizes == net.config.hidden_sizes
        assert restored.config.max_ready == net.config.max_ready
        for key in net.params:
            assert np.array_equal(restored.params[key], net.params[key])

    def test_roundtrip_preserves_behaviour(self, net, tmp_path, rng):
        path = tmp_path / "net.npz"
        save_checkpoint(net, path)
        restored = load_checkpoint(path)
        states = rng.normal(size=(4, 12))
        masks = np.ones((4, 4), dtype=bool)
        assert np.allclose(
            restored.probabilities(states, masks),
            net.probabilities(states, masks),
        )

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(CheckpointError, match="does not exist"):
            load_checkpoint(tmp_path / "nope.npz")

    def test_corrupt_file_raises(self, tmp_path, net):
        path = tmp_path / "net.npz"
        save_checkpoint(net, path)
        # Strip a required key by rewriting the archive.
        with np.load(path) as data:
            payload = {k: data[k] for k in data.files if k != "meta_input_size"}
        np.savez(path, **payload)
        with pytest.raises(CheckpointError):
            load_checkpoint(path)

    def test_creates_parent_directories(self, net, tmp_path):
        path = tmp_path / "deep" / "dir" / "net.npz"
        save_checkpoint(net, path)
        assert path.exists()


class TestClipGlobalNorm:
    def test_noop_below_threshold(self):
        from repro.rl import clip_global_norm

        grads = {"a": np.array([3.0, 4.0])}  # norm 5
        norm = clip_global_norm(grads, 10.0)
        assert norm == pytest.approx(5.0)
        assert np.array_equal(grads["a"], [3.0, 4.0])

    def test_scales_above_threshold(self):
        from repro.rl import clip_global_norm

        grads = {"a": np.array([3.0, 0.0]), "b": np.array([[0.0, 4.0]])}
        norm = clip_global_norm(grads, 1.0)
        assert norm == pytest.approx(5.0)
        total = np.sqrt(
            sum(float(np.sum(g * g)) for g in grads.values())
        )
        assert total == pytest.approx(1.0)
        # Direction is preserved.
        assert grads["a"][0] == pytest.approx(3.0 / 5.0)
        assert grads["b"][0, 1] == pytest.approx(4.0 / 5.0)

    def test_clips_in_place(self):
        from repro.rl import clip_global_norm

        grads = {"a": np.array([10.0])}
        ref = grads["a"]
        clip_global_norm(grads, 1.0)
        assert grads["a"] is ref

    @pytest.mark.parametrize("max_norm", [0.0, -1.0])
    def test_nonpositive_max_norm_rejected(self, max_norm):
        from repro.rl import clip_global_norm

        with pytest.raises(ConfigError, match="max_norm"):
            clip_global_norm({"a": np.ones(2)}, max_norm)


class TestCheckpointV2:
    """Schema v2: kind-discriminated policy checkpoints."""

    def _gnn(self, seed=4):
        from repro.config import GnnConfig
        from repro.rl import GraphPolicyNetwork

        config = GnnConfig(
            hidden_size=8, rounds=1, head_hidden=4, global_hidden=8
        )
        return GraphPolicyNetwork(2, config, seed=seed)

    def test_gnn_roundtrip(self, tmp_path):
        from repro.rl import load_policy_checkpoint

        net = self._gnn()
        path = tmp_path / "gnn.npz"
        save_checkpoint(net, path)
        restored = load_policy_checkpoint(path)
        assert restored.kind == "policy_gnn"
        assert restored.num_resources == net.num_resources
        assert restored.config == net.config
        for key in net.params:
            assert np.array_equal(restored.params[key], net.params[key])

    def test_load_policy_checkpoint_dispatches_mlp(self, tmp_path):
        from repro.rl import load_policy_checkpoint

        net = PolicyNetwork(
            12, NetworkConfig(hidden_sizes=(8, 4), max_ready=3), seed=2
        )
        path = tmp_path / "mlp.npz"
        save_checkpoint(net, path)
        restored = load_policy_checkpoint(path)
        assert restored.kind == "policy_mlp"
        assert restored.input_size == net.input_size

    def test_legacy_v1_file_loads_as_mlp(self, tmp_path):
        # A v1 checkpoint: version marker 1, no meta_kind.
        net = PolicyNetwork(
            12, NetworkConfig(hidden_sizes=(8, 4), max_ready=3), seed=2
        )
        path = tmp_path / "v1.npz"
        payload = {f"param_{k}": v for k, v in net.params.items()}
        payload["meta_version"] = np.asarray([1])
        payload["meta_input_size"] = np.asarray([net.input_size])
        payload["meta_hidden_sizes"] = np.asarray(net.config.hidden_sizes)
        payload["meta_max_ready"] = np.asarray([net.config.max_ready])
        np.savez(path, **payload)
        restored = load_checkpoint(path)
        for key in net.params:
            assert np.array_equal(restored.params[key], net.params[key])

    def test_kind_mismatch_raises_clear_error(self, tmp_path):
        net = self._gnn()
        path = tmp_path / "gnn.npz"
        save_checkpoint(net, path)
        with pytest.raises(CheckpointError, match="policy_gnn"):
            load_checkpoint(path)

    def test_unsupported_version_rejected(self, tmp_path):
        from repro.rl import load_policy_checkpoint

        net = self._gnn()
        path = tmp_path / "future.npz"
        save_checkpoint(net, path)
        with np.load(path) as data:
            payload = {k: data[k] for k in data.files}
        payload["meta_version"] = np.asarray([99])
        np.savez(path, **payload)
        with pytest.raises(CheckpointError, match="version"):
            load_policy_checkpoint(path)

    def test_unknown_kind_rejected(self, tmp_path):
        from repro.rl import load_policy_checkpoint

        net = self._gnn()
        path = tmp_path / "odd.npz"
        save_checkpoint(net, path)
        with np.load(path) as data:
            payload = {k: data[k] for k in data.files}
        payload["meta_kind"] = np.asarray(["policy_quantum"])
        np.savez(path, **payload)
        with pytest.raises(CheckpointError, match="unknown model kind"):
            load_policy_checkpoint(path)

    def test_unsaveable_model_rejected(self, tmp_path):
        class Strange:
            kind = "value"
            params = {}

        with pytest.raises(CheckpointError, match="cannot checkpoint"):
            save_checkpoint(Strange(), tmp_path / "x.npz")
