"""Unit tests for RMSProp and checkpoint round-tripping."""

import numpy as np
import pytest

from repro.config import NetworkConfig
from repro.errors import CheckpointError, ConfigError
from repro.rl import PolicyNetwork, RmsProp, load_checkpoint, save_checkpoint


class TestRmsProp:
    def test_descends_a_quadratic(self):
        """Minimize f(x) = x^2 elementwise; rmsprop must reduce |x|."""
        params = {"x": np.array([5.0, -3.0])}
        opt = RmsProp(learning_rate=0.1, rho=0.9, eps=1e-9)
        for _ in range(200):
            grads = {"x": 2 * params["x"]}
            opt.step(params, grads)
        assert np.all(np.abs(params["x"]) < 0.5)

    def test_update_is_in_place(self):
        params = {"x": np.array([1.0])}
        ref = params["x"]
        RmsProp(0.01).step(params, {"x": np.array([1.0])})
        assert params["x"] is ref

    def test_first_step_magnitude_is_learning_rate(self):
        # cache = 0.1 * g^2; step = lr * g / (sqrt(0.1) |g|) ~ lr * 3.16.
        params = {"x": np.array([0.0])}
        RmsProp(learning_rate=0.5, rho=0.9).step(params, {"x": np.array([4.0])})
        assert params["x"][0] == pytest.approx(-0.5 / np.sqrt(0.1), rel=1e-6)

    def test_missing_gradient_rejected(self):
        with pytest.raises(ConfigError):
            RmsProp(0.01).step({"x": np.zeros(2)}, {})

    def test_shape_mismatch_rejected(self):
        with pytest.raises(ConfigError):
            RmsProp(0.01).step({"x": np.zeros(2)}, {"x": np.zeros(3)})

    def test_reset_clears_cache(self):
        opt = RmsProp(0.5)
        params = {"x": np.array([0.0])}
        opt.step(params, {"x": np.array([4.0])})
        first = params["x"][0]
        opt.reset()
        params2 = {"x": np.array([0.0])}
        opt.step(params2, {"x": np.array([4.0])})
        assert params2["x"][0] == pytest.approx(first)

    @pytest.mark.parametrize(
        "kwargs",
        [{"learning_rate": 0}, {"rho": 1.0}, {"rho": -0.1}, {"eps": 0}],
    )
    def test_invalid_hyperparameters(self, kwargs):
        with pytest.raises(ConfigError):
            RmsProp(**{"learning_rate": 0.01, **kwargs})


class TestCheckpoints:
    @pytest.fixture
    def net(self):
        return PolicyNetwork(
            12, NetworkConfig(hidden_sizes=(8, 4), max_ready=3), seed=2
        )

    def test_roundtrip_preserves_weights(self, net, tmp_path):
        path = tmp_path / "net.npz"
        save_checkpoint(net, path)
        restored = load_checkpoint(path)
        assert restored.input_size == net.input_size
        assert restored.config.hidden_sizes == net.config.hidden_sizes
        assert restored.config.max_ready == net.config.max_ready
        for key in net.params:
            assert np.array_equal(restored.params[key], net.params[key])

    def test_roundtrip_preserves_behaviour(self, net, tmp_path, rng):
        path = tmp_path / "net.npz"
        save_checkpoint(net, path)
        restored = load_checkpoint(path)
        states = rng.normal(size=(4, 12))
        masks = np.ones((4, 4), dtype=bool)
        assert np.allclose(
            restored.probabilities(states, masks),
            net.probabilities(states, masks),
        )

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(CheckpointError, match="does not exist"):
            load_checkpoint(tmp_path / "nope.npz")

    def test_corrupt_file_raises(self, tmp_path, net):
        path = tmp_path / "net.npz"
        save_checkpoint(net, path)
        # Strip a required key by rewriting the archive.
        with np.load(path) as data:
            payload = {k: data[k] for k in data.files if k != "meta_input_size"}
        np.savez(path, **payload)
        with pytest.raises(CheckpointError):
            load_checkpoint(path)

    def test_creates_parent_directories(self, net, tmp_path):
        path = tmp_path / "deep" / "dir" / "net.npz"
        save_checkpoint(net, path)
        assert path.exists()
