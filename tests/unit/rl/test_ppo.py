"""Unit tests for PPO with GAE (repro.rl.ppo)."""

import numpy as np
import pytest

from repro.config import EnvConfig, GnnConfig, TrainingConfig, WorkloadConfig
from repro.core.pipeline import (
    default_graph_network,
    default_network,
    training_graphs,
)
from repro.errors import ConfigError
from repro.rl.ppo import PpoTrainer, gae_advantages
from repro.rl.trainer import EpochStats


class TestGaeAdvantages:
    def test_lambda_one_gamma_one_is_return_minus_value(self):
        rewards = np.array([1.0, 2.0, 3.0])
        values = np.array([0.5, 1.0, -0.5])
        adv = gae_advantages(rewards, values, gamma=1.0, lam=1.0)
        returns = np.array([6.0, 5.0, 3.0])
        assert np.allclose(adv, returns - values)

    def test_lambda_zero_is_one_step_td_error(self):
        rewards = np.array([1.0, 2.0, 3.0])
        values = np.array([0.5, 1.0, -0.5])
        gamma = 0.9
        adv = gae_advantages(rewards, values, gamma=gamma, lam=0.0)
        # Terminal state bootstraps zero.
        expected = np.array(
            [
                1.0 + gamma * 1.0 - 0.5,
                2.0 + gamma * -0.5 - 1.0,
                3.0 + gamma * 0.0 + 0.5,
            ]
        )
        assert np.allclose(adv, expected)

    def test_recurrence_matches_direct_sum(self):
        rng = np.random.default_rng(0)
        rewards = rng.normal(size=6)
        values = rng.normal(size=6)
        gamma, lam = 0.95, 0.7
        adv = gae_advantages(rewards, values, gamma=gamma, lam=lam)
        deltas = rewards + gamma * np.append(values[1:], 0.0) - values
        direct = [
            sum(
                (gamma * lam) ** (k - t) * deltas[k]
                for k in range(t, len(deltas))
            )
            for t in range(len(deltas))
        ]
        assert np.allclose(adv, direct)


def _setup(policy="mlp"):
    env_config = EnvConfig(process_until_completion=True)
    training = TrainingConfig(
        num_examples=2,
        example_num_tasks=6,
        rollouts_per_example=2,
        epochs=2,
        batch_size=2,
        ppo_epochs=2,
        ppo_minibatch=8,
    )
    workload = WorkloadConfig(num_tasks=6, max_runtime=8, max_demand=8)
    graphs = training_graphs(training, workload, seed=99)
    if policy == "mlp":
        network = default_network(env_config, seed=13)
    else:
        network = default_graph_network(
            env_config,
            GnnConfig(hidden_size=8, rounds=1, head_hidden=4, global_hidden=8),
            seed=13,
        )
    return network, graphs, env_config, training


class TestPpoTrainer:
    @pytest.mark.parametrize("policy", ["mlp", "gnn"])
    def test_trains_and_moves_parameters(self, policy):
        network, graphs, env_config, training = _setup(policy)
        before = {k: v.copy() for k, v in network.params.items()}
        trainer = PpoTrainer(
            network, graphs, env_config=env_config, training=training, seed=5
        )
        history = trainer.train()
        assert len(history) == training.epochs
        assert all(isinstance(s, EpochStats) for s in history)
        assert all(s.num_trajectories == 4 for s in history)
        moved = max(
            float(np.abs(network.params[k] - before[k]).max()) for k in before
        )
        assert moved > 0.0

    def test_critic_learns_on_model_features(self):
        network, graphs, env_config, training = _setup("mlp")
        trainer = PpoTrainer(
            network, graphs, env_config=env_config, training=training, seed=5
        )
        assert trainer.value_network.input_size == network.value_feature_size
        trainer.train(epochs=1)
        # After one epoch the critic has been fitted to -returns and
        # produces finite predictions.
        features = np.zeros((3, network.value_feature_size))
        assert np.all(np.isfinite(trainer.value_network.predict(features)))

    def test_deterministic_given_seed(self):
        results = []
        for _ in range(2):
            network, graphs, env_config, training = _setup("mlp")
            trainer = PpoTrainer(
                network, graphs, env_config=env_config, training=training,
                seed=21,
            )
            trainer.train(epochs=1)
            results.append(
                {k: v.copy() for k, v in network.params.items()}
            )
        for key in results[0]:
            assert np.array_equal(results[0][key], results[1][key])

    def test_grad_clip_bounds_the_update(self):
        from dataclasses import replace

        network, graphs, env_config, training = _setup("mlp")
        training = replace(training, max_grad_norm=1e-9)
        before = {k: v.copy() for k, v in network.params.items()}
        trainer = PpoTrainer(
            network, graphs, env_config=env_config, training=training, seed=5
        )
        trainer.train(epochs=1)
        # A vanishing clip norm shrinks every gradient to ~0; RMSProp
        # still steps but the per-parameter movement stays tiny and
        # finite.
        for key in before:
            assert np.all(np.isfinite(network.params[key]))

    @pytest.mark.parametrize("policy", ["mlp", "gnn"])
    def test_zero_weights_give_zero_policy_gradient(self, policy):
        """Clipped samples enter the backward pass with weight 0 and must
        contribute exactly no gradient."""
        network, graphs, env_config, training = _setup(policy)
        trainer = PpoTrainer(
            network, graphs, env_config=env_config, training=training, seed=5
        )
        trajectories = trainer.sample_trajectories(graphs[0])
        steps, actions = trainer.flatten_steps(trajectories)
        grads, _ = network.policy_gradient_steps(
            steps, actions, np.zeros(len(steps))
        )
        for key, grad in grads.items():
            assert np.all(grad == 0.0), key

    def test_pipeline_exposes_ppo(self):
        from repro.core.pipeline import TRAINER_CLASSES, train_spear_network

        assert TRAINER_CLASSES["ppo"] is PpoTrainer
        with pytest.raises(ConfigError, match="unknown training algorithm"):
            train_spear_network(algo="nope")
        with pytest.raises(ConfigError, match="unknown policy family"):
            train_spear_network(policy="transformer")
