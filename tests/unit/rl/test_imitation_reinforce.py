"""Unit tests for the imitation and REINFORCE trainers."""

import numpy as np
import pytest

from repro.config import ClusterConfig, EnvConfig, NetworkConfig, TrainingConfig
from repro.dag import chain_dag
from repro.dag.generators import random_layered_dag
from repro.config import WorkloadConfig
from repro.env.observation import observation_size
from repro.rl import ImitationTrainer, PolicyNetwork, ReinforceTrainer
from repro.rl.trajectories import Trajectory, Step


@pytest.fixture
def cfg():
    return EnvConfig(
        cluster=ClusterConfig(capacities=(10, 10), horizon=6),
        max_ready=4,
        process_until_completion=True,
    )


@pytest.fixture
def net(cfg):
    return PolicyNetwork(
        observation_size(cfg),
        NetworkConfig(hidden_sizes=(16, 8), max_ready=cfg.max_ready),
        seed=0,
    )


@pytest.fixture
def training():
    return TrainingConfig(
        num_examples=3,
        example_num_tasks=6,
        rollouts_per_example=4,
        supervised_epochs=10,
        batch_size=8,
        epochs=2,
    )


@pytest.fixture
def graphs():
    # Demands are large relative to the 10x10 cluster so scheduling order
    # actually matters (otherwise every rollout ties and advantages vanish).
    workload = WorkloadConfig(
        num_tasks=6, max_runtime=4, max_demand=8,
        runtime_mean=2, runtime_std=1, demand_mean=5, demand_std=2,
    )
    return [random_layered_dag(workload, seed=s) for s in range(3)]


class TestImitation:
    def test_collect_shapes(self, net, cfg, training, graphs):
        trainer = ImitationTrainer(net, cfg, training=training, seed=0)
        dataset = trainer.collect(graphs)
        assert len(dataset) > 0
        assert dataset.states.shape == (len(dataset), net.input_size)
        assert dataset.masks.shape == (len(dataset), net.num_actions)
        assert dataset.actions.max() < net.num_actions

    def test_teacher_actions_are_legal(self, net, cfg, training, graphs):
        trainer = ImitationTrainer(net, cfg, training=training, seed=0)
        dataset = trainer.collect(graphs)
        chosen = dataset.masks[np.arange(len(dataset)), dataset.actions]
        assert chosen.all()

    def test_loss_decreases(self, net, cfg, training, graphs):
        trainer = ImitationTrainer(net, cfg, training=training, seed=0)
        losses = trainer.fit(graphs, epochs=15)
        assert losses[-1] < losses[0]

    def test_accuracy_improves_over_chance(self, net, cfg, training, graphs):
        trainer = ImitationTrainer(net, cfg, training=training, seed=0)
        dataset = trainer.collect(graphs)
        before = trainer.accuracy(dataset)
        for _ in range(25):
            trainer.train_epoch(dataset)
        after = trainer.accuracy(dataset)
        assert after >= before

    def test_custom_teacher(self, net, cfg, training, graphs):
        from repro.schedulers import SjfPolicy

        trainer = ImitationTrainer(
            net, cfg, teacher_factory=SjfPolicy, training=training, seed=0
        )
        dataset = trainer.collect(graphs[:1])
        assert len(dataset) > 0


class TestAdvantages:
    def _fake_trajectory(self, rewards):
        steps = [
            Step(np.zeros(1), np.ones(1, dtype=bool), 0, r) for r in rewards
        ]
        return Trajectory(steps=steps, makespan=-sum(rewards))

    def test_equal_trajectories_have_zero_advantage(self):
        trajectories = [self._fake_trajectory([-1, -1])] * 3
        advantages = ReinforceTrainer.advantages(trajectories)
        for adv in advantages:
            assert np.allclose(adv, 0.0)

    def test_better_than_baseline_positive(self):
        good = self._fake_trajectory([-1])
        bad = self._fake_trajectory([-3])
        adv_good, adv_bad = ReinforceTrainer.advantages([good, bad])
        assert adv_good[0] > 0
        assert adv_bad[0] < 0

    def test_unequal_lengths_aligned_by_step(self):
        short = self._fake_trajectory([-2])
        long = self._fake_trajectory([-2, -2])
        adv_short, adv_long = ReinforceTrainer.advantages([short, long])
        assert len(adv_short) == 1
        assert len(adv_long) == 2
        # Step 0 baselines average over both; step 1 only over `long`.
        assert adv_long[1] == pytest.approx(0.0)


class TestReinforce:
    def test_epoch_stats_recorded(self, net, cfg, training, graphs):
        trainer = ReinforceTrainer(net, graphs, cfg, training, seed=0)
        stats = trainer.train_epoch(0)
        assert stats.num_trajectories == len(graphs) * training.rollouts_per_example
        assert stats.best_makespan <= stats.mean_makespan <= stats.worst_makespan
        assert stats.mean_entropy >= 0
        assert trainer.history == [stats]

    def test_train_runs_requested_epochs(self, net, cfg, training, graphs):
        trainer = ReinforceTrainer(net, graphs, cfg, training, seed=0)
        history = trainer.train(epochs=2)
        assert len(history) == 2
        assert [h.epoch for h in history] == [0, 1]

    def test_update_changes_parameters(self, net, cfg, training, graphs):
        trainer = ReinforceTrainer(net, graphs, cfg, training, seed=0)
        before = net.get_params()
        trainer.train_epoch(0)
        changed = any(
            not np.array_equal(before[k], net.params[k]) for k in before
        )
        assert changed

    def test_evaluate_returns_one_makespan_per_graph(
        self, net, cfg, training, graphs
    ):
        trainer = ReinforceTrainer(net, graphs, cfg, training, seed=0)
        makespans = trainer.evaluate(graphs)
        assert len(makespans) == len(graphs)
        assert all(m > 0 for m in makespans)

    def test_empty_graphs_rejected(self, net, cfg, training):
        with pytest.raises(ValueError):
            ReinforceTrainer(net, [], cfg, training)

    def test_entropy_bonus_path(self, net, cfg, graphs):
        training = TrainingConfig(
            num_examples=3,
            example_num_tasks=6,
            rollouts_per_example=2,
            batch_size=8,
            entropy_bonus=0.01,
        )
        trainer = ReinforceTrainer(net, graphs, cfg, training, seed=0)
        stats = trainer.train_epoch(0)
        assert np.isfinite(stats.mean_entropy)

    def test_training_reduces_makespan_on_single_chain(self, cfg):
        """On one fixed tiny instance REINFORCE should not diverge: mean
        sampled makespan after training stays within the instance's range
        and the best rollout finds the serial optimum."""
        graph = chain_dag([2, 2], demands=[(2, 2), (2, 2)])
        net = PolicyNetwork(
            observation_size(cfg),
            NetworkConfig(hidden_sizes=(16, 8), max_ready=cfg.max_ready),
            seed=1,
        )
        training = TrainingConfig(
            num_examples=1,
            example_num_tasks=2,
            rollouts_per_example=4,
            batch_size=4,
        )
        trainer = ReinforceTrainer(net, [graph], cfg, training, seed=0)
        history = trainer.train(epochs=5)
        # A 2-chain has a forced makespan of 4 under any legal policy.
        assert history[-1].best_makespan == 4
