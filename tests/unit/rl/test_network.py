"""Unit tests for the policy network (forward, masking, gradients)."""

import numpy as np
import pytest

from repro.config import NetworkConfig
from repro.errors import ConfigError
from repro.rl import PolicyNetwork


@pytest.fixture
def net():
    return PolicyNetwork(
        10, NetworkConfig(hidden_sizes=(16, 8), max_ready=3), seed=0
    )


class TestConstruction:
    def test_paper_architecture(self):
        net = PolicyNetwork(147, seed=0)
        assert net.config.hidden_sizes == (256, 32, 32)
        assert net.num_actions == 16
        assert net.num_layers == 4
        assert net.params["W0"].shape == (147, 256)
        assert net.params["W3"].shape == (32, 16)

    def test_rejects_zero_input(self):
        with pytest.raises(ConfigError):
            PolicyNetwork(0)

    def test_num_parameters(self, net):
        # (10*16 + 16) + (16*8 + 8) + (8*4 + 4) = 176 + 136 + 36 = 348
        assert net.num_parameters() == 348

    def test_seeded_init_reproducible(self):
        a = PolicyNetwork(10, NetworkConfig(hidden_sizes=(4,), max_ready=2), seed=5)
        b = PolicyNetwork(10, NetworkConfig(hidden_sizes=(4,), max_ready=2), seed=5)
        assert all(np.array_equal(a.params[k], b.params[k]) for k in a.params)


class TestForward:
    def test_logits_shape(self, net, rng):
        states = rng.normal(size=(7, 10))
        assert net.logits(states).shape == (7, 4)

    def test_single_state_promoted_to_batch(self, net, rng):
        assert net.logits(rng.normal(size=10)).shape == (1, 4)

    def test_wrong_width_rejected(self, net, rng):
        with pytest.raises(ConfigError):
            net.logits(rng.normal(size=(2, 11)))

    def test_probabilities_sum_to_one(self, net, rng):
        states = rng.normal(size=(5, 10))
        masks = np.ones((5, 4), dtype=bool)
        probs = net.probabilities(states, masks)
        assert np.allclose(probs.sum(axis=1), 1.0)
        assert np.all(probs >= 0)

    def test_masked_actions_get_zero_probability(self, net, rng):
        states = rng.normal(size=(3, 10))
        masks = np.ones((3, 4), dtype=bool)
        masks[:, 2] = False
        probs = net.probabilities(states, masks)
        assert np.all(probs[:, 2] == 0.0)
        assert np.allclose(probs.sum(axis=1), 1.0)

    def test_all_masked_rejected(self, net, rng):
        states = rng.normal(size=(1, 10))
        masks = np.zeros((1, 4), dtype=bool)
        with pytest.raises(ConfigError):
            net.probabilities(states, masks)

    def test_mask_shape_mismatch_rejected(self, net, rng):
        with pytest.raises(ConfigError):
            net.probabilities(rng.normal(size=(1, 10)), np.ones((2, 4), bool))

    def test_softmax_numerically_stable(self):
        logits = np.array([[1e5, 0.0, -1e5]])
        masks = np.ones((1, 3), dtype=bool)
        probs = PolicyNetwork.masked_softmax(logits, masks)
        assert np.isfinite(probs).all()
        assert probs[0, 0] == pytest.approx(1.0)


class TestGradients:
    def test_backward_requires_cached_forward(self, net):
        with pytest.raises(ConfigError):
            net.backward_from_dlogits(np.zeros((1, 4)))

    def test_gradient_shapes_match_params(self, net, rng):
        states = rng.normal(size=(6, 10))
        masks = np.ones((6, 4), dtype=bool)
        grads, nll = net.policy_gradient(states, masks, [0] * 6, [1.0] * 6)
        assert set(grads) == set(net.params)
        for key in grads:
            assert grads[key].shape == net.params[key].shape
        assert nll > 0

    def test_gradient_numerically_correct(self, rng):
        """Finite-difference check of d(-log pi)/dW on a tiny network."""
        net = PolicyNetwork(4, NetworkConfig(hidden_sizes=(5,), max_ready=2), seed=1)
        state = rng.normal(size=(1, 4))
        mask = np.ones((1, 3), dtype=bool)
        action, weight = 1, 1.0

        grads, _ = net.policy_gradient(state, mask, [action], [weight])

        def loss():
            probs = net.probabilities(state, mask)
            return -np.log(probs[0, action])

        eps = 1e-6
        for key in ("W0", "b1"):
            flat_grad = grads[key].ravel()
            for idx in range(0, flat_grad.size, max(1, flat_grad.size // 5)):
                original = net.params[key].ravel()[idx]
                net.params[key].ravel()[idx] = original + eps
                up = loss()
                net.params[key].ravel()[idx] = original - eps
                down = loss()
                net.params[key].ravel()[idx] = original
                numeric = (up - down) / (2 * eps)
                assert flat_grad[idx] == pytest.approx(numeric, abs=1e-4)

    def test_zero_weight_gives_zero_gradient(self, net, rng):
        states = rng.normal(size=(3, 10))
        masks = np.ones((3, 4), dtype=bool)
        grads, _ = net.policy_gradient(states, masks, [0, 1, 2], [0.0, 0.0, 0.0])
        for key in grads:
            assert np.allclose(grads[key], 0.0)

    def test_illegal_action_rejected(self, net, rng):
        states = rng.normal(size=(1, 10))
        masks = np.ones((1, 4), dtype=bool)
        masks[0, 1] = False
        with pytest.raises(ConfigError, match="illegal"):
            net.policy_gradient(states, masks, [1], [1.0])

    def test_misaligned_batch_rejected(self, net, rng):
        states = rng.normal(size=(2, 10))
        masks = np.ones((2, 4), dtype=bool)
        with pytest.raises(ConfigError):
            net.policy_gradient(states, masks, [0], [1.0])


class TestParamPlumbing:
    def test_get_set_roundtrip(self, net, rng):
        snapshot = net.get_params()
        net.params["W0"] += 1.0
        net.set_params(snapshot)
        assert np.array_equal(net.params["W0"], snapshot["W0"])

    def test_get_params_copies(self, net):
        snapshot = net.get_params()
        snapshot["W0"] += 5.0
        assert not np.array_equal(net.params["W0"], snapshot["W0"])

    def test_set_params_shape_mismatch_rejected(self, net):
        bad = net.get_params()
        bad["W0"] = np.zeros((2, 2))
        with pytest.raises(ConfigError):
            net.set_params(bad)

    def test_set_params_missing_key_rejected(self, net):
        bad = net.get_params()
        del bad["W0"]
        with pytest.raises(ConfigError):
            net.set_params(bad)
