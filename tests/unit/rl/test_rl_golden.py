"""Golden RL numerics: fixed-seed module/trainer runs asserted bit-exact.

The committed ``tests/data/rl_golden.json`` pins the numerics of the
differentiable module stack and both historical trainers as they were
before the pluggable-policy refactor: fixed-seed logits, masked
probabilities, policy gradients, value-network fits, imitation loss
curves and three epochs of REINFORCE (every float via ``float.hex()``,
final parameters via SHA-256 digest).  Any refactor of ``repro.rl``
must leave all of these byte-identical.

Case definitions and serialization live in
``tests/data/make_rl_golden.py`` (also the regeneration script), so
this test can never disagree with what regeneration writes.
"""

import importlib.util
from pathlib import Path

import pytest


def _load_make_rl_golden():
    path = Path(__file__).resolve().parents[3] / "tests" / "data" / "make_rl_golden.py"
    spec = importlib.util.spec_from_file_location("make_rl_golden", path)
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


make_rl_golden = _load_make_rl_golden()


@pytest.fixture(scope="module")
def golden():
    return make_rl_golden.compute_golden()


def test_golden_file_exists():
    assert make_rl_golden.GOLDEN_PATH.exists(), (
        "missing tests/data/rl_golden.json; regenerate with "
        "PYTHONPATH=src python tests/data/make_rl_golden.py"
    )


@pytest.mark.parametrize("case", ["network", "value", "imitation", "reinforce"])
def test_golden_case_bit_identical(golden, case):
    import json

    expected = json.loads(
        make_rl_golden.GOLDEN_PATH.read_text(encoding="utf-8")
    )
    assert golden[case] == expected[case], (
        f"rl golden case {case!r} diverged — the refactored stack no "
        "longer reproduces the historical numerics bit-for-bit; if the "
        "change is intentional, regenerate and document it"
    )


def test_golden_serialization_byte_identical(golden):
    expected = make_rl_golden.GOLDEN_PATH.read_text(encoding="utf-8")
    assert make_rl_golden.serialize(golden) == expected
