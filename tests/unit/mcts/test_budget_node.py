"""Unit tests for budget decay (Eq. 4) and tree nodes (Eq. 5)."""

import math

import pytest

from repro.config import ClusterConfig, EnvConfig
from repro.dag import independent_tasks_dag
from repro.env import SchedulingEnv
from repro.errors import ConfigError
from repro.mcts import Node, budget_at_depth


class TestBudgetDecay:
    def test_root_gets_full_budget(self):
        assert budget_at_depth(1000, 100, 1) == 1000

    def test_inverse_proportionality(self):
        assert budget_at_depth(1000, 100, 2) == 500
        assert budget_at_depth(1000, 100, 5) == 200

    def test_floor_applies(self):
        assert budget_at_depth(1000, 100, 50) == 100

    def test_exact_floor_boundary(self):
        assert budget_at_depth(1000, 100, 10) == 100

    def test_invalid_depth(self):
        with pytest.raises(ConfigError):
            budget_at_depth(1000, 100, 0)

    def test_invalid_budgets(self):
        with pytest.raises(ConfigError):
            budget_at_depth(0, 1, 1)
        with pytest.raises(ConfigError):
            budget_at_depth(10, 0, 1)


@pytest.fixture
def env():
    graph = independent_tasks_dag([2, 2], demands=[(3, 3), (3, 3)])
    return SchedulingEnv(
        graph,
        EnvConfig(
            cluster=ClusterConfig(capacities=(10, 10), horizon=6),
            max_ready=4,
            process_until_completion=True,
        ),
    )


class TestNode:
    def test_initial_statistics(self, env):
        node = Node(env, untried=[0, 1])
        assert node.visits == 0
        assert node.max_value == -math.inf
        assert node.mean_value == 0.0
        assert not node.fully_expanded
        assert not node.is_terminal

    def test_update_tracks_max_and_mean(self, env):
        node = Node(env)
        node.update(-10.0)
        node.update(-4.0)
        node.update(-7.0)
        assert node.visits == 3
        assert node.max_value == -4.0
        assert node.mean_value == pytest.approx(-7.0)

    def test_unvisited_child_scores_infinity(self, env):
        parent = Node(env, untried=[])
        child = Node(env.clone(), parent=parent, action=0)
        parent.children[0] = child
        parent.visits = 1
        assert parent.ucb_score(child, c=1.0) == math.inf

    def test_ucb_matches_eq5(self, env):
        parent = Node(env)
        parent.visits = 10
        child = Node(env.clone(), parent=parent, action=0)
        child.visits = 4
        child.max_value = -50.0
        child.sum_value = -240.0
        c = 30.0
        expected = -50.0 + c * math.sqrt(math.log(10) / 4)
        assert parent.ucb_score(child, c) == pytest.approx(expected)

    def test_classic_ucb_uses_mean(self, env):
        parent = Node(env)
        parent.visits = 10
        child = Node(env.clone(), parent=parent, action=0)
        child.visits = 4
        child.max_value = -50.0
        child.sum_value = -240.0
        expected = -60.0 + 30.0 * math.sqrt(math.log(10) / 4)
        assert parent.ucb_score(child, 30.0, use_max=False) == pytest.approx(expected)

    def test_best_child_prefers_max_value(self, env):
        parent = Node(env)
        parent.visits = 20
        for action, (max_v, visits) in enumerate([(-50.0, 10), (-40.0, 10)]):
            child = Node(env.clone(), parent=parent, action=action)
            child.visits = visits
            child.max_value = max_v
            child.sum_value = max_v * visits
            parent.children[action] = child
        assert parent.best_child(c=0.001).action == 1

    def test_best_child_tiebreaks_on_mean(self, env):
        parent = Node(env)
        parent.visits = 20
        specs = [(-40.0, -45.0), (-40.0, -42.0)]  # same max, better mean
        for action, (max_v, mean_v) in enumerate(specs):
            child = Node(env.clone(), parent=parent, action=action)
            child.visits = 10
            child.max_value = max_v
            child.sum_value = mean_v * 10
            parent.children[action] = child
        assert parent.exploitation_child().action == 1

    def test_best_child_without_children_raises(self, env):
        with pytest.raises(ValueError):
            Node(env).best_child(1.0)

    def test_depth(self, env):
        root = Node(env)
        child = Node(env.clone(), parent=root, action=0)
        grandchild = Node(env.clone(), parent=child, action=1)
        assert root.depth() == 0
        assert grandchild.depth() == 2

    def test_tree_size(self, env):
        root = Node(env)
        for action in (0, 1):
            root.children[action] = Node(env.clone(), parent=root, action=action)
        assert root.tree_size() == 3

    def test_repr(self, env):
        assert "visits=0" in repr(Node(env))
