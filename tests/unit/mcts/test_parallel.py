"""Unit tests for root-parallel MCTS."""

import pytest

from repro.config import ClusterConfig, EnvConfig, MctsConfig
from repro.dag import chain_dag, motivating_example
from repro.dag.examples import MOTIVATING_CAPACITY, MOTIVATING_T
from repro.errors import ConfigError
from repro.mcts import MctsScheduler, RootParallelMcts
from repro.metrics import validate_schedule


@pytest.fixture
def env_config():
    return EnvConfig(
        cluster=ClusterConfig(capacities=(10, 10), horizon=8),
        max_ready=8,
        process_until_completion=True,
    )


class TestRootParallel:
    def test_feasible_schedule(self, env_config, small_random_graph):
        scheduler = RootParallelMcts(
            MctsConfig(initial_budget=10, min_budget=3),
            env_config,
            workers=3,
            seed=0,
        )
        schedule = scheduler.schedule(small_random_graph)
        validate_schedule(schedule, small_random_graph, (10, 10))
        assert schedule.scheduler == "mcts-parallel"

    def test_zero_workers_rejected(self, env_config):
        with pytest.raises(ConfigError):
            RootParallelMcts(workers=0, env_config=env_config)

    def test_best_of_k_never_worse_than_single_seeded_worker(
        self, env_config, small_random_graph
    ):
        """With the same derived seeds, best-of-3 <= each individual run."""
        config = MctsConfig(initial_budget=8, min_budget=3)
        parallel = RootParallelMcts(
            config, env_config, workers=3, seed=42
        )
        best = parallel.schedule(small_random_graph).makespan

        from repro.utils.rng import as_generator, derive_seed

        rng = as_generator(42)
        singles = []
        for _ in range(3):
            seed = derive_seed(rng)
            single = MctsScheduler(config, env_config, seed=seed)
            singles.append(single.schedule(small_random_graph).makespan)
        assert best == min(singles)

    def test_chain_forced(self, env_config):
        graph = chain_dag([2, 3], demands=[(1, 1)] * 2)
        scheduler = RootParallelMcts(
            MctsConfig(initial_budget=5, min_budget=2),
            env_config,
            workers=2,
            seed=0,
        )
        assert scheduler.schedule(graph).makespan == 5

    def test_finds_motivating_optimum_with_small_per_worker_budget(self):
        """Diversity pays: several small searches reach 2T reliably."""
        env_config = EnvConfig(
            cluster=ClusterConfig(capacities=MOTIVATING_CAPACITY, horizon=20),
            process_until_completion=True,
        )
        scheduler = RootParallelMcts(
            MctsConfig(initial_budget=100, min_budget=20),
            env_config,
            workers=4,
            seed=1,
        )
        graph = motivating_example()
        schedule = scheduler.schedule(graph)
        validate_schedule(schedule, graph, MOTIVATING_CAPACITY)
        assert schedule.makespan == 2 * MOTIVATING_T

    def test_multiprocessing_path(self, env_config):
        """The process-pool path produces a valid schedule too."""
        graph = chain_dag([1, 1], demands=[(1, 1)] * 2)
        scheduler = RootParallelMcts(
            MctsConfig(initial_budget=3, min_budget=2),
            env_config,
            workers=2,
            seed=0,
            use_processes=True,
        )
        schedule = scheduler.schedule(graph)
        validate_schedule(schedule, graph, (10, 10))
        assert schedule.makespan == 2
