"""Unit tests for MCTS tree introspection."""

import pytest

from repro.config import ClusterConfig, EnvConfig, MctsConfig
from repro.dag import independent_tasks_dag
from repro.env import SchedulingEnv
from repro.mcts import MctsScheduler, Node, render_tree, tree_statistics


@pytest.fixture
def env():
    graph = independent_tasks_dag([2, 2, 2], demands=[(3, 3)] * 3)
    return SchedulingEnv(
        graph,
        EnvConfig(
            cluster=ClusterConfig(capacities=(10, 10), horizon=6),
            max_ready=4,
            process_until_completion=True,
        ),
    )


def build_small_tree(env):
    root = Node(env, untried=[])
    root.update(-10.0)
    root.update(-8.0)
    for action in (0, 1):
        child_env = env.clone()
        child_env.step(action)
        child = Node(child_env, parent=root, action=action)
        child.update(-9.0 - action)
        root.children[action] = child
    return root


class TestRenderTree:
    def test_root_line(self, env):
        out = render_tree(Node(env, untried=[0, 1]))
        assert out.startswith("root:")
        assert "untried=2" in out

    def test_children_rendered_best_first(self, env):
        root = build_small_tree(env)
        out = render_tree(root)
        lines = out.splitlines()
        assert "schedule[0]" in lines[1]  # max -9 beats max -10
        assert "schedule[1]" in lines[2]

    def test_depth_limit(self, env):
        root = build_small_tree(env)
        out = render_tree(root, max_depth=0)
        assert len(out.splitlines()) == 1

    def test_child_elision(self, env):
        root = Node(env, untried=[])
        for action in range(3):
            child_env = env.clone()
            child_env.step(action if action < 2 else 0)
            child = Node(child_env, parent=root, action=action)
            child.update(-float(action))
            root.children[action] = child
        out = render_tree(root, max_children=2)
        assert "1 more children" in out

    def test_process_label(self, env):
        env.step(0)
        child_env = env.clone()
        child_env.step(-1)
        root = Node(env, untried=[])
        child = Node(child_env, parent=root, action=-1)
        child.update(-5.0)
        root.children[-1] = child
        assert "process" in render_tree(root)


class TestTreeStatistics:
    def test_counts_small_tree(self, env):
        root = build_small_tree(env)
        stats = tree_statistics(root)
        assert stats.nodes == 3
        assert stats.max_depth == 1
        assert stats.total_visits == 2
        assert stats.fully_expanded == 3  # no untried anywhere

    def test_on_a_real_search(self, small_random_graph):
        env_config = EnvConfig(
            cluster=ClusterConfig(capacities=(10, 10), horizon=8),
            max_ready=8,
            process_until_completion=True,
        )
        scheduler = MctsScheduler(
            MctsConfig(initial_budget=20, min_budget=5), env_config, seed=0
        )
        # Run a few iterations manually to keep the root.
        root_env = SchedulingEnv(small_random_graph, env_config)
        root = Node(root_env.clone(), untried=scheduler._candidates(root_env))
        from repro.mcts.search import SearchStatistics

        stats_obj = SearchStatistics()
        for _ in range(20):
            scheduler._iterate(root, 100.0, stats_obj)
        stats = tree_statistics(root)
        assert stats.nodes > 1
        assert stats.total_visits == 20
        assert stats.max_depth >= 1
        rendered = render_tree(root, max_depth=2)
        assert "root: visits=20" in rendered
