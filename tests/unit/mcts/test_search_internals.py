"""White-box tests of MCTS search mechanics."""

import pytest

from repro.config import ClusterConfig, EnvConfig, GrapheneConfig, MctsConfig
from repro.dag import independent_tasks_dag
from repro.env import SchedulingEnv
from repro.mcts import MctsScheduler, Node
from repro.mcts.search import SearchStatistics


@pytest.fixture
def env_config():
    return EnvConfig(
        cluster=ClusterConfig(capacities=(10, 10), horizon=8),
        max_ready=6,
        process_until_completion=True,
    )


class TestIterationMechanics:
    def test_iterations_add_one_node_or_hit_terminal(self, env_config):
        graph = independent_tasks_dag([2, 2, 2], demands=[(4, 4)] * 3)
        env = SchedulingEnv(graph, env_config)
        scheduler = MctsScheduler(
            MctsConfig(initial_budget=10, min_budget=5), env_config, seed=0
        )
        root = Node(env.clone(), untried=scheduler._candidates(env))
        stats = SearchStatistics()
        sizes = [root.tree_size()]
        for _ in range(8):
            scheduler._iterate(root, 100.0, stats)
            sizes.append(root.tree_size())
        # Tree grows by at most one node per iteration.
        for before, after in zip(sizes, sizes[1:]):
            assert after - before in (0, 1)
        assert root.visits == 8

    def test_backpropagation_reaches_root(self, env_config):
        graph = independent_tasks_dag([2, 2], demands=[(4, 4)] * 2)
        env = SchedulingEnv(graph, env_config)
        scheduler = MctsScheduler(
            MctsConfig(initial_budget=5, min_budget=2), env_config, seed=0
        )
        root = Node(env.clone(), untried=scheduler._candidates(env))
        stats = SearchStatistics()
        scheduler._iterate(root, 100.0, stats)
        assert root.visits == 1
        assert root.max_value <= 0  # value is a negative makespan

    def test_root_visits_equal_child_visit_sum(self, env_config):
        graph = independent_tasks_dag([2, 2, 2], demands=[(4, 4)] * 3)
        env = SchedulingEnv(graph, env_config)
        scheduler = MctsScheduler(
            MctsConfig(initial_budget=10, min_budget=5), env_config, seed=0
        )
        root = Node(env.clone(), untried=scheduler._candidates(env))
        stats = SearchStatistics()
        for _ in range(12):
            scheduler._iterate(root, 100.0, stats)
        child_visits = sum(ch.visits for ch in root.children.values())
        # Every iteration passes through exactly one child (no terminals at
        # the root of this instance).
        assert child_visits == root.visits

    def test_values_are_negative_makespans(self, env_config):
        graph = independent_tasks_dag([3, 3], demands=[(4, 4)] * 2)
        env = SchedulingEnv(graph, env_config)
        scheduler = MctsScheduler(
            MctsConfig(initial_budget=10, min_budget=5), env_config, seed=0
        )
        root = Node(env.clone(), untried=scheduler._candidates(env))
        stats = SearchStatistics()
        for _ in range(10):
            scheduler._iterate(root, 100.0, stats)
        # Both tasks fit together: the only achievable makespan is 3.
        assert root.max_value == -3.0


class TestSubtreeReuse:
    def test_statistics_survive_decision_commit(self, env_config):
        """After committing an action the chosen child becomes the root
        with its accumulated statistics intact (Sec. III-C: 'the selected
        action will point to a child node which will become the new root
        node')."""
        graph = independent_tasks_dag([2, 2, 2, 2], demands=[(4, 4)] * 4)
        scheduler = MctsScheduler(
            MctsConfig(initial_budget=30, min_budget=10), env_config, seed=0
        )
        schedule = scheduler.schedule(graph)
        stats = scheduler.last_statistics
        assert stats.decisions >= 4  # at least one per task + processing
        # Budget decays by depth while the subtree carries prior visits;
        # iterations therefore exceed pure per-decision expansion needs.
        assert stats.iterations == sum(stats.budgets)


class TestGrapheneBackwardHorizonGrowth:
    def test_tight_horizon_factor_still_packs(self):
        """With a horizon factor of 1.0 the initial backward deadline is
        the lower bound itself, which serialized troublesome tasks cannot
        meet — the planner must grow the horizon instead of failing."""
        from repro.schedulers import GrapheneScheduler

        env_config = EnvConfig(
            cluster=ClusterConfig(capacities=(10, 10), horizon=8), max_ready=8
        )
        scheduler = GrapheneScheduler(
            GrapheneConfig(thresholds=(0.5,), space_time_horizon_factor=1.0),
            env_config,
        )
        # Five mutually-exclusive troublesome tasks: serial length 10,
        # work-based lower bound only 6.
        graph = independent_tasks_dag([2] * 5, demands=[(6, 6)] * 5)
        plan = scheduler.build_plan(graph, 0.5, "backward")
        assert sorted(plan.order) == list(graph.task_ids)
        assert plan.virtual_makespan >= 10
        schedule = scheduler.schedule(graph)
        assert schedule.makespan == 10
