"""Unit tests for the MCTS scheduler."""

import pytest

from repro.config import ClusterConfig, EnvConfig, MctsConfig
from repro.dag import chain_dag, independent_tasks_dag, motivating_example
from repro.dag.examples import MOTIVATING_CAPACITY, MOTIVATING_T
from repro.mcts import GreedyRollout, MctsScheduler, RandomExpansion, RandomRollout
from repro.metrics import validate_schedule


@pytest.fixture
def env_config():
    return EnvConfig(
        cluster=ClusterConfig(capacities=(10, 10), horizon=8),
        max_ready=8,
        process_until_completion=True,
    )


def mcts(budget=50, min_budget=10, env_config=None, seed=0, **kwargs):
    return MctsScheduler(
        MctsConfig(initial_budget=budget, min_budget=min_budget, **kwargs),
        env_config,
        seed=seed,
    )


class TestBasics:
    def test_chain_is_forced(self, env_config):
        graph = chain_dag([2, 3, 1], demands=[(1, 1)] * 3)
        schedule = mcts(env_config=env_config).schedule(graph)
        assert schedule.makespan == 6
        assert schedule.scheduler == "mcts"

    def test_schedule_is_feasible(self, env_config, small_random_graph):
        schedule = mcts(env_config=env_config).schedule(small_random_graph)
        validate_schedule(
            schedule, small_random_graph, env_config.cluster.capacities
        )

    def test_single_task(self, env_config):
        graph = chain_dag([4], demands=[(2, 2)])
        schedule = mcts(env_config=env_config).schedule(graph)
        assert schedule.makespan == 4

    def test_statistics_populated(self, env_config, small_random_graph):
        scheduler = mcts(budget=20, min_budget=5, env_config=env_config)
        scheduler.schedule(small_random_graph)
        stats = scheduler.last_statistics
        assert stats is not None
        assert stats.decisions > 0
        assert stats.iterations >= stats.decisions
        assert stats.rollouts > 0
        assert stats.exploration_constant > 0

    def test_budget_decay_recorded(self, env_config, small_random_graph):
        scheduler = mcts(budget=40, min_budget=5, env_config=env_config)
        scheduler.schedule(small_random_graph)
        budgets = scheduler.last_statistics.budgets
        assert budgets[0] == 40
        assert budgets[1] == 20
        assert min(budgets) >= 5

    def test_flat_budget_when_decay_disabled(self, env_config, small_random_graph):
        scheduler = mcts(
            budget=15, min_budget=5, env_config=env_config, use_budget_decay=False
        )
        scheduler.schedule(small_random_graph)
        assert set(scheduler.last_statistics.budgets) == {15}


class TestOptimality:
    def test_finds_optimal_on_motivating_example(self):
        env_config = EnvConfig(
            cluster=ClusterConfig(capacities=MOTIVATING_CAPACITY, horizon=20),
            process_until_completion=True,
        )
        graph = motivating_example()
        schedule = mcts(budget=300, min_budget=30, env_config=env_config).schedule(
            graph
        )
        validate_schedule(schedule, graph, MOTIVATING_CAPACITY)
        assert schedule.makespan == 2 * MOTIVATING_T

    def test_packs_independent_tasks(self, env_config):
        # Four unit tasks, two fit at a time: optimum 2.
        graph = independent_tasks_dag([1] * 4, demands=[(5, 5)] * 4)
        schedule = mcts(budget=100, min_budget=20, env_config=env_config).schedule(
            graph
        )
        assert schedule.makespan == 2


class TestDeterminismAndSeeding:
    def test_same_seed_same_result(self, env_config, small_random_graph):
        a = mcts(env_config=env_config, seed=3).schedule(small_random_graph)
        b = mcts(env_config=env_config, seed=3).schedule(small_random_graph)
        assert a.makespan == b.makespan
        assert a.as_dict() == b.as_dict()


class TestConfigKnobs:
    def test_no_filters_still_feasible(self, env_config, small_random_graph):
        scheduler = mcts(
            env_config=env_config, use_expansion_filters=False
        )
        schedule = scheduler.schedule(small_random_graph)
        validate_schedule(
            schedule, small_random_graph, env_config.cluster.capacities
        )

    def test_mean_ucb_still_feasible(self, env_config, small_random_graph):
        scheduler = mcts(env_config=env_config, use_max_value_ucb=False)
        schedule = scheduler.schedule(small_random_graph)
        validate_schedule(
            schedule, small_random_graph, env_config.cluster.capacities
        )

    def test_custom_rollout_policy(self, env_config, small_random_graph):
        scheduler = MctsScheduler(
            MctsConfig(initial_budget=20, min_budget=5),
            env_config,
            rollout=GreedyRollout(),
            seed=0,
        )
        schedule = scheduler.schedule(small_random_graph)
        validate_schedule(
            schedule, small_random_graph, env_config.cluster.capacities
        )

    def test_default_env_uses_event_skipping(self):
        scheduler = MctsScheduler(MctsConfig(initial_budget=10, min_budget=5))
        assert scheduler.env_config.process_until_completion


class TestPolicies:
    def test_random_expansion_permutes(self, env_config):
        graph = independent_tasks_dag([1] * 4, demands=[(1, 1)] * 4)
        from repro.env import SchedulingEnv

        env = SchedulingEnv(graph, env_config)
        expansion = RandomExpansion(seed=0)
        order = expansion.prioritize(env, [0, 1, 2, 3])
        assert sorted(order) == [0, 1, 2, 3]

    def test_random_rollout_returns_makespan(self, env_config, small_random_graph):
        from repro.env import SchedulingEnv

        env = SchedulingEnv(small_random_graph, env_config)
        makespan = RandomRollout(seed=0).rollout(env)
        assert makespan == env.makespan
        assert env.done

    def test_greedy_rollout_deterministic(self, env_config, small_random_graph):
        from repro.env import SchedulingEnv

        a = GreedyRollout().rollout(SchedulingEnv(small_random_graph, env_config))
        b = GreedyRollout().rollout(SchedulingEnv(small_random_graph, env_config))
        assert a == b
