"""Lockstep batched playouts and virtual-loss bookkeeping."""

import numpy as np
import pytest

from repro.config import ClusterConfig, EnvConfig, MctsConfig, WorkloadConfig
from repro.dag import random_layered_dag
from repro.envarr.batch import BatchedPlayouts, batch_random_playouts
from repro.envarr.env import ArraySchedulingEnv
from repro.errors import EnvironmentStateError
from repro.utils.rng import as_generator

CAPS = (10, 10)
WORKLOAD = WorkloadConfig(
    num_tasks=20, max_runtime=6, max_demand=8, runtime_mean=3, demand_mean=4
)


def make_config(until_completion=True):
    return EnvConfig(
        cluster=ClusterConfig(capacities=CAPS, horizon=8),
        process_until_completion=until_completion,
        backend="array",
    )


def make_lanes(seed, batch, until_completion=True, advance=0):
    graph = random_layered_dag(WORKLOAD, seed=seed)
    config = make_config(until_completion)
    base = ArraySchedulingEnv(graph, config)
    rng = as_generator(seed + 1)
    for _ in range(advance):
        if base.done:
            break
        actions = base.legal_actions()
        base.step(actions[int(rng.integers(len(actions)))])
    lanes = [base.clone() for _ in range(batch)]
    kernel = BatchedPlayouts(
        base.arrays,
        CAPS,
        until_completion=until_completion,
        max_ready=config.max_ready,
    )
    limit = 50 * (int(base.arrays.durations.sum()) + base.arrays.num_tasks)
    return base, lanes, kernel, limit


class TestBatchedPlayouts:
    def test_seeded_runs_are_identical(self):
        _, lanes, kernel, limit = make_lanes(0, batch=17)
        first, _ = kernel.run(lanes, as_generator(42), limit)
        second, _ = kernel.run(lanes, as_generator(42), limit)
        assert np.array_equal(first, second)

    def test_input_lanes_are_never_mutated(self):
        _, lanes, kernel, limit = make_lanes(1, batch=5, advance=3)
        before = [env.signature() for env in lanes]
        kernel.run(lanes, as_generator(7), limit)
        assert [env.signature() for env in lanes] == before

    def test_recorded_starts_form_feasible_schedules(self):
        base, lanes, kernel, limit = make_lanes(2, batch=9)
        arrays = base.arrays
        makespans, starts = kernel.run(
            lanes, as_generator(3), limit, record_starts=True
        )
        assert starts is not None and starts.shape == (9, arrays.num_tasks)
        durations = arrays.durations
        for lane in range(starts.shape[0]):
            lane_starts = starts[lane]
            assert (lane_starts >= 0).all()
            finishes = lane_starts + durations
            assert int(finishes.max()) == int(makespans[lane])
            # Precedence: every child starts at or after each parent's
            # finish.
            for i in range(arrays.num_tasks):
                for c in arrays.children_of(i):
                    assert lane_starts[int(c)] >= finishes[i]
            # Capacity: accumulate demand over the occupied slots.
            horizon = int(finishes.max())
            usage = np.zeros((horizon, arrays.num_resources), dtype=np.int64)
            for i in range(arrays.num_tasks):
                usage[lane_starts[i] : finishes[i]] += arrays.demands[i]
            assert (usage <= np.asarray(CAPS)).all()

    def test_mid_episode_lanes_complete_consistently(self):
        base, lanes, kernel, limit = make_lanes(3, batch=6, advance=5)
        makespans, _ = kernel.run(lanes, as_generator(11), limit)
        # Every lane continues the shared prefix, so no lane can finish
        # before the time already committed in it.
        assert (makespans >= base.now).all()

    def test_unit_granularity_mode(self):
        _, lanes, kernel, limit = make_lanes(4, batch=4, until_completion=False)
        makespans, _ = kernel.run(lanes, as_generator(5), limit)
        assert (makespans > 0).all()

    def test_foreign_lane_rejected(self):
        _, lanes, kernel, limit = make_lanes(5, batch=2)
        other = ArraySchedulingEnv(
            random_layered_dag(WORKLOAD, seed=99), make_config()
        )
        with pytest.raises(EnvironmentStateError):
            kernel.run([other], as_generator(1), limit)

    def test_convenience_wrapper_matches_kernel(self):
        _, lanes, kernel, limit = make_lanes(6, batch=8)
        direct, _ = kernel.run(lanes, as_generator(21), limit)
        wrapped = batch_random_playouts(lanes, as_generator(21), limit)
        assert np.array_equal(direct, np.asarray(wrapped))


class TestVirtualLossBookkeeping:
    def test_vloss_returns_to_zero_after_budget(self):
        """Every virtual loss taken during wave collection is repaid."""
        from repro.envarr.batch import BatchedPlayouts
        from repro.mcts.node import Node
        from repro.mcts.search import MctsScheduler, SearchStatistics

        graph = random_layered_dag(WORKLOAD, seed=8)
        config = make_config()
        scheduler = MctsScheduler(
            MctsConfig(
                initial_budget=48,
                min_budget=48,
                use_budget_decay=False,
                rollout_batch=12,
            ),
            config,
            seed=0,
        )
        env = ArraySchedulingEnv(graph, config)
        kernel = BatchedPlayouts(
            env.arrays,
            CAPS,
            until_completion=True,
            max_ready=config.max_ready,
        )
        root = Node(env.clone(), untried=scheduler._candidates(env))
        stats = SearchStatistics()
        limit = scheduler.rollout._step_limit(env)
        scheduler._run_budget_batched(root, 1.4, stats, 48, kernel, limit)

        assert stats.iterations == 48
        stack = [root]
        visited = 0
        while stack:
            node = stack.pop()
            visited += 1
            assert node.vloss == 0, "virtual loss must be repaid by backprop"
            stack.extend(node.children.values())
        assert visited > 1, "the budget must have grown the tree"

    def test_batched_and_sequential_search_visit_counts_agree(self):
        """Total root visits equal the spent budget in both modes."""
        from repro.mcts.search import MctsScheduler
        from repro.schedulers.base import ScheduleRequest

        graph = random_layered_dag(WORKLOAD, seed=9)
        for batch in (1, 8):
            scheduler = MctsScheduler(
                MctsConfig(
                    initial_budget=32,
                    min_budget=32,
                    use_budget_decay=False,
                    rollout_batch=batch,
                ),
                make_config(),
                seed=0,
            )
            scheduler.plan(ScheduleRequest(graph))
            stats = scheduler.last_statistics
            assert stats is not None
            assert stats.iterations == sum(stats.budgets)
