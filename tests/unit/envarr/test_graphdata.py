"""CSR compilation and vectorized graph features (repro.envarr.graphdata)."""

import numpy as np

from repro.config import WorkloadConfig
from repro.dag import motivating_example, random_layered_dag
from repro.dag.features import compute_features
from repro.envarr.graphdata import GraphArrays, graph_arrays

WORKLOAD = WorkloadConfig(
    num_tasks=30, max_runtime=8, max_demand=8, runtime_mean=4, demand_mean=4
)


def graphs():
    yield motivating_example()
    for seed in (0, 1, 7):
        yield random_layered_dag(WORKLOAD, seed=seed)


class TestCsrStructure:
    def test_rows_match_graph_adjacency(self):
        for graph in graphs():
            arrays = GraphArrays.from_graph(graph)
            ids = [int(i) for i in arrays.ids]
            assert ids == sorted(graph.task_ids)
            for i, tid in enumerate(ids):
                children = [
                    ids[int(c)]
                    for c in arrays.child_indices[
                        arrays.child_indptr[i] : arrays.child_indptr[i + 1]
                    ]
                ]
                parents = [
                    ids[int(p)]
                    for p in arrays.parent_indices[
                        arrays.parent_indptr[i] : arrays.parent_indptr[i + 1]
                    ]
                ]
                assert children == list(graph.children(tid))
                assert parents == list(graph.parents(tid))
                assert arrays.indegree[i] == len(parents)
                assert arrays.num_children[i] == len(children)

    def test_indptr_monotone_and_complete(self):
        for graph in graphs():
            arrays = GraphArrays.from_graph(graph)
            for indptr, indices in (
                (arrays.child_indptr, arrays.child_indices),
                (arrays.parent_indptr, arrays.parent_indices),
            ):
                assert indptr[0] == 0
                assert indptr[-1] == len(indices)
                assert (np.diff(indptr) >= 0).all()

    def test_scalar_vectors_match_tasks(self):
        for graph in graphs():
            arrays = GraphArrays.from_graph(graph)
            for i, tid in enumerate(int(t) for t in arrays.ids):
                task = graph.task(tid)
                assert int(arrays.durations[i]) == task.runtime
                assert tuple(int(d) for d in arrays.demands[i]) == task.demands
                assert arrays.durations_list[i] == task.runtime
                assert arrays.demands_list[i] == task.demands

    def test_topo_order_respects_edges(self):
        for graph in graphs():
            arrays = GraphArrays.from_graph(graph)
            position = {int(i): pos for pos, i in enumerate(arrays.topo)}
            for i in range(arrays.num_tasks):
                for c in arrays.child_indices[
                    arrays.child_indptr[i] : arrays.child_indptr[i + 1]
                ]:
                    assert position[i] < position[int(c)]

    def test_neighbor_accessors(self):
        graph = motivating_example()
        arrays = GraphArrays.from_graph(graph)
        for i in range(arrays.num_tasks):
            assert list(arrays.children_of(i)) == list(
                arrays.child_indices[
                    arrays.child_indptr[i] : arrays.child_indptr[i + 1]
                ]
            )
            assert list(arrays.parents_of(i)) == list(
                arrays.parent_indices[
                    arrays.parent_indptr[i] : arrays.parent_indptr[i + 1]
                ]
            )


class TestVectorizedFeatures:
    def test_features_match_object_backend(self):
        for graph in graphs():
            arrays = GraphArrays.from_graph(graph)
            features = compute_features(graph)
            ids = [int(i) for i in arrays.ids]
            for i, tid in enumerate(ids):
                assert int(arrays.b_level[i]) == features.b_level[tid]
                assert int(arrays.t_level[i]) == features.t_level[tid]
                assert (
                    tuple(int(v) for v in arrays.b_load[i])
                    == features.b_load[tid]
                )
            assert arrays.critical_path == features.critical_path


class TestMemoization:
    def test_graph_arrays_is_memoized_per_graph(self):
        graph = motivating_example()
        assert graph_arrays(graph) is graph_arrays(graph)

    def test_distinct_graphs_get_distinct_arrays(self):
        a = graph_arrays(random_layered_dag(WORKLOAD, seed=0))
        b = graph_arrays(random_layered_dag(WORKLOAD, seed=1))
        assert a is not b
