"""Hypothesis equivalence: the array backend must be indistinguishable
from the object backend through the public environment surface.

Every test drives both backends through identical action sequences (or
identical searches) over randomly drawn DAG shapes and seeds and asserts
the full observable surface matches: legal actions, masks, visible-ready
windows, clock, observations, final schedules and makespans.
"""

import hypothesis.strategies as st
import numpy as np
from hypothesis import given, settings

from repro.config import ClusterConfig, EnvConfig, MctsConfig, WorkloadConfig
from repro.dag.generators import random_layered_dag
from repro.env.observation import ObservationBuilder
from repro.env.scheduling_env import SchedulingEnv
from repro.envarr.env import ArraySchedulingEnv
from repro.envarr.observation import BatchObservationBuilder

CAPS = (10, 10)


def make_graph(seed, num_tasks):
    workload = WorkloadConfig(
        num_tasks=num_tasks,
        max_runtime=6,
        max_demand=8,
        runtime_mean=3,
        runtime_std=2,
        demand_mean=4,
        demand_std=2,
    )
    return random_layered_dag(workload, seed=seed)


def make_config(until_completion, backend="object", max_ready=6):
    return EnvConfig(
        cluster=ClusterConfig(capacities=CAPS, horizon=8),
        max_ready=max_ready,
        process_until_completion=until_completion,
        backend=backend,
    )


def lockstep_pair(graph, until_completion):
    obj = SchedulingEnv(graph, make_config(until_completion, "object"))
    arr = ArraySchedulingEnv(graph, make_config(until_completion, "array"))
    return obj, arr


def assert_same_surface(obj, arr):
    assert obj.done == arr.done
    assert obj.now == arr.now
    assert obj.visible_ready() == arr.visible_ready()
    assert obj.legal_actions() == arr.legal_actions()
    assert obj.action_mask() == arr.action_mask()


@settings(max_examples=30, deadline=None)
@given(
    seed=st.integers(0, 2**32 - 1),
    num_tasks=st.integers(1, 18),
    play_seed=st.integers(0, 1000),
    until_completion=st.booleans(),
)
def test_random_play_is_bit_identical(
    seed, num_tasks, play_seed, until_completion
):
    graph = make_graph(seed, num_tasks)
    obj, arr = lockstep_pair(graph, until_completion)
    rng = np.random.default_rng(play_seed)
    for _ in range(100_000):
        assert_same_surface(obj, arr)
        if obj.done:
            break
        actions = obj.legal_actions()
        action = actions[int(rng.integers(len(actions)))]
        obj_result = obj.step(action)
        arr_result = arr.step(action)
        assert obj_result.reward == arr_result.reward
        assert obj_result.done == arr_result.done

    assert obj.done and arr.done
    assert obj.makespan == arr.makespan
    obj_schedule = obj.to_schedule("object")
    arr_schedule = arr.to_schedule("array")
    assert obj_schedule.placements == arr_schedule.placements
    assert obj_schedule.makespan == arr_schedule.makespan


@settings(max_examples=20, deadline=None)
@given(
    seed=st.integers(0, 2**32 - 1),
    num_tasks=st.integers(1, 14),
    play_seed=st.integers(0, 1000),
)
def test_observations_match_along_episode(seed, num_tasks, play_seed):
    graph = make_graph(seed, num_tasks)
    obj, arr = lockstep_pair(graph, until_completion=True)
    config = make_config(True)
    obj_builder = ObservationBuilder(graph, config)
    arr_builder = BatchObservationBuilder(graph, config)
    rng = np.random.default_rng(play_seed)
    for _ in range(100_000):
        np.testing.assert_allclose(
            obj_builder.build(obj),
            arr_builder.build(arr),
            rtol=0,
            atol=1e-12,
        )
        batched = arr_builder.build_batch([arr, arr])
        np.testing.assert_allclose(
            batched[0], arr_builder.build(arr), rtol=0, atol=1e-12
        )
        if obj.done:
            break
        actions = obj.legal_actions()
        action = actions[int(rng.integers(len(actions)))]
        obj.step(action)
        arr.step(action)


@settings(max_examples=20, deadline=None)
@given(
    seed=st.integers(0, 2**32 - 1),
    num_tasks=st.integers(1, 14),
    play_seed=st.integers(0, 1000),
)
def test_clone_and_signature_agree(seed, num_tasks, play_seed):
    graph = make_graph(seed, num_tasks)
    obj, arr = lockstep_pair(graph, until_completion=True)
    rng = np.random.default_rng(play_seed)
    steps = int(rng.integers(0, 6))
    for _ in range(steps):
        if obj.done:
            break
        actions = obj.legal_actions()
        action = actions[int(rng.integers(len(actions)))]
        obj.step(action)
        arr.step(action)
    assert obj.signature() == arr.signature()
    arr_clone = arr.clone()
    assert arr_clone.signature() == arr.signature()
    if not arr.done:
        arr.step(arr.legal_actions()[0])
        assert arr_clone.signature() != arr.signature()


@settings(max_examples=10, deadline=None)
@given(
    seed=st.integers(0, 2**16),
    num_tasks=st.integers(2, 10),
    search_seed=st.integers(0, 100),
)
def test_mcts_search_is_backend_identical(seed, num_tasks, search_seed):
    """Sequential search must pick identical schedules on both backends."""
    from repro.mcts.search import MctsScheduler
    from repro.schedulers.base import ScheduleRequest

    graph = make_graph(seed, num_tasks)
    config = MctsConfig(
        initial_budget=24,
        min_budget=8,
        rollout_batch=1,
    )
    schedules = []
    for backend in ("object", "array"):
        scheduler = MctsScheduler(
            config, make_config(True, backend), seed=search_seed
        )
        schedules.append(scheduler.plan(ScheduleRequest(graph)))
    assert schedules[0].placements == schedules[1].placements
    assert schedules[0].makespan == schedules[1].makespan


@settings(max_examples=10, deadline=None)
@given(
    seed=st.integers(0, 2**16),
    num_tasks=st.integers(2, 12),
    degrade=st.integers(0, 4),
)
def test_degraded_replan_is_backend_identical(seed, num_tasks, degrade):
    """Deterministic policy planning under a degraded (post-crash)
    cluster snapshot matches across backends — the replan path the
    online fault executor exercises."""
    from repro.schedulers import PolicyScheduler, TetrisPolicy
    from repro.schedulers.base import ClusterSnapshot, ScheduleRequest

    graph = make_graph(seed, num_tasks)
    capacities = tuple(c - degrade for c in CAPS)
    snapshot = ClusterSnapshot(
        capacities=capacities, available=capacities, now=0
    )
    schedules = []
    for backend in ("object", "array"):
        scheduler = PolicyScheduler(
            TetrisPolicy, config=make_config(True, backend)
        )
        request = ScheduleRequest(graph, cluster=snapshot)
        schedules.append(scheduler.plan(request))
    assert schedules[0].placements == schedules[1].placements
    assert schedules[0].makespan == schedules[1].makespan
