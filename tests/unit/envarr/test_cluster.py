"""Vectorized cluster state and its event sweep (repro.envarr.cluster)."""

import pytest

from repro.dag import motivating_example
from repro.envarr.cluster import ArrayClusterState
from repro.envarr.graphdata import graph_arrays
from repro.errors import CapacityError, EnvironmentStateError


def make_state(capacities=(100, 100)):
    arrays = graph_arrays(motivating_example())
    return arrays, ArrayClusterState(arrays, capacities)


class TestConstruction:
    def test_rejects_bad_capacities(self):
        arrays = graph_arrays(motivating_example())
        with pytest.raises(CapacityError):
            ArrayClusterState(arrays, ())
        with pytest.raises(CapacityError):
            ArrayClusterState(arrays, (100, 0))

    def test_starts_idle_and_full(self):
        _, state = make_state()
        assert state.is_idle
        assert state.num_running == 0
        assert state.available == state.capacities == (100, 100)
        assert state.utilization() == (0.0, 0.0)
        with pytest.raises(EnvironmentStateError):
            state.earliest_finish_time()
        with pytest.raises(EnvironmentStateError):
            state.sweep()


class TestOccupancyBookkeeping:
    def test_start_occupies_and_release_undoes(self):
        arrays, state = make_state()
        before = state.available
        state.start_index(0)
        demands = arrays.demands_list[0]
        assert state.available == tuple(
            b - d for b, d in zip(before, demands)
        )
        assert state.num_running == 1
        assert state.running_ids() == [arrays.ids_list[0]]
        assert state.earliest_finish_time() == arrays.durations_list[0]
        state.release_index(0)
        assert state.available == before
        assert state.is_idle

    def test_can_fit_index_tracks_free_capacity(self):
        arrays, state = make_state(capacities=(100, 100))
        index = 0
        assert state.can_fit_index(index)
        # Drain capacity below the task's demands; the answer flips.
        state.free[:] = 0
        assert not state.can_fit_index(index)


class TestEventSweep:
    def test_sweep_jumps_to_earliest_finish_and_releases_all_due(self):
        arrays, state = make_state(capacities=(200, 200))
        # Start three tasks; the sweep must land on the smallest finish
        # and release exactly the tasks finishing there.
        for index in (0, 1, 2):
            state.start_index(index)
        finishes = {i: arrays.durations_list[i] for i in (0, 1, 2)}
        earliest = min(finishes.values())
        due = sorted(i for i, f in finishes.items() if f == earliest)
        dt, released = state.sweep()
        assert dt == earliest
        assert state.now == earliest
        assert released == due
        assert state.num_running == 3 - len(due)

    def test_sweep_matches_stepwise_advance(self):
        arrays, _ = make_state()
        a = ArrayClusterState(arrays, (200, 200))
        b = ArrayClusterState(arrays, (200, 200))
        for index in (0, 1, 2, 3):
            a.start_index(index)
            b.start_index(index)
        while a.num_running:
            dt, swept = a.sweep()
            stepped = []
            for _ in range(dt):
                stepped.extend(b.advance(1))
            assert swept == sorted(stepped)
            assert a.now == b.now
            assert a.available == b.available
            assert a.signature() == b.signature()

    def test_reoccupy_is_exact_sweep_inverse(self):
        arrays, state = make_state(capacities=(200, 200))
        for index in (0, 1, 2):
            state.start_index(index)
        before = state.clone()
        dt, released = state.sweep()
        finish_times = [before.now + arrays.durations_list[i] for i in released]
        state.reoccupy(released, finish_times)
        state.now -= dt
        assert state.signature() == before.signature()
        assert state.num_running == before.num_running

    def test_advance_rejects_non_positive_dt(self):
        _, state = make_state()
        with pytest.raises(EnvironmentStateError):
            state.advance(0)


class TestCloneIndependence:
    def test_clone_does_not_alias_mutable_state(self):
        _, state = make_state()
        state.start_index(0)
        copy = state.clone()
        assert copy.signature() == state.signature()
        state.sweep()
        assert copy.signature() != state.signature()
        assert copy.num_running == 1
