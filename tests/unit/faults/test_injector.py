"""Unit tests for the deterministic fault injector."""

import pytest

from repro.errors import ConfigError
from repro.faults import (
    FaultInjector,
    FaultPlan,
    MachineCrash,
    RuntimeNoise,
    StragglerModel,
    TransientFaults,
)


def plan(**kwargs):
    defaults = dict(
        transient=TransientFaults(0.3),
        straggler=StragglerModel(0.3, slowdown=2.0),
        noise=RuntimeNoise(kind="lognormal", scale=0.3),
        seed=11,
    )
    defaults.update(kwargs)
    return FaultPlan(**defaults)


class TestAttempts:
    def test_pure_function_of_key(self):
        """Same (job, task, attempt) key, same outcome — regardless of the
        order the executor asks in, or how often."""
        injector = FaultInjector(plan())
        keys = [(j, t, a) for j in range(3) for t in range(4) for a in (1, 2)]
        first = {k: injector.attempt(*k, nominal_runtime=10) for k in keys}
        for key in reversed(keys):
            assert injector.attempt(*key, nominal_runtime=10) == first[key]

    def test_different_keys_differ_somewhere(self):
        injector = FaultInjector(plan())
        outcomes = {
            injector.attempt(j, t, 1, nominal_runtime=50)
            for j in range(5)
            for t in range(10)
        }
        assert len(outcomes) > 1

    def test_seed_changes_stream(self):
        a = FaultInjector(plan(seed=1))
        b = FaultInjector(plan(seed=2))
        diffs = sum(
            a.attempt(0, t, 1, 50) != b.attempt(0, t, 1, 50) for t in range(20)
        )
        assert diffs > 0

    def test_null_plan_passthrough(self):
        injector = FaultInjector(FaultPlan())
        attempt = injector.attempt(0, 0, 1, nominal_runtime=7)
        assert attempt == (7, False, False)

    def test_straggler_multiplies_runtime(self):
        sure = plan(
            transient=TransientFaults(0.0),
            straggler=StragglerModel(1.0, slowdown=3.0),
            noise=None,
        )
        attempt = FaultInjector(sure).attempt(0, 0, 1, nominal_runtime=4)
        assert attempt.straggled
        assert attempt.runtime == 12

    def test_runtime_floor_is_one(self):
        noisy = plan(
            transient=TransientFaults(0.0),
            straggler=StragglerModel(0.0),
            noise=RuntimeNoise(kind="uniform", scale=0.9),
        )
        injector = FaultInjector(noisy)
        assert all(
            injector.attempt(0, t, 1, nominal_runtime=1).runtime >= 1
            for t in range(50)
        )

    def test_argument_validation(self):
        injector = FaultInjector(plan())
        with pytest.raises(ConfigError, match="1-based"):
            injector.attempt(0, 0, 0, 5)
        with pytest.raises(ConfigError, match="runtime"):
            injector.attempt(0, 0, 1, 0)


class TestTimeline:
    def test_ordered_with_recoveries_first(self):
        p = FaultPlan(
            crashes=(
                MachineCrash(0, 5, (2, 2), recover_at=10),
                MachineCrash(1, 10, (3, 3), recover_at=20),
            )
        )
        timeline = FaultInjector(p).timeline()
        assert [(e.time, e.kind) for e in timeline] == [
            (5, "crash"),
            (10, "recovery"),  # machine 0 recovers before machine 1 crashes
            (10, "crash"),
            (20, "recovery"),
        ]

    def test_permanent_crash_has_no_recovery(self):
        p = FaultPlan(crashes=(MachineCrash(0, 5, (2, 2)),))
        timeline = FaultInjector(p).timeline()
        assert [e.kind for e in timeline] == ["crash"]

    def test_backoff_delegates_to_policy(self):
        injector = FaultInjector(plan())
        assert injector.backoff(1) == injector.plan.retry.delay(1)
        assert injector.max_attempts == injector.plan.retry.max_attempts
