"""Unit tests for fault models, plan validation, and spec parsing."""

import pytest

from repro.errors import ConfigError
from repro.faults import (
    FaultPlan,
    MachineCrash,
    RetryPolicy,
    RuntimeNoise,
    StragglerModel,
    TransientFaults,
    parse_fault_spec,
    random_crash_plan,
)


class TestModels:
    def test_crash_validation(self):
        with pytest.raises(ConfigError, match="at least one slot"):
            MachineCrash(0, 10, (0, 0))
        with pytest.raises(ConfigError, match="after the crash"):
            MachineCrash(0, 10, (2, 2), recover_at=10)
        crash = MachineCrash(0, 10, (2, 2), recover_at=40)
        assert crash.capacity == (2, 2)

    def test_transient_probability_range(self):
        with pytest.raises(ConfigError):
            TransientFaults(probability=1.0)
        assert TransientFaults(0.5).probability == 0.5

    def test_straggler_slowdown_floor(self):
        with pytest.raises(ConfigError, match="slowdown"):
            StragglerModel(probability=0.1, slowdown=0.5)

    def test_noise_kinds(self):
        with pytest.raises(ConfigError, match="kind"):
            RuntimeNoise(kind="gamma")
        with pytest.raises(ConfigError, match="uniform"):
            RuntimeNoise(kind="uniform", scale=1.5)

    def test_retry_backoff_caps(self):
        retry = RetryPolicy(max_attempts=5, backoff_base=2, backoff_cap=10)
        assert [retry.delay(k) for k in (1, 2, 3, 4)] == [2, 4, 8, 10]
        with pytest.raises(ConfigError, match="1-based"):
            retry.delay(0)


class TestFaultPlan:
    def test_null_plan(self):
        assert FaultPlan().is_null
        assert not FaultPlan(transient=TransientFaults(0.1)).is_null

    def test_validate_rejects_oversubscribed_loss(self):
        plan = FaultPlan(
            crashes=(
                MachineCrash(0, 5, (6, 6)),
                MachineCrash(1, 6, (6, 6)),
            )
        )
        with pytest.raises(ConfigError, match="removes 12 slots"):
            plan.validate_against((10, 10))

    def test_validate_accepts_staggered_loss(self):
        plan = FaultPlan(
            crashes=(
                MachineCrash(0, 5, (6, 6), recover_at=10),
                MachineCrash(1, 10, (6, 6), recover_at=20),
            )
        )
        plan.validate_against((10, 10))  # recovery at 10 frees the slots

    def test_validate_rejects_dim_mismatch(self):
        plan = FaultPlan(crashes=(MachineCrash(0, 5, (2, 2, 2)),))
        with pytest.raises(ConfigError, match="dims"):
            plan.validate_against((10, 10))


class TestRandomCrashPlan:
    def test_deterministic_and_staggered(self):
        a = random_crash_plan(3, (20, 20), horizon=400, seed=5)
        b = random_crash_plan(3, (20, 20), horizon=400, seed=5)
        assert a == b
        for prev, nxt in zip(a, a[1:]):
            assert nxt.at > prev.recover_at

    def test_fraction_sets_loss(self):
        (crash,) = random_crash_plan(1, (20, 8), horizon=100, fraction=0.25)
        assert crash.capacity == (5, 2)

    def test_survivable(self):
        plan = FaultPlan(crashes=random_crash_plan(4, (20, 20), horizon=1000))
        plan.validate_against((20, 20))


class TestParseFaultSpec:
    def test_full_spec(self):
        plan = parse_fault_spec(
            "crashes=2,outage=30,transient=0.05,straggler=0.1,slowdown=3,"
            "noise=0.2,noise_kind=uniform,max_attempts=6,backoff=2,seed=9",
            capacities=(20, 20),
            horizon=400,
        )
        assert len(plan.crashes) == 2
        assert plan.transient.probability == 0.05
        assert plan.straggler.slowdown == 3.0
        assert plan.noise.kind == "uniform" and plan.noise.scale == 0.2
        assert plan.retry.max_attempts == 6
        assert plan.seed == 9

    def test_empty_spec_is_null(self):
        assert parse_fault_spec("", (20, 20), 100).is_null

    def test_unknown_key_raises(self):
        with pytest.raises(ConfigError, match="unknown fault spec key"):
            parse_fault_spec("meteors=1", (20, 20), 100)

    def test_malformed_value_raises(self):
        with pytest.raises(ConfigError, match="not a float"):
            parse_fault_spec("transient=lots", (20, 20), 100)

    def test_non_kv_entry_raises(self):
        with pytest.raises(ConfigError, match="not key=value"):
            parse_fault_spec("crashes", (20, 20), 100)

    def test_seed_argument_is_default(self):
        plan = parse_fault_spec("transient=0.1", (20, 20), 100, seed=42)
        assert plan.seed == 42
