"""Unit tests for the motivating example, graph I/O and analysis."""

import pytest

from repro.dag import (
    Task,
    TaskGraph,
    graph_from_dict,
    graph_to_dict,
    load_graph,
    motivating_example,
    save_graph,
)
from repro.dag.analysis import makespan_lower_bound, summarize
from repro.dag.examples import MOTIVATING_CAPACITY, MOTIVATING_T
from repro.errors import TraceError


class TestMotivatingExample:
    def test_eight_tasks_two_resources(self):
        graph = motivating_example()
        assert graph.num_tasks == 8
        assert graph.num_resources == 2

    def test_three_parent_child_pairs(self):
        graph = motivating_example()
        assert set(graph.edges()) == {(1, 5), (2, 6), (3, 7)}

    def test_all_runtimes_equal_t(self):
        graph = motivating_example()
        assert {task.runtime for task in graph} == {MOTIVATING_T}

    def test_custom_time_unit(self):
        graph = motivating_example(time_unit=3)
        assert {task.runtime for task in graph} == {3}

    def test_invalid_time_unit(self):
        with pytest.raises(ValueError):
            motivating_example(time_unit=0)

    def test_optimal_windows_fit_exactly(self):
        """Both optimal windows use exactly 100 CPU and 99 memory."""
        graph = motivating_example()
        window1 = [1, 2, 3, 4]
        window2 = [0, 5, 6, 7]
        for window in (window1, window2):
            cpu = sum(graph.task(t).demands[0] for t in window)
            mem = sum(graph.task(t).demands[1] for t in window)
            assert cpu == MOTIVATING_CAPACITY[0]
            assert mem == MOTIVATING_CAPACITY[1] - 1

    def test_lower_bound_is_two_t(self):
        graph = motivating_example()
        assert makespan_lower_bound(graph, MOTIVATING_CAPACITY) == 2 * MOTIVATING_T


class TestGraphIO:
    def test_roundtrip_dict(self, small_random_graph):
        payload = graph_to_dict(small_random_graph)
        restored = graph_from_dict(payload)
        assert restored == small_random_graph

    def test_roundtrip_preserves_names(self):
        graph = TaskGraph([Task(0, 1, (1,), name="alpha")])
        restored = graph_from_dict(graph_to_dict(graph))
        assert restored.task(0).name == "alpha"

    def test_roundtrip_file(self, tmp_path, small_random_graph):
        path = tmp_path / "graph.json"
        save_graph(small_random_graph, path)
        assert load_graph(path) == small_random_graph

    def test_bad_version_rejected(self):
        with pytest.raises(TraceError):
            graph_from_dict({"version": 99, "tasks": [], "edges": []})

    def test_non_dict_rejected(self):
        with pytest.raises(TraceError):
            graph_from_dict([1, 2, 3])

    def test_missing_fields_rejected(self):
        with pytest.raises(TraceError):
            graph_from_dict({"version": 1, "tasks": [{"id": 0}], "edges": []})

    def test_invalid_json_file_rejected(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(TraceError):
            load_graph(path)


class TestAnalysis:
    def test_summary_fields(self, small_random_graph):
        summary = summarize(small_random_graph)
        assert summary.num_tasks == small_random_graph.num_tasks
        assert summary.critical_path == small_random_graph.critical_path_length()
        assert summary.max_runtime >= summary.mean_runtime
        assert len(summary.total_work) == 2

    def test_lower_bound_at_least_critical_path(self, small_random_graph):
        bound = makespan_lower_bound(small_random_graph, (10, 10))
        assert bound >= small_random_graph.critical_path_length()

    def test_lower_bound_work_dominates_on_tight_cluster(self):
        # 10 independent unit tasks each demanding the whole cluster.
        graph = TaskGraph([Task(i, 1, (4,)) for i in range(10)])
        assert makespan_lower_bound(graph, (4,)) == 10

    def test_lower_bound_dimension_mismatch(self, small_random_graph):
        with pytest.raises(ValueError):
            makespan_lower_bound(small_random_graph, (10,))

    def test_lower_bound_non_positive_capacity(self, small_random_graph):
        with pytest.raises(ValueError):
            makespan_lower_bound(small_random_graph, (10, 0))
