"""Unit tests for the MapReduce DAG builder."""

import pytest

from repro.dag import mapreduce_dag
from repro.errors import ConfigError


class TestFullShuffle:
    def test_complete_bipartite(self):
        graph = mapreduce_dag([1, 2, 3], [4, 5])
        assert graph.num_tasks == 5
        assert graph.num_edges == 6  # 3 maps x 2 reduces
        for j in (3, 4):
            assert graph.parents(j) == (0, 1, 2)

    def test_map_names_and_ids(self):
        graph = mapreduce_dag([1, 1], [1])
        assert graph.task(0).name == "map-0"
        assert graph.task(1).name == "map-1"
        assert graph.task(2).name == "reduce-0"

    def test_runtimes_assigned(self):
        graph = mapreduce_dag([7, 8], [9])
        assert graph.task(0).runtime == 7
        assert graph.task(2).runtime == 9

    def test_default_demands_lean_correctly(self):
        graph = mapreduce_dag([1], [1])
        map_demands = graph.task(0).demands
        reduce_demands = graph.task(1).demands
        assert map_demands[0] > map_demands[1]      # map: CPU-leaning
        assert reduce_demands[1] > reduce_demands[0]  # reduce: memory-leaning

    def test_explicit_demands(self):
        graph = mapreduce_dag(
            [1], [1], map_demands=[(5, 5)], reduce_demands=[(7, 7)]
        )
        assert graph.task(0).demands == (5, 5)
        assert graph.task(1).demands == (7, 7)

    def test_sources_are_maps_sinks_are_reduces(self):
        graph = mapreduce_dag([1, 1, 1], [1, 1])
        assert graph.sources() == (0, 1, 2)
        assert graph.sinks() == (3, 4)

    def test_critical_path_is_slowest_map_plus_slowest_reduce(self):
        graph = mapreduce_dag([3, 9], [2, 5])
        assert graph.critical_path_length() == 14


class TestStripedShuffle:
    def test_every_reduce_has_a_parent(self):
        graph = mapreduce_dag([1] * 5, [1] * 3, shuffle="striped")
        for j in range(5, 8):
            assert len(graph.parents(j)) >= 1

    def test_striped_has_fewer_edges_than_full(self):
        full = mapreduce_dag([1] * 6, [1] * 6)
        striped = mapreduce_dag([1] * 6, [1] * 6, shuffle="striped")
        assert striped.num_edges < full.num_edges


class TestValidation:
    def test_empty_map_stage_rejected(self):
        with pytest.raises(ConfigError):
            mapreduce_dag([], [1])

    def test_empty_reduce_stage_rejected(self):
        with pytest.raises(ConfigError):
            mapreduce_dag([1], [])

    def test_demand_length_mismatch_rejected(self):
        with pytest.raises(ConfigError):
            mapreduce_dag([1, 1], [1], map_demands=[(1, 1)])

    def test_unknown_shuffle_rejected(self):
        with pytest.raises(ConfigError):
            mapreduce_dag([1], [1], shuffle="ring")
