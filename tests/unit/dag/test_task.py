"""Unit tests for :class:`repro.dag.Task`."""

import pytest

from repro.dag import Task
from repro.errors import ConfigError


class TestConstruction:
    def test_basic_fields(self):
        task = Task(3, 5, (2, 4), name="map-3")
        assert task.task_id == 3
        assert task.runtime == 5
        assert task.demands == (2, 4)
        assert task.name == "map-3"

    def test_demands_normalized_to_int_tuple(self):
        task = Task(0, 1, [2.0, 3.0])
        assert task.demands == (2, 3)
        assert all(isinstance(d, int) for d in task.demands)

    def test_rejects_negative_id(self):
        with pytest.raises(ConfigError):
            Task(-1, 1, (1,))

    def test_rejects_zero_runtime(self):
        with pytest.raises(ConfigError):
            Task(0, 0, (1,))

    def test_rejects_empty_demands(self):
        with pytest.raises(ConfigError):
            Task(0, 1, ())

    def test_rejects_negative_demand(self):
        with pytest.raises(ConfigError):
            Task(0, 1, (1, -2))

    def test_zero_demand_allowed(self):
        assert Task(0, 1, (0, 0)).demands == (0, 0)

    def test_frozen(self):
        task = Task(0, 1, (1,))
        with pytest.raises(AttributeError):
            task.runtime = 2


class TestDerived:
    def test_num_resources(self):
        assert Task(0, 1, (1, 2, 3)).num_resources == 3

    def test_load_per_resource(self):
        task = Task(0, 4, (2, 5))
        assert task.load(0) == 8
        assert task.load(1) == 20

    def test_total_load(self):
        assert Task(0, 4, (2, 5)).total_load() == 28

    def test_label_prefers_name(self):
        assert Task(7, 1, (1,), name="reduce-1").label() == "reduce-1"

    def test_label_fallback(self):
        assert Task(7, 1, (1,)).label() == "task-7"

    def test_with_runtime_copies(self):
        task = Task(1, 3, (2, 2), name="x")
        scaled = task.with_runtime(9)
        assert scaled.runtime == 9
        assert scaled.task_id == task.task_id
        assert scaled.demands == task.demands
        assert scaled.name == "x"
        assert task.runtime == 3

    def test_equality_ignores_name(self):
        assert Task(0, 1, (1,), name="a") == Task(0, 1, (1,), name="b")

    def test_hashable(self):
        assert len({Task(0, 1, (1,)), Task(0, 1, (1,))}) == 1
