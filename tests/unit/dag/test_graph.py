"""Unit tests for :class:`repro.dag.TaskGraph`."""

import pytest

from repro.dag import Task, TaskGraph
from repro.errors import CycleError, GraphError, UnknownTaskError


def make_tasks(n, runtime=1, demands=(1, 1)):
    return [Task(i, runtime, demands) for i in range(n)]


class TestConstruction:
    def test_empty_graph_rejected(self):
        with pytest.raises(GraphError):
            TaskGraph([])

    def test_duplicate_ids_rejected(self):
        with pytest.raises(GraphError):
            TaskGraph([Task(0, 1, (1,)), Task(0, 2, (1,))])

    def test_mixed_dimensionality_rejected(self):
        with pytest.raises(GraphError):
            TaskGraph([Task(0, 1, (1,)), Task(1, 1, (1, 2))])

    def test_edge_to_unknown_task_rejected(self):
        with pytest.raises(UnknownTaskError):
            TaskGraph(make_tasks(2), [(0, 5)])

    def test_edge_from_unknown_task_rejected(self):
        with pytest.raises(UnknownTaskError):
            TaskGraph(make_tasks(2), [(5, 0)])

    def test_self_loop_rejected(self):
        with pytest.raises(GraphError):
            TaskGraph(make_tasks(2), [(1, 1)])

    def test_cycle_rejected(self):
        with pytest.raises(CycleError):
            TaskGraph(make_tasks(3), [(0, 1), (1, 2), (2, 0)])

    def test_two_cycle_rejected(self):
        with pytest.raises(CycleError):
            TaskGraph(make_tasks(2), [(0, 1), (1, 0)])

    def test_duplicate_edges_collapsed(self):
        graph = TaskGraph(make_tasks(2), [(0, 1), (0, 1)])
        assert graph.num_edges == 1


class TestQueries:
    @pytest.fixture
    def diamond(self):
        # 0 -> {1, 2} -> 3
        return TaskGraph(make_tasks(4), [(0, 1), (0, 2), (1, 3), (2, 3)])

    def test_counts(self, diamond):
        assert diamond.num_tasks == 4
        assert len(diamond) == 4
        assert diamond.num_edges == 4
        assert diamond.num_resources == 2

    def test_contains(self, diamond):
        assert 0 in diamond
        assert 9 not in diamond

    def test_task_lookup_raises_for_unknown(self, diamond):
        with pytest.raises(UnknownTaskError):
            diamond.task(42)

    def test_children_and_parents(self, diamond):
        assert diamond.children(0) == (1, 2)
        assert diamond.parents(3) == (1, 2)
        assert diamond.parents(0) == ()
        assert diamond.children(3) == ()

    def test_children_unknown_raises(self, diamond):
        with pytest.raises(UnknownTaskError):
            diamond.children(42)

    def test_sources_and_sinks(self, diamond):
        assert diamond.sources() == (0,)
        assert diamond.sinks() == (3,)

    def test_topological_order_respects_edges(self, diamond):
        order = diamond.topological_order()
        pos = {tid: i for i, tid in enumerate(order)}
        for up, down in diamond.edges():
            assert pos[up] < pos[down]

    def test_iteration_in_topological_order(self, diamond):
        ids = [task.task_id for task in diamond]
        assert ids == list(diamond.topological_order())

    def test_edges_enumeration(self, diamond):
        assert set(diamond.edges()) == {(0, 1), (0, 2), (1, 3), (2, 3)}

    def test_descendants(self, diamond):
        assert diamond.descendants(0) == {1, 2, 3}
        assert diamond.descendants(1) == {3}
        assert diamond.descendants(3) == set()

    def test_ancestors(self, diamond):
        assert diamond.ancestors(3) == {0, 1, 2}
        assert diamond.ancestors(0) == set()

    def test_levels(self, diamond):
        assert diamond.levels() == [(0,), (1, 2), (3,)]

    def test_width_and_depth(self, diamond):
        assert diamond.width() == 2
        assert diamond.depth() == 3

    def test_critical_path_unit_runtimes(self, diamond):
        assert diamond.critical_path_length() == 3

    def test_critical_path_weighted(self):
        tasks = [Task(0, 5, (1,)), Task(1, 1, (1,)), Task(2, 10, (1,))]
        graph = TaskGraph(tasks, [(0, 1), (1, 2)])
        assert graph.critical_path_length() == 16

    def test_total_work(self, diamond):
        # 4 tasks x runtime 1 x demand 1 per resource
        assert diamond.total_work(0) == 4
        assert diamond.total_work() == 8

    def test_subgraph(self, diamond):
        sub = diamond.subgraph([0, 1, 3])
        assert sub.num_tasks == 3
        assert set(sub.edges()) == {(0, 1), (1, 3)}

    def test_subgraph_unknown_id_raises(self, diamond):
        with pytest.raises(UnknownTaskError):
            diamond.subgraph([0, 99])

    def test_equality_and_hash(self, diamond):
        other = TaskGraph(make_tasks(4), [(0, 1), (0, 2), (1, 3), (2, 3)])
        assert diamond == other
        assert hash(diamond) == hash(other)

    def test_inequality_on_different_edges(self, diamond):
        other = TaskGraph(make_tasks(4), [(0, 1), (0, 2), (1, 3)])
        assert diamond != other

    def test_repr_mentions_sizes(self, diamond):
        assert "num_tasks=4" in repr(diamond)


class TestDeterminism:
    def test_topo_order_is_deterministic(self):
        tasks = make_tasks(6)
        edges = [(0, 3), (1, 3), (2, 4), (3, 5), (4, 5)]
        a = TaskGraph(tasks, edges).topological_order()
        b = TaskGraph(tasks, list(reversed(edges))).topological_order()
        assert a == b

    def test_independent_tasks_sorted_by_id(self):
        graph = TaskGraph(make_tasks(5))
        assert graph.topological_order() == (0, 1, 2, 3, 4)
