"""Unit tests for the DAG generators."""

import numpy as np
import pytest

from repro.config import WorkloadConfig
from repro.dag import (
    chain_dag,
    fork_join_dag,
    independent_tasks_dag,
    random_layered_dag,
)
from repro.dag.generators import truncated_normal_int
from repro.errors import ConfigError


class TestTruncatedNormal:
    def test_respects_bounds(self, rng):
        draws = truncated_normal_int(rng, 10, 50, 1, 20, 1000)
        assert draws.min() >= 1
        assert draws.max() <= 20

    def test_returns_ints(self, rng):
        draws = truncated_normal_int(rng, 5, 1, 1, 10, 10)
        assert draws.dtype.kind == "i"

    def test_empty_range_rejected(self, rng):
        with pytest.raises(ConfigError):
            truncated_normal_int(rng, 5, 1, 10, 1, 10)

    def test_zero_std_is_constant(self, rng):
        draws = truncated_normal_int(rng, 7, 0, 1, 20, 5)
        assert set(draws.tolist()) == {7}


class TestRandomLayeredDag:
    def test_task_count_matches_config(self):
        graph = random_layered_dag(WorkloadConfig(num_tasks=37), seed=0)
        assert graph.num_tasks == 37

    def test_runtimes_and_demands_in_range(self):
        cfg = WorkloadConfig(num_tasks=50)
        graph = random_layered_dag(cfg, seed=1)
        for task in graph:
            assert 1 <= task.runtime <= cfg.max_runtime
            assert all(1 <= d <= cfg.max_demand for d in task.demands)

    def test_layer_widths_within_range(self):
        cfg = WorkloadConfig(num_tasks=60, min_width=2, max_width=5)
        graph = random_layered_dag(cfg, seed=2)
        # Generated layers are consecutive id blocks; graph.width() can be
        # smaller than max_width but never larger.
        assert graph.width() <= cfg.max_width

    def test_every_non_source_has_a_parent(self):
        graph = random_layered_dag(WorkloadConfig(num_tasks=40), seed=3)
        sources = set(graph.sources())
        first_layer = set(graph.levels()[0])
        assert sources == first_layer

    def test_every_non_sink_has_a_child(self):
        graph = random_layered_dag(WorkloadConfig(num_tasks=40), seed=4)
        last_layer = set(graph.levels()[-1])
        assert set(graph.sinks()) == last_layer

    def test_seed_reproducibility(self):
        a = random_layered_dag(WorkloadConfig(num_tasks=30), seed=42)
        b = random_layered_dag(WorkloadConfig(num_tasks=30), seed=42)
        assert a == b

    def test_different_seeds_differ(self):
        a = random_layered_dag(WorkloadConfig(num_tasks=30), seed=1)
        b = random_layered_dag(WorkloadConfig(num_tasks=30), seed=2)
        assert a != b

    def test_generator_instance_accepted(self):
        rng = np.random.default_rng(5)
        graph = random_layered_dag(WorkloadConfig(num_tasks=10), seed=rng)
        assert graph.num_tasks == 10

    def test_custom_resource_count(self):
        graph = random_layered_dag(
            WorkloadConfig(num_tasks=10), seed=0, num_resources=3
        )
        assert graph.num_resources == 3

    def test_zero_resources_rejected(self):
        with pytest.raises(ConfigError):
            random_layered_dag(WorkloadConfig(num_tasks=5), num_resources=0)

    def test_single_task(self):
        graph = random_layered_dag(WorkloadConfig(num_tasks=1), seed=0)
        assert graph.num_tasks == 1
        assert graph.num_edges == 0


class TestChainDag:
    def test_structure(self):
        graph = chain_dag([1, 2, 3])
        assert graph.num_tasks == 3
        assert list(graph.edges()) == [(0, 1), (1, 2)]

    def test_runtimes_assigned_in_order(self):
        graph = chain_dag([5, 7])
        assert graph.task(0).runtime == 5
        assert graph.task(1).runtime == 7

    def test_explicit_demands(self):
        graph = chain_dag([1, 1], demands=[(3, 4), (5, 6)])
        assert graph.task(0).demands == (3, 4)
        assert graph.task(1).demands == (5, 6)

    def test_empty_rejected(self):
        with pytest.raises(ConfigError):
            chain_dag([])

    def test_length_mismatch_rejected(self):
        with pytest.raises(ConfigError):
            chain_dag([1, 2], demands=[(1, 1)])

    def test_critical_path_is_total_runtime(self):
        graph = chain_dag([2, 3, 4])
        assert graph.critical_path_length() == 9


class TestForkJoinDag:
    def test_structure(self):
        graph = fork_join_dag(3)
        assert graph.num_tasks == 5
        assert graph.sources() == (0,)
        assert graph.sinks() == (4,)
        assert len(graph.children(0)) == 3

    def test_zero_fanout_rejected(self):
        with pytest.raises(ConfigError):
            fork_join_dag(0)

    def test_critical_path(self):
        graph = fork_join_dag(4, head_runtime=2, branch_runtime=3, tail_runtime=1)
        assert graph.critical_path_length() == 6


class TestIndependentTasksDag:
    def test_no_edges(self):
        graph = independent_tasks_dag([1, 2, 3])
        assert graph.num_edges == 0
        assert graph.sources() == (0, 1, 2)

    def test_empty_rejected(self):
        with pytest.raises(ConfigError):
            independent_tasks_dag([])
