"""Unit tests for the classic DAG-scheduling benchmark topologies."""

import pytest

from repro.dag import (
    cholesky_dag,
    fft_dag,
    gaussian_elimination_dag,
    stencil_dag,
)
from repro.errors import ConfigError


class TestGaussianElimination:
    def test_task_count(self):
        # n(n+1)/2 - 1 tasks: n=4 -> 9 (3 pivots + 3+2+1 updates).
        graph = gaussian_elimination_dag(4)
        assert graph.num_tasks == 9

    def test_pivot_chain_is_critical(self):
        graph = gaussian_elimination_dag(4, pivot_runtime=5, update_runtime=1)
        # Pivots and the inter-step updates alternate on the longest path:
        # pivot, update, pivot, update, pivot, update = 3*(5+1) = 18.
        assert graph.critical_path_length() == 18

    def test_single_source_is_first_pivot(self):
        graph = gaussian_elimination_dag(5)
        assert graph.sources() == (0,)
        assert graph.task(0).name == "pivot-0"

    def test_triangular_narrowing(self):
        graph = gaussian_elimination_dag(5)
        levels = graph.levels()
        widths = [len(level) for level in levels]
        assert max(widths) == 4  # widest update fan-out is n-1

    def test_minimum_size_rejected(self):
        with pytest.raises(ConfigError):
            gaussian_elimination_dag(1)

    def test_schedulable(self):
        from repro.config import ClusterConfig, EnvConfig
        from repro.metrics import validate_schedule
        from repro.schedulers import make_scheduler

        graph = gaussian_elimination_dag(5)
        env_config = EnvConfig(
            cluster=ClusterConfig(capacities=(10, 10), horizon=8)
        )
        schedule = make_scheduler("cp", env_config).schedule(graph)
        validate_schedule(schedule, graph, (10, 10))


class TestFft:
    def test_task_count(self):
        # points=4 (k=2): splits 1+2+4=7, combines 2 layers x 2 = 4 -> 11.
        graph = fft_dag(4)
        assert graph.num_tasks == 11

    def test_single_source(self):
        graph = fft_dag(8)
        assert graph.sources() == (0,)

    def test_combine_layers_have_two_parents(self):
        graph = fft_dag(4)
        butterfly_ids = [
            t.task_id for t in graph if t.name and t.name.startswith("butterfly")
        ]
        for tid in butterfly_ids:
            assert len(graph.parents(tid)) == 2

    def test_critical_path(self):
        graph = fft_dag(4, split_runtime=1, combine_runtime=3)
        # 3 splits deep (1+1+1) + 2 combine layers (3+3) = 9.
        assert graph.critical_path_length() == 9

    def test_non_power_of_two_rejected(self):
        with pytest.raises(ConfigError):
            fft_dag(6)
        with pytest.raises(ConfigError):
            fft_dag(1)


class TestStencil:
    def test_task_count(self):
        assert stencil_dag(5, 4).num_tasks == 20

    def test_dependencies_clamp_at_boundaries(self):
        graph = stencil_dag(3, 2)
        # Cell (1, 0) depends on (0, 0) and (0, 1) only.
        assert graph.parents(3) == (0, 1)
        # Cell (1, 1) depends on all three cells of step 0.
        assert graph.parents(4) == (0, 1, 2)

    def test_critical_path_is_steps(self):
        graph = stencil_dag(6, 7, runtime=2)
        assert graph.critical_path_length() == 14

    def test_width_equals_row(self):
        assert stencil_dag(6, 3).width() == 6

    def test_invalid_sizes(self):
        with pytest.raises(ConfigError):
            stencil_dag(0, 3)
        with pytest.raises(ConfigError):
            stencil_dag(3, 0)


class TestCholesky:
    def test_task_count(self):
        # tiles=3: k=0: potrf + 2 trsm + 2 syrk + 1 gemm = 6;
        # k=1: potrf + 1 trsm + 1 syrk = 3; k=2: potrf = 1 -> 10.
        graph = cholesky_dag(3)
        assert graph.num_tasks == 10

    def test_single_tile_is_one_potrf(self):
        graph = cholesky_dag(1)
        assert graph.num_tasks == 1
        assert graph.task(0).name == "potrf-0"

    def test_potrf_chain_orders_steps(self):
        graph = cholesky_dag(3)
        names = {t.task_id: t.name for t in graph}
        potrfs = sorted(tid for tid, n in names.items() if n.startswith("potrf"))
        # Each later potrf transitively depends on the previous one.
        assert potrfs[0] in graph.ancestors(potrfs[1])
        assert potrfs[1] in graph.ancestors(potrfs[2])

    def test_kernel_mix_present(self):
        graph = cholesky_dag(4)
        prefixes = {t.name.split("-")[0] for t in graph}
        assert prefixes == {"potrf", "trsm", "syrk", "gemm"}

    def test_invalid_tiles(self):
        with pytest.raises(ConfigError):
            cholesky_dag(0)

    def test_schedulable_and_bounded(self):
        from repro.config import ClusterConfig, EnvConfig
        from repro.dag import makespan_lower_bound
        from repro.metrics import validate_schedule
        from repro.schedulers import make_scheduler

        graph = cholesky_dag(4)
        env_config = EnvConfig(
            cluster=ClusterConfig(capacities=(10, 10), horizon=8)
        )
        schedule = make_scheduler("tetris", env_config).schedule(graph)
        validate_schedule(schedule, graph, (10, 10))
        assert schedule.makespan >= makespan_lower_bound(graph, (10, 10))
