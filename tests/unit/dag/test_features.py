"""Unit tests for b-level / t-level / b-load feature computation."""

import pytest

from repro.dag import Task, TaskGraph, compute_features


def graph_chain():
    # 0 (r=2) -> 1 (r=3) -> 2 (r=1), demands (2, 4)
    tasks = [Task(i, r, (2, 4)) for i, r in enumerate([2, 3, 1])]
    return TaskGraph(tasks, [(0, 1), (1, 2)])


def graph_branching():
    # 0 (r=1) -> 1 (r=5), 0 -> 2 (r=2) -> 3 (r=2)
    tasks = [
        Task(0, 1, (1, 1)),
        Task(1, 5, (1, 1)),
        Task(2, 2, (3, 1)),
        Task(3, 2, (3, 1)),
    ]
    return TaskGraph(tasks, [(0, 1), (0, 2), (2, 3)])


class TestBLevel:
    def test_chain_blevels_accumulate(self):
        features = compute_features(graph_chain())
        assert features.b_level == {0: 6, 1: 4, 2: 1}

    def test_exit_node_blevel_is_runtime(self):
        features = compute_features(graph_branching())
        assert features.b_level[1] == 5
        assert features.b_level[3] == 2

    def test_branching_takes_longest_path(self):
        features = compute_features(graph_branching())
        # Via 1: 1 + 5 = 6; via 2 -> 3: 1 + 2 + 2 = 5.
        assert features.b_level[0] == 6

    def test_critical_path_is_max_blevel(self):
        features = compute_features(graph_branching())
        assert features.critical_path == 6
        graph = graph_branching()
        assert features.critical_path == graph.critical_path_length()


class TestTLevel:
    def test_sources_have_zero_tlevel(self):
        features = compute_features(graph_branching())
        assert features.t_level[0] == 0

    def test_chain_tlevels(self):
        features = compute_features(graph_chain())
        assert features.t_level == {0: 0, 1: 2, 2: 5}

    def test_tlevel_takes_longest_upstream(self):
        # Two parents with different runtimes.
        tasks = [Task(0, 5, (1,)), Task(1, 2, (1,)), Task(2, 1, (1,))]
        graph = TaskGraph(tasks, [(0, 2), (1, 2)])
        features = compute_features(graph)
        assert features.t_level[2] == 5

    def test_blevel_plus_tlevel_bounded_by_critical_path(self):
        features = compute_features(graph_branching())
        for tid in features.b_level:
            assert (
                features.t_level[tid] + features.b_level[tid]
                <= features.critical_path
            )


class TestBLoad:
    def test_exit_node_bload_is_own_load(self):
        features = compute_features(graph_chain())
        # Task 2: runtime 1 x demands (2, 4).
        assert features.b_load[2] == (2, 4)

    def test_chain_bload_accumulates(self):
        features = compute_features(graph_chain())
        # Task 0: loads 2*(2,4) + 3*(2,4) + 1*(2,4) = (12, 24).
        assert features.b_load[0] == (12, 24)

    def test_bload_follows_blevel_path(self):
        features = compute_features(graph_branching())
        # b-level path of 0 goes through 1 (runtime 5, demands (1,1)):
        # own (1,1) + child (5,5) = (6, 6), NOT via 2 -> 3.
        assert features.b_load[0] == (6, 6)

    def test_bload_tie_prefers_heavier_path(self):
        # Two children with equal b-level but different loads.
        tasks = [
            Task(0, 1, (1, 1)),
            Task(1, 3, (1, 1)),   # light path
            Task(2, 3, (5, 5)),   # heavy path, same b-level
        ]
        graph = TaskGraph(tasks, [(0, 1), (0, 2)])
        features = compute_features(graph)
        assert features.b_load[0] == (1 + 15, 1 + 15)


class TestNumChildren:
    def test_counts_direct_children_only(self):
        features = compute_features(graph_branching())
        assert features.num_children == {0: 2, 1: 0, 2: 1, 3: 0}


class TestPriorityOrder:
    def test_descending_blevel(self):
        features = compute_features(graph_chain())
        assert features.priority_order() == (0, 1, 2)

    def test_tie_broken_by_children_then_id(self):
        tasks = [
            Task(0, 2, (1,)),  # b-level 2, 0 children
            Task(1, 2, (1,)),  # b-level 2, 1 child
            Task(2, 1, (1,)),  # hmm — child of 1 (b-level 1)
        ]
        graph = TaskGraph(tasks, [(1, 2)])
        features = compute_features(graph)
        # 1 has b-level 3 > 0's 2 > 2's 1.
        assert features.priority_order() == (1, 0, 2)

    def test_equal_everything_breaks_by_id(self):
        graph = TaskGraph([Task(i, 1, (1,)) for i in range(3)])
        features = compute_features(graph)
        assert features.priority_order() == (0, 1, 2)
