"""Unit tests for job composition (union, serialization, barriers)."""

import pytest

from repro.dag import (
    Task,
    TaskGraph,
    chain_dag,
    disjoint_union,
    fork_join_dag,
    serialize_jobs,
    with_barrier_task,
)
from repro.dag.compose import relabel
from repro.errors import GraphError


@pytest.fixture
def jobs():
    return [chain_dag([2, 3]), fork_join_dag(2, demand=(1, 1))]


class TestRelabel:
    def test_shifts_ids_and_edges(self):
        graph = chain_dag([1, 1])
        tasks, edges = relabel(graph, 10)
        assert [t.task_id for t in tasks] == [10, 11]
        assert edges == [(10, 11)]

    def test_preserves_payload(self):
        graph = chain_dag([5], demands=[(3, 4)])
        tasks, _ = relabel(graph, 7)
        assert tasks[0].runtime == 5
        assert tasks[0].demands == (3, 4)

    def test_negative_offset_rejected(self):
        with pytest.raises(GraphError):
            relabel(chain_dag([1]), -1)


class TestDisjointUnion:
    def test_sizes_add_up(self, jobs):
        union = disjoint_union(jobs)
        assert union.num_tasks == sum(j.num_tasks for j in jobs)
        assert union.num_edges == sum(j.num_edges for j in jobs)

    def test_no_cross_edges(self, jobs):
        union = disjoint_union(jobs)
        first_size = jobs[0].num_tasks
        for up, down in union.edges():
            assert (up < first_size) == (down < first_size)

    def test_critical_path_is_max(self, jobs):
        union = disjoint_union(jobs)
        assert union.critical_path_length() == max(
            j.critical_path_length() for j in jobs
        )

    def test_empty_rejected(self):
        with pytest.raises(GraphError):
            disjoint_union([])

    def test_mixed_dimensionality_rejected(self):
        one = TaskGraph([Task(0, 1, (1,))])
        two = TaskGraph([Task(0, 1, (1, 1))])
        with pytest.raises(GraphError):
            disjoint_union([one, two])

    def test_single_job_roundtrip(self):
        job = chain_dag([1, 2, 3])
        assert disjoint_union([job]) == job


class TestSerializeJobs:
    def test_barrier_edges_added(self, jobs):
        serial = serialize_jobs(jobs)
        first = jobs[0]
        expected_extra = len(first.sinks()) * len(jobs[1].sources())
        assert serial.num_edges == sum(j.num_edges for j in jobs) + expected_extra

    def test_critical_path_is_sum(self, jobs):
        serial = serialize_jobs(jobs)
        assert serial.critical_path_length() == sum(
            j.critical_path_length() for j in jobs
        )

    def test_second_job_sources_depend_on_first_sinks(self, jobs):
        serial = serialize_jobs(jobs)
        offset = jobs[0].num_tasks
        for source in jobs[1].sources():
            parents = serial.parents(source + offset)
            assert set(parents) >= set(jobs[0].sinks())

    def test_three_jobs_chain(self):
        jobs = [chain_dag([1]), chain_dag([2]), chain_dag([3])]
        serial = serialize_jobs(jobs)
        assert serial.critical_path_length() == 6
        assert list(serial.topological_order()) == [0, 1, 2]


class TestBarrierTask:
    def test_single_sink_afterwards(self):
        graph = disjoint_union([chain_dag([1]), chain_dag([2])])
        barriered = with_barrier_task(graph)
        assert len(barriered.sinks()) == 1
        assert barriered.num_tasks == graph.num_tasks + 1

    def test_barrier_depends_on_all_old_sinks(self):
        graph = disjoint_union([chain_dag([1]), chain_dag([2])])
        barriered = with_barrier_task(graph)
        barrier = barriered.sinks()[0]
        assert set(barriered.parents(barrier)) == set(graph.sinks())

    def test_zero_demand_default(self):
        barriered = with_barrier_task(chain_dag([1]))
        barrier = barriered.sinks()[0]
        assert barriered.task(barrier).demands == (0, 0)

    def test_schedulable_end_to_end(self):
        """A composed + barriered workload runs through the env fine."""
        from repro.config import ClusterConfig, EnvConfig
        from repro.metrics import validate_schedule
        from repro.schedulers import make_scheduler

        workload = with_barrier_task(
            disjoint_union([chain_dag([2, 1]), fork_join_dag(2, demand=(2, 2))])
        )
        env_config = EnvConfig(
            cluster=ClusterConfig(capacities=(10, 10), horizon=8)
        )
        schedule = make_scheduler("tetris", env_config).schedule(workload)
        validate_schedule(schedule, workload, (10, 10))
