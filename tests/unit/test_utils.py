"""Unit tests for utils (rng, timing, validation) and the error hierarchy."""

import time

import numpy as np
import pytest

from repro import errors
from repro.utils import (
    Stopwatch,
    as_generator,
    check_non_negative,
    check_positive,
    check_probability,
    derive_seed,
    spawn,
    timed,
)


class TestRng:
    def test_as_generator_from_int(self):
        gen = as_generator(42)
        assert isinstance(gen, np.random.Generator)

    def test_as_generator_passthrough(self):
        gen = np.random.default_rng(0)
        assert as_generator(gen) is gen

    def test_as_generator_none_gives_fresh(self):
        a, b = as_generator(None), as_generator(None)
        assert a is not b

    def test_same_seed_same_stream(self):
        assert as_generator(7).integers(0, 100) == as_generator(7).integers(0, 100)

    def test_spawn_children_independent_of_each_other(self):
        parent = as_generator(0)
        kids = spawn(parent, 3)
        draws = [k.integers(0, 2**31) for k in kids]
        assert len(set(draws)) == 3

    def test_spawn_deterministic(self):
        a = [k.integers(0, 100) for k in spawn(as_generator(5), 4)]
        b = [k.integers(0, 100) for k in spawn(as_generator(5), 4)]
        assert a == b

    def test_spawn_zero(self):
        assert spawn(as_generator(0), 0) == []

    def test_spawn_negative_rejected(self):
        with pytest.raises(ValueError):
            spawn(as_generator(0), -1)

    def test_derive_seed_range(self):
        seed = derive_seed(as_generator(1))
        assert 0 <= seed < 2**63


class TestStopwatch:
    def test_accumulates(self):
        watch = Stopwatch()
        with watch:
            time.sleep(0.01)
        first = watch.elapsed
        assert first >= 0.01
        with watch:
            time.sleep(0.01)
        assert watch.elapsed > first

    def test_running_flag(self):
        watch = Stopwatch()
        assert not watch.running
        watch.start()
        assert watch.running
        watch.stop()
        assert not watch.running

    def test_double_start_rejected(self):
        watch = Stopwatch().start()
        with pytest.raises(RuntimeError):
            watch.start()

    def test_stop_without_start_rejected(self):
        with pytest.raises(RuntimeError):
            Stopwatch().stop()

    def test_reset(self):
        watch = Stopwatch()
        with watch:
            pass
        watch.reset()
        assert watch.elapsed == 0.0

    def test_timed_returns_result_and_seconds(self):
        result, seconds = timed(sum, [1, 2, 3])
        assert result == 6
        assert seconds >= 0.0


class TestValidationHelpers:
    def test_check_positive(self):
        assert check_positive(1.5, "x") == 1.5
        with pytest.raises(errors.ConfigError):
            check_positive(0, "x")

    def test_check_non_negative(self):
        assert check_non_negative(0, "x") == 0
        with pytest.raises(errors.ConfigError):
            check_non_negative(-1, "x")

    def test_check_probability(self):
        assert check_probability(0.5, "p") == 0.5
        with pytest.raises(errors.ConfigError):
            check_probability(1.01, "p")

    def test_error_message_names_argument(self):
        with pytest.raises(errors.ConfigError, match="alpha"):
            check_positive(-1, "alpha")


class TestErrorHierarchy:
    @pytest.mark.parametrize(
        "exc",
        [
            errors.GraphError,
            errors.CycleError,
            errors.UnknownTaskError,
            errors.CapacityError,
            errors.PlacementError,
            errors.ScheduleError,
            errors.ConfigError,
            errors.EnvironmentStateError,
            errors.CheckpointError,
            errors.TraceError,
        ],
    )
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, errors.ReproError)

    def test_config_error_is_value_error(self):
        assert issubclass(errors.ConfigError, ValueError)

    def test_unknown_task_error_is_key_error(self):
        assert issubclass(errors.UnknownTaskError, KeyError)

    def test_unknown_task_error_message_unquoted(self):
        err = errors.UnknownTaskError("no task with id 5")
        assert str(err) == "no task with id 5"
