"""The shared ``name:key=value,...`` grammar (repro.specs)."""

import pytest

from repro.errors import ConfigError
from repro.specs import (
    ARRIVAL_GRAMMAR,
    ARRIVAL_REQUIRED_KEYS,
    ARRIVAL_SPEC_SCHEMAS,
    ROUTER_GRAMMAR,
    ROUTER_SPEC_SCHEMAS,
    SCHEDULER_GRAMMAR,
    coerce_option,
    pop_option,
    reject_unknown_options,
    suggest,
    tokenize_spec,
    unknown_kind_error,
)


class TestTokenizer:
    def test_bare_name(self):
        assert tokenize_spec("heft", SCHEDULER_GRAMMAR) == ("heft", {})

    def test_options_split_and_strip(self):
        name, opts = tokenize_spec(
            " mcts : budget = 200 , seed=3 ", SCHEDULER_GRAMMAR
        )
        assert name == "mcts"
        assert opts == {"budget": "200", "seed": "3"}

    def test_empty_entries_skipped(self):
        assert tokenize_spec("a:,x=1,", ARRIVAL_GRAMMAR) == ("a", {"x": "1"})

    def test_empty_name_rejected_when_required(self):
        with pytest.raises(ConfigError, match="empty name"):
            tokenize_spec(":budget=1", SCHEDULER_GRAMMAR)

    def test_empty_name_tolerated_for_kind_families(self):
        # Closed-kind families report an unknown kind instead.
        assert tokenize_spec(":x=1", ROUTER_GRAMMAR)[0] == ""

    def test_duplicate_key_rejected_in_every_family(self):
        for grammar in (SCHEDULER_GRAMMAR, ARRIVAL_GRAMMAR, ROUTER_GRAMMAR):
            with pytest.raises(ConfigError, match="repeats key"):
                tokenize_spec("name:a=1,a=2", grammar)

    def test_family_phrasing_preserved(self):
        with pytest.raises(ConfigError, match="scheduler spec entry 'x'"):
            tokenize_spec("mcts:x", SCHEDULER_GRAMMAR)
        with pytest.raises(ConfigError, match="arrival option 'x'"):
            tokenize_spec("poisson:x", ARRIVAL_GRAMMAR)
        with pytest.raises(ConfigError, match="router option 'x' in"):
            tokenize_spec("hash:x", ROUTER_GRAMMAR)


class TestPopOption:
    def grammar(self):
        return ARRIVAL_GRAMMAR

    def test_typed_pop(self):
        opts = {"rate": "0.5", "n": "10", "path": "t.json"}
        g = self.grammar()
        assert pop_option(opts, "rate", float, spec="s", grammar=g) == 0.5
        assert pop_option(opts, "n", int, spec="s", grammar=g) == 10
        assert pop_option(opts, "path", str, spec="s", grammar=g) == "t.json"
        assert opts == {}

    def test_missing_required(self):
        with pytest.raises(ConfigError, match="is missing rate="):
            pop_option({}, "rate", float, spec="s", grammar=self.grammar(),
                       required=True)

    def test_missing_optional_returns_default(self):
        assert pop_option({}, "salt", int, spec="s", grammar=ROUTER_GRAMMAR,
                          default=0) == 0

    def test_bad_integer_and_number(self):
        with pytest.raises(ConfigError, match="bad integer for n"):
            pop_option({"n": "x"}, "n", int, spec="s", grammar=self.grammar())
        with pytest.raises(ConfigError, match="bad number for rate"):
            pop_option({"rate": "x"}, "rate", float, spec="s",
                       grammar=self.grammar())

    def test_bool_words(self):
        g = self.grammar()
        assert pop_option({"v": "yes"}, "v", bool, spec="s", grammar=g) is True
        assert pop_option({"v": "0"}, "v", bool, spec="s", grammar=g) is False
        with pytest.raises(ConfigError, match="bad flag for v"):
            pop_option({"v": "maybe"}, "v", bool, spec="s", grammar=g)


class TestCoerceOption:
    def test_string_coercion(self):
        assert coerce_option("mcts", "budget", "50", int) == 50
        assert coerce_option("mcts", "verify", "true", bool) is True

    def test_pretyped_passthrough_and_widening(self):
        assert coerce_option("mcts", "budget", 50, int) == 50
        assert coerce_option("x", "replan_budget", 2, float) == 2.0

    def test_mismatch_message(self):
        with pytest.raises(ConfigError, match="not a int"):
            coerce_option("mcts", "budget", "many", int)
        with pytest.raises(ConfigError, match="not a bool"):
            coerce_option("mcts", "verify", "maybe", bool)


class TestDidYouMean:
    def test_suggest_close_and_far(self):
        assert suggest("poison", ["poisson", "uniform"]) == (
            "; did you mean 'poisson'?"
        )
        assert suggest("zzz", ["poisson", "uniform"]) == ""

    def test_unknown_kind_enumerates_in_order(self):
        err = unknown_kind_error("poison", ARRIVAL_SPEC_SCHEMAS, ARRIVAL_GRAMMAR)
        assert "expected poisson, uniform or trace" in str(err)
        assert "did you mean 'poisson'" in str(err)
        err = unknown_kind_error("xx", ROUTER_SPEC_SCHEMAS, ROUTER_GRAMMAR)
        assert "round-robin, least-load, hash or affinity" in str(err)

    def test_reject_unknown_suggests(self):
        with pytest.raises(ConfigError, match="did you mean 'salt'"):
            reject_unknown_options(
                {"salty": "3"}, {"salt"}, spec="hash:salty=3",
                grammar=ROUTER_GRAMMAR,
            )


class TestCatalog:
    def test_required_keys_are_schema_subsets(self):
        for kind, required in ARRIVAL_REQUIRED_KEYS.items():
            assert set(required) <= set(ARRIVAL_SPEC_SCHEMAS[kind])

    def test_parsers_agree_with_catalog(self):
        # Every catalogued kind parses with its full documented key set.
        from repro.federation.routing import parse_router_spec

        parse_router_spec("round-robin")
        parse_router_spec("least-load:metric=tasks")
        parse_router_spec("hash:salt=7")
        parse_router_spec("affinity:spill=4")
