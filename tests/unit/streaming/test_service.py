"""Unit tests for the asyncio scheduling daemon (`repro serve`)."""

import asyncio
import contextlib

import pytest

from repro.errors import ProtocolError
from repro.schedulers import make_scheduler
from repro.streaming import SchedulerService, run_smoke
from repro.streaming import protocol


def test_batch_max_validated():
    with pytest.raises(ProtocolError):
        SchedulerService(make_scheduler("tetris"), batch_max=0)


class TestRunSmoke:
    def test_round_trip_three_concurrent_requests(self):
        summary = run_smoke(make_scheduler("tetris"), requests=3, seed=0)
        replies = summary["replies"]
        assert [r["id"] for r in replies] == ["smoke-0", "smoke-1", "smoke-2"]
        assert all(r["type"] == protocol.REPLY for r in replies)
        stats = summary["stats"]
        assert stats["accepted"] == 3 and stats["served"] == 3
        assert stats["errors"] == 0
        assert summary["drain"]["type"] == protocol.DRAIN_ACK
        assert summary["drain"]["served"] == 3

    def test_replies_name_their_batch_tick(self):
        summary = run_smoke(make_scheduler("sjf"), requests=4, seed=1)
        for reply in summary["replies"]:
            batch = reply["batch"]
            assert batch["tick"] >= 1
            assert 1 <= batch["size"] <= 4
        # ticks partition the requests: batch sizes grouped by tick agree
        sizes = {}
        for reply in summary["replies"]:
            sizes.setdefault(reply["batch"]["tick"], []).append(
                reply["batch"]["size"]
            )
        for tick, batch_sizes in sizes.items():
            assert len(set(batch_sizes)) == 1
            assert len(batch_sizes) == batch_sizes[0]

    def test_batch_max_one_serializes_ticks(self):
        summary = run_smoke(make_scheduler("tetris"), requests=3, batch_max=1)
        assert all(r["batch"]["size"] == 1 for r in summary["replies"])
        assert summary["stats"]["batches"] == 3

    def test_needs_at_least_one_request(self):
        with pytest.raises(ProtocolError):
            run_smoke(make_scheduler("tetris"), requests=0)


class _Client:
    """Minimal NDJSON test client against a live service."""

    def __init__(self, port):
        self.port = port

    async def __aenter__(self):
        self.reader, self.writer = await asyncio.open_connection(
            "127.0.0.1", self.port
        )
        return self

    async def __aexit__(self, *exc):
        self.writer.close()
        with contextlib.suppress(Exception):
            await self.writer.wait_closed()

    async def send(self, frame):
        self.writer.write(protocol.encode_frame(frame))
        await self.writer.drain()

    async def recv(self):
        line = await asyncio.wait_for(self.reader.readline(), timeout=10)
        return protocol.decode_frame(line)


def _serve(coro_factory):
    """Run one scenario against a started service; always stop it."""

    async def main():
        service = SchedulerService(make_scheduler("tetris"), port=0, batch_max=4)
        _, port = await service.start()
        try:
            return await asyncio.wait_for(coro_factory(service, port), timeout=30)
        finally:
            await service.stop()

    return asyncio.run(main())


class TestServiceProtocol:
    def test_malformed_frame_keeps_connection_alive(self):
        async def scenario(service, port):
            async with _Client(port) as client:
                client.writer.write(b"{broken\n")
                await client.writer.drain()
                error = await client.recv()
                await client.send({"type": protocol.PING})
                pong = await client.recv()
                return error, pong

        error, pong = _serve(scenario)
        assert error["type"] == protocol.ERROR
        assert pong["type"] == protocol.PONG

    def test_unknown_frame_type_reports_error(self):
        async def scenario(service, port):
            async with _Client(port) as client:
                await client.send({"type": "warp", "id": "x"})
                return await client.recv()

        reply = _serve(scenario)
        assert reply["type"] == protocol.ERROR and reply["id"] == "x"
        assert "warp" in reply["error"]

    def test_bad_schedule_payload_counts_as_error(self):
        async def scenario(service, port):
            async with _Client(port) as client:
                await client.send({"type": protocol.SCHEDULE, "id": "bad"})
                reply = await client.recv()
                return reply, service.stats.errors

        reply, errors = _serve(scenario)
        assert reply["type"] == protocol.ERROR and reply["id"] == "bad"
        assert errors == 1

    def test_draining_rejects_new_schedules(self):
        async def scenario(service, port):
            service._draining = True
            async with _Client(port) as client:
                frame = protocol.schedule_frame(
                    "late", _smoke_request()
                )
                await client.send(frame)
                return await client.recv()

        reply = _serve(scenario)
        assert reply["type"] == protocol.ERROR
        assert "draining" in reply["error"]

    def test_subscriber_sees_batch_telemetry(self):
        async def scenario(service, port):
            async with _Client(port) as sub, _Client(port) as client:
                await sub.send({"type": protocol.SUBSCRIBE})
                ack = await sub.recv()
                await client.send(
                    protocol.schedule_frame("job", _smoke_request())
                )
                reply = await client.recv()
                telemetry = await sub.recv()
                return ack, reply, telemetry

        ack, reply, telemetry = _serve(scenario)
        assert ack["type"] == protocol.SUBSCRIBE_ACK
        assert reply["type"] == protocol.REPLY
        assert telemetry["type"] == protocol.TELEMETRY
        assert telemetry["event"] == "serve.batch"
        assert telemetry["size"] == 1


def _smoke_request():
    from repro.schedulers.base import ClusterSnapshot, ScheduleRequest
    from repro.streaming import layered_job_factory

    return ScheduleRequest(
        graph=layered_job_factory()(0, 7),
        cluster=ClusterSnapshot(capacities=(20, 20), available=(20, 20), now=0),
    )
