"""Unit tests for repro.streaming arrival processes and spec parsing."""

import pytest

from repro.errors import ConfigError
from repro.online.results import ArrivingJob
from repro.streaming import (
    PoissonProcess,
    TraceArrivals,
    UniformProcess,
    layered_job_factory,
    parse_arrival_spec,
    streaming_workload,
)


class TestPoissonProcess:
    def test_deterministic_for_seed(self):
        a = PoissonProcess(0.2, 30, layered_job_factory(), seed=5)
        b = PoissonProcess(0.2, 30, layered_job_factory(), seed=5)
        ja, jb = list(a.jobs()), list(b.jobs())
        assert [j.arrival_time for j in ja] == [j.arrival_time for j in jb]
        assert all(x.graph == y.graph for x, y in zip(ja, jb))

    def test_restartable(self):
        process = PoissonProcess(0.2, 20, layered_job_factory(), seed=1)
        first = list(process.jobs())
        again = list(process.jobs())
        assert [j.arrival_time for j in first] == [j.arrival_time for j in again]
        assert all(x.graph == y.graph for x, y in zip(first, again))

    def test_seed_changes_stream(self):
        a = list(PoissonProcess(0.2, 30, layered_job_factory(), seed=0).jobs())
        b = list(PoissonProcess(0.2, 30, layered_job_factory(), seed=1).jobs())
        assert [j.arrival_time for j in a] != [j.arrival_time for j in b]

    def test_nondecreasing_times_and_count(self):
        jobs = list(PoissonProcess(0.8, 100, layered_job_factory(), seed=3).jobs())
        assert len(jobs) == 100
        times = [j.arrival_time for j in jobs]
        assert times == sorted(times)

    def test_rate_controls_density(self):
        slow = list(PoissonProcess(0.01, 50, layered_job_factory(), seed=2).jobs())
        fast = list(PoissonProcess(1.0, 50, layered_job_factory(), seed=2).jobs())
        assert slow[-1].arrival_time > fast[-1].arrival_time

    def test_invalid_parameters(self):
        with pytest.raises(ConfigError):
            PoissonProcess(0.0, 10, layered_job_factory())
        with pytest.raises(ConfigError):
            PoissonProcess(0.5, 0, layered_job_factory())

    def test_task_id_bound_from_factory(self):
        factory = layered_job_factory(streaming_workload(num_tasks=5))
        process = PoissonProcess(0.5, 10, factory, seed=0)
        assert process.task_id_bound == 5
        for job in process.jobs():
            assert max(job.graph.task_ids) < 5


class TestUniformProcess:
    def test_fixed_spacing(self):
        jobs = list(UniformProcess(7, 5, layered_job_factory(), seed=0).jobs())
        assert [j.arrival_time for j in jobs] == [0, 7, 14, 21, 28]

    def test_zero_interarrival_is_a_burst(self):
        jobs = list(UniformProcess(0, 4, layered_job_factory(), seed=0).jobs())
        assert [j.arrival_time for j in jobs] == [0, 0, 0, 0]


class TestTraceArrivals:
    def test_sorts_by_time_then_index(self):
        factory = layered_job_factory()
        g0, g1, g2 = (factory(i, seed) for i, seed in enumerate((3, 4, 5)))
        process = TraceArrivals(
            [ArrivingJob(9, g0), ArrivingJob(2, g1), ArrivingJob(2, g2)]
        )
        jobs = list(process.jobs())
        assert [j.arrival_time for j in jobs] == [2, 2, 9]
        assert jobs[0].graph == g1 and jobs[1].graph == g2

    def test_bound_covers_all_graphs(self):
        factory = layered_job_factory(streaming_workload(num_tasks=6))
        process = TraceArrivals([ArrivingJob(0, factory(0, 9))])
        assert process.task_id_bound == 1 + max(
            next(iter(process.jobs())).graph.task_ids
        )

    def test_empty_rejected(self):
        with pytest.raises(ConfigError):
            TraceArrivals([])


class TestParseArrivalSpec:
    def test_poisson_spec(self):
        process = parse_arrival_spec("poisson:rate=0.05,n=40", seed=3)
        assert isinstance(process, PoissonProcess)
        assert process.rate == 0.05 and process.num_jobs == 40
        assert process.seed == 3

    def test_uniform_spec(self):
        process = parse_arrival_spec("uniform:interarrival=12,n=6")
        assert isinstance(process, UniformProcess)
        assert process.interarrival == 12 and process.num_jobs == 6

    def test_trace_spec(self, tmp_path):
        from repro.traces.synthetic import TraceConfig, generate_production_trace

        trace = generate_production_trace(TraceConfig(num_jobs=4), seed=0)
        path = tmp_path / "trace.json"
        trace.save(path)
        process = parse_arrival_spec(f"trace:path={path},mean=10", seed=1)
        assert isinstance(process, TraceArrivals)
        assert len(list(process.jobs())) == 4

    @pytest.mark.parametrize(
        "spec",
        [
            "warp:rate=1,n=5",  # unknown kind
            "poisson:n=5",  # missing rate
            "poisson:rate=0.1",  # missing n
            "poisson:rate=0.1,n=5,extra=1",  # leftover option
            "poisson:rate=abc,n=5",  # bad number
            "uniform:interarrival",  # not key=value
            "trace:mean=10",  # missing path
        ],
    )
    def test_bad_specs_rejected(self, spec):
        with pytest.raises(ConfigError):
            parse_arrival_spec(spec)

    def test_factory_without_bound_rejected(self):
        def factory(index, seed):  # pragma: no cover - never called
            raise AssertionError

        with pytest.raises(ConfigError):
            parse_arrival_spec("poisson:rate=0.1,n=5", factory)
