"""Unit tests for streaming result metrics and the percentile helper."""

import json

import pytest

from repro.config import ClusterConfig
from repro.online.rankers import sjf_ranker
from repro.streaming import (
    PoissonProcess,
    StreamingSimulator,
    layered_job_factory,
    percentile,
)


class TestPercentile:
    def test_nearest_rank(self):
        values = [10, 20, 30, 40]
        assert percentile(values, 50) == 20.0
        assert percentile(values, 51) == 30.0
        assert percentile(values, 99) == 40.0
        assert percentile(values, 100) == 40.0

    def test_zero_maps_to_minimum(self):
        assert percentile([7, 3, 5], 0) == 3.0

    def test_empty_is_zero(self):
        assert percentile([], 99) == 0.0

    def test_out_of_range_rejected(self):
        with pytest.raises(ValueError):
            percentile([1], 101)
        with pytest.raises(ValueError):
            percentile([1], -1)


def _run(seed=0):
    arrivals = PoissonProcess(0.1, 25, layered_job_factory(), seed=seed)
    sim = StreamingSimulator(ClusterConfig(capacities=(10, 10), horizon=8))
    return sim.run(arrivals, sjf_ranker)


class TestMetricsDict:
    def test_schema_and_accounting(self):
        result = _run()
        metrics = result.metrics_dict()
        assert metrics["schema"] == 1
        jobs = metrics["jobs"]
        assert jobs["arrivals"] == 25
        assert jobs["admitted"] == jobs["arrivals"] - jobs["rejected"]
        assert jobs["completed"] + jobs["failed"] == jobs["admitted"]
        assert metrics["jct"]["p50"] <= metrics["jct"]["p99"] <= metrics["jct"]["max"]
        assert metrics["horizon"]["span"] >= 1
        assert metrics["horizon"]["cutoff"] == -1

    def test_json_serializable_and_stable(self):
        a = json.dumps(_run().metrics_dict(), sort_keys=True, indent=2)
        b = json.dumps(_run().metrics_dict(), sort_keys=True, indent=2)
        assert a == b

    def test_in_system_series_compressed(self):
        result = _run()
        series = result.in_system
        assert series, "steady run must sample the in-system trajectory"
        times = [t for t, _ in series]
        assert times == sorted(times) and len(times) == len(set(times))
        # compression: no two consecutive samples repeat the same count
        counts = [c for _, c in series]
        assert all(a != b for a, b in zip(counts, counts[1:]))
        assert result.peak_in_system == max(counts)

    def test_report_mentions_headline_numbers(self):
        result = _run()
        text = result.report()
        assert f"arrivals {result.arrivals}" in text
        assert "throughput" in text
