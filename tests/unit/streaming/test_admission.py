"""Unit tests for admission control and bounded-queue backpressure."""

import pytest

from repro.errors import ConfigError
from repro.streaming import (
    ADMIT,
    QUEUE,
    REJECT,
    AdmissionConfig,
    AdmissionController,
    QueuedJob,
    layered_job_factory,
)


def _job(index, arrival_time=0):
    return QueuedJob(index, arrival_time, layered_job_factory()(index, index))


class TestAdmissionConfig:
    def test_defaults_unbounded(self):
        config = AdmissionConfig()
        assert config.max_concurrent is None and config.max_queue is None

    def test_max_concurrent_floor(self):
        with pytest.raises(ConfigError):
            AdmissionConfig(max_concurrent=0)

    def test_negative_queue_rejected(self):
        with pytest.raises(ConfigError):
            AdmissionConfig(max_concurrent=2, max_queue=-1)

    def test_queue_without_limit_rejected(self):
        with pytest.raises(ConfigError):
            AdmissionConfig(max_queue=4)


class TestAdmissionController:
    def test_unbounded_always_admits(self):
        ctl = AdmissionController()
        for index in range(5):
            assert ctl.offer(_job(index), active_count=index) == ADMIT
        assert len(ctl) == 0

    def test_queues_at_limit(self):
        ctl = AdmissionController(AdmissionConfig(max_concurrent=2))
        assert ctl.offer(_job(0), active_count=1) == ADMIT
        assert ctl.offer(_job(1), active_count=2) == QUEUE
        assert len(ctl) == 1

    def test_backlog_blocks_fresh_admits(self):
        # FIFO fairness: while anything is queued, a new arrival may not
        # jump the line even if a slot happens to be free.
        ctl = AdmissionController(AdmissionConfig(max_concurrent=2))
        assert ctl.offer(_job(0), active_count=2) == QUEUE
        assert ctl.offer(_job(1), active_count=1) == QUEUE
        assert len(ctl) == 2

    def test_rejects_when_backlog_full(self):
        ctl = AdmissionController(AdmissionConfig(max_concurrent=1, max_queue=1))
        assert ctl.offer(_job(0), active_count=1) == QUEUE
        assert ctl.offer(_job(1), active_count=1) == REJECT
        assert len(ctl) == 1

    def test_zero_queue_sheds_immediately(self):
        ctl = AdmissionController(AdmissionConfig(max_concurrent=1, max_queue=0))
        assert ctl.offer(_job(0), active_count=1) == REJECT
        assert len(ctl) == 0

    def test_release_respects_limit_and_order(self):
        ctl = AdmissionController(AdmissionConfig(max_concurrent=3))
        for index in range(4):
            assert ctl.offer(_job(index), active_count=3) == QUEUE
        released = ctl.release(active_count=1)
        assert [job.index for job in released] == [0, 1]
        assert len(ctl) == 2
        assert ctl.release(active_count=3) == []
        assert [job.index for job in ctl.release(active_count=0)] == [2, 3]
        assert len(ctl) == 0
