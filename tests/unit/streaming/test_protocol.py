"""Unit tests for the NDJSON wire protocol of the scheduling service."""

import json

import pytest

from repro.errors import ProtocolError
from repro.schedulers.base import ClusterSnapshot, ScheduleRequest
from repro.streaming import layered_job_factory
from repro.streaming.protocol import (
    ERROR,
    REPLY,
    SCHEDULE,
    decode_frame,
    encode_frame,
    error_frame,
    parse_schedule,
    reply_frame,
    schedule_frame,
)


def _request(with_cluster=True):
    graph = layered_job_factory()(0, 42)
    cluster = None
    if with_cluster:
        cluster = ClusterSnapshot(
            capacities=(20, 20), available=(12, 7), now=5
        )
    return ScheduleRequest(graph=graph, cluster=cluster)


class TestFraming:
    def test_encode_is_one_compact_line(self):
        wire = encode_frame({"type": "ping", "z": 1, "a": 2})
        assert wire.endswith(b"\n") and wire.count(b"\n") == 1
        assert b" " not in wire  # compact separators
        assert wire.index(b'"a"') < wire.index(b'"z"')  # sorted keys

    def test_round_trip(self):
        frame = {"type": "ping", "id": "x"}
        assert decode_frame(encode_frame(frame)) == frame

    def test_decode_accepts_str_and_bytes(self):
        assert decode_frame('{"type": "ping"}') == {"type": "ping"}
        assert decode_frame(b'{"type": "ping"}') == {"type": "ping"}

    @pytest.mark.parametrize(
        "line",
        [
            b"\xff\xfe",  # not UTF-8
            b"{not json",  # invalid JSON
            b"[1, 2]",  # not an object
            b"{}",  # no type
            b'{"type": 7}',  # non-string type
            b'{"type": ""}',  # empty type
        ],
    )
    def test_malformed_lines_rejected(self, line):
        with pytest.raises(ProtocolError):
            decode_frame(line)


class TestScheduleFrames:
    def test_request_round_trip(self):
        request = _request()
        frame = schedule_frame("job-1", request)
        # the frame must survive the wire
        decoded = decode_frame(encode_frame(frame))
        request_id, parsed = parse_schedule(decoded)
        assert request_id == "job-1"
        assert parsed.graph == request.graph
        assert parsed.cluster == request.cluster
        assert parsed.frozen == {} and parsed.pinned == {}

    def test_cluster_optional(self):
        frame = schedule_frame("job-2", _request(with_cluster=False))
        assert "cluster" not in frame
        _, parsed = parse_schedule(frame)
        assert parsed.cluster is None

    def test_placements_round_trip(self):
        request = ScheduleRequest(
            graph=layered_job_factory()(0, 1),
            frozen={0: (0, 3)},
            pinned={2: (4, 9)},
        )
        _, parsed = parse_schedule(schedule_frame("job-3", request))
        assert parsed.frozen == {0: (0, 3)}
        assert parsed.pinned == {2: (4, 9)}

    @pytest.mark.parametrize(
        "mutate",
        [
            lambda f: f.pop("id"),
            lambda f: f.update(id=""),
            lambda f: f.update(type="ping"),
            lambda f: f.pop("graph"),
            lambda f: f.update(graph={"bogus": True}),
            lambda f: f.update(cluster=[1, 2]),
            lambda f: f.update(cluster={"capacities": "nope"}),
            lambda f: f.update(frozen={"x": [1]}),
            lambda f: f.update(deadline="soon"),
        ],
    )
    def test_malformed_schedule_frames_rejected(self, mutate):
        frame = schedule_frame("job-4", _request())
        mutate(frame)
        with pytest.raises(ProtocolError):
            parse_schedule(frame)


class TestReplies:
    def test_reply_carries_schedule_and_batch(self):
        from repro.schedulers import make_scheduler

        request = _request()
        schedule = make_scheduler("tetris").plan(request)
        frame = reply_frame("job-5", schedule, tick=3, batch_size=2)
        assert frame["type"] == REPLY and frame["id"] == "job-5"
        assert frame["batch"] == {"tick": 3, "size": 2}
        payload = json.loads(encode_frame(frame).decode("utf-8"))
        placements = payload["schedule"]["placements"]
        assert len(placements) == len(request.graph.task_ids)

    def test_error_frame_echoes_id_when_present(self):
        assert error_frame("job-6", "boom") == {
            "type": ERROR,
            "id": "job-6",
            "error": "boom",
        }
        assert "id" not in error_frame(None, "boom")

    def test_type_constants_are_wire_values(self):
        assert SCHEDULE == "schedule" and REPLY == "schedule.reply"
