"""Unit tests for the steady-state streaming engine."""

import pytest

from repro.config import ClusterConfig
from repro.errors import ConfigError
from repro.online.rankers import sjf_ranker, tetris_ranker
from repro.online.results import ArrivingJob, verify_execution
from repro.streaming import (
    AdmissionConfig,
    PoissonProcess,
    StreamingSimulator,
    TraceArrivals,
    UniformProcess,
    layered_job_factory,
    streaming_workload,
)

CLUSTER = ClusterConfig(capacities=(10, 10), horizon=8)


def _poisson(rate=0.1, n=30, seed=0):
    return PoissonProcess(rate, n, layered_job_factory(), seed=seed)


class TestSteadyRun:
    def test_unbounded_admits_everything(self):
        result = StreamingSimulator(CLUSTER).run(_poisson(), sjf_ranker)
        assert result.arrivals == 30
        assert result.admitted == 30 and not result.rejected
        assert result.online.completed_jobs == 30
        assert result.queueing_delays == (0,) * 30

    def test_determinism(self):
        a = StreamingSimulator(CLUSTER).run(_poisson(seed=4), sjf_ranker)
        b = StreamingSimulator(CLUSTER).run(_poisson(seed=4), sjf_ranker)
        assert a == b
        assert a.metrics_dict() == b.metrics_dict()

    def test_executed_schedules_verify(self):
        arrivals = _poisson(rate=0.2, n=20, seed=2)
        result = StreamingSimulator(CLUSTER).run(arrivals, tetris_ranker)
        jobs = list(arrivals.jobs())
        reports = verify_execution(result.online, jobs, CLUSTER.capacities)
        assert len(reports) == 20
        assert all(report.violations == () for report in reports)

    def test_empty_stream_rejected(self):
        class Empty:
            task_id_bound = 8

            def jobs(self):
                return iter(())

        with pytest.raises(ConfigError):
            StreamingSimulator(CLUSTER).run(Empty(), sjf_ranker)


class TestBoundedAdmission:
    def test_backpressure_queues_and_rejects(self):
        # A burst of simultaneous arrivals against max_concurrent=2 and a
        # backlog of 2 must queue two jobs and shed the rest.
        factory = layered_job_factory(streaming_workload(num_tasks=4))
        arrivals = TraceArrivals(
            [ArrivingJob(0, factory(i, i)) for i in range(8)]
        )
        admission = AdmissionConfig(max_concurrent=2, max_queue=2)
        result = StreamingSimulator(CLUSTER).run(
            arrivals, sjf_ranker, admission=admission
        )
        assert result.arrivals == 8
        assert result.admitted == 4
        assert len(result.rejected) == 4
        assert all(r.reason == "backpressure" for r in result.rejected)
        assert result.admitted + len(result.rejected) == result.arrivals
        # the two backlogged jobs waited for a slot
        assert sum(1 for d in result.queueing_delays if d > 0) == 2

    def test_in_system_never_exceeds_limits(self):
        admission = AdmissionConfig(max_concurrent=3, max_queue=5)
        result = StreamingSimulator(CLUSTER).run(
            _poisson(rate=0.5, n=40, seed=1), sjf_ranker, admission=admission
        )
        # in-system counts active plus backlog, so the hard ceiling is
        # max_concurrent + max_queue.
        assert result.peak_in_system <= 3 + 5
        assert result.admitted + len(result.rejected) == result.arrivals

    def test_queueing_delay_reflects_wait(self):
        admission = AdmissionConfig(max_concurrent=1)
        result = StreamingSimulator(CLUSTER).run(
            UniformProcess(0, 3, layered_job_factory(), seed=0),
            sjf_ranker,
            admission=admission,
        )
        assert result.admitted == 3
        delays = sorted(result.queueing_delays)
        assert delays[0] == 0 and delays[-1] > 0


class TestHorizon:
    def test_cutoff_sheds_late_arrivals(self):
        arrivals = UniformProcess(10, 10, layered_job_factory(), seed=0)
        result = StreamingSimulator(CLUSTER).run(
            arrivals, sjf_ranker, horizon=35
        )
        assert result.horizon_cutoff == 35
        assert result.admitted < 10
        assert result.rejected and all(
            r.reason == "horizon" for r in result.rejected
        )
        assert result.admitted + len(result.rejected) == result.arrivals
        assert all(r.arrival_time > 35 for r in result.rejected)

    def test_generous_horizon_changes_nothing(self):
        base = StreamingSimulator(CLUSTER).run(_poisson(seed=3), sjf_ranker)
        capped = StreamingSimulator(CLUSTER).run(
            _poisson(seed=3), sjf_ranker, horizon=10**6
        )
        assert capped.horizon_cutoff == -1
        assert capped.online == base.online


class TestFaults:
    def test_faulty_run_completes_with_retries(self):
        from repro.faults import parse_fault_spec

        faults = parse_fault_spec(
            "crashes=2,transient=0.05", CLUSTER.capacities, horizon=400, seed=9
        )
        result = StreamingSimulator(CLUSTER).run(
            _poisson(rate=0.2, n=15, seed=5), sjf_ranker, faults=faults
        )
        metrics = result.metrics_dict()
        assert metrics["faults"]["crashes"] == result.online.crashes
        jobs = metrics["jobs"]
        assert jobs["completed"] + jobs["failed"] == jobs["admitted"] == 15
