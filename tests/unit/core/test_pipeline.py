"""Unit tests for the end-to-end training pipeline."""

import pytest

from repro.config import EnvConfig, NetworkConfig, TrainingConfig, WorkloadConfig
from repro.core.pipeline import (
    default_network,
    pretrain_network,
    train_spear_network,
    training_graphs,
)
from repro.env.observation import observation_size


class TestDefaultNetwork:
    def test_matches_observation_layout(self):
        env_config = EnvConfig()
        network = default_network(env_config, seed=0)
        assert network.input_size == observation_size(env_config)
        assert network.num_actions == env_config.max_ready + 1

    def test_custom_window_reconciled(self):
        env_config = EnvConfig(max_ready=7)
        network = default_network(
            env_config, NetworkConfig(hidden_sizes=(8,), max_ready=15), seed=0
        )
        assert network.num_actions == 8


class TestTrainingGraphs:
    def test_count_and_size(self):
        training = TrainingConfig(num_examples=5, example_num_tasks=9)
        graphs = training_graphs(training, seed=0)
        assert len(graphs) == 5
        assert all(g.num_tasks == 9 for g in graphs)

    def test_seeded_reproducibility(self):
        training = TrainingConfig(num_examples=3, example_num_tasks=7)
        assert training_graphs(training, seed=1) == training_graphs(training, seed=1)

    def test_distinct_examples(self):
        training = TrainingConfig(num_examples=3, example_num_tasks=7)
        graphs = training_graphs(training, seed=1)
        assert graphs[0] != graphs[1]


class TestFullPipeline:
    def test_returns_network_and_history(self):
        env_config = EnvConfig(process_until_completion=True)
        training = TrainingConfig(
            num_examples=2,
            example_num_tasks=6,
            rollouts_per_example=3,
            supervised_epochs=5,
            batch_size=2,
        )
        network, history = train_spear_network(
            env_config=env_config, training=training, seed=0, epochs=2
        )
        assert network.input_size == observation_size(env_config)
        assert len(history) == 2
        assert all(h.mean_makespan > 0 for h in history)

    def test_pipeline_reproducible_from_seed(self):
        import numpy as np

        env_config = EnvConfig(process_until_completion=True)
        training = TrainingConfig(
            num_examples=2,
            example_num_tasks=6,
            rollouts_per_example=3,
            supervised_epochs=3,
            batch_size=2,
        )
        net_a, hist_a = train_spear_network(
            env_config=env_config, training=training, seed=11, epochs=1
        )
        net_b, hist_b = train_spear_network(
            env_config=env_config, training=training, seed=11, epochs=1
        )
        assert hist_a[0].mean_makespan == hist_b[0].mean_makespan
        assert all(
            np.array_equal(net_a.params[k], net_b.params[k]) for k in net_a.params
        )

    def test_pretrain_reduces_loss(self, tiny_training_setup):
        network, env_config, graphs, training = tiny_training_setup
        fresh = default_network(env_config, seed=123)
        losses = pretrain_network(
            fresh, graphs[:2], env_config=env_config, training=training, seed=0
        )
        assert losses[-1] < losses[0]
