"""Unit tests for Spear: network-guided MCTS."""

import pytest

from repro.config import ClusterConfig, EnvConfig, MctsConfig
from repro.core import NetworkExpansion, NetworkRollout, SpearScheduler, build_spear
from repro.dag import chain_dag
from repro.env import SchedulingEnv
from repro.metrics import validate_schedule


class TestGuidancePolicies:
    def test_expansion_orders_by_probability(self, tiny_training_setup, small_random_graph):
        network, env_config, _, _ = tiny_training_setup
        env = SchedulingEnv(small_random_graph, env_config)
        expansion = NetworkExpansion(network)
        actions = env.expansion_actions()
        ordered = expansion.prioritize(env, actions)
        assert sorted(ordered) == sorted(actions)

        from repro.rl import NetworkPolicy

        probs = NetworkPolicy(network, mode="greedy").action_probabilities(env)
        priorities = [probs.get(a, 0.0) for a in ordered]
        assert priorities == sorted(priorities, reverse=True)

    def test_rollout_terminates_with_makespan(self, tiny_training_setup, small_random_graph):
        network, env_config, _, _ = tiny_training_setup
        env = SchedulingEnv(small_random_graph, env_config)
        rollout = NetworkRollout(network, seed=0)
        makespan = rollout.rollout(env)
        assert env.done
        assert makespan == env.makespan

    def test_greedy_rollout_mode_deterministic(self, tiny_training_setup, small_random_graph):
        network, env_config, _, _ = tiny_training_setup
        a = NetworkRollout(network, mode="greedy").rollout(
            SchedulingEnv(small_random_graph, env_config)
        )
        b = NetworkRollout(network, mode="greedy").rollout(
            SchedulingEnv(small_random_graph, env_config)
        )
        assert a == b


class TestSpearScheduler:
    def test_schedules_feasibly(self, tiny_training_setup, small_random_graph):
        network, env_config, _, _ = tiny_training_setup
        spear = SpearScheduler(
            network,
            MctsConfig(initial_budget=15, min_budget=5),
            env_config,
            seed=0,
        )
        schedule = spear.schedule(small_random_graph)
        validate_schedule(
            schedule, small_random_graph, env_config.cluster.capacities
        )
        assert schedule.scheduler == "spear"

    def test_chain_forced_makespan(self, tiny_training_setup):
        network, env_config, _, _ = tiny_training_setup
        graph = chain_dag([2, 3], demands=[(2, 2), (2, 2)])
        spear = SpearScheduler(
            network, MctsConfig(initial_budget=10, min_budget=5), env_config, seed=0
        )
        assert spear.schedule(graph).makespan == 5

    def test_build_spear_convenience(self, tiny_training_setup, small_random_graph):
        network, env_config, _, _ = tiny_training_setup
        spear = build_spear(
            network, MctsConfig(initial_budget=10, min_budget=5), env_config, seed=1
        )
        assert isinstance(spear, SpearScheduler)
        schedule = spear.schedule(small_random_graph)
        assert schedule.num_tasks == small_random_graph.num_tasks

    def test_statistics_available(self, tiny_training_setup, small_random_graph):
        network, env_config, _, _ = tiny_training_setup
        spear = SpearScheduler(
            network, MctsConfig(initial_budget=10, min_budget=5), env_config, seed=0
        )
        spear.schedule(small_random_graph)
        assert spear.last_statistics.rollouts > 0

    def test_never_worse_than_pure_policy(self, tiny_training_setup, small_random_graph):
        """Searching with the network must not lose to... the search's own
        rollouts: Spear's result is bounded by the best rollout it saw, so
        it beats or matches the greedy network policy on average; here we
        check a single instance with a fixed seed."""
        from repro.rl import NetworkPolicy
        from repro.schedulers.base import PolicyScheduler

        network, env_config, _, _ = tiny_training_setup
        greedy = PolicyScheduler(
            lambda: NetworkPolicy(network, mode="greedy"), env_config, name="drl"
        ).schedule(small_random_graph)
        spear = SpearScheduler(
            network, MctsConfig(initial_budget=30, min_budget=10), env_config, seed=0
        ).schedule(small_random_graph)
        assert spear.makespan <= greedy.makespan + 2  # small slack: sampling noise
