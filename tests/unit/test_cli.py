"""Unit tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_simulate_defaults(self):
        args = build_parser().parse_args(["simulate"])
        assert args.scheduler == "tetris"
        assert args.tasks == 50

    def test_experiment_choices_enforced(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "fig99"])


class TestCommands:
    def test_motivating(self, capsys):
        assert main(["motivating"]) == 0
        out = capsys.readouterr().out
        assert "optimal" in out
        assert "tetris" in out
        assert "2T" in out and "3T" in out

    def test_simulate_baseline(self, capsys):
        assert main(["simulate", "--scheduler", "sjf", "--tasks", "12"]) == 0
        assert "makespan" in capsys.readouterr().out

    def test_simulate_mcts(self, capsys):
        code = main(
            [
                "simulate",
                "--scheduler",
                "mcts",
                "--tasks",
                "10",
                "--budget",
                "10",
                "--min-budget",
                "3",
            ]
        )
        assert code == 0
        assert "mcts" in capsys.readouterr().out

    def test_simulate_unknown_scheduler(self, capsys):
        assert main(["simulate", "--scheduler", "warp"]) == 2
        assert "unknown scheduler" in capsys.readouterr().err

    def test_trace_stats(self, capsys):
        assert main(["trace", "--jobs", "8", "--stats"]) == 0
        out = capsys.readouterr().out
        assert "8 jobs" in out
        assert "reduce" in out

    def test_trace_write(self, tmp_path, capsys):
        out_file = tmp_path / "t.json"
        assert main(["trace", "--jobs", "6", "--out", str(out_file)]) == 0
        assert out_file.exists()
        from repro.traces import Trace

        assert len(Trace.load(out_file)) == 6

    def test_train_writes_checkpoint(self, tmp_path, capsys):
        out_file = tmp_path / "net.npz"
        code = main(
            [
                "train",
                "--epochs",
                "1",
                "--examples",
                "2",
                "--example-tasks",
                "6",
                "--rollouts",
                "2",
                "--out",
                str(out_file),
                "--log-every",
                "0",
            ]
        )
        assert code == 0
        assert out_file.exists()
        from repro.rl import load_checkpoint

        assert load_checkpoint(out_file).num_actions == 16

    def test_ablation_unknown(self, capsys):
        assert main(["ablation", "nonesuch"]) == 2
        assert "unknown ablation" in capsys.readouterr().err

    def test_compare_runs_tournament(self, capsys):
        code = main(
            [
                "compare",
                "--schedulers",
                "tetris,sjf",
                "--jobs",
                "2",
                "--tasks",
                "10",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Tournament over 2 jobs" in out
        assert "tetris" in out

    def test_compare_unknown_scheduler(self, capsys):
        assert main(["compare", "--schedulers", "warp"]) == 2
        assert "unknown scheduler" in capsys.readouterr().err

    def test_online_simulation(self, capsys):
        code = main(
            [
                "online",
                "--jobs",
                "3",
                "--mean-interarrival",
                "15",
                "--rankers",
                "fifo,sjf",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Online: 3 jobs" in out
        assert "mean JCT" in out

    def test_online_unknown_ranker(self, capsys):
        assert main(["online", "--rankers", "quantum"]) == 2
        assert "unknown rankers" in capsys.readouterr().err


class TestSchedulersCommand:
    def test_lists_registry_and_wrapper_keys(self, capsys):
        assert main(["schedulers"]) == 0
        out = capsys.readouterr().out
        assert "tetris" in out and "spear" in out
        assert "wrapper keys" in out
        assert "replan_budget" in out

    def test_json_listing(self, capsys):
        import json

        assert main(["schedulers", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert "mcts" in payload["schedulers"]
        assert payload["schedulers"]["mcts"]["budget"] == "int"
        assert "verify" in payload["wrapper_keys"]


class TestSpecStrings:
    def test_simulate_with_spec_options(self, capsys):
        code = main(
            ["simulate", "--scheduler", "mcts:budget=30,min_budget=10", "--tasks", "8"]
        )
        assert code == 0
        assert "makespan" in capsys.readouterr().out

    def test_simulate_bad_spec_option(self, capsys):
        assert main(["simulate", "--scheduler", "tetris:speed=11"]) == 2
        assert "unknown option" in capsys.readouterr().err

    def test_compare_with_spec_options(self, capsys):
        code = main(
            [
                "compare",
                "--schedulers",
                "fifo,optimal:max_nodes=20000",
                "--jobs",
                "2",
                "--tasks",
                "5",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "fifo" in out and "optimal" in out


class TestOnlineFaults:
    def test_faulted_run_with_rescheduling(self, capsys):
        code = main(
            [
                "online",
                "--jobs",
                "4",
                "--seed",
                "3",
                "--rankers",
                "fifo",
                "--faults",
                "crashes=1,transient=0.1,noise=0.2",
                "--fault-horizon",
                "40",
                "--reschedule",
                "heft",
                "--fallback",
                "cp",
                "--verify-executed",
                "--check-recoveries",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "crash/recov" in out
        assert "verification: clean" in out

    def test_bad_fault_spec(self, capsys):
        assert main(["online", "--faults", "meteors=1"]) == 2
        assert "unknown fault spec key" in capsys.readouterr().err

    def test_fallback_requires_reschedule(self, capsys):
        assert main(["online", "--fallback", "cp"]) == 2
        assert "--reschedule" in capsys.readouterr().err

    def test_trace_out_writes_fault_events(self, tmp_path, capsys):
        trace = tmp_path / "faults.jsonl"
        code = main(
            [
                "online",
                "--jobs",
                "3",
                "--seed",
                "5",
                "--rankers",
                "fifo",
                "--faults",
                "transient=0.3,max_attempts=6",
                "--trace-out",
                str(trace),
            ]
        )
        assert code == 0
        assert trace.exists()
        capsys.readouterr()


class TestStreamCommand:
    def test_poisson_stream_smoke(self, capsys):
        code = main(
            [
                "stream",
                "--arrival",
                "poisson:rate=0.2,n=10",
                "--seed",
                "3",
                "--ranker",
                "sjf",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "Streaming: poisson:rate=0.2,n=10" in out
        assert "arrivals 10" in out
        assert "throughput" in out

    def test_metrics_out_is_byte_deterministic(self, tmp_path, capsys):
        paths = [tmp_path / "a.json", tmp_path / "b.json"]
        for path in paths:
            code = main(
                [
                    "stream",
                    "--arrival",
                    "poisson:rate=0.1,n=20",
                    "--seed",
                    "5",
                    "--metrics-out",
                    str(path),
                ]
            )
            assert code == 0
        capsys.readouterr()
        assert paths[0].read_bytes() == paths[1].read_bytes()
        import json

        metrics = json.loads(paths[0].read_text())
        assert metrics["schema"] == 1
        assert metrics["jobs"]["arrivals"] == 20

    def test_verify_executed_clean(self, capsys):
        code = main(
            [
                "stream",
                "--arrival",
                "uniform:interarrival=5,n=6",
                "--seed",
                "1",
                "--verify-executed",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "executed-schedule verification: clean" in out

    def test_gate_p99_failure_exits_nonzero(self, capsys):
        code = main(
            [
                "stream",
                "--arrival",
                "poisson:rate=0.2,n=10",
                "--seed",
                "3",
                "--gate-p99",
                "0.5",
            ]
        )
        captured = capsys.readouterr()
        assert code == 1
        assert "exceeds the --gate-p99 bound" in captured.err

    def test_admission_limits_reported(self, capsys):
        code = main(
            [
                "stream",
                "--arrival",
                "uniform:interarrival=0,n=8",
                "--tasks",
                "4",
                "--max-concurrent",
                "2",
                "--max-queue",
                "2",
            ]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "rejected 4" in out

    def test_unknown_ranker_exits_2(self, capsys):
        assert main(["stream", "--ranker", "warp"]) == 2
        assert "unknown ranker" in capsys.readouterr().err

    def test_bad_arrival_spec_exits_2(self, capsys):
        assert main(["stream", "--arrival", "meteors:n=3"]) == 2
        assert "unknown arrival kind" in capsys.readouterr().err

    def test_fallback_requires_reschedule(self, capsys):
        assert main(["stream", "--fallback", "cp"]) == 2
        assert "--reschedule" in capsys.readouterr().err


class TestServeCommand:
    def test_smoke_round_trip(self, capsys):
        code = main(
            ["serve", "--smoke", "--requests", "3", "--seed", "0"]
        )
        out = capsys.readouterr().out
        assert code == 0
        assert "serve smoke: 3 replies" in out
        assert "drained clean (3 served, 0 errors)" in out

    def test_smoke_frames_out(self, tmp_path, capsys):
        import json

        frames = tmp_path / "frames.jsonl"
        code = main(
            [
                "serve",
                "--smoke",
                "--requests",
                "2",
                "--frames-out",
                str(frames),
            ]
        )
        capsys.readouterr()
        assert code == 0
        lines = [json.loads(l) for l in frames.read_text().splitlines()]
        assert [f["type"] for f in lines] == [
            "schedule.reply",
            "schedule.reply",
            "drain.ack",
        ]

    def test_unknown_scheduler_exits_2(self, capsys):
        assert main(["serve", "--smoke", "--scheduler", "warp"]) == 2
        assert capsys.readouterr().err
