"""Unit tests for the command-line interface."""

import pytest

from repro.cli import build_parser, main


class TestParser:
    def test_requires_subcommand(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args([])

    def test_simulate_defaults(self):
        args = build_parser().parse_args(["simulate"])
        assert args.scheduler == "tetris"
        assert args.tasks == 50

    def test_experiment_choices_enforced(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["experiment", "fig99"])


class TestCommands:
    def test_motivating(self, capsys):
        assert main(["motivating"]) == 0
        out = capsys.readouterr().out
        assert "optimal" in out
        assert "tetris" in out
        assert "2T" in out and "3T" in out

    def test_simulate_baseline(self, capsys):
        assert main(["simulate", "--scheduler", "sjf", "--tasks", "12"]) == 0
        assert "makespan" in capsys.readouterr().out

    def test_simulate_mcts(self, capsys):
        code = main(
            [
                "simulate",
                "--scheduler",
                "mcts",
                "--tasks",
                "10",
                "--budget",
                "10",
                "--min-budget",
                "3",
            ]
        )
        assert code == 0
        assert "mcts" in capsys.readouterr().out

    def test_simulate_unknown_scheduler(self, capsys):
        assert main(["simulate", "--scheduler", "warp"]) == 2
        assert "unknown scheduler" in capsys.readouterr().err

    def test_trace_stats(self, capsys):
        assert main(["trace", "--jobs", "8", "--stats"]) == 0
        out = capsys.readouterr().out
        assert "8 jobs" in out
        assert "reduce" in out

    def test_trace_write(self, tmp_path, capsys):
        out_file = tmp_path / "t.json"
        assert main(["trace", "--jobs", "6", "--out", str(out_file)]) == 0
        assert out_file.exists()
        from repro.traces import Trace

        assert len(Trace.load(out_file)) == 6

    def test_train_writes_checkpoint(self, tmp_path, capsys):
        out_file = tmp_path / "net.npz"
        code = main(
            [
                "train",
                "--epochs",
                "1",
                "--examples",
                "2",
                "--example-tasks",
                "6",
                "--rollouts",
                "2",
                "--out",
                str(out_file),
                "--log-every",
                "0",
            ]
        )
        assert code == 0
        assert out_file.exists()
        from repro.rl import load_checkpoint

        assert load_checkpoint(out_file).num_actions == 16

    def test_ablation_unknown(self, capsys):
        assert main(["ablation", "nonesuch"]) == 2
        assert "unknown ablation" in capsys.readouterr().err

    def test_compare_runs_tournament(self, capsys):
        code = main(
            [
                "compare",
                "--schedulers",
                "tetris,sjf",
                "--jobs",
                "2",
                "--tasks",
                "10",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Tournament over 2 jobs" in out
        assert "tetris" in out

    def test_compare_unknown_scheduler(self, capsys):
        assert main(["compare", "--schedulers", "warp"]) == 2
        assert "unknown scheduler" in capsys.readouterr().err

    def test_online_simulation(self, capsys):
        code = main(
            [
                "online",
                "--jobs",
                "3",
                "--mean-interarrival",
                "15",
                "--rankers",
                "fifo,sjf",
            ]
        )
        assert code == 0
        out = capsys.readouterr().out
        assert "Online: 3 jobs" in out
        assert "mean JCT" in out

    def test_online_unknown_ranker(self, capsys):
        assert main(["online", "--rankers", "quantum"]) == 2
        assert "unknown rankers" in capsys.readouterr().err
