"""Cross-check the env rollout loop against the repro.sim kernel.

:class:`~repro.env.SchedulingEnv` keeps its own hand-rolled event loop
(a heapq of running tasks inside :class:`ClusterState`) for rollout
speed.  This test pins it to the discrete-event kernel: a greedy policy
realizes a schedule through ``env.step``, then the same placements are
replayed through :class:`SimKernel` + :class:`ClusterProcess` as arrival
and completion events.  The kernel must accept every placement (capacity
and dependencies) and realize the identical start/finish times and
makespan — so any drift between the two execution semantics fails here.
"""

import pytest

from repro.cluster.sim_adapter import COMPLETION_KIND, ClusterProcess
from repro.cluster.state import ClusterState
from repro.config import ClusterConfig, EnvConfig, WorkloadConfig
from repro.dag.generators import random_layered_dag
from repro.env import PROCESS, SchedulingEnv
from repro.sim import EventClass, SimKernel

CAPACITIES = (6, 6)
DISPATCH_KIND = "crosscheck.dispatch"


def greedy_rollout(graph):
    """Realize a schedule via env.step: always take the first legal
    schedule action, PROCESS only when nothing fits."""
    env = SchedulingEnv(graph, EnvConfig(cluster=ClusterConfig(capacities=CAPACITIES)))
    while not env.done:
        actions = env.legal_actions()
        assert actions, "env wedged: no legal actions before completion"
        env.step(actions[0] if actions[0] != PROCESS else PROCESS)
    return env.start_times(), env.makespan


def kernel_replay(graph, starts):
    """Execute ``starts`` on the kernel; return realized finish times."""
    state = ClusterState(CAPACITIES)
    kernel = SimKernel()
    kernel.add_process(ClusterProcess(state))
    finished = {}

    by_start = {}
    for tid, start in starts.items():
        by_start.setdefault(start, []).append(tid)

    def on_dispatch(event):
        for tid in sorted(by_start[event.time]):
            task = graph.task(tid)
            for parent in graph.parents(tid):
                assert parent in finished and finished[parent] <= state.now, (
                    f"task {tid} started before parent {parent} finished"
                )
            # ClusterState.start raises CapacityError if the env admitted
            # a task the kernel-timed cluster cannot hold.
            state.start(tid, task.demands, runtime=task.runtime)

    def on_completion(event):
        finished[event.payload.task_id] = state.now

    kernel.register(DISPATCH_KIND, on_dispatch)
    kernel.register(COMPLETION_KIND, on_completion)
    for start in by_start:
        kernel.schedule(start, EventClass.ARRIVAL, DISPATCH_KIND)
    while kernel.tick() is not None:
        pass
    return finished, state.now


@pytest.mark.parametrize("seed", [0, 7, 21, 404])
@pytest.mark.parametrize("num_tasks", [4, 10, 16])
def test_env_rollout_matches_kernel_execution(seed, num_tasks):
    workload = WorkloadConfig(
        num_tasks=num_tasks,
        max_runtime=5,
        max_demand=4,
        runtime_mean=3.0,
        demand_mean=2.0,
    )
    graph = random_layered_dag(workload, seed=seed)
    starts, makespan = greedy_rollout(graph)
    assert set(starts) == set(graph.task_ids)

    finished, kernel_makespan = kernel_replay(graph, starts)
    assert kernel_makespan == makespan
    for tid, start in starts.items():
        assert finished[tid] == start + graph.task(tid).runtime


def test_kernel_replay_rejects_capacity_violation():
    workload = WorkloadConfig(
        num_tasks=6, max_runtime=3, max_demand=4, runtime_mean=3.0, demand_mean=4.0
    )
    # Force every task to start at 0: on an overfull packing the
    # kernel-side ClusterState refuses the admission the bogus
    # "schedule" claims, proving the replay is a real capacity check.
    for seed in range(50):
        graph = random_layered_dag(workload, seed=seed)
        total = [
            sum(graph.task(t).demands[d] for t in graph.task_ids) for d in range(2)
        ]
        if any(t > c for t, c in zip(total, CAPACITIES)):
            break
    else:  # pragma: no cover - 6 tasks on (6, 6) always oversubscribe
        pytest.fail("no oversubscribed job found in 50 seeds")
    bogus = {tid: 0 for tid in graph.task_ids}
    from repro.errors import CapacityError

    with pytest.raises((CapacityError, AssertionError)):
        kernel_replay(graph, bogus)
