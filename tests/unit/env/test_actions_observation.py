"""Unit tests for action encoding and observation building."""

import numpy as np
import pytest

from repro.config import ClusterConfig, EnvConfig
from repro.dag import Task, TaskGraph, chain_dag, independent_tasks_dag
from repro.env import (
    PROCESS,
    ObservationBuilder,
    SchedulingEnv,
    is_process,
    observation_size,
    schedule_action,
)


class TestActions:
    def test_process_constant(self):
        assert PROCESS == -1
        assert is_process(PROCESS)
        assert not is_process(0)

    def test_schedule_action_passthrough(self):
        assert schedule_action(3) == 3

    def test_schedule_action_rejects_negative(self):
        with pytest.raises(ValueError):
            schedule_action(-1)


@pytest.fixture
def obs_config():
    return EnvConfig(
        cluster=ClusterConfig(capacities=(10, 10), horizon=6), max_ready=4
    )


class TestObservationSize:
    def test_formula(self, obs_config):
        # 2 resources x horizon 6 + 4 slots x (2 demands + 3 scalars +
        # 2 b-loads) + 2 globals = 12 + 28 + 2 = 42.
        assert observation_size(obs_config) == 42

    def test_explicit_resources(self, obs_config):
        # 1 x 6 + 4 x (1 demand + 3 scalars + 1 b-load) + 2 = 28.
        assert observation_size(obs_config, num_resources=1) == 28


class TestObservationBuilder:
    def test_size_matches_build(self, obs_config, chain3):
        builder = ObservationBuilder(chain3, obs_config)
        env = SchedulingEnv(chain3, obs_config)
        obs = builder.build(env)
        assert obs.shape == (builder.size,)
        assert builder.size == observation_size(obs_config)

    def test_values_in_unit_range(self, obs_config, small_random_graph):
        builder = ObservationBuilder(small_random_graph, obs_config)
        env = SchedulingEnv(small_random_graph, obs_config)
        # Drive a few steps and check normalization along the way.
        for _ in range(6):
            if env.done:
                break
            obs = builder.build(env)
            assert np.all(obs >= 0.0)
            assert np.all(obs <= 1.0 + 1e-9)
            env.step(env.legal_actions()[0])

    def test_cluster_image_tracks_running(self, obs_config, chain3):
        builder = ObservationBuilder(chain3, obs_config)
        env = SchedulingEnv(chain3, obs_config)
        image = builder.cluster_image(env)
        assert np.all(image == 0)
        env.step(0)  # runtime 2, demands (2, 1)
        image = builder.cluster_image(env)
        assert image[0, 0] == pytest.approx(0.2)
        assert image[0, 1] == pytest.approx(0.2)
        assert image[0, 2] == pytest.approx(0.0)  # remaining runtime only 2
        assert image[1, 0] == pytest.approx(0.1)

    def test_image_clamps_to_horizon(self, obs_config):
        graph = chain_dag([50], demands=[(2, 2)])
        builder = ObservationBuilder(graph, obs_config)
        env = SchedulingEnv(graph, obs_config)
        env.step(0)
        image = builder.cluster_image(env)
        assert image.shape == (2, 6)
        assert np.all(image[0] == pytest.approx(0.2))

    def test_task_features_layout(self, obs_config):
        tasks = [Task(0, 4, (5, 2)), Task(1, 2, (1, 1))]
        graph = TaskGraph(tasks, [(0, 1)])
        builder = ObservationBuilder(graph, obs_config)
        features = builder.task_features(0)
        # demands normalized by capacity
        assert features[0] == pytest.approx(0.5)
        assert features[1] == pytest.approx(0.2)
        # runtime normalized by max runtime (4)
        assert features[2] == pytest.approx(1.0)
        # b-level of task 0 is 6 == critical path -> 1.0
        assert features[3] == pytest.approx(1.0)
        # children count normalized by max (1)
        assert features[4] == pytest.approx(1.0)

    def test_empty_slots_zero(self, obs_config, chain3):
        builder = ObservationBuilder(chain3, obs_config)
        env = SchedulingEnv(chain3, obs_config)
        obs = builder.build(env)
        image_len = 2 * obs_config.cluster.horizon
        per_task = 7
        block = obs[image_len : image_len + obs_config.max_ready * per_task]
        block = block.reshape(obs_config.max_ready, per_task)
        # Only one ready task -> slots 1..3 all zero.
        assert np.all(block[1:] == 0)
        assert np.any(block[0] > 0)

    def test_graph_features_ablated(self, chain3):
        config = EnvConfig(
            cluster=ClusterConfig(capacities=(10, 10), horizon=6),
            max_ready=4,
            include_graph_features=False,
        )
        builder = ObservationBuilder(chain3, config)
        features = builder.task_features(0)
        # b-level, children, b-loads zeroed; demands + runtime remain.
        assert features[3] == 0.0
        assert features[4] == 0.0
        assert np.all(features[5:] == 0.0)
        assert features[0] > 0

    def test_global_scalars(self, obs_config):
        graph = independent_tasks_dag([1] * 8, demands=[(1, 1)] * 8)
        builder = ObservationBuilder(graph, obs_config)
        env = SchedulingEnv(graph, obs_config)
        obs = builder.build(env)
        backlog_norm, finished_norm = obs[-2], obs[-1]
        assert backlog_norm == pytest.approx(4 / 8)  # 8 ready, 4 visible
        assert finished_norm == 0.0
