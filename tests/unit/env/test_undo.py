"""Unit tests for the apply/undo records and the fused random playout."""

import numpy as np
import pytest

from repro.config import ClusterConfig, EnvConfig
from repro.dag.generators import chain_dag, fork_join_dag
from repro.env import PROCESS, SchedulingEnv
from repro.errors import EnvironmentStateError


def make_env(graph, until_completion=True):
    return SchedulingEnv(
        graph,
        EnvConfig(
            cluster=ClusterConfig(capacities=(10, 10), horizon=8),
            max_ready=5,
            process_until_completion=until_completion,
        ),
    )


@pytest.fixture
def fork_env():
    return make_env(fork_join_dag(3))


class TestScheduleUndo:
    def test_restores_signature_and_actions(self, fork_env):
        before_sig = fork_env.signature()
        before_actions = list(fork_env.legal_actions())
        record = fork_env.apply(0)
        assert fork_env.signature() != before_sig
        fork_env.undo(record)
        assert fork_env.signature() == before_sig
        assert list(fork_env.legal_actions()) == before_actions
        assert fork_env.steps_taken == 0

    def test_rebinds_exact_snapshot_lists(self, fork_env):
        """Undo restores the *pre-step* heap and capacity lists by rebind.

        This is the design point of the snapshot undo log: the post-undo
        heap layout is bit-identical to the pre-step one, not merely an
        equally valid heap over the same entries.
        """
        heap_before = list(fork_env.cluster._running)
        avail_before = list(fork_env.cluster._available)
        record = fork_env.apply(0)
        fork_env.undo(record)
        assert fork_env.cluster._running is record.running
        assert fork_env.cluster._available is record.available
        assert fork_env.cluster._running == heap_before
        assert fork_env.cluster._available == avail_before

    def test_restores_ready_queue_position(self, fork_env):
        fork_env.step(0)  # source task; branches become ready after PROCESS
        fork_env.step(PROCESS)
        ready_before = list(fork_env.all_ready())
        record = fork_env.apply(1)  # remove from the middle of the window
        assert fork_env.all_ready() == [t for t in ready_before if t != ready_before[1]]
        fork_env.undo(record)
        assert fork_env.all_ready() == ready_before


class TestProcessUndo:
    def test_restores_clock_and_completions(self, fork_env):
        fork_env.step(0)
        record = fork_env.apply(PROCESS)
        assert record.result.completed and fork_env.now > 0
        fork_env.undo(record)
        assert fork_env.now == 0
        assert fork_env.num_finished == 0
        assert fork_env.finished_ids() == []

    def test_interleaved_lifo_unwind_to_reset(self, fork_env):
        stack = []
        while not fork_env.done:
            actions = fork_env.expansion_actions(work_conserving=True)
            stack.append(fork_env.apply(actions[0]))
        assert fork_env.done
        while stack:
            fork_env.undo(stack.pop())
        assert fork_env.signature() == make_env(fork_join_dag(3)).signature()
        assert fork_env.steps_taken == 0

    def test_apply_after_done_raises(self):
        env = make_env(chain_dag([2]))
        env.step(0)
        env.step(PROCESS)
        assert env.done
        with pytest.raises(EnvironmentStateError):
            env.apply(PROCESS)


class TestStepResultCache:
    def test_schedule_results_are_singletons(self, fork_env):
        result = fork_env.step(0)
        assert result.scheduled == fork_env.graph.topological_order()[0]
        clone = make_env(fork_join_dag(3))
        # Fresh env, same tid: a distinct table, so a distinct object...
        assert clone.step(0) is not result
        # ...but a clone shares the per-tid singleton table by reference.
        assert fork_env.clone()._sched_results is fork_env._sched_results


class TestRandomPlayout:
    def test_zero_limit_raises_runtime_error(self, fork_env):
        with pytest.raises(RuntimeError):
            fork_env.random_playout(np.random.default_rng(0), limit=0)

    def test_finished_episode_returns_makespan_unchanged(self):
        env = make_env(chain_dag([2]))
        env.step(0)
        env.step(PROCESS)
        makespan = env.makespan
        assert env.random_playout(np.random.default_rng(0), limit=10) == makespan
        assert env.steps_taken == 2  # no steps consumed

    def test_playout_completes_and_verifies(self, fork_env):
        makespan = fork_env.random_playout(np.random.default_rng(7), limit=1000)
        assert fork_env.done and makespan == fork_env.makespan
        fork_env.verify_terminal_state()

    def test_slot_granularity_playout_matches_generic(self):
        graph = fork_join_dag(4)
        fused = make_env(graph, until_completion=False)
        reference = make_env(graph, until_completion=False)
        rng_a = np.random.default_rng(3)
        rng_b = np.random.default_rng(3)
        fused.random_playout(rng_a, limit=10_000)
        while not reference.done:
            actions = reference.expansion_actions(work_conserving=True)
            reference.step(actions[int(rng_b.integers(0, len(actions)))])
        assert fused.signature() == reference.signature()
        assert rng_a.bit_generator.state == rng_b.bit_generator.state
