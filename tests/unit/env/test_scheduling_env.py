"""Unit tests for the scheduling MDP."""

import pytest

from repro.config import ClusterConfig, EnvConfig
from repro.dag import Task, TaskGraph, chain_dag, independent_tasks_dag
from repro.env import PROCESS, SchedulingEnv
from repro.errors import CapacityError, EnvironmentStateError


def small_env(graph, max_ready=5, until_completion=False, capacities=(10, 10)):
    return SchedulingEnv(
        graph,
        EnvConfig(
            cluster=ClusterConfig(capacities=capacities, horizon=8),
            max_ready=max_ready,
            process_until_completion=until_completion,
        ),
    )


class TestConstruction:
    def test_initial_ready_set_is_sources(self, chain3, env_config):
        env = SchedulingEnv(chain3, env_config)
        assert env.visible_ready() == [0]
        assert not env.done
        assert env.now == 0

    def test_oversized_task_rejected_up_front(self):
        graph = TaskGraph([Task(0, 1, (99, 1))])
        with pytest.raises(CapacityError):
            small_env(graph)

    def test_dimension_mismatch_rejected(self):
        graph = TaskGraph([Task(0, 1, (1,))])
        with pytest.raises(EnvironmentStateError):
            small_env(graph)


class TestScheduleAction:
    def test_occupies_and_records(self, chain3, env_config):
        env = SchedulingEnv(chain3, env_config)
        result = env.step(0)
        assert result.scheduled == 0
        assert result.reward == 0
        assert env.running_ids() == [0]
        assert env.visible_ready() == []
        assert env.start_times() == {0: 0}

    def test_time_does_not_move(self, chain3, env_config):
        env = SchedulingEnv(chain3, env_config)
        env.step(0)
        assert env.now == 0

    def test_out_of_range_index_rejected(self, chain3, env_config):
        env = SchedulingEnv(chain3, env_config)
        with pytest.raises(EnvironmentStateError):
            env.step(3)

    def test_does_not_fit_rejected(self):
        graph = independent_tasks_dag([1, 1], demands=[(8, 8), (8, 8)])
        env = small_env(graph)
        env.step(0)
        with pytest.raises(CapacityError):
            env.step(0)  # second task no longer fits


class TestProcessAction:
    def test_single_slot_reward(self, chain3, env_config):
        env = SchedulingEnv(chain3, env_config)
        env.step(0)
        result = env.step(PROCESS)
        assert result.reward == -1
        assert env.now == 1

    def test_until_completion_jumps(self, chain3):
        env = small_env(chain3, until_completion=True)
        env.step(0)  # task 0 has runtime 2
        result = env.step(PROCESS)
        assert env.now == 2
        assert result.reward == -2
        assert result.completed == (0,)

    def test_completion_unlocks_children(self, chain3, env_config):
        env = SchedulingEnv(chain3, env_config)
        env.step(0)
        env.step(PROCESS)
        assert env.visible_ready() == []
        env.step(PROCESS)  # task 0 (runtime 2) finishes
        assert env.visible_ready() == [1]

    def test_process_idle_cluster_rejected(self, chain3, env_config):
        env = SchedulingEnv(chain3, env_config)
        with pytest.raises(EnvironmentStateError):
            env.step(PROCESS)

    def test_step_after_done_rejected(self):
        graph = chain_dag([1])
        env = small_env(graph)
        env.step(0)
        env.step(PROCESS)
        assert env.done
        with pytest.raises(EnvironmentStateError):
            env.step(PROCESS)


class TestEpisode:
    def test_chain_runs_to_exact_makespan(self, chain3):
        env = small_env(chain3, until_completion=True)
        total_reward = 0
        while not env.done:
            actions = env.legal_actions()
            action = actions[0]
            total_reward += env.step(action).reward
        assert env.makespan == 6  # runtimes 2 + 3 + 1, strictly serial
        assert total_reward == -6

    def test_makespan_before_done_raises(self, chain3, env_config):
        env = SchedulingEnv(chain3, env_config)
        with pytest.raises(EnvironmentStateError):
            _ = env.makespan

    def test_parallel_tasks_overlap(self):
        graph = independent_tasks_dag([3, 3], demands=[(4, 4), (4, 4)])
        env = small_env(graph, until_completion=True)
        env.step(0)
        env.step(0)  # ready list shrinks; index 0 again
        env.step(PROCESS)
        assert env.done
        assert env.makespan == 3

    def test_to_schedule_round_trip(self, chain3):
        env = small_env(chain3, until_completion=True)
        while not env.done:
            env.step(env.legal_actions()[0])
        schedule = env.to_schedule("test")
        assert schedule.makespan == env.makespan
        assert schedule.num_tasks == 3
        assert schedule.scheduler == "test"

    def test_to_schedule_before_done_raises(self, chain3, env_config):
        env = SchedulingEnv(chain3, env_config)
        with pytest.raises(EnvironmentStateError):
            env.to_schedule()


class TestBacklog:
    def test_visible_window_limits_ready(self):
        graph = independent_tasks_dag([1] * 8, demands=[(1, 1)] * 8)
        env = small_env(graph, max_ready=3)
        assert env.visible_ready() == [0, 1, 2]
        assert env.backlog_size == 5
        assert env.all_ready() == list(range(8))

    def test_backlog_promotes_fifo(self):
        graph = independent_tasks_dag([1] * 8, demands=[(1, 1)] * 8)
        env = small_env(graph, max_ready=3)
        env.step(1)  # schedule task 1
        assert env.visible_ready() == [0, 2, 3]

    def test_newly_ready_tasks_join_backlog_tail(self):
        # Source 0 unlocks 5, 6; initial ready: 0..4 (visible 3 of them).
        tasks = [Task(i, 1, (1, 1)) for i in range(7)]
        graph = TaskGraph(tasks, [(0, 5), (0, 6)])
        env = small_env(graph, max_ready=3)
        env.step(0)
        env.step(PROCESS)  # 0 completes; 5, 6 become ready after 1..4
        assert env.all_ready() == [1, 2, 3, 4, 5, 6]


class TestActionSets:
    def test_legal_excludes_non_fitting(self):
        graph = independent_tasks_dag([2, 2], demands=[(8, 8), (8, 8)])
        env = small_env(graph)
        env.step(0)
        assert env.legal_actions() == [PROCESS]

    def test_expansion_work_conserving_drops_process(self):
        graph = independent_tasks_dag([2, 2], demands=[(3, 3), (3, 3)])
        env = small_env(graph)
        env.step(0)
        assert PROCESS not in env.expansion_actions(work_conserving=True)
        assert PROCESS in env.expansion_actions(work_conserving=False)

    def test_expansion_keeps_process_when_nothing_fits(self):
        graph = independent_tasks_dag([2, 2], demands=[(8, 8), (8, 8)])
        env = small_env(graph)
        env.step(0)
        assert env.expansion_actions(work_conserving=True) == [PROCESS]


class TestClone:
    def test_clone_diverges_independently(self, chain3):
        env = small_env(chain3, until_completion=True)
        env.step(0)
        copy = env.clone()
        copy.step(PROCESS)
        assert env.now == 0
        assert copy.now == 2
        assert env.signature() != copy.signature()

    def test_clone_replays_identically(self, small_random_graph):
        env = small_env(small_random_graph, until_completion=True)
        env.step(0)
        copy = env.clone()
        while not env.done:
            action = env.legal_actions()[0]
            env.step(action)
            copy.step(action)
        assert copy.done
        assert copy.makespan == env.makespan

    def test_signature_equal_for_equal_states(self, chain3):
        a = small_env(chain3)
        b = small_env(chain3)
        assert a.signature() == b.signature()


class TestTerminalVerification:
    def _run_to_completion(self, env):
        while not env.done:
            schedulable = [a for a in env.legal_actions() if a != PROCESS]
            env.step(schedulable[0] if schedulable else PROCESS)

    def test_clean_episode_passes_hook(self):
        graph = chain_dag([2, 3], demands=[(2, 2)] * 2)
        env = SchedulingEnv(
            graph,
            EnvConfig(
                cluster=ClusterConfig(capacities=(10, 10), horizon=8),
                process_until_completion=True,
                verify_terminal=True,
            ),
        )
        self._run_to_completion(env)
        assert env.done  # hook ran inside the terminal step without raising
        env.verify_terminal_state()  # and is explicitly re-runnable

    def test_hook_requires_terminal_state(self):
        graph = chain_dag([2, 3], demands=[(2, 2)] * 2)
        env = small_env(graph)
        with pytest.raises(EnvironmentStateError, match="not finished"):
            env.verify_terminal_state()

    def test_corrupted_terminal_state_raises(self):
        graph = chain_dag([2, 3], demands=[(2, 2)] * 2)
        env = small_env(graph, until_completion=True)
        self._run_to_completion(env)
        # Simulate environment-dynamics drift: falsify a recorded start.
        env._starts[1] = 0
        with pytest.raises(EnvironmentStateError, match="dependency"):
            env.verify_terminal_state()
