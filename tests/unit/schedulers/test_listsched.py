"""Unit tests for the classic list-scheduling baselines (HEFT/LPT/FIFO)."""

import pytest

from repro.config import ClusterConfig, EnvConfig
from repro.dag import Task, TaskGraph, independent_tasks_dag
from repro.env import PROCESS, SchedulingEnv
from repro.metrics import validate_schedule
from repro.schedulers import FifoPolicy, HeftPolicy, LptPolicy, make_scheduler, run_policy


def env_for(graph, capacities=(10, 10)):
    return SchedulingEnv(
        graph,
        EnvConfig(
            cluster=ClusterConfig(capacities=capacities, horizon=8),
            max_ready=8,
            process_until_completion=True,
        ),
    )


class TestHeft:
    def test_prefers_higher_upward_rank(self):
        tasks = [Task(0, 1, (1, 1)), Task(1, 1, (1, 1)), Task(2, 9, (1, 1))]
        graph = TaskGraph(tasks, [(0, 2)])
        env = env_for(graph)
        policy = HeftPolicy()
        policy.begin_episode(env)
        assert policy.select(env) == 0  # rank 10 > rank 1

    def test_mean_rank_breaks_ties(self):
        # 0 and 1 both have rank 1 + 5 = 6, but 1's children are heavier
        # on average (one child of rank 5 vs two children of ranks 5, 1).
        tasks = [
            Task(0, 1, (1, 1)),
            Task(1, 1, (1, 1)),
            Task(2, 5, (1, 1)),
            Task(3, 5, (1, 1)),
            Task(4, 1, (1, 1)),
        ]
        graph = TaskGraph(tasks, [(0, 2), (0, 4), (1, 3)])
        env = env_for(graph)
        policy = HeftPolicy()
        policy.begin_episode(env)
        assert policy.select(env) == 1

    def test_processes_when_blocked(self):
        graph = independent_tasks_dag([2, 2], demands=[(8, 8), (8, 8)])
        env = env_for(graph)
        policy = HeftPolicy()
        policy.begin_episode(env)
        env.step(policy.select(env))
        assert policy.select(env) == PROCESS

    def test_lazy_rank_computation(self):
        graph = independent_tasks_dag([1, 2], demands=[(1, 1)] * 2)
        env = env_for(graph)
        assert HeftPolicy().select(env) in (0, 1)  # no begin_episode call


class TestLpt:
    def test_longest_first(self):
        graph = independent_tasks_dag([2, 9, 5], demands=[(1, 1)] * 3)
        env = env_for(graph)
        assert LptPolicy().select(env) == 1

    def test_tie_by_id(self):
        graph = independent_tasks_dag([4, 4], demands=[(1, 1)] * 2)
        env = env_for(graph)
        assert LptPolicy().select(env) == 0


class TestFifo:
    def test_takes_first_fitting(self):
        graph = independent_tasks_dag([1, 1, 1], demands=[(8, 8), (2, 2), (2, 2)])
        env = env_for(graph)
        env.step(FifoPolicy().select(env))  # starts task 0
        # Task 0 hogs most of the cluster; the first fitting slot is task 1.
        assert env.visible_ready()[FifoPolicy().select(env)] == 1


class TestRegistryIntegration:
    @pytest.mark.parametrize("name", ["heft", "lpt", "fifo"])
    def test_feasible_via_registry(self, name, small_random_graph):
        env_config = EnvConfig(
            cluster=ClusterConfig(capacities=(10, 10), horizon=8), max_ready=8
        )
        schedule = make_scheduler(name, env_config).schedule(small_random_graph)
        validate_schedule(schedule, small_random_graph, (10, 10))
        assert schedule.scheduler == name

    def test_heft_serial_chain(self):
        from repro.dag import chain_dag

        env_config = EnvConfig(
            cluster=ClusterConfig(capacities=(10, 10), horizon=8)
        )
        graph = chain_dag([2, 3, 4], demands=[(1, 1)] * 3)
        schedule = make_scheduler("heft", env_config).schedule(graph)
        assert schedule.makespan == 9
