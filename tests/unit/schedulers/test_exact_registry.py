"""Unit tests for branch-and-bound exact scheduling and the registry."""

import pytest

from repro.config import ClusterConfig, EnvConfig
from repro.dag import Task, TaskGraph, chain_dag, independent_tasks_dag
from repro.dag.analysis import makespan_lower_bound
from repro.errors import ConfigError, ScheduleError
from repro.metrics import validate_schedule
from repro.schedulers import (
    BranchAndBoundScheduler,
    available_schedulers,
    make_scheduler,
)


@pytest.fixture
def env_config():
    return EnvConfig(
        cluster=ClusterConfig(capacities=(10, 10), horizon=8), max_ready=8
    )


class TestBranchAndBound:
    def test_chain_optimum_is_serial(self, env_config):
        graph = chain_dag([2, 3, 1], demands=[(1, 1)] * 3)
        schedule = BranchAndBoundScheduler(env_config).schedule(graph)
        assert schedule.makespan == 6

    def test_parallel_tasks_packed(self, env_config):
        graph = independent_tasks_dag([4, 4], demands=[(5, 5), (5, 5)])
        schedule = BranchAndBoundScheduler(env_config).schedule(graph)
        assert schedule.makespan == 4

    def test_capacity_forces_serialization(self, env_config):
        graph = independent_tasks_dag([4, 4], demands=[(6, 6), (6, 6)])
        schedule = BranchAndBoundScheduler(env_config).schedule(graph)
        assert schedule.makespan == 8

    def test_reaches_lower_bound_when_tight(self, env_config):
        # Three unit tasks each filling half the cluster: LB = 2, optimal 2.
        graph = independent_tasks_dag([1, 1, 1, 1], demands=[(5, 5)] * 4)
        schedule = BranchAndBoundScheduler(env_config).schedule(graph)
        assert schedule.makespan == makespan_lower_bound(graph, (10, 10))

    def test_schedule_is_feasible(self, env_config, small_random_graph):
        schedule = BranchAndBoundScheduler(env_config).schedule(
            small_random_graph
        )
        validate_schedule(
            schedule, small_random_graph, env_config.cluster.capacities
        )

    def test_beats_every_heuristic(self, env_config, small_random_graph):
        optimal = BranchAndBoundScheduler(env_config).schedule(
            small_random_graph
        ).makespan
        for name in ("tetris", "sjf", "cp", "graphene"):
            heuristic = make_scheduler(name, env_config).schedule(
                small_random_graph
            ).makespan
            assert optimal <= heuristic

    def test_node_budget_exhaustion_raises(self, env_config):
        graph = independent_tasks_dag([1] * 8, demands=[(2, 2)] * 8)
        scheduler = BranchAndBoundScheduler(env_config, max_nodes=5)
        with pytest.raises(ScheduleError, match="exceeded"):
            scheduler.schedule(graph)

    def test_waiting_can_beat_work_conservation(self, env_config):
        """B&B explores voluntary PROCESS actions, so it must find optima
        that work-conserving policies miss.

        Construction: a long fat task 0 is running-candidate at t=0; the
        optimal schedule starts the chain head 1 first even though both
        fit -- no, both DO fit here; the point is simply that B&B never
        does worse than the best work-conserving baseline on this trap.
        """
        tasks = [
            Task(0, 6, (6, 6)),
            Task(1, 3, (6, 6)),
            Task(2, 3, (6, 6)),
        ]
        graph = TaskGraph(tasks, [(1, 2)])
        schedule = BranchAndBoundScheduler(env_config).schedule(graph)
        # Serial anyway (every pair conflicts): 6 + 3 + 3 = 12.
        assert schedule.makespan == 12


class TestRegistry:
    def test_lists_all_baselines(self):
        names = available_schedulers()
        for expected in ("random", "sjf", "cp", "tetris", "graphene", "optimal"):
            assert expected in names

    def test_make_scheduler_unknown_raises(self):
        with pytest.raises(ConfigError, match="unknown scheduler"):
            make_scheduler("quantum")

    def test_make_scheduler_builds_working_instances(
        self, env_config, small_random_graph
    ):
        for name in ("sjf", "cp", "tetris"):
            scheduler = make_scheduler(name, env_config)
            schedule = scheduler.schedule(small_random_graph)
            validate_schedule(
                schedule, small_random_graph, env_config.cluster.capacities
            )
            assert schedule.scheduler == name

    def test_register_duplicate_raises(self):
        from repro.schedulers.registry import register

        with pytest.raises(ConfigError, match="already registered"):
            register("tetris", lambda cfg: None)


class TestVerifyingScheduler:
    def test_validate_wraps_transparently(self, env_config, small_random_graph):
        from repro.schedulers.registry import VerifyingScheduler

        scheduler = make_scheduler("tetris", env_config, validate=True)
        assert isinstance(scheduler, VerifyingScheduler)
        assert scheduler.name == "tetris"
        schedule = scheduler.schedule(small_random_graph)
        validate_schedule(
            schedule, small_random_graph, env_config.cluster.capacities
        )
        assert schedule.scheduler == "tetris"

    def test_bad_inner_scheduler_is_caught(self, env_config):
        from repro.metrics import Schedule, ScheduledTask
        from repro.schedulers.base import Scheduler
        from repro.schedulers.registry import VerifyingScheduler

        class BrokenScheduler(Scheduler):
            name = "broken"

            def schedule(self, graph):
                # Ignores dependencies: every task starts at t=0.
                return Schedule(
                    tuple(
                        ScheduledTask(t.task_id, 0, t.runtime) for t in graph
                    ),
                    scheduler=self.name,
                )

        graph = chain_dag([2, 3], demands=[(1, 1)] * 2)
        wrapped = VerifyingScheduler(BrokenScheduler(), env_config)
        with pytest.raises(ScheduleError, match="dependency"):
            wrapped.schedule(graph)
