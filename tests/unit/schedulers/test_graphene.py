"""Unit tests for the Graphene baseline."""

import pytest

from repro.config import ClusterConfig, EnvConfig, GrapheneConfig
from repro.dag import Task, TaskGraph, chain_dag
from repro.dag.generators import random_layered_dag
from repro.config import WorkloadConfig
from repro.metrics import validate_schedule
from repro.schedulers import GrapheneScheduler


@pytest.fixture
def env_config():
    return EnvConfig(
        cluster=ClusterConfig(capacities=(10, 10), horizon=8), max_ready=8
    )


@pytest.fixture
def scheduler(env_config):
    return GrapheneScheduler(env_config=env_config)


class TestTroublesomeIdentification:
    def test_long_tasks_are_troublesome(self, scheduler):
        tasks = [Task(0, 10, (1, 1)), Task(1, 1, (1, 1))]
        graph = TaskGraph(tasks)
        troublesome = scheduler.identify_troublesome(graph, threshold=0.5)
        assert 0 in troublesome
        assert 1 not in troublesome

    def test_hungry_tasks_are_troublesome(self, scheduler):
        # Short but demanding >= 50% of a resource.
        tasks = [Task(0, 1, (6, 1)), Task(1, 10, (1, 1)), Task(2, 1, (1, 1))]
        graph = TaskGraph(tasks)
        troublesome = scheduler.identify_troublesome(graph, threshold=0.9)
        assert 0 in troublesome

    def test_threshold_one_keeps_only_max_runtime(self, scheduler):
        tasks = [Task(0, 10, (1, 1)), Task(1, 9, (1, 1))]
        graph = TaskGraph(tasks)
        troublesome = scheduler.identify_troublesome(graph, threshold=1.0)
        assert troublesome == [0]

    def test_low_threshold_keeps_everything(self, scheduler):
        graph = TaskGraph([Task(i, i + 1, (1, 1)) for i in range(4)])
        troublesome = scheduler.identify_troublesome(graph, threshold=0.1)
        assert len(troublesome) == 4


class TestPlanBuilding:
    def test_forward_plan_contains_all_tasks(self, scheduler, small_random_graph):
        plan = scheduler.build_plan(small_random_graph, 0.5, "forward")
        assert sorted(plan.order) == list(small_random_graph.task_ids)
        assert plan.direction == "forward"
        assert plan.virtual_makespan > 0

    def test_backward_plan_contains_all_tasks(self, scheduler, small_random_graph):
        plan = scheduler.build_plan(small_random_graph, 0.5, "backward")
        assert sorted(plan.order) == list(small_random_graph.task_ids)
        assert plan.direction == "backward"

    def test_troublesome_placed_by_descending_runtime_forward(self, scheduler):
        # Two independent troublesome tasks that cannot co-run: the longer
        # must be placed (and hence ordered) first.
        tasks = [Task(0, 3, (8, 8)), Task(1, 7, (8, 8))]
        graph = TaskGraph(tasks)
        plan = scheduler.build_plan(graph, 0.1, "forward")
        assert plan.order.index(1) < plan.order.index(0)

    def test_candidate_plan_count(self, scheduler, small_random_graph):
        plans = scheduler.candidate_plans(small_random_graph)
        config = GrapheneConfig()
        assert len(plans) == len(config.thresholds) * 2

    def test_plans_cover_both_directions(self, scheduler, small_random_graph):
        directions = {p.direction for p in scheduler.candidate_plans(small_random_graph)}
        assert directions == {"forward", "backward"}


class TestScheduling:
    def test_schedule_is_feasible(self, scheduler, small_random_graph, env_config):
        schedule = scheduler.schedule(small_random_graph)
        validate_schedule(
            schedule, small_random_graph, env_config.cluster.capacities
        )
        assert schedule.scheduler == "graphene"

    def test_chain_is_serial(self, scheduler):
        graph = chain_dag([2, 3, 1], demands=[(1, 1)] * 3)
        schedule = scheduler.schedule(graph)
        assert schedule.makespan == 6

    def test_beats_or_matches_worst_plan(self, scheduler, small_random_graph):
        """best-of-8 must be at least as good as any single plan."""
        from repro.env import SchedulingEnv
        from repro.schedulers import PriorityListPolicy, run_policy

        best = scheduler.schedule(small_random_graph).makespan
        for plan in scheduler.candidate_plans(small_random_graph):
            env = SchedulingEnv(small_random_graph, scheduler.env_config)
            single = run_policy(env, PriorityListPolicy(plan.order))
            assert best <= single.makespan

    def test_custom_thresholds(self, env_config, small_random_graph):
        scheduler = GrapheneScheduler(
            GrapheneConfig(thresholds=(0.5,)), env_config
        )
        assert len(scheduler.candidate_plans(small_random_graph)) == 2

    def test_never_worse_than_twice_lower_bound_on_small_graphs(self, env_config):
        """Sanity: Graphene stays within 2x of the bound on easy workloads."""
        from repro.dag.analysis import makespan_lower_bound

        scheduler = GrapheneScheduler(env_config=env_config)
        for seed in range(3):
            graph = random_layered_dag(
                WorkloadConfig(
                    num_tasks=10, max_runtime=5, max_demand=4,
                    runtime_mean=3, runtime_std=1, demand_mean=2, demand_std=1,
                ),
                seed=seed,
            )
            schedule = scheduler.schedule(graph)
            bound = makespan_lower_bound(graph, env_config.cluster.capacities)
            assert schedule.makespan <= 2 * bound
