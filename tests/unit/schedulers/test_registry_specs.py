"""Unit tests for spec-string parsing, the compose stack, and the
context-aware Scheduler API (ScheduleRequest / plan / wrappers)."""

import copy
import pickle

import pytest

from repro.dag import chain_dag
from repro.errors import ConfigError, ScheduleError
from repro.metrics.schedule import Schedule
from repro.schedulers import (
    ClusterSnapshot,
    ReschedulingScheduler,
    Scheduler,
    SchedulerWrapper,
    ScheduleRequest,
    TelemetryScheduler,
    VerifyingScheduler,
    as_schedule_request,
    available_schedulers,
    compose_scheduler,
    make_scheduler,
    parse_scheduler_spec,
    scheduler_options,
)


class TestParseSpec:
    def test_bare_name(self):
        assert parse_scheduler_spec("tetris") == ("tetris", {})

    def test_options_stay_raw_strings(self):
        name, opts = parse_scheduler_spec("mcts:budget=200, seed=3")
        assert name == "mcts"
        assert opts == {"budget": "200", "seed": "3"}

    def test_empty_name_raises(self):
        with pytest.raises(ConfigError, match="empty name"):
            parse_scheduler_spec(":budget=1")

    def test_non_kv_entry_raises(self):
        with pytest.raises(ConfigError, match="not key=value"):
            parse_scheduler_spec("mcts:budget")

    def test_duplicate_key_raises(self):
        with pytest.raises(ConfigError, match="repeats key"):
            parse_scheduler_spec("mcts:seed=1,seed=2")


class TestMakeScheduler:
    def test_unknown_name_lists_available(self, env_config):
        with pytest.raises(ConfigError, match="unknown scheduler"):
            make_scheduler("warp", env_config)

    def test_unknown_option_lists_known(self, env_config):
        with pytest.raises(ConfigError, match="known:.*verify"):
            make_scheduler("tetris:speed=11", env_config)

    def test_typed_coercion_failure(self, env_config):
        with pytest.raises(ConfigError, match="not a int"):
            make_scheduler("optimal:max_nodes=many", env_config)

    def test_bool_coercion_strict(self, env_config):
        with pytest.raises(ConfigError, match="not a bool"):
            make_scheduler("tetris:verify=maybe", env_config)

    def test_spec_options_reach_factory(self, env_config, chain3):
        scheduler = make_scheduler("mcts:budget=30,min_budget=10,seed=1", env_config)
        schedule = scheduler.schedule(chain3)
        assert schedule.makespan >= 6  # serial chain of 2+3+1

    def test_programmatic_options_merge_over_spec(self, env_config):
        # budget from kwargs (already typed) overrides nothing but coexists
        scheduler = make_scheduler("mcts:seed=2", env_config, budget=25, min_budget=10)
        assert scheduler is not None

    def test_wrapper_keys_build_stack(self, env_config):
        scheduler = make_scheduler(
            "cp:verify=true,telemetry=true,fallback=fifo,replan_budget=5",
            env_config,
        )
        assert isinstance(scheduler, TelemetryScheduler)
        assert isinstance(scheduler.inner, VerifyingScheduler)
        assert isinstance(scheduler.inner.inner, ReschedulingScheduler)
        assert scheduler.inner.inner.fallback.name == "fifo"
        assert scheduler.inner.inner.replan_budget == 5.0
        assert scheduler.name == "cp"  # wrappers are name-transparent

    def test_available_and_options_listings(self):
        names = available_schedulers()
        assert {"tetris", "heft", "mcts", "spear"} <= set(names)
        opts = scheduler_options()
        assert opts["mcts"]["budget"] == "int"
        assert opts["spear"]["network"] == "checkpoint"


class TestComposeScheduler:
    def test_nesting_order(self, env_config):
        stacked = compose_scheduler(
            "heft", env_config, verify=True, telemetry=True, reschedule=True
        )
        assert isinstance(stacked, TelemetryScheduler)
        assert isinstance(stacked.inner, VerifyingScheduler)
        assert isinstance(stacked.inner.inner, ReschedulingScheduler)

    def test_fallback_implies_reschedule(self, env_config):
        stacked = compose_scheduler("heft", env_config, fallback="fifo")
        assert isinstance(stacked, ReschedulingScheduler)

    def test_noop_returns_bare_scheduler(self, env_config):
        scheduler = compose_scheduler("tetris", env_config)
        assert not isinstance(scheduler, SchedulerWrapper)


class _Broken(Scheduler):
    """Legacy-style scheduler (overrides schedule) that emits garbage."""

    name = "broken"

    def schedule(self, graph):
        return Schedule(placements=(), scheduler=self.name)


class _Failing(Scheduler):
    name = "failing"

    def plan(self, request):
        raise ScheduleError("planner exploded")


class TestScheduleRequestApi:
    def test_as_schedule_request_wraps_graph(self, chain3):
        request = as_schedule_request(chain3)
        assert request.graph is chain3
        assert not request.is_replan

    def test_as_schedule_request_passthrough(self, chain3):
        request = ScheduleRequest(graph=chain3)
        assert as_schedule_request(request) is request
        with pytest.raises(ConfigError, match="extra context"):
            as_schedule_request(request, deadline=10)

    def test_replan_detection(self, chain3):
        snap = ClusterSnapshot(capacities=(10, 10), available=(4, 4), now=7)
        assert ScheduleRequest(graph=chain3, cluster=snap).is_replan
        assert ScheduleRequest(graph=chain3, frozen={0: (0, 2)}).is_replan

    def test_snapshot_validation(self):
        with pytest.raises(ConfigError, match="equal dims"):
            ClusterSnapshot(capacities=(10,), available=(1, 1))
        with pytest.raises(ConfigError, match="capacity"):
            ClusterSnapshot(capacities=(10, 10), available=(11, 0))

    def test_legacy_schedule_override_served_by_plan(self, chain3):
        # _Broken overrides schedule(graph) only; plan() must delegate.
        schedule = _Broken().plan(as_schedule_request(chain3))
        assert schedule.placements == ()

    def test_plan_required_somewhere(self, chain3):
        class Nothing(Scheduler):
            pass

        with pytest.raises(NotImplementedError):
            Nothing().plan(as_schedule_request(chain3))

    def test_shim_routes_request_through_plan(self, env_config, chain3):
        scheduler = make_scheduler("cp", env_config)
        via_shim = scheduler.schedule(chain3)
        via_plan = scheduler.plan(as_schedule_request(chain3))
        assert via_shim.makespan == via_plan.makespan


class TestWrapperGetattr:
    def test_forwarding(self, env_config):
        inner = make_scheduler("tetris", env_config)
        wrapper = VerifyingScheduler(inner, env_config)
        assert wrapper.name == "tetris"
        assert wrapper.inner is inner

    def test_missing_attribute_is_clean(self, env_config):
        wrapper = VerifyingScheduler(make_scheduler("tetris", env_config), env_config)
        with pytest.raises(AttributeError):
            wrapper.does_not_exist

    def test_half_constructed_wrapper_does_not_recurse(self):
        # copy/pickle probe dunders before __init__ ever runs; this used
        # to recurse infinitely through __getattr__ -> _inner -> __getattr__.
        shell = VerifyingScheduler.__new__(VerifyingScheduler)
        with pytest.raises(AttributeError):
            shell._inner
        copy.copy(shell)  # must not raise RecursionError

    def test_pickle_roundtrip(self, env_config):
        wrapper = VerifyingScheduler(make_scheduler("tetris", env_config), env_config)
        clone = pickle.loads(pickle.dumps(wrapper))
        assert clone.name == "tetris"


class TestReschedulingScheduler:
    def test_verifier_rejects_broken_schedules(self, env_config, chain3):
        wrapper = VerifyingScheduler(_Broken(), env_config)
        with pytest.raises(ScheduleError, match="dependency|placement|missing"):
            wrapper.schedule(chain3)

    def test_planner_error_degrades_to_fallback(self, env_config, chain3):
        fallback = make_scheduler("fifo", env_config)
        wrapper = ReschedulingScheduler(_Failing(), fallback=fallback)
        schedule = wrapper.schedule(chain3)
        assert schedule.makespan == 6
        assert wrapper.degraded
        assert wrapper.fallback_replans == 1
        # Once degraded, the fallback serves directly.
        wrapper.schedule(chain3)
        assert wrapper.fallback_replans == 2

    def test_planner_error_without_fallback_propagates(self, chain3):
        wrapper = ReschedulingScheduler(_Failing())
        with pytest.raises(ScheduleError, match="exploded"):
            wrapper.schedule(chain3)

    def test_budget_overrun_degrades_after_result(self, env_config, chain3):
        fallback = make_scheduler("fifo", env_config)
        planner = make_scheduler("cp", env_config)
        wrapper = ReschedulingScheduler(
            planner, fallback=fallback, replan_budget=1e-12
        )
        schedule = wrapper.schedule(chain3)  # over budget but still valid
        assert schedule.makespan == 6
        assert wrapper.degraded
        assert wrapper.fallback_replans == 0
        wrapper.schedule(chain3)
        assert wrapper.fallback_replans == 1

    def test_reset_clears_degradation(self, env_config, chain3):
        wrapper = ReschedulingScheduler(
            make_scheduler("cp", env_config),
            fallback=make_scheduler("fifo", env_config),
            replan_budget=1e-12,
        )
        wrapper.schedule(chain3)
        assert wrapper.degraded
        wrapper.reset()
        assert not wrapper.degraded
        assert wrapper.replans == 0

    def test_invalid_budget_raises(self, env_config):
        with pytest.raises(ConfigError, match="replan_budget"):
            ReschedulingScheduler(
                make_scheduler("cp", env_config), replan_budget=0
            )

    def test_priority_order_matches_planned_starts(self, env_config, chain3):
        wrapper = ReschedulingScheduler(make_scheduler("cp", env_config))
        order = wrapper.priority_order(as_schedule_request(chain3))
        assert sorted(order) == [t.task_id for t in chain3]
        assert order[0] == 0  # chain head starts first
