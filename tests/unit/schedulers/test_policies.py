"""Unit tests for the greedy baseline policies."""

import pytest

from repro.config import ClusterConfig, EnvConfig
from repro.dag import Task, TaskGraph, independent_tasks_dag
from repro.env import PROCESS, SchedulingEnv
from repro.schedulers import (
    CriticalPathPolicy,
    PriorityListPolicy,
    RandomPolicy,
    SjfPolicy,
    run_policy,
)


def env_for(graph, capacities=(10, 10), until_completion=True):
    return SchedulingEnv(
        graph,
        EnvConfig(
            cluster=ClusterConfig(capacities=capacities, horizon=8),
            max_ready=6,
            process_until_completion=until_completion,
        ),
    )


class TestRandomPolicy:
    def test_selects_legal_actions_only(self, small_random_graph):
        env = env_for(small_random_graph)
        policy = RandomPolicy(seed=0)
        for _ in range(20):
            if env.done:
                break
            action = policy.select(env)
            assert action in env.legal_actions()
            env.step(action)

    def test_work_conserving_never_processes_when_fitting(self):
        graph = independent_tasks_dag([1, 1], demands=[(1, 1), (1, 1)])
        env = env_for(graph)
        policy = RandomPolicy(seed=0, work_conserving=True)
        assert policy.select(env) != PROCESS

    def test_seeded_reproducibility(self, small_random_graph):
        def play(seed):
            env = env_for(small_random_graph)
            return run_policy(env, RandomPolicy(seed=seed)).makespan

        assert play(7) == play(7)


class TestSjfPolicy:
    def test_picks_shortest_fitting(self):
        graph = independent_tasks_dag([9, 2, 5], demands=[(1, 1)] * 3)
        env = env_for(graph)
        assert SjfPolicy().select(env) == 1  # index of runtime-2 task

    def test_tie_broken_by_id(self):
        graph = independent_tasks_dag([3, 3], demands=[(1, 1)] * 2)
        env = env_for(graph)
        assert SjfPolicy().select(env) == 0

    def test_processes_when_nothing_fits(self):
        graph = independent_tasks_dag([2, 2], demands=[(8, 8), (8, 8)])
        env = env_for(graph)
        env.step(0)
        assert SjfPolicy().select(env) == PROCESS

    def test_full_episode_is_feasible(self, small_random_graph):
        env = env_for(small_random_graph)
        schedule = run_policy(env, SjfPolicy())
        assert schedule.makespan > 0
        assert schedule.scheduler == "sjf"


class TestCriticalPathPolicy:
    def test_prefers_higher_blevel(self):
        # Task 0 heads a long chain; task 1 is a short independent task.
        tasks = [Task(0, 1, (1, 1)), Task(1, 1, (1, 1)), Task(2, 9, (1, 1))]
        graph = TaskGraph(tasks, [(0, 2)])
        env = env_for(graph)
        assert CriticalPathPolicy().select(env) == 0

    def test_ties_broken_by_children(self):
        tasks = [
            Task(0, 2, (1, 1)),               # b-level 2, 0 children
            Task(1, 1, (1, 1)),               # b-level 2, 1 child
            Task(2, 1, (1, 1)),
        ]
        graph = TaskGraph(tasks, [(1, 2)])
        env = env_for(graph)
        assert CriticalPathPolicy().select(env) == 1

    def test_works_without_begin_episode(self):
        graph = independent_tasks_dag([1, 2], demands=[(1, 1)] * 2)
        env = env_for(graph)
        policy = CriticalPathPolicy()
        assert policy.select(env) in (0, 1)


class TestPriorityListPolicy:
    def test_follows_given_order(self):
        graph = independent_tasks_dag([1, 1, 1], demands=[(1, 1)] * 3)
        env = env_for(graph)
        policy = PriorityListPolicy([2, 0, 1])
        assert policy.select(env) == 2

    def test_missing_tasks_rank_last(self):
        graph = independent_tasks_dag([1, 1], demands=[(1, 1)] * 2)
        env = env_for(graph)
        policy = PriorityListPolicy([1])
        assert policy.select(env) == 1

    def test_respects_capacity(self):
        graph = independent_tasks_dag([2, 1], demands=[(8, 8), (1, 1)])
        env = env_for(graph)
        policy = PriorityListPolicy([0, 1])
        env.step(policy.select(env))  # starts 0
        # 0 occupies almost everything; priority says 0 first but only 1 fits.
        assert policy.select(env) == 0  # index 0 now refers to task 1
        assert env.visible_ready() == [1]


class TestRunPolicy:
    def test_produces_complete_schedule(self, small_random_graph):
        env = env_for(small_random_graph)
        schedule = run_policy(env, SjfPolicy())
        assert schedule.num_tasks == small_random_graph.num_tasks
        assert schedule.wall_time >= 0.0

    def test_step_cap_raises(self, small_random_graph):
        class StallPolicy(SjfPolicy):
            name = "stall"

        env = env_for(small_random_graph)
        from repro.errors import EnvironmentStateError

        with pytest.raises(EnvironmentStateError, match="exceeded"):
            run_policy(env, StallPolicy(), max_steps=1)
