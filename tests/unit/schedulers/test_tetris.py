"""Unit tests for the Tetris packing baseline."""

import pytest

from repro.config import ClusterConfig, EnvConfig
from repro.dag import independent_tasks_dag, motivating_example
from repro.dag.examples import MOTIVATING_CAPACITY, MOTIVATING_T
from repro.env import PROCESS, SchedulingEnv
from repro.metrics import validate_schedule
from repro.schedulers import TetrisPolicy, run_policy
from repro.schedulers.tetris import alignment_score


def env_for(graph, capacities=(10, 10)):
    return SchedulingEnv(
        graph,
        EnvConfig(
            cluster=ClusterConfig(capacities=capacities, horizon=8),
            max_ready=8,
            process_until_completion=True,
        ),
    )


class TestAlignmentScore:
    def test_dot_product(self):
        assert alignment_score((2, 3), (10, 10)) == 50

    def test_prefers_aligned_demands(self):
        free = (10, 2)
        cpu_heavy = alignment_score((5, 1), free)
        mem_heavy = alignment_score((1, 5), free)
        assert cpu_heavy > mem_heavy


class TestTetrisPolicy:
    def test_picks_highest_score(self):
        graph = independent_tasks_dag(
            [1, 1, 1], demands=[(1, 1), (5, 5), (3, 3)]
        )
        env = env_for(graph)
        assert TetrisPolicy().select(env) == 1

    def test_tie_broken_by_id(self):
        graph = independent_tasks_dag([1, 1], demands=[(2, 2), (2, 2)])
        env = env_for(graph)
        assert TetrisPolicy().select(env) == 0

    def test_score_uses_current_free_capacity(self):
        # After starting the CPU hog, the memory-leaning task scores higher.
        graph = independent_tasks_dag(
            [3, 1, 1], demands=[(8, 1), (2, 1), (1, 8)]
        )
        env = env_for(graph)
        env.step(TetrisPolicy().select(env))  # starts task 0 (score 90)
        # free = (2, 9): task 1 scores 2*2+1*9=13, task 2 scores 1*2+8*9=74.
        choice = TetrisPolicy().select(env)
        visible = env.visible_ready()
        assert visible[choice] == 2

    def test_processes_when_nothing_fits(self):
        graph = independent_tasks_dag([2, 2], demands=[(8, 8), (8, 8)])
        env = env_for(graph)
        env.step(0)
        assert TetrisPolicy().select(env) == PROCESS

    def test_fails_on_motivating_example(self):
        """The Fig. 3 story: Tetris lands at 3T where the optimum is 2T."""
        graph = motivating_example()
        env = SchedulingEnv(
            graph,
            EnvConfig(
                cluster=ClusterConfig(
                    capacities=MOTIVATING_CAPACITY, horizon=20
                ),
                process_until_completion=True,
            ),
        )
        schedule = run_policy(env, TetrisPolicy())
        validate_schedule(schedule, graph, MOTIVATING_CAPACITY)
        assert schedule.makespan == 3 * MOTIVATING_T
