"""Unit tests for the pipeline runtime, tracing, sinks and activation."""

import json

import pytest

from repro.errors import ConfigError
from repro.telemetry import (
    DISABLED,
    NOOP_SPAN,
    InMemorySink,
    JsonlSink,
    StderrSummarySink,
    Telemetry,
    TelemetryConfig,
    active,
    configure,
    disable,
    for_config,
    session,
)


@pytest.fixture(autouse=True)
def _restore_global_pipeline():
    yield
    disable()


class TestDisabledPipeline:
    def test_default_active_is_disabled(self):
        assert active() is DISABLED
        assert not active().enabled

    def test_span_is_shared_noop_singleton(self):
        assert DISABLED.span("a", x=1) is NOOP_SPAN
        assert DISABLED.span("b") is NOOP_SPAN

    def test_noop_span_context_and_set(self):
        with DISABLED.span("a") as span:
            assert span.set(foo=1) is span

    def test_metric_calls_discard(self):
        DISABLED.inc("c", 5)
        DISABLED.gauge("g", 1.0)
        DISABLED.observe("h", 2.0)
        DISABLED.record("s", 0, 1.0)
        DISABLED.event("p", k=1)
        DISABLED.log("l", "msg")
        assert DISABLED.events() == []
        assert DISABLED.series_dict() == {}


class TestSpans:
    def test_span_event_has_duration_and_attrs(self):
        tm = Telemetry()
        with tm.span("work", size=3) as span:
            span.set(result=7)
        (event,) = tm.events()
        assert event.kind == "span"
        assert event.name == "work"
        assert event.duration_us is not None and event.duration_us >= 0
        assert event.attrs == {"size": 3, "result": 7}

    def test_nesting_depth_and_parent(self):
        tm = Telemetry()
        with tm.span("outer"):
            with tm.span("inner"):
                assert tm.tracer.depth == 2
        inner, outer = tm.events()
        assert inner.name == "inner" and inner.depth == 1
        assert inner.parent == "outer"
        assert outer.name == "outer" and outer.depth == 0
        assert outer.parent is None

    def test_seq_is_monotonic(self):
        tm = Telemetry()
        for _ in range(3):
            with tm.span("s"):
                pass
        assert [e.seq for e in tm.events()] == [1, 2, 3]


class TestMetricsAndEvents:
    def test_counters_survive_to_flush_snapshot(self):
        tm = Telemetry()
        tm.inc("hits", 2)
        tm.inc("hits")
        tm.flush()
        (metric,) = [e for e in tm.events() if e.kind == "metric"]
        assert metric.name == "hits"
        assert metric.value == 3

    def test_record_streams_series_event_and_registers(self):
        tm = Telemetry()
        tm.record("loss", 0, 0.5)
        tm.record("loss", 1, 0.25)
        series_events = [e for e in tm.events() if e.kind == "series"]
        assert [(e.step, e.value) for e in series_events] == [(0, 0.5), (1, 0.25)]
        assert tm.series_dict()["loss"].values == [0.5, 0.25]

    def test_flush_skips_series_snapshots(self):
        tm = Telemetry()
        tm.record("loss", 0, 0.5)
        tm.flush()
        assert not [
            e
            for e in tm.events()
            if e.kind == "metric" and e.attrs.get("type") == "series"
        ]

    def test_close_is_idempotent(self):
        tm = Telemetry()
        tm.inc("c")
        tm.close()
        events_after_first_close = len(tm.events())
        tm.close()
        assert len(tm.events()) == events_after_first_close


class TestActivation:
    def test_configure_and_disable(self):
        pipeline = configure(TelemetryConfig(enabled=True))
        assert active() is pipeline
        disable()
        assert active() is DISABLED

    def test_configure_with_disabled_config_restores_noop(self):
        configure(TelemetryConfig(enabled=True))
        assert configure(TelemetryConfig()) is DISABLED

    def test_session_installs_and_restores(self):
        with session(TelemetryConfig(enabled=True)) as tm:
            assert active() is tm
            with tm.span("inside"):
                pass
        assert active() is DISABLED

    def test_session_restores_on_error(self):
        with pytest.raises(RuntimeError):
            with session(TelemetryConfig(enabled=True)):
                raise RuntimeError("boom")
        assert active() is DISABLED

    def test_for_config_none_defers_to_active(self):
        assert for_config(None) is DISABLED
        with session(TelemetryConfig(enabled=True)) as tm:
            assert for_config(None) is tm

    def test_for_config_memoizes_enabled_configs(self):
        cfg = TelemetryConfig(enabled=True, max_events=12_345)
        assert for_config(cfg) is for_config(cfg)


class TestSinks:
    def test_in_memory_ring_drops_oldest(self):
        tm = Telemetry(TelemetryConfig(enabled=True, max_events=2))
        for index in range(4):
            tm.event(f"e{index}")
        sink = tm.sinks[0]
        assert isinstance(sink, InMemorySink)
        assert [e.name for e in tm.events()] == ["e2", "e3"]
        assert sink.dropped == 2

    def test_jsonl_sink_writes_header_then_events(self, tmp_path):
        path = tmp_path / "run.jsonl"
        tm = Telemetry(
            TelemetryConfig(enabled=True, jsonl_path=str(path))
        )
        with tm.span("work"):
            pass
        tm.close()
        lines = path.read_text().splitlines()
        header = json.loads(lines[0])
        assert header["kind"] == "header" and header["schema"] == 1
        assert json.loads(lines[1])["name"] == "work"

    def test_jsonl_sink_creates_parent_dirs(self, tmp_path):
        path = tmp_path / "deep" / "nested" / "run.jsonl"
        JsonlSink(path).close()
        assert path.exists()

    def test_stderr_summary_echoes_logs_live(self, capsys):
        sink = StderrSummarySink(label="test")
        tm = Telemetry(sinks=[sink])
        tm.log("note", "hello world")
        assert "hello world" in capsys.readouterr().err

    def test_stderr_summary_block_on_close(self, capsys):
        sink = StderrSummarySink(label="test")
        tm = Telemetry(sinks=[sink])
        with tm.span("work"):
            pass
        tm.close()
        err = capsys.readouterr().err
        assert "[test] run summary:" in err
        assert "span work: n=1" in err

    def test_registry_type_conflict_propagates(self):
        tm = Telemetry()
        tm.inc("name")
        with pytest.raises(ConfigError):
            tm.gauge("name", 1.0)
