"""Unit tests for the metrics registry and its accumulator types."""

import pytest

from repro.errors import ConfigError
from repro.telemetry import Counter, Gauge, Histogram, MetricsRegistry, Series


class TestCounter:
    def test_accumulates(self):
        counter = Counter("c")
        counter.inc()
        counter.inc(4)
        assert counter.total == 5

    def test_negative_increment_rejected(self):
        with pytest.raises(ConfigError):
            Counter("c").inc(-1)

    def test_snapshot(self):
        counter = Counter("c")
        counter.inc(3)
        assert counter.snapshot() == {"type": "counter", "total": 3}


class TestGauge:
    def test_tracks_last_min_max(self):
        gauge = Gauge("g")
        for value in (5.0, 2.0, 9.0):
            gauge.set(value)
        assert gauge.value == 9.0
        assert gauge.min == 2.0
        assert gauge.max == 9.0
        assert gauge.updates == 3

    def test_snapshot_without_updates_has_no_extremes(self):
        snap = Gauge("g").snapshot()
        assert snap["min"] is None and snap["max"] is None


class TestHistogram:
    def test_mean_is_exact(self):
        hist = Histogram("h")
        for value in (1.0, 2.0, 3.0, 4.0):
            hist.observe(value)
        assert hist.mean == 2.5

    def test_percentiles_within_sample_range(self):
        hist = Histogram("h")
        samples = [float(v) for v in range(1, 101)]
        for value in samples:
            hist.observe(value)
        for q in (0.0, 0.5, 0.99, 1.0):
            assert min(samples) <= hist.percentile(q) <= max(samples)

    def test_p50_reasonably_close(self):
        hist = Histogram("h")
        for value in range(1, 101):
            hist.observe(float(value))
        # Buckets at 50/100: the interpolated median must land nearby.
        assert hist.percentile(0.5) == pytest.approx(50.0, rel=0.25)

    def test_overflow_bucket_clamps_to_observed_max(self):
        hist = Histogram("h", bounds=(1.0, 10.0))
        hist.observe(5_000_000.0)
        assert hist.percentile(0.99) == 5_000_000.0

    def test_empty_percentile_is_zero(self):
        assert Histogram("h").percentile(0.5) == 0.0

    def test_bad_quantile_rejected(self):
        with pytest.raises(ConfigError):
            Histogram("h").percentile(1.5)

    def test_unsorted_bounds_rejected(self):
        with pytest.raises(ConfigError):
            Histogram("h", bounds=(5.0, 1.0))


class TestSeries:
    def test_records_in_order(self):
        series = Series("s")
        series.record(0, 1.5)
        series.record(1, 1.0)
        assert series.steps == [0, 1]
        assert series.values == [1.5, 1.0]
        assert len(series) == 2

    def test_snapshot_reports_last_point(self):
        series = Series("s")
        series.record(7, 3.0)
        snap = series.snapshot()
        assert snap["points"] == 1
        assert snap["last_step"] == 7
        assert snap["last_value"] == 3.0


class TestRegistry:
    def test_create_on_first_use_and_reuse(self):
        registry = MetricsRegistry()
        assert registry.counter("c") is registry.counter("c")

    def test_type_aliasing_rejected(self):
        registry = MetricsRegistry()
        registry.counter("name")
        with pytest.raises(ConfigError):
            registry.gauge("name")

    def test_snapshots_name_sorted(self):
        registry = MetricsRegistry()
        registry.counter("zz").inc()
        registry.gauge("aa").set(1.0)
        names = [name for name, _ in registry.snapshots()]
        assert names == sorted(names)
