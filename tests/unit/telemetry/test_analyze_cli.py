"""Unit tests for offline trace analysis and the ``repro trace`` CLI."""

import pytest

from repro.cli import main
from repro.errors import ConfigError
from repro.telemetry import (
    Telemetry,
    TelemetryConfig,
    load_trace,
    summarize,
    top_spans,
    write_trace,
)


def make_trace(path):
    """A small but representative trace file; returns its events."""
    tm = Telemetry(TelemetryConfig(enabled=True, jsonl_path=str(path)))
    for _ in range(3):
        with tm.span("mcts.decision", budget=10):
            pass
    with tm.span("mcts.schedule"):
        pass
    tm.inc("mcts.rollouts", 30)
    tm.record("reinforce.loss", 0, 1.5)
    tm.record("reinforce.loss", 1, 1.0)
    tm.event("env.episode", steps=12)
    tm.close()
    return tm.events()


class TestLoadWrite:
    def test_round_trip_preserves_events(self, tmp_path):
        path = tmp_path / "run.jsonl"
        events = make_trace(path)
        loaded = load_trace(path)
        assert loaded.schema == 1
        assert list(loaded.events) == events

    def test_write_then_load_is_identity(self, tmp_path):
        source = tmp_path / "a.jsonl"
        events = make_trace(source)
        copy = tmp_path / "b.jsonl"
        write_trace(copy, events, meta={"origin": "test"})
        reloaded = load_trace(copy)
        assert list(reloaded.events) == events
        assert reloaded.meta == {"origin": "test"}

    def test_missing_file_rejected(self, tmp_path):
        with pytest.raises(ConfigError):
            load_trace(tmp_path / "nope.jsonl")

    def test_empty_file_rejected(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("")
        with pytest.raises(ConfigError):
            load_trace(path)

    def test_missing_header_rejected(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"kind": "point", "name": "x", "seq": 1, "t": 0}\n')
        with pytest.raises(ConfigError):
            load_trace(path)

    def test_unsupported_schema_rejected(self, tmp_path):
        path = tmp_path / "future.jsonl"
        path.write_text('{"kind": "header", "schema": 99}\n')
        with pytest.raises(ConfigError):
            load_trace(path)

    def test_malformed_line_rejected_with_line_number(self, tmp_path):
        path = tmp_path / "torn.jsonl"
        path.write_text('{"kind": "header", "schema": 1}\n{{{\n')
        with pytest.raises(ConfigError, match="line 2"):
            load_trace(path)


class TestSummarize:
    def test_span_stats_and_counters(self, tmp_path):
        events = make_trace(tmp_path / "run.jsonl")
        summary = summarize(events)
        decision = summary.spans["mcts.decision"]
        assert decision.count == 3
        assert decision.p50_us <= decision.p99_us <= decision.max_us
        assert summary.counters["mcts.rollouts"] == 30
        assert summary.series["reinforce.loss"] == 2
        assert summary.points["env.episode"] == 1

    def test_report_mentions_everything(self, tmp_path):
        events = make_trace(tmp_path / "run.jsonl")
        report = summarize(events).report()
        for needle in ("mcts.decision", "mcts.rollouts", "reinforce.loss", "p99"):
            assert needle in report

    def test_top_spans_ranked_by_total_time(self, tmp_path):
        events = make_trace(tmp_path / "run.jsonl")
        ranked = top_spans(events)
        totals = [stats.total_us for stats in ranked]
        assert totals == sorted(totals, reverse=True)
        assert top_spans(events, limit=1)[0].name == ranked[0].name


class TestTraceCli:
    def test_summary_command(self, tmp_path, capsys):
        path = tmp_path / "run.jsonl"
        make_trace(path)
        assert main(["trace", "summary", str(path)]) == 0
        out = capsys.readouterr().out
        assert "mcts.decision" in out and "events" in out

    def test_export_round_trips(self, tmp_path, capsys):
        source = tmp_path / "run.jsonl"
        make_trace(source)
        target = tmp_path / "copy.jsonl"
        assert main(["trace", "export", str(source), "--out", str(target)]) == 0
        assert list(load_trace(target).events) == list(load_trace(source).events)

    def test_top_spans_command(self, tmp_path, capsys):
        path = tmp_path / "run.jsonl"
        make_trace(path)
        assert main(["trace", "top-spans", str(path), "--limit", "1"]) == 0
        assert "mcts" in capsys.readouterr().out

    def test_bad_trace_exits_2(self, tmp_path, capsys):
        path = tmp_path / "bad.jsonl"
        path.write_text("not json\n")
        assert main(["trace", "summary", str(path)]) == 2
        assert "trace:" in capsys.readouterr().err

    def test_legacy_workload_trace_still_works(self, capsys):
        assert main(["trace", "--jobs", "4", "--stats"]) == 0
        assert "jobs" in capsys.readouterr().out


class TestTraceOutFlag:
    def test_compare_writes_loadable_trace(self, tmp_path, capsys):
        path = tmp_path / "cmp.jsonl"
        code = main(
            [
                "compare",
                "--schedulers",
                "tetris,sjf",
                "--jobs",
                "2",
                "--tasks",
                "8",
                "--trace-out",
                str(path),
            ]
        )
        assert code == 0
        loaded = load_trace(path)
        summary = summarize(loaded.events)
        assert "tournament.run" in summary.spans
        assert summary.series  # per-scheduler makespan curves
        err = capsys.readouterr().err
        assert "wrote telemetry trace" in err
