"""Unit tests for TelemetryConfig validation and the event wire format."""

import pytest

from repro.errors import ConfigError
from repro.telemetry import SCHEMA_VERSION, TelemetryConfig, TelemetryEvent
from repro.telemetry.events import EVENT_KINDS


class TestTelemetryConfig:
    def test_default_is_disabled(self):
        assert TelemetryConfig().enabled is False

    def test_enabled_with_memory_sink_ok(self):
        cfg = TelemetryConfig(enabled=True)
        assert cfg.capture_memory

    def test_enabled_without_any_sink_rejected(self):
        with pytest.raises(ConfigError):
            TelemetryConfig(enabled=True, capture_memory=False)

    def test_enabled_with_jsonl_only_ok(self, tmp_path):
        cfg = TelemetryConfig(
            enabled=True,
            capture_memory=False,
            jsonl_path=str(tmp_path / "t.jsonl"),
        )
        assert cfg.jsonl_path

    def test_nonpositive_max_events_rejected(self):
        with pytest.raises(ConfigError):
            TelemetryConfig(max_events=0)

    def test_value_semantics(self):
        assert TelemetryConfig(enabled=True) == TelemetryConfig(enabled=True)
        assert hash(TelemetryConfig()) == hash(TelemetryConfig())


class TestEventRoundTrip:
    def test_schema_version_is_one(self):
        assert SCHEMA_VERSION == 1

    def test_span_round_trip(self):
        event = TelemetryEvent(
            kind="span",
            name="mcts.decision",
            seq=7,
            wall_time=123.5,
            duration_us=41.25,
            depth=2,
            parent="mcts.schedule",
            attrs={"budget": 50},
        )
        assert TelemetryEvent.from_dict(event.as_dict()) == event

    def test_series_round_trip(self):
        event = TelemetryEvent(
            kind="series",
            name="reinforce.loss",
            seq=1,
            wall_time=1.0,
            step=3,
            value=0.25,
        )
        assert TelemetryEvent.from_dict(event.as_dict()) == event

    def test_unset_fields_omitted_from_json(self):
        payload = TelemetryEvent(
            kind="point", name="x", seq=1, wall_time=1.0
        ).as_dict()
        assert set(payload) == {"kind", "name", "seq", "t"}

    def test_non_scalar_attrs_are_stringified(self):
        event = TelemetryEvent(
            kind="point", name="x", seq=1, wall_time=1.0, attrs={"obj": [1, 2]}
        )
        assert event.as_dict()["attrs"]["obj"] == "[1, 2]"

    @pytest.mark.parametrize("kind", EVENT_KINDS)
    def test_all_kinds_accepted(self, kind):
        payload = {"kind": kind, "name": "n", "seq": 1, "t": 0.0}
        assert TelemetryEvent.from_dict(payload).kind == kind

    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigError):
            TelemetryEvent.from_dict(
                {"kind": "bogus", "name": "n", "seq": 1, "t": 0.0}
            )

    def test_missing_required_field_rejected(self):
        with pytest.raises(ConfigError):
            TelemetryEvent.from_dict({"kind": "point", "name": "n"})
