"""Integration tests: the instrumented layers actually report.

Each test activates a session (or hands a component its own
TelemetryConfig) and checks that the search / training / serving paths
emit the spans, counters and series DESIGN.md Sec. 9 documents — and
that with telemetry off they emit nothing.
"""

import pytest

from repro.config import (
    ClusterConfig,
    EnvConfig,
    MctsConfig,
    NetworkConfig,
    TelemetryConfig,
    TrainingConfig,
    WorkloadConfig,
)
from repro.dag import independent_tasks_dag
from repro.dag.generators import chain_dag, random_layered_dag
from repro.env.observation import observation_size
from repro.mcts.parallel import RootParallelMcts
from repro.mcts.search import MctsScheduler
from repro.online import ArrivingJob, OnlineSimulator, fifo_ranker, sjf_ranker
from repro.rl import ImitationTrainer, PolicyNetwork, ReinforceTrainer
from repro.telemetry import TelemetryConfig as TC
from repro.telemetry import disable, session, summarize


@pytest.fixture(autouse=True)
def _restore_global_pipeline():
    yield
    disable()


@pytest.fixture
def graph():
    workload = WorkloadConfig(
        num_tasks=8, max_runtime=4, max_demand=8,
        runtime_mean=2, runtime_std=1, demand_mean=5, demand_std=2,
    )
    return random_layered_dag(workload, seed=3)


MCTS = MctsConfig(initial_budget=15, min_budget=5)


class TestMctsInstrumentation:
    def test_search_emits_spans_and_counters(self, graph):
        with session(TC(enabled=True)) as tm:
            MctsScheduler(MCTS, seed=0).schedule(graph)
            events = tm.events()
        summary = summarize(events)
        assert summary.spans["mcts.schedule"].count == 1
        assert summary.spans["mcts.decision"].count >= 1
        assert tm.metrics.counter("mcts.searches").total == 1
        assert tm.metrics.counter("mcts.iterations").total > 0
        assert tm.metrics.counter("mcts.rollouts").total > 0

    def test_decision_spans_carry_tree_shape(self, graph):
        with session(TC(enabled=True)) as tm:
            MctsScheduler(MCTS, seed=0).schedule(graph)
            decisions = [e for e in tm.events() if e.name == "mcts.decision"]
        for event in decisions:
            assert event.attrs["tree_nodes"] >= 1
            assert event.attrs["tree_depth"] >= 0
            assert "action" in event.attrs
            assert event.parent == "mcts.schedule"

    def test_telemetry_does_not_change_the_schedule(self, graph):
        baseline = MctsScheduler(MCTS, seed=0).schedule(graph)
        with session(TC(enabled=True)):
            traced = MctsScheduler(MCTS, seed=0).schedule(graph)
        assert traced.makespan == baseline.makespan
        assert [p.start for p in traced.placements] == [
            p.start for p in baseline.placements
        ]

    def test_parallel_search_reports_workers(self, graph):
        with session(TC(enabled=True)) as tm:
            RootParallelMcts(MCTS, workers=2, seed=0).schedule(graph)
            events = tm.events()
        workers = [e for e in tm.events() if e.name == "mcts.worker"]
        assert len(workers) == 2
        assert any(e.attrs["best"] for e in workers)
        assert summarize(events).spans["mcts.parallel_schedule"].count == 1

    def test_disabled_emits_nothing(self, graph):
        scheduler = MctsScheduler(MCTS, seed=0)
        scheduler.schedule(graph)  # global pipeline is the disabled no-op
        assert scheduler._tm_enabled is False


class TestEnvInstrumentation:
    def test_episode_counters_flushed_at_to_schedule(self, graph):
        with session(TC(enabled=True)) as tm:
            MctsScheduler(MCTS, seed=0).schedule(graph)
            assert tm.metrics.counter("env.episodes").total >= 1
            assert tm.metrics.counter("env.steps").total > 0
            assert tm.metrics.counter("env.undos").total > 0  # undo mode
            episodes = [e for e in tm.events() if e.name == "env.episode"]
        assert episodes and episodes[-1].attrs["steps"] > 0


class TestTrainingInstrumentation:
    @pytest.fixture
    def env_config(self):
        return EnvConfig(
            cluster=ClusterConfig(capacities=(10, 10), horizon=6),
            max_ready=4,
        )

    @pytest.fixture
    def net(self, env_config):
        return PolicyNetwork(
            observation_size(env_config),
            NetworkConfig(hidden_sizes=(12, 6), max_ready=env_config.max_ready),
            seed=0,
        )

    @pytest.fixture
    def training(self):
        return TrainingConfig(
            num_examples=2,
            example_num_tasks=5,
            rollouts_per_example=3,
            supervised_epochs=2,
            batch_size=8,
            epochs=2,
        )

    @pytest.fixture
    def graphs(self):
        workload = WorkloadConfig(
            num_tasks=5, max_runtime=3, max_demand=8,
            runtime_mean=2, runtime_std=1, demand_mean=5, demand_std=2,
        )
        return [random_layered_dag(workload, seed=s) for s in range(2)]

    def test_reinforce_streams_training_curves(
        self, net, env_config, training, graphs
    ):
        with session(TC(enabled=True)) as tm:
            trainer = ReinforceTrainer(
                net, graphs, env_config, training, seed=0
            )
            history = trainer.train(epochs=2)
            series = tm.series_dict()
        for name in (
            "reinforce.loss",
            "reinforce.entropy",
            "reinforce.return",
            "reinforce.baseline",
        ):
            assert series[name].steps == [0, 1], name
        assert history[0].mean_loss == series["reinforce.loss"].values[0]
        assert series["reinforce.baseline"].values == [
            -stats.mean_makespan for stats in history
        ]

    def test_reinforce_log_every_as_telemetry_event(
        self, net, env_config, training, graphs, capsys
    ):
        with session(TC(enabled=True, stderr_summary=True)) as tm:
            trainer = ReinforceTrainer(
                net, graphs, env_config, training, seed=0
            )
            trainer.train(epochs=1, log_every=1)
            logs = [e for e in tm.events() if e.kind == "log"]
        assert logs and logs[0].name == "reinforce.epoch"
        assert "mean makespan" in logs[0].attrs["message"]
        # stderr-summary sink echoed it live; stdout stays clean.
        captured = capsys.readouterr()
        assert "mean makespan" in captured.err
        assert captured.out == ""

    def test_reinforce_log_every_falls_back_to_stderr(
        self, net, env_config, training, graphs, capsys
    ):
        trainer = ReinforceTrainer(net, graphs, env_config, training, seed=0)
        trainer.train(epochs=1, log_every=1)
        captured = capsys.readouterr()
        assert "mean makespan" in captured.err
        assert captured.out == ""

    def test_imitation_streams_loss_curve(
        self, net, env_config, training, graphs
    ):
        with session(TC(enabled=True)) as tm:
            losses = ImitationTrainer(
                net, env_config, training=training, seed=0
            ).fit(graphs)
            series = tm.series_dict()["imitation.loss"]
            spans = summarize(tm.events()).spans
        assert series.values == losses
        assert spans["imitation.fit"].count == 1


class TestOnlineInstrumentation:
    CLUSTER = ClusterConfig(capacities=(10, 10), horizon=8)

    @staticmethod
    def job(arrival, runtimes, demands=None):
        return ArrivingJob(
            arrival, independent_tasks_dag(runtimes, demands=demands)
        )

    def test_run_reports_jct_histogram_and_gauges(self):
        stream = [
            self.job(0, [2], demands=[(10, 10)]),
            self.job(0, [2], demands=[(10, 10)]),
        ]
        with session(TC(enabled=True)) as tm:
            result = OnlineSimulator(self.CLUSTER).run(stream, fifo_ranker)
            hist = tm.metrics.histogram("online.jct")
            assert hist.count == 2
            assert hist.mean == pytest.approx(result.mean_jct)
            assert hist.max == result.max_jct
            metrics = tm.metrics.all_metrics()
            assert metrics["online.utilization.r0"].value == pytest.approx(
                result.mean_utilization[0]
            )
            assert metrics["online.active_jobs"].max >= 1
            jobs = [e for e in tm.events() if e.name == "online.job"]
            spans = summarize(tm.events()).spans
        assert [e.attrs["jct"] for e in jobs] == [2, 4]
        assert spans["online.run"].count == 1

    def test_constructor_config_binds_dedicated_pipeline(self):
        from repro.telemetry import for_config

        cfg = TelemetryConfig(enabled=True, max_events=54_321)
        simulator = OnlineSimulator(self.CLUSTER, telemetry=cfg)
        simulator.run([self.job(0, [2], demands=[(2, 2)])], fifo_ranker)
        pipeline = for_config(cfg)
        assert pipeline.metrics.histogram("online.jct").count == 1

    def test_equal_time_arrival_admitted_before_refill(self):
        # Job 0 is a chain 5 -> 3 filling the cluster; its first task
        # completes at t=5, exactly when job 1 arrives.  Documented
        # determinism: the arrival is admitted before the completion's
        # follow-up placements, so under SJF job 1's shorter task
        # (runtime 1) wins the freed capacity over job 0's second task
        # (runtime 3).  Were admission to happen after the refill, job 1
        # would wait until t=8 and finish at 9.
        stream = [
            ArrivingJob(0, chain_dag([5, 3], demands=[(10, 10), (10, 10)])),
            self.job(5, [1], demands=[(10, 10)]),
        ]
        result = OnlineSimulator(self.CLUSTER).run(stream, sjf_ranker)
        assert result.outcomes[1].completion_time == 6
        assert result.outcomes[1].jct == 1
        assert result.outcomes[0].completion_time == 9
