"""Unit tests for the experiment harness plumbing (scale, reporting,
network cache).  Full experiment runs live in tests/integration."""

import numpy as np
import pytest

from repro.experiments import ExperimentScale, format_cdf, format_table, resolve_scale
from repro.experiments.networks import cache_dir, cached_network, training_config_for_scale
from repro.experiments.scale import LAPTOP, PAPER, paper_scale_requested


class TestScaleResolution:
    def test_explicit_override_wins(self):
        assert resolve_scale(True) is PAPER
        assert resolve_scale(False) is LAPTOP

    def test_env_var_controls_default(self, monkeypatch):
        monkeypatch.delenv("REPRO_PAPER_SCALE", raising=False)
        assert resolve_scale() is LAPTOP
        monkeypatch.setenv("REPRO_PAPER_SCALE", "1")
        assert resolve_scale() is PAPER
        assert paper_scale_requested()

    def test_env_var_falsy_values(self, monkeypatch):
        monkeypatch.setenv("REPRO_PAPER_SCALE", "0")
        assert not paper_scale_requested()

    def test_paper_scale_matches_publication(self):
        assert PAPER.num_tasks == 100
        assert PAPER.mcts_budget == 1000
        assert PAPER.mcts_min_budget == 100
        assert PAPER.sweep_budgets == (500, 600, 1000, 2200)
        assert PAPER.train_examples == 144
        assert PAPER.train_tasks == 25
        assert PAPER.train_epochs == 7000
        assert PAPER.train_rollouts == 20
        assert PAPER.trace_jobs == 99
        assert PAPER.trace_spear_budget == 100
        assert PAPER.trace_spear_min_budget == 50
        assert PAPER.fig8_budget_divisor == 10

    def test_laptop_scale_is_smaller_everywhere(self):
        assert LAPTOP.num_tasks < PAPER.num_tasks
        assert LAPTOP.mcts_budget < PAPER.mcts_budget
        assert LAPTOP.train_epochs < PAPER.train_epochs
        assert LAPTOP.trace_jobs < PAPER.trace_jobs


class TestReporting:
    def test_table_alignment(self):
        out = format_table(["name", "value"], [("a", 1.25), ("long-name", 7)])
        lines = out.splitlines()
        assert len(lines) == 4
        assert "1.2" in out  # one-decimal float rendering
        assert lines[0].index("value") == lines[2].index("1.2")

    def test_table_title(self):
        out = format_table(["x"], [(1,)], title="My Table")
        assert out.splitlines()[0] == "My Table"

    def test_cdf_downsampling(self):
        points = [(float(i), (i + 1) / 100) for i in range(100)]
        out = format_cdf(points, max_points=10)
        # Header + separator + <= 10 rows.
        assert len(out.splitlines()) <= 12

    def test_cdf_empty_rejected(self):
        with pytest.raises(ValueError):
            format_cdf([])


class TestNetworkCache:
    def test_cache_dir_env_override(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        assert cache_dir() == tmp_path

    def test_training_config_for_scale(self):
        cfg = training_config_for_scale(PAPER)
        assert cfg.num_examples == 144
        assert cfg.example_num_tasks == 25
        assert cfg.rollouts_per_example == 20

    def test_cached_network_trains_once_and_reloads(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        # A micro-scale so training is instant.
        scale = ExperimentScale(
            label="unit-test",
            num_dags=1,
            num_tasks=8,
            spear_budget=5,
            spear_min_budget=2,
            mcts_budget=5,
            mcts_min_budget=2,
            sweep_budgets=(2,),
            sweep_num_dags=1,
            sweep_min_budget=2,
            grid_sizes=(6,),
            grid_budgets=(2,),
            fig8_budget_divisor=2,
            train_examples=2,
            train_tasks=6,
            train_epochs=1,
            train_rollouts=2,
            supervised_epochs=2,
            trace_jobs=2,
            trace_spear_budget=3,
            trace_spear_min_budget=2,
        )
        network_a = cached_network(scale, seed=0)
        checkpoint = tmp_path / "spear-network-unit-test-seed0.npz"
        assert checkpoint.exists()

        # Second call: in-memory hit, identical object.
        network_b = cached_network(scale, seed=0)
        assert network_b is network_a

        # Fresh process simulation: clear memory cache, must load from disk.
        from repro.experiments import networks as networks_module

        networks_module._MEMORY_CACHE.clear()
        network_c = cached_network(scale, seed=0)
        assert network_c is not network_a
        assert all(
            np.array_equal(network_c.params[k], network_a.params[k])
            for k in network_a.params
        )
