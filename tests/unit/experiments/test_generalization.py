"""Unit tests for the frozen-policy generalization study."""

import pytest

from repro.experiments.generalization import (
    GeneralizationResult,
    generalization_study,
)


@pytest.fixture(scope="module")
def result():
    return generalization_study(
        seed=0, train_tasks=8, eval_factors=(2,), num_dags=2, epochs=1
    )


def test_all_schedulers_evaluated(result):
    assert result.eval_sizes == (16,)
    data = result.makespans[16]
    assert set(data) == {"drl-gnn", "drl-mlp", "tetris", "sjf", "cp"}
    assert all(len(v) == 2 for v in data.values())
    assert all(m > 0 for v in data.values() for m in v)


def test_parameter_counts_recorded(result):
    assert result.num_parameters["drl-gnn"] > 0
    # The whole point: the graph policy is much smaller than the
    # windowed MLP at default shapes.
    assert (
        result.num_parameters["drl-gnn"] < result.num_parameters["drl-mlp"]
    )


def test_gap_is_relative_to_best_heuristic(result):
    gap = result.gap_to_best_heuristic(16, "drl-gnn")
    data = result.makespans[16]
    best = min(
        sum(data[h]) / len(data[h]) for h in ("tetris", "sjf", "cp")
    )
    mean = sum(data["drl-gnn"]) / len(data["drl-gnn"])
    assert gap == pytest.approx(mean / best)


def test_report_mentions_sizes_and_params(result):
    report = result.report()
    assert "16-task DAGs" in report
    assert "params" in report
    assert "gap to best heuristic" in report


def test_result_type_roundtrip():
    r = GeneralizationResult(train_tasks=4, eval_sizes=(8,), num_dags=1)
    r.makespans[8] = {
        "drl-gnn": [10], "drl-mlp": [12],
        "tetris": [11], "sjf": [13], "cp": [12],
    }
    assert r.gap_to_best_heuristic(8, "drl-gnn") == pytest.approx(10 / 11)
