"""Unit tests for the workload-diversity study."""

import pytest

from repro.experiments.diversity import (
    DiversityResult,
    diversity_study,
    workload_families,
)


class TestWorkloadFamilies:
    def test_contains_all_four(self):
        families = workload_families()
        assert set(families) == {"gaussian", "fft", "stencil", "cholesky"}

    def test_graphs_are_valid_and_nontrivial(self):
        for name, graph in workload_families().items():
            assert graph.num_tasks >= 2, name
            assert graph.num_resources == 2

    def test_size_hint_scales(self):
        small = workload_families(3)
        large = workload_families(7)
        for name in small:
            assert large[name].num_tasks >= small[name].num_tasks


class TestDiversityStudy:
    @pytest.fixture(scope="class")
    def result(self):
        return diversity_study(
            seed=0,
            schedulers=("tetris", "sjf", "cp"),
            include_mcts=False,
            size_hint=4,
        )

    def test_every_cell_filled(self, result):
        for family, per in result.makespans.items():
            assert set(per) == {"tetris", "sjf", "cp"}
            assert all(m > 0 for m in per.values())

    def test_ranking_is_sorted(self, result):
        for family in result.makespans:
            ranking = result.ranking(family)
            makespans = [result.makespans[family][name] for name in ranking]
            assert makespans == sorted(makespans)

    def test_wins_bounded_by_family_count(self, result):
        for name in ("tetris", "sjf", "cp"):
            assert 0 <= result.wins(name) <= len(result.makespans)

    def test_wins_sum_at_least_family_count(self, result):
        # Every family has at least one (co-)winner.
        total = sum(result.wins(name) for name in ("tetris", "sjf", "cp"))
        assert total >= len(result.makespans)

    def test_report_contains_families(self, result):
        report = result.report()
        for family in ("gaussian", "fft", "stencil", "cholesky"):
            assert family in report

    def test_mcts_included_when_requested(self):
        result = diversity_study(
            seed=0,
            schedulers=("sjf",),
            include_mcts=True,
            size_hint=3,
        )
        for per in result.makespans.values():
            assert "mcts" in per
