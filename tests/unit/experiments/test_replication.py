"""Unit tests for the seed-sweep replication harness."""

import pytest

from repro.experiments.replication import ReplicationResult, replicate


class TestReplicate:
    def test_runs_once_per_seed(self):
        calls = []

        def experiment(seed):
            calls.append(seed)
            return {"makespan": 100.0 + seed}

        result = replicate(experiment, seeds=[1, 2, 3])
        assert calls == [1, 2, 3]
        assert result.samples["makespan"] == (101.0, 102.0, 103.0)
        assert result.mean("makespan") == pytest.approx(102.0)

    def test_interval_contains_mean(self):
        result = replicate(
            lambda seed: {"m": float(seed % 5)}, seeds=list(range(20))
        )
        low, high = result.interval("m")
        assert low <= result.mean("m") <= high

    def test_multiple_metrics(self):
        result = replicate(
            lambda seed: {"a": float(seed), "b": 2.0 * seed}, seeds=[1, 2]
        )
        assert result.mean("a") == pytest.approx(1.5)
        assert result.mean("b") == pytest.approx(3.0)

    def test_empty_seeds_rejected(self):
        with pytest.raises(ValueError):
            replicate(lambda seed: {"m": 0.0}, seeds=[])

    def test_inconsistent_keys_rejected(self):
        def experiment(seed):
            return {"a": 1.0} if seed == 0 else {"b": 1.0}

        with pytest.raises(ValueError, match="inconsistent"):
            replicate(experiment, seeds=[0, 1])

    def test_report_lists_metrics(self):
        result = replicate(
            lambda seed: {"makespan": 100.0, "winrate": 0.5}, seeds=[0, 1, 2]
        )
        report = result.report()
        assert "makespan" in report
        assert "winrate" in report
        assert "3 seeds" in report


class TestWithRealExperiment:
    def test_mini_scheduler_comparison_replicates(self):
        """End-to-end: replicate a tiny Tetris-vs-SJF comparison."""
        from repro.config import ClusterConfig, EnvConfig, WorkloadConfig
        from repro.dag.generators import random_layered_dag
        from repro.schedulers import make_scheduler

        env_config = EnvConfig(
            cluster=ClusterConfig(capacities=(10, 10), horizon=8), max_ready=8
        )

        def experiment(seed):
            graph = random_layered_dag(
                WorkloadConfig(
                    num_tasks=10, max_runtime=4, max_demand=6,
                    runtime_mean=2, runtime_std=1, demand_mean=3,
                    demand_std=2,
                ),
                seed=seed,
            )
            return {
                name: float(
                    make_scheduler(name, env_config).schedule(graph).makespan
                )
                for name in ("tetris", "sjf")
            }

        result = replicate(experiment, seeds=range(5))
        assert len(result.samples["tetris"]) == 5
        low, high = result.interval("tetris")
        assert 0 < low <= high
