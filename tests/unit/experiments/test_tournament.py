"""Unit tests for the tournament evaluator and sign test."""

import pytest

from repro.config import ClusterConfig, EnvConfig
from repro.dag.generators import random_layered_dag
from repro.config import WorkloadConfig
from repro.experiments.tournament import run_tournament, sign_test
from repro.schedulers import make_scheduler


class TestSignTest:
    def test_no_difference_gives_one(self):
        assert sign_test([1, 2, 3], [1, 2, 3]) == 1.0

    def test_consistent_dominance_gives_small_p(self):
        ours = [1] * 10
        baseline = [2] * 10
        assert sign_test(ours, baseline) < 0.01

    def test_symmetric(self):
        a, b = [1, 2, 5, 1, 9], [2, 2, 4, 3, 1]
        assert sign_test(a, b) == pytest.approx(sign_test(b, a))

    def test_mixed_outcomes_not_significant(self):
        assert sign_test([1, 3], [2, 2]) > 0.4

    def test_length_mismatch_rejected(self):
        with pytest.raises(ValueError):
            sign_test([1], [1, 2])


class TestTournament:
    @pytest.fixture
    def setup(self):
        env_config = EnvConfig(
            cluster=ClusterConfig(capacities=(10, 10), horizon=8), max_ready=8
        )
        workload = WorkloadConfig(
            num_tasks=10, max_runtime=4, max_demand=6,
            runtime_mean=2, runtime_std=1, demand_mean=3, demand_std=2,
        )
        graphs = [random_layered_dag(workload, seed=s) for s in range(3)]
        schedulers = {
            name: make_scheduler(name, env_config)
            for name in ("tetris", "sjf", "cp")
        }
        return schedulers, graphs, env_config

    def test_full_round_robin(self, setup):
        schedulers, graphs, env_config = setup
        result = run_tournament(schedulers, graphs, env_config)
        assert set(result.makespans) == {"tetris", "sjf", "cp"}
        assert all(len(v) == 3 for v in result.makespans.values())
        assert all(len(v) == 3 for v in result.wall_times.values())

    def test_default_reference_prefers_graphene(self, setup):
        schedulers, graphs, env_config = setup
        schedulers["graphene"] = make_scheduler("graphene", env_config)
        result = run_tournament(schedulers, graphs, env_config)
        assert result.reference == "graphene"

    def test_explicit_reference(self, setup):
        schedulers, graphs, env_config = setup
        result = run_tournament(schedulers, graphs, env_config, reference="sjf")
        assert result.reference == "sjf"
        assert result.p_value_vs_reference("tetris") <= 1.0

    def test_unknown_reference_rejected(self, setup):
        schedulers, graphs, env_config = setup
        with pytest.raises(ValueError):
            run_tournament(schedulers, graphs, env_config, reference="spear")

    def test_empty_inputs_rejected(self, setup):
        schedulers, graphs, env_config = setup
        with pytest.raises(ValueError):
            run_tournament({}, graphs, env_config)
        with pytest.raises(ValueError):
            run_tournament(schedulers, [], env_config)

    def test_win_matrix_antisymmetry(self, setup):
        schedulers, graphs, env_config = setup
        result = run_tournament(schedulers, graphs, env_config)
        matrix = result.win_matrix()
        for (a, b), rate in matrix.items():
            # a beats b + b beats a + ties == 1.
            assert 0.0 <= rate + matrix[(b, a)] <= 1.0

    def test_ranking_sorted(self, setup):
        schedulers, graphs, env_config = setup
        result = run_tournament(schedulers, graphs, env_config)
        means = [row.mean for row in result.ranking()]
        assert means == sorted(means)

    def test_report_renders(self, setup):
        schedulers, graphs, env_config = setup
        result = run_tournament(schedulers, graphs, env_config)
        report = result.report()
        assert "Tournament over 3 jobs" in report
        for name in schedulers:
            assert name in report
