"""Unit tests for the experiment result dataclasses (no heavy runs)."""

import pytest

from repro.experiments.fig6 import Fig6Result
from repro.experiments.fig7 import BudgetPoint, Fig7Result
from repro.experiments.fig8 import Fig8aResult, Fig8bResult
from repro.experiments.fig9 import Fig9cResult
from repro.experiments.table1 import Table1Result
from repro.rl.reinforce import EpochStats


class TestFig6Result:
    @pytest.fixture
    def result(self):
        return Fig6Result(
            scale="unit",
            num_dags=3,
            makespans={
                "spear": [100, 110, 120],
                "graphene": [105, 110, 130],
                "tetris": [120, 115, 125],
            },
            wall_times={
                "spear": [1.0, 1.1, 0.9],
                "graphene": [0.2, 0.3, 0.1],
                "tetris": [0.01, 0.01, 0.01],
            },
        )

    def test_rows_sorted_best_first(self, result):
        rows = result.rows()
        assert rows[0].scheduler == "spear"
        assert rows[0].mean == 110.0

    def test_win_rates(self, result):
        assert result.win_rate_over("graphene") == pytest.approx(2 / 3)
        assert result.no_worse_rate_over("graphene") == pytest.approx(1.0)

    def test_report_contains_all_schedulers(self, result):
        report = result.report()
        for name in result.makespans:
            assert name in report


class TestFig7Result:
    @pytest.fixture
    def result(self):
        points = [
            BudgetPoint(10, 250.0, 240.0, 0.2, (250, 250)),
            BudgetPoint(100, 235.0, 240.0, 0.7, (230, 240)),
        ]
        return Fig7Result(scale="unit", num_dags=2, points=points)

    def test_series_extraction(self, result):
        assert result.mean_makespans() == [(10, 250.0), (100, 235.0)]
        assert result.win_rates() == [(10, 0.2), (100, 0.7)]

    def test_report(self, result):
        report = result.report()
        assert "budget" in report
        assert "70%" in report


class TestTable1Result:
    @pytest.fixture
    def result(self):
        return Table1Result(
            scale="unit",
            graph_sizes=(50, 100),
            budgets=(500, 1000),
            seconds={
                (50, 500): 1.0,
                (50, 1000): 2.0,
                (100, 500): 3.0,
                (100, 1000): 6.0,
            },
            makespans={key: 100 for key in [(50, 500), (50, 1000), (100, 500), (100, 1000)]},
        )

    def test_row_extraction(self, result):
        assert result.row(50) == [1.0, 2.0]
        assert result.row(100) == [3.0, 6.0]

    def test_report_layout(self, result):
        report = result.report()
        assert "Table I" in report
        assert "1000" in report


class TestFig8Results:
    def test_budget_ratio(self):
        result = Fig8aResult(
            scale="unit",
            num_dags=1,
            mcts_budget=1000,
            spear_budget=100,
            makespans={"mcts": [100], "spear": [101]},
        )
        assert result.budget_ratio() == 10.0
        assert "Fig 8(a)" in result.report()

    @pytest.fixture
    def curve(self):
        history = [
            EpochStats(0, 120.0, 100, 140, 0.5, 10),
            EpochStats(1, 110.0, 95, 130, 0.4, 10),
            EpochStats(2, 101.0, 90, 120, 0.3, 10),
        ]
        return Fig8bResult(
            scale="unit", history=history, tetris_mean=105.0, sjf_mean=115.0
        )

    def test_crossed_tetris_at(self, curve):
        assert curve.crossed_tetris_at() == 2

    def test_crossed_never(self):
        history = [EpochStats(0, 120.0, 100, 140, 0.5, 10)]
        result = Fig8bResult(
            scale="unit", history=history, tetris_mean=100.0, sjf_mean=100.0
        )
        assert result.crossed_tetris_at() is None

    def test_final_mean_and_curve(self, curve):
        assert curve.final_mean() == 101.0
        assert curve.curve() == [(0, 120.0), (1, 110.0), (2, 101.0)]

    def test_report_mentions_references(self, curve):
        report = curve.report()
        assert "105.0" in report
        assert "115.0" in report


class TestFig9cResult:
    @pytest.fixture
    def result(self):
        return Fig9cResult(
            scale="unit",
            num_jobs=4,
            spear_makespans=[90, 100, 95, 105],
            graphene_makespans=[100, 100, 100, 100],
            reductions=[0.10, 0.0, 0.05, -0.05],
        )

    def test_no_worse_fraction(self, result):
        assert result.no_worse_fraction() == pytest.approx(0.75)

    def test_extremes(self, result):
        assert result.max_reduction() == pytest.approx(0.10)
        # Nearest-rank P50 of [-0.05, 0.0, 0.05, 0.10] is the 2nd value.
        assert result.median_reduction() == pytest.approx(0.0)

    def test_cdf_monotone(self, result):
        cdf = result.cdf()
        fractions = [f for _, f in cdf]
        assert fractions == sorted(fractions)
        assert cdf[-1][1] == pytest.approx(1.0)

    def test_report(self, result):
        assert "no-worse fraction 75%" in result.report()
