"""CLI-level tests for ``repro verify`` and ``repro lint``."""

import json
from pathlib import Path

import pytest

from repro.cli import main
from repro.config import EnvConfig, WorkloadConfig
from repro.dag.generators import random_layered_dag
from repro.dag.io import save_graph
from repro.metrics.export import save_schedule, schedule_to_dict
from repro.schedulers.registry import make_scheduler

REPO_SRC = Path(__file__).resolve().parents[3] / "src" / "repro"


@pytest.fixture
def planned(tmp_path):
    """A small scheduled instance saved to disk: (graph_path, schedule, graph)."""
    graph = random_layered_dag(WorkloadConfig(num_tasks=12), seed=7)
    env = EnvConfig(process_until_completion=True)
    schedule = make_scheduler("tetris", env).schedule(graph)
    graph_path = tmp_path / "graph.json"
    save_graph(graph, graph_path)
    return graph_path, schedule, graph


class TestVerifyCommand:
    def test_clean_schedule_exits_zero(self, tmp_path, planned, capsys):
        graph_path, schedule, _ = planned
        schedule_path = tmp_path / "schedule.json"
        save_schedule(schedule, schedule_path)
        code = main(["verify", str(schedule_path), "--graph", str(graph_path)])
        assert code == 0
        assert "ok" in capsys.readouterr().out

    def test_precedence_violation_exits_one(self, tmp_path, planned, capsys):
        graph_path, schedule, graph = planned
        payload = schedule_to_dict(schedule)
        up, down = next(iter(graph.edges()))
        for entry in payload["placements"]:
            if entry["task_id"] == down:
                entry["start"] = 0
                entry["finish"] = graph.task(down).runtime
        schedule_path = tmp_path / "bad.json"
        schedule_path.write_text(json.dumps(payload))
        code = main(["verify", str(schedule_path), "--graph", str(graph_path)])
        assert code == 1
        assert "dependency violated" in capsys.readouterr().out

    def test_capacity_overflow_exits_one(self, tmp_path, planned, capsys):
        graph_path, schedule, graph = planned
        payload = schedule_to_dict(schedule)
        for entry in payload["placements"]:  # everything at t=0: overflow
            entry["finish"] = entry["finish"] - entry["start"]
            entry["start"] = 0
        schedule_path = tmp_path / "squash.json"
        schedule_path.write_text(json.dumps(payload))
        code = main(["verify", str(schedule_path), "--graph", str(graph_path)])
        assert code == 1
        assert "capacity violated" in capsys.readouterr().out

    def test_json_report(self, tmp_path, planned, capsys):
        graph_path, schedule, _ = planned
        schedule_path = tmp_path / "schedule.json"
        save_schedule(schedule, schedule_path)
        code = main(
            ["verify", str(schedule_path), "--graph", str(graph_path), "--json"]
        )
        assert code == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload["ok"] is True
        assert payload["rules_checked"]

    def test_missing_input_exits_two(self, tmp_path, planned, capsys):
        graph_path, _, _ = planned
        code = main(["verify", str(tmp_path / "nope.json"), "--graph", str(graph_path)])
        assert code == 2
        assert "cannot load" in capsys.readouterr().err

    def test_bad_capacities_exits_two(self, tmp_path, planned, capsys):
        graph_path, schedule, _ = planned
        schedule_path = tmp_path / "schedule.json"
        save_schedule(schedule, schedule_path)
        code = main(
            [
                "verify",
                str(schedule_path),
                "--graph",
                str(graph_path),
                "--capacities",
                "a,b",
            ]
        )
        assert code == 2

    def test_explicit_capacities_flag_violations(self, tmp_path, planned, capsys):
        graph_path, schedule, _ = planned
        schedule_path = tmp_path / "schedule.json"
        save_schedule(schedule, schedule_path)
        code = main(
            [
                "verify",
                str(schedule_path),
                "--graph",
                str(graph_path),
                "--capacities",
                "1,1",
            ]
        )
        assert code == 1
        assert "capacity violated" in capsys.readouterr().out


class TestLintCommand:
    def test_repo_source_tree_is_clean(self, capsys):
        assert main(["lint", str(REPO_SRC)]) == 0
        assert "clean" in capsys.readouterr().out

    def test_violating_file_exits_nonzero(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("import random\n\ndef f(xs=[]):\n    random.shuffle(xs)\n")
        assert main(["lint", str(bad)]) == 1
        out = capsys.readouterr().out
        assert "REP101" in out and "REP103" in out

    def test_json_format(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("def f(xs=[]):\n    return xs\n")
        assert main(["lint", str(bad), "--format", "json"]) == 1
        payload = json.loads(capsys.readouterr().out)
        assert payload["count"] >= 1

    def test_select_narrows_rules(self, tmp_path, capsys):
        bad = tmp_path / "bad.py"
        bad.write_text("import random\n\ndef f(xs=[]):\n    random.shuffle(xs)\n")
        assert main(["lint", str(bad), "--select", "REP104"]) == 0

    def test_list_rules(self, capsys):
        assert main(["lint", "--list-rules"]) == 0
        out = capsys.readouterr().out
        assert "REP101" in out and "REP105" in out

    def test_no_paths_exits_two(self, capsys):
        assert main(["lint"]) == 2
        assert "no paths" in capsys.readouterr().err

    def test_unknown_rule_exits_two(self, tmp_path, capsys):
        f = tmp_path / "x.py"
        f.write_text("x = 1\n")
        assert main(["lint", str(f), "--select", "REP999"]) == 2
        assert "unknown lint rules" in capsys.readouterr().err
