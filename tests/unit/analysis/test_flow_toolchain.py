"""Toolchain around the analyzers: suppressions, baselines, SARIF,
exit codes, and the engine's error discipline."""

import json
import textwrap

import pytest

from repro.analysis import (
    LintInternalError,
    LintViolation,
    apply_baseline,
    collect_suppressions,
    filter_suppressed,
    lint_source,
    load_baseline,
    validate_rule_ids,
    write_baseline,
)
from repro.analysis.flow.engine import (
    FlowRule,
    analyze_graph,
    available_flow_rules,
    flow_rule_ids,
)
from repro.analysis.flow.modgraph import ProjectGraph
from repro.analysis.sarif import format_sarif
from repro.cli import main
from repro.errors import ConfigError


def v(rule="REP101", path="a.py", line=1, message="m"):
    return LintViolation(rule_id=rule, path=path, line=line, col=0, message=message)


class TestSuppressions:
    def test_bare_noqa_suppresses_everything(self):
        sup = collect_suppressions("x = 1  # repro: noqa\n")
        assert not filter_suppressed([v(line=1), v(rule="REP105", line=1)], sup)

    def test_targeted_noqa_suppresses_listed_rule_only(self):
        sup = collect_suppressions("x = 1  # repro: noqa[REP101]\n")
        kept = filter_suppressed([v(line=1), v(rule="REP105", line=1)], sup)
        assert [k.rule_id for k in kept] == ["REP105"]

    def test_multiple_ids(self):
        sup = collect_suppressions("x = 1  # repro: noqa[REP101, REP105]\n")
        assert not filter_suppressed(
            [v(line=1), v(rule="REP105", line=1)], sup
        )

    def test_other_lines_unaffected(self):
        sup = collect_suppressions("x = 1  # repro: noqa\ny = 2\n")
        assert filter_suppressed([v(line=2)], sup)

    def test_lint_source_honours_noqa(self):
        src = "import numpy as np\n\n\ndef f():\n    return np.random.default_rng()  # repro: noqa[REP101]\n"
        assert not lint_source(src, select=["REP101"])

    def test_flow_analysis_honours_noqa(self):
        source = textwrap.dedent(
            """
            import numpy as np

            def make():
                return np.random.default_rng()  # repro: noqa[REP201]
            """
        )
        graph = ProjectGraph.from_sources({"pkg/a.py": source})
        assert not analyze_graph(graph, select=["REP201"])


class TestRuleIdValidation:
    def test_unknown_select_rejected(self):
        with pytest.raises(ConfigError, match="--select"):
            validate_rule_ids(select=["REP999"])

    def test_unknown_ignore_rejected(self):
        with pytest.raises(ConfigError, match="--ignore"):
            validate_rule_ids(ignore=["REP999"])

    def test_flow_ids_are_known(self):
        validate_rule_ids(select=flow_rule_ids())

    def test_rep000_is_known(self):
        validate_rule_ids(select=["REP000"])


class TestFlowRegistry:
    def test_all_five_builtin_rules_registered(self):
        assert flow_rule_ids() == [
            "REP201",
            "REP202",
            "REP203",
            "REP204",
            "REP205",
        ]
        assert all(available_flow_rules().values())

    def test_crashing_rule_becomes_internal_error(self):
        class Broken(FlowRule):
            rule_id = "REP201"  # masquerade; instantiated directly below
            description = "boom"

            def check(self, project):
                raise RuntimeError("kaboom")

        graph = ProjectGraph.from_sources({"pkg/a.py": "x = 1\n"})
        import repro.analysis.flow.engine as engine

        original = engine._FLOW_REGISTRY.copy()
        engine._FLOW_REGISTRY["REP201"] = Broken
        try:
            with pytest.raises(LintInternalError, match="kaboom"):
                analyze_graph(graph, select=["REP201"])
        finally:
            engine._FLOW_REGISTRY.clear()
            engine._FLOW_REGISTRY.update(original)


class TestBaseline:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "baseline.json"
        write_baseline([v(), v(rule="REP105", line=9)], path)
        baseline = load_baseline(path)
        assert sum(baseline.values()) == 2

    def test_apply_subtracts_per_occurrence(self, tmp_path):
        path = tmp_path / "baseline.json"
        write_baseline([v(line=3)], path)
        baseline = load_baseline(path)
        # Same fingerprint at a different line still matches (line-free);
        # a second occurrence beyond the baselined count survives.
        fresh = apply_baseline([v(line=7), v(line=8)], baseline)
        assert len(fresh) == 1

    def test_new_violation_survives(self, tmp_path):
        path = tmp_path / "baseline.json"
        write_baseline([v()], path)
        fresh = apply_baseline([v(rule="REP107")], load_baseline(path))
        assert [f.rule_id for f in fresh] == ["REP107"]

    def test_missing_file_is_config_error(self, tmp_path):
        with pytest.raises(ConfigError, match="cannot read"):
            load_baseline(tmp_path / "nope.json")

    def test_malformed_file_is_config_error(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("[]", encoding="utf-8")
        with pytest.raises(ConfigError, match="violations"):
            load_baseline(path)


class TestSarif:
    def test_minimal_structure(self):
        log = json.loads(format_sarif([v(), v(rule="REP105", line=2)]))
        run = log["runs"][0]
        assert log["version"] == "2.1.0"
        assert [r["id"] for r in run["tool"]["driver"]["rules"]] == [
            "REP101",
            "REP105",
        ]
        result = run["results"][0]
        assert result["ruleId"] == "REP101"
        location = result["locations"][0]["physicalLocation"]
        assert location["artifactLocation"]["uri"] == "a.py"
        assert location["region"]["startLine"] == 1

    def test_empty_log_valid(self):
        log = json.loads(format_sarif([]))
        assert log["runs"][0]["results"] == []


class TestCliExitCodes:
    def _write(self, tmp_path, name, body):
        path = tmp_path / name
        path.write_text(textwrap.dedent(body), encoding="utf-8")
        return path

    def test_clean_run_exits_zero(self, tmp_path, capsys):
        self._write(tmp_path, "ok.py", '"""Doc."""\n\n__all__ = []\n')
        assert main(["lint", "--flow", str(tmp_path)]) == 0
        assert "clean" in capsys.readouterr().out

    def test_violations_exit_one(self, tmp_path, capsys):
        self._write(
            tmp_path,
            "bad.py",
            """
            import numpy as np

            def f():
                return np.random.default_rng()
            """,
        )
        assert main(["lint", str(tmp_path)]) == 1

    def test_parse_failure_reports_rep000_in_json(self, tmp_path, capsys):
        self._write(tmp_path, "broken.py", "def broken(:\n")
        assert main(["lint", "--format", "json", str(tmp_path)]) == 1
        payload = json.loads(capsys.readouterr().out)
        entry = payload["violations"][0]
        assert entry["rule"] == "REP000"
        assert "syntax error" in entry["message"]

    def test_unknown_rule_exits_two(self, tmp_path, capsys):
        self._write(tmp_path, "ok.py", "__all__ = []\n")
        assert main(["lint", "--select", "REP999", str(tmp_path)]) == 2
        assert main(["lint", "--ignore", "REP999", str(tmp_path)]) == 2

    def test_missing_path_exits_two(self, tmp_path):
        assert main(["lint", str(tmp_path / "ghost.py")]) == 2

    def test_undecodable_file_exits_two(self, tmp_path):
        bad = tmp_path / "binary.py"
        bad.write_bytes(b"\xff\xfe\x00garbage")
        assert main(["lint", str(bad)]) == 2

    def test_flow_select_runs_flow_without_flag(self, tmp_path, capsys):
        self._write(
            tmp_path,
            "deep.py",
            """
            import numpy as np

            def make():
                return np.random.default_rng()
            """,
        )
        assert main(["lint", "--select", "REP201", str(tmp_path)]) == 1
        assert "REP201" in capsys.readouterr().out

    def test_sarif_format(self, tmp_path, capsys):
        self._write(tmp_path, "ok.py", '"""Doc."""\n\n__all__ = []\n')
        assert main(["lint", "--format", "sarif", str(tmp_path)]) == 0
        log = json.loads(capsys.readouterr().out)
        assert log["runs"][0]["tool"]["driver"]["name"] == "repro-lint"

    def test_baseline_gates_and_updates(self, tmp_path, capsys):
        self._write(
            tmp_path,
            "bad.py",
            """
            import numpy as np

            def f():
                return np.random.default_rng()
            """,
        )
        baseline = tmp_path / "baseline.json"
        assert (
            main(
                [
                    "lint",
                    "--flow",
                    "--update-baseline",
                    str(baseline),
                    str(tmp_path),
                ]
            )
            == 0
        )
        capsys.readouterr()
        # Same debt, now baselined: gate passes.
        assert (
            main(["lint", "--flow", "--baseline", str(baseline), str(tmp_path)])
            == 0
        )
        # New debt on top: gate fails.
        self._write(
            tmp_path,
            "worse.py",
            """
            import numpy as np

            def g():
                return np.random.default_rng()
            """,
        )
        capsys.readouterr()
        assert (
            main(["lint", "--flow", "--baseline", str(baseline), str(tmp_path)])
            == 1
        )
        out = capsys.readouterr().out
        assert "worse.py" in out and "bad.py" not in out

    def test_missing_baseline_exits_two(self, tmp_path):
        self._write(tmp_path, "ok.py", "__all__ = []\n")
        assert (
            main(
                [
                    "lint",
                    "--baseline",
                    str(tmp_path / "ghost.json"),
                    str(tmp_path),
                ]
            )
            == 2
        )
