"""Per-rule lint tests: each rule gets minimal good and bad fixtures."""

import textwrap
from pathlib import Path

from repro.analysis import lint_source


def hits(source, rule_id, path="mod.py"):
    violations = lint_source(textwrap.dedent(source), path, select=[rule_id])
    return [v for v in violations if v.rule_id == rule_id]


class TestUnseededRng:
    RULE = "REP101"

    def test_stdlib_random_call_flagged(self):
        src = """
        import random

        def shuffle(xs):
            random.shuffle(xs)
        """
        assert hits(src, self.RULE)

    def test_from_random_import_flagged(self):
        src = """
        from random import shuffle

        def mix(xs):
            shuffle(xs)
        """
        assert hits(src, self.RULE)

    def test_np_random_module_call_flagged(self):
        src = """
        import numpy as np

        def draw():
            return np.random.rand(3)
        """
        found = hits(src, self.RULE)
        assert found and "np.random.rand" in found[0].message

    def test_unseeded_default_rng_flagged(self):
        src = """
        import numpy as np

        def gen():
            return np.random.default_rng()
        """
        assert hits(src, self.RULE)

    def test_seeded_default_rng_allowed(self):
        src = """
        import numpy as np

        def gen(seed):
            return np.random.default_rng(seed)
        """
        assert not hits(src, self.RULE)

    def test_seeded_stdlib_random_instance_allowed(self):
        src = """
        import random

        def gen(seed):
            return random.Random(seed)
        """
        assert not hits(src, self.RULE)

    def test_generator_method_calls_allowed(self):
        src = """
        def draw(rng):
            return rng.integers(0, 10)
        """
        assert not hits(src, self.RULE)

    def test_rng_module_is_exempt(self):
        src = """
        import numpy as np

        def fresh():
            return np.random.default_rng()
        """
        assert not hits(src, self.RULE, path="utils/rng.py")


class TestFloatTimeEquality:
    RULE = "REP102"

    def test_makespan_vs_float_literal_flagged(self):
        src = """
        def check(schedule):
            return schedule.makespan == 12.0
        """
        assert hits(src, self.RULE)

    def test_wall_time_equality_flagged(self):
        src = """
        def same(a, b):
            return a.wall_time == b.wall_time
        """
        assert hits(src, self.RULE)

    def test_elapsed_not_equal_flagged(self):
        src = """
        def moved(elapsed):
            return elapsed != 0.5
        """
        assert hits(src, self.RULE)

    def test_integer_makespan_comparison_allowed(self):
        src = """
        def check(schedule, expected):
            return schedule.makespan == expected
        """
        assert not hits(src, self.RULE)

    def test_isclose_allowed(self):
        src = """
        import math

        def same(a, b):
            return math.isclose(a.wall_time, b.wall_time)
        """
        assert not hits(src, self.RULE)

    def test_unrelated_float_equality_allowed(self):
        src = """
        def check(threshold):
            return threshold == 0.5
        """
        assert not hits(src, self.RULE)

    def test_ordering_comparisons_allowed(self):
        src = """
        def late(schedule):
            return schedule.wall_time > 1.5
        """
        assert not hits(src, self.RULE)


class TestMutableDefaults:
    RULE = "REP103"

    def test_list_default_flagged(self):
        src = """
        def collect(xs=[]):
            return xs
        """
        found = hits(src, self.RULE)
        assert found and "collect" in found[0].message

    def test_dict_set_and_call_defaults_flagged(self):
        src = """
        def a(x={}):
            return x

        def b(y=set()):
            return y

        def c(*, z=list()):
            return z
        """
        assert len(hits(src, self.RULE)) == 3

    def test_lambda_default_flagged(self):
        src = "f = lambda xs=[]: xs"
        assert hits(src, self.RULE)

    def test_none_and_tuple_defaults_allowed(self):
        src = """
        def collect(xs=None, shape=(2, 2), n=0):
            return xs or list(shape) * n
        """
        assert not hits(src, self.RULE)


class TestBareExcept:
    RULE = "REP104"

    def test_bare_except_flagged(self):
        src = """
        def risky():
            try:
                return 1
            except:
                return 0
        """
        assert hits(src, self.RULE)

    def test_typed_except_allowed(self):
        src = """
        def risky():
            try:
                return 1
            except ValueError:
                return 0
        """
        assert not hits(src, self.RULE)


class TestMissingAll:
    RULE = "REP105"

    def test_public_module_without_all_flagged(self):
        src = """
        def api():
            return 1
        """
        found = hits(src, self.RULE)
        assert found and found[0].line == 1

    def test_module_with_all_allowed(self):
        src = """
        __all__ = ["api"]

        def api():
            return 1
        """
        assert not hits(src, self.RULE)

    def test_private_only_module_allowed(self):
        src = """
        _internal = 1

        def _helper():
            return _internal
        """
        assert not hits(src, self.RULE)

    def test_main_and_test_modules_exempt(self):
        src = """
        def api():
            return 1
        """
        assert not hits(src, self.RULE, path="pkg/__main__.py")
        assert not hits(src, self.RULE, path="tests/test_api.py")
        assert not hits(src, self.RULE, path="conftest.py")


class TestNoPrint:
    RULE = "REP106"

    def test_print_call_flagged(self):
        src = """
        def report(x):
            print(x)
        """
        found = hits(src, self.RULE)
        assert found and found[0].line == 3

    def test_print_to_stderr_still_flagged(self):
        src = """
        import sys

        def report(x):
            print(x, file=sys.stderr)
        """
        assert hits(src, self.RULE)

    def test_cli_and_main_exempt(self):
        src = """
        def render(x):
            print(x)
        """
        assert not hits(src, self.RULE, path="pkg/cli.py")
        assert not hits(src, self.RULE, path="pkg/__main__.py")

    def test_print_reference_allowed(self):
        src = """
        def run(progress=print):
            progress("step")
        """
        assert not hits(src, self.RULE)

    def test_method_named_print_allowed(self):
        src = """
        def run(report):
            report.print("done")
        """
        assert not hits(src, self.RULE)


class TestAdHocEventLoop:
    RULE = "REP107"

    def test_heapq_import_flagged(self):
        src = """
        import heapq

        def loop(events):
            heapq.heapify(events)
        """
        found = hits(src, self.RULE)
        assert found and "repro.sim.EventQueue" in found[0].message

    def test_from_heapq_import_flagged(self):
        src = """
        from heapq import heappush, heappop

        def loop(events, e):
            heappush(events, e)
        """
        assert hits(src, self.RULE)

    def test_kernel_queue_not_path_exempt(self):
        # The old path allowlist is gone: the kernel's own file is only
        # quiet because its import line carries an inline noqa.
        src = """
        import heapq
        """
        assert hits(src, self.RULE, path="src/repro/sim/queue.py")

    def test_noqa_silences_audited_site(self):
        src = """
        import heapq  # repro: noqa[REP107] -- audited hot path
        """
        assert not hits(src, self.RULE, path="src/repro/cluster/state.py")

    def test_noqa_for_other_rule_does_not_silence(self):
        src = """
        import heapq  # repro: noqa[REP101]
        """
        assert hits(src, self.RULE)

    def test_online_executor_not_exempt(self):
        src = """
        import heapq
        """
        assert hits(src, self.RULE, path="src/repro/online/simulator.py")

    def test_audited_sites_carry_inline_noqa(self):
        # The four audited raw-heap files must keep their justification
        # at the import site now that the allowlist is gone.
        root = Path(__file__).resolve().parents[3] / "src" / "repro"
        for rel in (
            "sim/queue.py",
            "cluster/state.py",
            "env/scheduling_env.py",
            "dag/graph.py",
        ):
            source = (root / rel).read_text(encoding="utf-8")
            assert "repro: noqa[REP107]" in source, rel

    def test_heapq_free_module_allowed(self):
        src = """
        def loop(events):
            return sorted(events)
        """
        assert not hits(src, self.RULE)
