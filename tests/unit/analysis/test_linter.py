"""Engine-level tests for the lint registry, file walking and output."""

import json

import pytest

from repro.analysis import (
    LintRule,
    available_rules,
    format_json,
    format_text,
    lint_paths,
    lint_source,
    register_rule,
)
from repro.analysis.linter import PARSE_ERROR_RULE, iter_python_files
from repro.errors import ConfigError

BAD_MODULE = """\
import random

def pick(xs=[]):
    try:
        return random.choice(xs)
    except:
        return None
"""


class TestRegistry:
    def test_builtin_rules_registered(self):
        rules = available_rules()
        assert {"REP101", "REP102", "REP103", "REP104", "REP105"} <= set(rules)
        assert all(desc for desc in rules.values())

    def test_duplicate_rule_id_rejected(self):
        with pytest.raises(ConfigError, match="already registered"):

            @register_rule
            class Clashing(LintRule):  # pragma: no cover - registration fails
                rule_id = "REP101"
                description = "duplicate"

                def check(self, tree, source, path):
                    return []

    def test_unknown_select_rejected(self):
        with pytest.raises(ConfigError, match="unknown lint rules"):
            lint_source("x = 1", select=["REP999"])


class TestLintSource:
    def test_bad_module_trips_multiple_rules(self):
        violations = lint_source(BAD_MODULE, "bad.py")
        rules = {v.rule_id for v in violations}
        assert {"REP101", "REP103", "REP104", "REP105"} <= rules

    def test_violations_sorted_by_location(self):
        violations = lint_source(BAD_MODULE, "bad.py")
        locations = [(v.line, v.col) for v in violations]
        assert locations == sorted(locations)

    def test_ignore_filters_rules(self):
        violations = lint_source(
            BAD_MODULE, "bad.py", ignore=["REP101", "REP103", "REP104", "REP105"]
        )
        assert violations == []

    def test_syntax_error_becomes_violation(self):
        violations = lint_source("def broken(:\n", "oops.py")
        assert len(violations) == 1
        assert violations[0].rule_id == PARSE_ERROR_RULE
        assert "syntax error" in violations[0].message


class TestLintPaths:
    def test_directory_walk(self, tmp_path):
        (tmp_path / "good.py").write_text("__all__ = []\n")
        sub = tmp_path / "pkg"
        sub.mkdir()
        (sub / "bad.py").write_text(BAD_MODULE)
        violations = lint_paths([tmp_path])
        assert violations
        assert all(str(sub / "bad.py") == v.path for v in violations)

    def test_missing_path_rejected(self, tmp_path):
        with pytest.raises(ConfigError, match="does not exist"):
            lint_paths([tmp_path / "nope"])

    def test_duplicate_inputs_deduplicated(self, tmp_path):
        f = tmp_path / "bad.py"
        f.write_text(BAD_MODULE)
        assert len(lint_paths([f, f, tmp_path])) == len(lint_paths([f]))

    def test_iter_python_files_sorted(self, tmp_path):
        for name in ("b.py", "a.py", "c.txt"):
            (tmp_path / name).write_text("")
        files = iter_python_files([tmp_path])
        assert [f.name for f in files] == ["a.py", "b.py"]


class TestFormatting:
    def test_text_clean(self):
        assert "clean" in format_text([])

    def test_text_lists_and_counts(self):
        violations = lint_source(BAD_MODULE, "bad.py")
        text = format_text(violations)
        assert "bad.py:" in text
        assert f"{len(violations)} violation(s)" in text

    def test_json_round_trips(self):
        violations = lint_source(BAD_MODULE, "bad.py")
        payload = json.loads(format_json(violations))
        assert payload["count"] == len(violations)
        assert payload["violations"][0]["path"] == "bad.py"
        assert {"rule", "line", "col", "message", "severity"} <= set(
            payload["violations"][0]
        )
