"""Unit tests for the semantic schedule verifier: one good and at least
one bad fixture per invariant."""

import pytest

from repro.analysis import (
    SCHEDULE_INVARIANTS,
    Severity,
    verify_payload,
    verify_placements,
    verify_schedule,
)
from repro.dag.graph import TaskGraph
from repro.dag.task import Task
from repro.errors import ScheduleError
from repro.metrics.schedule import Schedule, ScheduledTask

CAPACITIES = (3, 3)


@pytest.fixture
def graph():
    # 0 -> 1, with 2 independent.  Demands sized so 0+2 fit together but
    # 0+1 overflow resource 0 on capacities (3, 3).
    return TaskGraph(
        [
            Task(0, runtime=2, demands=(2, 1)),
            Task(1, runtime=3, demands=(2, 2)),
            Task(2, runtime=1, demands=(1, 1)),
        ],
        edges=[(0, 1)],
    )


def good_schedule():
    return Schedule(
        (
            ScheduledTask(0, 0, 2),
            ScheduledTask(1, 2, 5),
            ScheduledTask(2, 0, 1),
        )
    )


class TestCleanSchedule:
    def test_reports_ok_with_no_violations(self, graph):
        report = verify_schedule(good_schedule(), graph, CAPACITIES)
        assert report.ok
        assert report.violations == ()
        assert report.num_tasks == 3
        assert report.rules_checked == tuple(SCHEDULE_INVARIANTS)
        assert "ok" in report.summary()
        report.raise_if_violations()  # no-op on a clean report

    def test_back_to_back_dependency_is_legal(self, graph):
        # Child starting exactly at the parent's finish is allowed.
        report = verify_schedule(good_schedule(), graph, CAPACITIES)
        assert not report.by_rule("dependency")


class TestPrecedence:
    def test_child_starting_early_is_flagged(self, graph):
        schedule = Schedule(
            (
                ScheduledTask(0, 0, 2),
                ScheduledTask(1, 1, 4),  # parent 0 finishes at 2
                ScheduledTask(2, 4, 5),
            )
        )
        report = verify_schedule(schedule, graph, CAPACITIES)
        assert not report.ok
        hits = report.by_rule("dependency")
        assert len(hits) == 1
        assert hits[0].task_ids == (0, 1)
        assert hits[0].time == 1
        assert "dependency" in hits[0].message

    def test_raise_if_violations_names_the_invariant(self, graph):
        schedule = Schedule(
            (
                ScheduledTask(0, 0, 2),
                ScheduledTask(1, 0, 3),
                ScheduledTask(2, 5, 6),
            )
        )
        report = verify_schedule(schedule, graph, CAPACITIES)
        with pytest.raises(ScheduleError, match="dependency"):
            report.raise_if_violations()


class TestCapacity:
    def test_overflow_is_flagged_with_time_and_resource(self, graph):
        # Task 1 overlaps task 0: usage (4, 3) > (3, 3) on resource 0.
        bad = [(0, 0, 2), (1, 0, 3), (2, 5, 6)]
        report = verify_placements(bad, graph, CAPACITIES)
        caps = report.by_rule("capacity")
        assert caps, report.summary()
        assert caps[0].resource == 0
        assert caps[0].time == 0
        assert "capacity violated" in caps[0].message

    def test_at_capacity_is_legal(self, graph):
        # Tasks 0 and 2 together use exactly (3, 2) <= (3, 3).
        report = verify_placements(
            [(0, 0, 2), (1, 2, 5), (2, 0, 1)], graph, CAPACITIES
        )
        assert report.ok

    def test_dimension_mismatch(self, graph):
        report = verify_placements(
            [(0, 0, 2), (1, 2, 5), (2, 0, 1)], graph, (3,)
        )
        assert report.by_rule("dimension")
        assert not report.by_rule("capacity")  # sweep skipped, not crashed


class TestCompleteness:
    def test_missing_task(self, graph):
        report = verify_placements([(0, 0, 2), (1, 2, 5)], graph, CAPACITIES)
        hits = report.by_rule("completeness")
        assert hits and 2 in hits[0].task_ids
        assert "missing" in hits[0].message

    def test_unknown_extra_task(self, graph):
        report = verify_placements(
            [(0, 0, 2), (1, 2, 5), (2, 0, 1), (9, 0, 1)], graph, CAPACITIES
        )
        hits = report.by_rule("completeness")
        assert hits and 9 in hits[0].task_ids

    def test_duplicate_placement(self, graph):
        report = verify_placements(
            [(0, 0, 2), (0, 4, 6), (1, 2, 5), (2, 0, 1)], graph, CAPACITIES
        )
        dups = report.by_rule("duplicate")
        assert len(dups) == 1
        assert dups[0].task_ids == (0,)


class TestTimeDomain:
    def test_negative_start(self, graph):
        report = verify_placements(
            [(0, -1, 1), (1, 2, 5), (2, 0, 1)], graph, CAPACITIES
        )
        hits = report.by_rule("time-domain")
        assert hits and "negative" in hits[0].message

    def test_non_integral_times(self, graph):
        report = verify_placements(
            [(0, 0.5, 2.5), (1, 3, 6), (2, 0, 1)], graph, CAPACITIES
        )
        hits = report.by_rule("time-domain")
        assert hits and "non-integral" in hits[0].message

    def test_integral_floats_are_accepted(self, graph):
        report = verify_placements(
            [(0, 0.0, 2.0), (1, 2.0, 5.0), (2, 0, 1)], graph, CAPACITIES
        )
        assert report.ok

    def test_finish_before_start(self, graph):
        report = verify_placements(
            [(0, 2, 2), (1, 2, 5), (2, 0, 1)], graph, CAPACITIES
        )
        hits = report.by_rule("time-domain")
        assert hits and "finish" in hits[0].message


class TestDuration:
    def test_wrong_duration_flagged(self, graph):
        report = verify_placements(
            [(0, 0, 3), (1, 3, 6), (2, 0, 1)], graph, CAPACITIES
        )
        hits = report.by_rule("duration")
        assert hits and hits[0].task_ids == (0,)
        assert "duration" in hits[0].message


class TestReportShape:
    def test_all_violations_collected_not_just_first(self, graph):
        # Missing task 2, duplicate 0, precedence break on 1 -> >= 3 records.
        report = verify_placements(
            [(0, 0, 2), (0, 0, 2), (1, 0, 3)], graph, CAPACITIES
        )
        rules = {v.rule_id for v in report.violations}
        assert {"completeness", "duplicate", "dependency"} <= rules

    def test_as_dict_is_json_shaped(self, graph):
        import json

        report = verify_placements([(0, 0, 2), (1, 0, 3)], graph, CAPACITIES)
        payload = json.loads(json.dumps(report.as_dict()))
        assert payload["ok"] is False
        assert payload["violations"]
        assert all(v["severity"] == Severity.ERROR.value for v in payload["violations"])


class TestPayloadVerification:
    def test_lenient_payload_reports_bad_times(self, graph):
        payload = {
            "placements": [
                {"task_id": 0, "start": -3, "finish": -1},
                {"task_id": 1, "start": 2, "finish": 5},
                {"task_id": 2, "start": 0.25, "finish": 1.25},
            ]
        }
        report = verify_payload(payload, graph, CAPACITIES)
        assert len(report.by_rule("time-domain")) >= 2

    def test_malformed_payload_raises(self, graph):
        with pytest.raises(ScheduleError, match="placements"):
            verify_payload({"nope": []}, graph, CAPACITIES)
        with pytest.raises(ScheduleError, match="malformed"):
            verify_payload(
                {"placements": [{"task_id": 0}]}, graph, CAPACITIES
            )
        with pytest.raises(ScheduleError, match="dict"):
            verify_payload([1, 2], graph, CAPACITIES)
