"""CFG construction and the forward-dataflow/taint framework."""

import ast
import textwrap

from repro.analysis.flow.cfg import build_cfg
from repro.analysis.flow.taint import EMPTY, TaintAnalysis, expr_labels
from repro.analysis.flow.dataflow import run_forward


def fn_cfg(source):
    tree = ast.parse(textwrap.dedent(source))
    fn = next(
        n for n in ast.walk(tree) if isinstance(n, ast.FunctionDef)
    )
    return build_cfg(fn)


class TestCfg:
    def test_straight_line_single_block(self):
        cfg = fn_cfg("def f():\n    a = 1\n    b = 2\n    return b\n")
        stmts = [s for b in cfg.blocks for s in b.statements]
        assert len(stmts) == 3

    def test_if_branches_rejoin(self):
        cfg = fn_cfg(
            """
            def f(c):
                if c:
                    x = 1
                else:
                    x = 2
                return x
            """
        )
        # Entry block's If header must have two successors.
        header = next(
            b
            for b in cfg.blocks
            if b.statements and isinstance(b.statements[-1], ast.If)
        )
        assert len(set(header.successors)) == 2

    def test_while_has_back_edge_and_exit_edge(self):
        cfg = fn_cfg(
            """
            def f(n):
                while n:
                    n -= 1
                return n
            """
        )
        header = next(
            b
            for b in cfg.blocks
            if b.statements and isinstance(b.statements[-1], ast.While)
        )
        assert len(set(header.successors)) == 2

    def test_return_edges_to_exit(self):
        cfg = fn_cfg("def f():\n    return 1\n    x = 2\n")
        first = next(b for b in cfg.blocks if b.statements)
        assert cfg.exit in first.successors

    def test_module_body_accepted(self):
        tree = ast.parse("x = 1\ny = x\n")
        cfg = build_cfg(tree.body)
        stmts = [s for b in cfg.blocks for s in b.statements]
        assert len(stmts) == 2


def states_after(source, **analysis_kwargs):
    """Taint state at function exit (join over all paths reaching it)."""
    tree = ast.parse(textwrap.dedent(source))
    fn = next(n for n in ast.walk(tree) if isinstance(n, ast.FunctionDef))
    cfg = build_cfg(fn)
    analysis = TaintAnalysis(**analysis_kwargs)
    state_in, _ = run_forward(cfg, analysis)
    return state_in[cfg.exit]


def tainted_calls(name):
    def call_labels(call, args, state):
        if isinstance(call.func, ast.Name) and call.func.id == name:
            return frozenset({"T"})
        return EMPTY

    return call_labels


class TestTaint:
    def test_assignment_propagates(self):
        state = states_after(
            "def f():\n    a = source()\n    b = a\n",
            call_labels=tainted_calls("source"),
        )
        assert state["b"] == frozenset({"T"})

    def test_attribute_and_subscript_carry_base_labels(self):
        state = states_after(
            "def f():\n    a = source()\n    b = a.attr\n    c = a[0]\n",
            call_labels=tainted_calls("source"),
        )
        assert state["b"] == frozenset({"T"})
        assert state["c"] == frozenset({"T"})

    def test_unknown_call_launders(self):
        state = states_after(
            "def f():\n    a = source()\n    b = copy(a)\n",
            call_labels=tainted_calls("source"),
        )
        assert "b" not in state

    def test_join_unions_branches(self):
        state = states_after(
            """
            def f(c):
                if c:
                    x = source()
                else:
                    x = 1
                y = x
            """,
            call_labels=tainted_calls("source"),
        )
        assert state["y"] == frozenset({"T"})

    def test_rebinding_clears(self):
        state = states_after(
            "def f():\n    a = source()\n    a = 1\n",
            call_labels=tainted_calls("source"),
        )
        assert "a" not in state

    def test_param_labels_seed_state(self):
        state = states_after(
            "def f(req):\n    alias = req\n",
            param_labels={"req": frozenset({"P"})},
        )
        assert state["alias"] == frozenset({"P"})

    def test_loop_reaches_fixed_point(self):
        state = states_after(
            """
            def f(n):
                acc = 0
                while n:
                    acc = acc + source()
                    n -= 1
            """,
            call_labels=tainted_calls("source"),
        )
        assert state["acc"] == frozenset({"T"})

    def test_expr_labels_tuple_union(self):
        state = {"a": frozenset({"T"})}
        expr = ast.parse("(a, 1)", mode="eval").body
        assert expr_labels(expr, state) == frozenset({"T"})


class TestRunForward:
    def test_unreachable_blocks_still_visited(self):
        cfg = fn_cfg("def f():\n    return 1\n    x = 2\n")

        class Count(TaintAnalysis):
            visits = 0

            def transfer(self, state, stmt):
                Count.visits += 1
                return super().transfer(state, stmt)

        run_forward(cfg, Count())
        assert Count.visits >= 2
