"""REP202 — frozen-snapshot mutation, direct and through helpers."""


RULE = "REP202"


class TestDirectMutation:
    def test_item_write_on_request_field(self, flow_hits):
        found = flow_hits(
            {
                "pkg/sched.py": """
                def plan(request):
                    request.frozen[3] = (0, 5)
                """
            },
            RULE,
        )
        assert found and "parameter 'request'" in found[0].message

    def test_aliased_mutation_flagged(self, flow_hits):
        found = flow_hits(
            {
                "pkg/sched.py": """
                def plan(request):
                    placements = request.frozen
                    placements[3] = (0, 5)
                """
            },
            RULE,
        )
        assert found

    def test_mutator_method_flagged(self, flow_hits):
        found = flow_hits(
            {
                "pkg/sched.py": """
                def plan(snapshot):
                    snapshot.available.clear()
                """
            },
            RULE,
        )
        assert found and "parameter 'snapshot'" in found[0].message

    def test_annotated_frozen_dataclass_param(self, flow_hits):
        found = flow_hits(
            {
                "pkg/types.py": """
                from dataclasses import dataclass

                @dataclass(frozen=True)
                class PlanState:
                    items: dict
                """,
                "pkg/sched.py": """
                from .types import PlanState

                def plan(state: PlanState):
                    state.items["x"] = 1
                """,
            },
            RULE,
        )
        assert found and "annotated PlanState" in found[0].message

    def test_copy_first_is_clean(self, flow_hits):
        assert not flow_hits(
            {
                "pkg/sched.py": """
                def plan(request):
                    placements = dict(request.frozen)
                    placements[3] = (0, 5)
                    return placements
                """
            },
            RULE,
        )

    def test_fresh_comprehension_container_is_clean(self, flow_hits):
        # A set built *from* frozen data is a new object; popping it is
        # not a mutation of the snapshot.
        assert not flow_hits(
            {
                "pkg/sched.py": """
                def plan(request):
                    dims = {t.weight for t in request.tasks}
                    return dims.pop()
                """
            },
            RULE,
        )

    def test_unmarked_param_is_clean(self, flow_hits):
        assert not flow_hits(
            {
                "pkg/sched.py": """
                def accumulate(bucket):
                    bucket["x"] = 1
                """
            },
            RULE,
        )


class TestThroughHelpers:
    def test_mutation_one_call_deep(self, flow_hits):
        # The seeded regression from the issue: the snapshot is passed to
        # a helper that mutates its own parameter.
        found = flow_hits(
            {
                "pkg/helper.py": """
                def poke(data):
                    data["x"] = 1
                """,
                "pkg/sched.py": """
                from .helper import poke

                def plan(request):
                    poke(request.frozen)
                """,
            },
            RULE,
        )
        assert any(v.path == "pkg/sched.py" for v in found)

    def test_mutation_two_calls_deep(self, flow_hits):
        found = flow_hits(
            {
                "pkg/inner.py": """
                def scribble(data):
                    data["x"] = 1
                """,
                "pkg/outer.py": """
                from .inner import scribble

                def relay(data):
                    scribble(data)
                """,
                "pkg/sched.py": """
                from .outer import relay

                def plan(request):
                    relay(request.frozen)
                """,
            },
            RULE,
        )
        assert any(v.path == "pkg/sched.py" for v in found)

    def test_keyword_argument_forwarding(self, flow_hits):
        found = flow_hits(
            {
                "pkg/helper.py": """
                def poke(data):
                    data["x"] = 1
                """,
                "pkg/sched.py": """
                from .helper import poke

                def plan(request):
                    poke(data=request.frozen)
                """,
            },
            RULE,
        )
        assert any(v.path == "pkg/sched.py" for v in found)

    def test_readonly_helper_is_clean(self, flow_hits):
        assert not flow_hits(
            {
                "pkg/helper.py": """
                def total(data):
                    return sum(data.values())
                """,
                "pkg/sched.py": """
                from .helper import total

                def plan(request):
                    return total(request.frozen)
                """,
            },
            RULE,
        )
