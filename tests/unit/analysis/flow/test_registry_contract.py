"""REP204 — registry schema vs factory signature vs spec literals."""


RULE = "REP204"

REGISTRY = """
def register(name, factory, options=None):
    pass
"""


class TestSchemaVsFactory:
    def test_schema_key_without_factory_param(self, flow_hits):
        # The seeded regression from the issue: schema declares a key the
        # factory cannot accept.
        found = flow_hits(
            {
                "pkg/registry.py": REGISTRY,
                "pkg/plugins.py": """
                from .registry import register

                def make(cfg, budget=10):
                    return budget

                register("mcts", make, options={"budget": int, "depth": int})
                """,
            },
            RULE,
        )
        assert found and "'depth'" in found[0].message

    def test_kwargs_factory_accepts_anything(self, flow_hits):
        assert not flow_hits(
            {
                "pkg/registry.py": REGISTRY,
                "pkg/plugins.py": """
                from .registry import register

                def make(cfg, **opts):
                    return opts

                register("optimal", make, options={"max_nodes": int})
                """,
            },
            RULE,
        )

    def test_lambda_factory_checked(self, flow_hits):
        found = flow_hits(
            {
                "pkg/registry.py": REGISTRY,
                "pkg/plugins.py": """
                from .registry import register

                register("sjf", lambda cfg: cfg, options={"budget": int})
                """,
            },
            RULE,
        )
        assert found and "'budget'" in found[0].message

    def test_required_factory_param_without_option(self, flow_hits):
        found = flow_hits(
            {
                "pkg/registry.py": REGISTRY,
                "pkg/plugins.py": """
                from .registry import register

                def make(cfg, budget):
                    return budget

                register("mcts", make, options={})
                """,
            },
            RULE,
        )
        assert found and "no default" in found[0].message

    def test_reserved_wrapper_key_flagged(self, flow_hits):
        found = flow_hits(
            {
                "pkg/registry.py": REGISTRY,
                "pkg/plugins.py": """
                from .registry import register

                def make(cfg, verify=False):
                    return verify

                register("x", make, options={"verify": bool})
                """,
            },
            RULE,
        )
        assert found and "reserved wrapper key" in found[0].message

    def test_duplicate_registration_flagged(self, flow_hits):
        found = flow_hits(
            {
                "pkg/registry.py": REGISTRY,
                "pkg/plugins.py": """
                from .registry import register

                register("heft", lambda cfg: cfg)
                register("heft", lambda cfg: cfg)
                """,
            },
            RULE,
        )
        assert found and "registered twice" in found[0].message

    def test_matching_contract_is_clean(self, flow_hits):
        assert not flow_hits(
            {
                "pkg/registry.py": REGISTRY,
                "pkg/plugins.py": """
                from .registry import register

                def make(cfg, budget=100, seed=0):
                    return budget

                register("mcts", make, options={"budget": int, "seed": int})
                """,
            },
            RULE,
        )


class TestSpecLiterals:
    SOURCES = {
        "pkg/registry.py": REGISTRY,
        "pkg/plugins.py": """
        from .registry import register

        def make(cfg, budget=100, seed=0):
            return budget

        register("mcts", make, options={"budget": int, "seed": int})
        """,
    }

    def test_unknown_spec_key_flagged(self, flow_hits):
        sources = dict(self.SOURCES)
        sources["pkg/cli.py"] = 'DEFAULT = "mcts:budget=200,oops=1"\n'
        found = flow_hits(sources, RULE)
        assert found and "'oops'" in found[0].message

    def test_valid_spec_with_wrapper_key_clean(self, flow_hits):
        sources = dict(self.SOURCES)
        sources["pkg/cli.py"] = 'DEFAULT = "mcts:budget=200,verify=true"\n'
        assert not flow_hits(sources, RULE)

    def test_fstring_hole_in_value_is_ok(self, flow_hits):
        sources = dict(self.SOURCES)
        sources["pkg/cli.py"] = (
            "def spec(b):\n"
            "    return f\"mcts:budget={b},seed=3\"\n"
        )
        assert not flow_hits(sources, RULE)

    def test_fstring_literal_key_still_checked(self, flow_hits):
        sources = dict(self.SOURCES)
        sources["pkg/cli.py"] = (
            "def spec(b):\n"
            "    return f\"mcts:bugdet={b}\"\n"
        )
        found = flow_hits(sources, RULE)
        assert found and "'bugdet'" in found[0].message

    def test_unregistered_name_ignored(self, flow_hits):
        sources = dict(self.SOURCES)
        sources["pkg/cli.py"] = 'URL = "scheme:host=example,port=80"\n'
        assert not flow_hits(sources, RULE)

    def test_non_spec_strings_ignored(self, flow_hits):
        sources = dict(self.SOURCES)
        sources["pkg/cli.py"] = 'TEXT = "note: this has = signs, and spaces"\n'
        assert not flow_hits(sources, RULE)
