"""REP201 — determinism taint across modules."""


RULE = "REP201"


class TestUnseededConstruction:
    def test_direct_seedless_default_rng(self, flow_hits):
        found = flow_hits(
            {
                "pkg/a.py": """
                import numpy as np

                def make():
                    return np.random.default_rng()
                """
            },
            RULE,
        )
        assert any("unseeded RNG constructed" in v.message for v in found)

    def test_explicit_none_seed_flagged(self, flow_hits):
        found = flow_hits(
            {
                "pkg/a.py": """
                from numpy.random import default_rng

                def make():
                    return default_rng(None)
                """
            },
            RULE,
        )
        assert any("unseeded RNG constructed" in v.message for v in found)

    def test_seeded_construction_clean(self, flow_hits):
        assert not flow_hits(
            {
                "pkg/a.py": """
                import numpy as np

                def make(seed):
                    return np.random.default_rng(seed)
                """
            },
            RULE,
        )

    def test_seedless_as_generator_flagged(self, flow_hits):
        found = flow_hits(
            {
                "pkg/utils/rng.py": """
                def as_generator(seed=None):
                    return seed
                """,
                "pkg/a.py": """
                from .utils.rng import as_generator

                def make():
                    return as_generator()
                """,
            },
            RULE,
        )
        assert any(v.path == "pkg/a.py" for v in found)

    def test_seeded_as_generator_clean(self, flow_hits):
        assert not flow_hits(
            {
                "pkg/utils/rng.py": """
                def as_generator(seed=None):
                    return seed
                """,
                "pkg/a.py": """
                from .utils.rng import as_generator

                def make(seed):
                    return as_generator(seed)
                """,
            },
            RULE,
        )


class TestInterprocedural:
    def test_unseeded_two_calls_deep(self, flow_hits):
        # The seeded regression from the issue: an unseeded default_rng()
        # returned through two layers of helpers is flagged at every layer
        # it enters through.
        found = flow_hits(
            {
                "pkg/deep.py": """
                import numpy as np

                def make_rng():
                    return np.random.default_rng()

                def indirect():
                    return make_rng()
                """,
                "pkg/user.py": """
                from .deep import indirect

                def use():
                    rng = indirect()
                    return rng
                """,
            },
            RULE,
        )
        assert any(
            v.path == "pkg/user.py" and "returns an unseeded RNG" in v.message
            for v in found
        )

    def test_seeded_helper_chain_clean(self, flow_hits):
        assert not flow_hits(
            {
                "pkg/deep.py": """
                import numpy as np

                def make_rng(seed):
                    return np.random.default_rng(seed)

                def indirect(seed):
                    return make_rng(seed)
                """,
                "pkg/user.py": """
                from .deep import indirect

                def use():
                    return indirect(7)
                """,
            },
            RULE,
        )


class TestEscapes:
    def test_module_level_rng_flagged(self, flow_hits):
        found = flow_hits(
            {
                "pkg/a.py": """
                import numpy as np

                RNG = np.random.default_rng(42)
                """
            },
            RULE,
        )
        assert any("module-level state" in v.message for v in found)

    def test_unseeded_rng_into_instance_state_flagged(self, flow_hits):
        found = flow_hits(
            {
                "pkg/a.py": """
                import numpy as np

                class Sched:
                    def __init__(self):
                        self._rng = np.random.default_rng()
                """
            },
            RULE,
        )
        assert any("self._rng" in v.message for v in found)

    def test_seeded_rng_on_self_clean(self, flow_hits):
        # Storing a *seeded* generator on self is the repo's idiom.
        found = flow_hits(
            {
                "pkg/a.py": """
                import numpy as np

                class Sched:
                    def __init__(self, seed):
                        self._rng = np.random.default_rng(seed)
                """
            },
            RULE,
        )
        assert not [v for v in found if "self._rng" in v.message]

    def test_rng_plumbing_module_exempt(self, flow_hits):
        assert not flow_hits(
            {
                "pkg/utils/rng.py": """
                import numpy as np

                def as_generator(seed=None):
                    return np.random.default_rng(seed)
                """
            },
            RULE,
        )
