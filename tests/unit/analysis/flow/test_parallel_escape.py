"""REP205 — module-state writes reachable from process-pool workers."""


RULE = "REP205"


class TestEntryPoints:
    def test_worker_writing_module_cache_flagged(self, flow_hits):
        found = flow_hits(
            {
                "pkg/par.py": """
                import multiprocessing

                _CACHE = {}

                def _worker(x):
                    _CACHE[x] = x * 2
                    return x

                def run(items):
                    with multiprocessing.Pool(4) as pool:
                        return pool.map(_worker, items)
                """
            },
            RULE,
        )
        assert found and "_CACHE" in found[0].message

    def test_assigned_pool_variable(self, flow_hits):
        found = flow_hits(
            {
                "pkg/par.py": """
                import multiprocessing

                _HITS = []

                def _worker(x):
                    _HITS.append(x)
                    return x

                def run(items):
                    pool = multiprocessing.Pool(2)
                    return pool.map(_worker, items)
                """
            },
            RULE,
        )
        assert found and "append" in found[0].message

    def test_process_pool_executor_submit(self, flow_hits):
        found = flow_hits(
            {
                "pkg/par.py": """
                from concurrent.futures import ProcessPoolExecutor

                _STATE = {}

                def _worker(x):
                    _STATE["last"] = x
                    return x

                def run(item):
                    with ProcessPoolExecutor() as pool:
                        return pool.submit(_worker, item)
                """
            },
            RULE,
        )
        assert found

    def test_escape_through_helper_flagged(self, flow_hits):
        # The write is one call below the worker entry point; the message
        # still names the entry point.
        found = flow_hits(
            {
                "pkg/par.py": """
                import multiprocessing

                _MEMO = {}

                def _record(x):
                    _MEMO[x] = True

                def _worker(x):
                    _record(x)
                    return x

                def run(items):
                    with multiprocessing.Pool(4) as pool:
                        return pool.map(_worker, items)
                """
            },
            RULE,
        )
        assert found and "entry point pkg.par._worker" in found[0].message

    def test_global_rebinding_flagged(self, flow_hits):
        found = flow_hits(
            {
                "pkg/par.py": """
                import multiprocessing

                _TOTAL = 0

                def _worker(x):
                    global _TOTAL
                    _TOTAL = _TOTAL + x
                    return x

                def run(items):
                    with multiprocessing.Pool(4) as pool:
                        return pool.map(_worker, items)
                """
            },
            RULE,
        )
        assert found and "global '_TOTAL' rebound" in found[0].message


class TestFederationPaths:
    """Federation code fanned out to pool workers must stay write-free.

    REP205 is entry-point driven (not package-scoped), so these pin that
    federation-shaped modules — per-shard fan-out is the obvious place
    to reach for a pool — get the same treatment as everything else.
    """

    def test_shard_worker_writing_route_table_flagged(self, flow_hits):
        found = flow_hits(
            {
                "repro/federation/parallel.py": """
                import multiprocessing

                _ROUTES = {}

                def _run_shard(spec):
                    _ROUTES[spec.shard_id] = spec
                    return spec.shard_id

                def run_all(specs):
                    with multiprocessing.Pool(4) as pool:
                        return pool.map(_run_shard, specs)
                """
            },
            RULE,
        )
        assert found and "_ROUTES" in found[0].message

    def test_steal_counter_rebound_in_worker_flagged(self, flow_hits):
        found = flow_hits(
            {
                "repro/federation/parallel.py": """
                import multiprocessing

                _STEALS = 0

                def _run_shard(spec):
                    global _STEALS
                    _STEALS = _STEALS + 1
                    return spec

                def run_all(specs):
                    with multiprocessing.Pool(2) as pool:
                        return pool.map(_run_shard, specs)
                """
            },
            RULE,
        )
        assert found and "global '_STEALS' rebound" in found[0].message

    def test_pure_shard_fanout_is_clean(self, flow_hits):
        # The legitimate shape: workers return results; the parent merges.
        assert not flow_hits(
            {
                "repro/federation/parallel.py": """
                import multiprocessing

                def _run_shard(spec):
                    return spec.shard_id, spec.capacities

                def run_all(specs):
                    with multiprocessing.Pool(4) as pool:
                        return pool.map(_run_shard, specs)
                """
            },
            RULE,
        )


class TestNegatives:
    def test_pure_worker_is_clean(self, flow_hits):
        assert not flow_hits(
            {
                "pkg/par.py": """
                import multiprocessing

                def _worker(x):
                    return x * 2

                def run(items):
                    with multiprocessing.Pool(4) as pool:
                        return pool.map(_worker, items)
                """
            },
            RULE,
        )

    def test_local_shadowing_is_clean(self, flow_hits):
        assert not flow_hits(
            {
                "pkg/par.py": """
                import multiprocessing

                _CACHE = {}

                def _worker(x):
                    _CACHE = {}
                    _CACHE[x] = x
                    return x

                def run(items):
                    with multiprocessing.Pool(4) as pool:
                        return pool.map(_worker, items)
                """
            },
            RULE,
        )

    def test_module_write_outside_worker_is_clean(self, flow_hits):
        assert not flow_hits(
            {
                "pkg/par.py": """
                _CACHE = {}

                def remember(x):
                    _CACHE[x] = x
                """
            },
            RULE,
        )

    def test_module_read_in_worker_is_clean(self, flow_hits):
        assert not flow_hits(
            {
                "pkg/par.py": """
                import multiprocessing

                _TABLE = {1: "one"}

                def _worker(x):
                    return _TABLE.get(x)

                def run(items):
                    with multiprocessing.Pool(4) as pool:
                        return pool.map(_worker, items)
                """
            },
            RULE,
        )
