"""REP203 — sim-time discipline in repro.sim/online/cluster/streaming/federation."""


RULE = "REP203"


class TestWallClock:
    def test_time_time_in_sim_flagged(self, flow_hits):
        found = flow_hits(
            {
                "repro/sim/engine.py": """
                import time

                def step():
                    return time.time()
                """
            },
            RULE,
        )
        assert found and "wall-clock read time.time()" in found[0].message

    def test_aliased_import_still_resolved(self, flow_hits):
        found = flow_hits(
            {
                "repro/online/executor.py": """
                from time import monotonic as mono

                def step():
                    return mono()
                """
            },
            RULE,
        )
        assert found

    def test_datetime_now_flagged(self, flow_hits):
        found = flow_hits(
            {
                "repro/cluster/state.py": """
                import datetime

                def stamp():
                    return datetime.datetime.now()
                """
            },
            RULE,
        )
        assert found

    def test_wall_clock_outside_scope_is_clean(self, flow_hits):
        # repro.utils.timing is where wall-clock measurement belongs.
        assert not flow_hits(
            {
                "repro/utils/timing.py": """
                import time

                def elapsed(start):
                    return time.monotonic() - start
                """
            },
            RULE,
        )


class TestStreamingScope:
    """repro.streaming hosts an asyncio daemon; REP203 must cover it."""

    def test_wall_clock_in_streaming_flagged(self, flow_hits):
        found = flow_hits(
            {
                "repro/streaming/service.py": """
                import time

                def tick():
                    return int(time.time())
                """
            },
            RULE,
        )
        assert found and "wall-clock read time.time()" in found[0].message

    def test_loop_time_shim_flagged(self, flow_hits):
        # Reaching for time.monotonic() to timestamp batches is the
        # classic leak an asyncio loop invites; ticks must stay logical.
        found = flow_hits(
            {
                "repro/streaming/service.py": """
                from time import monotonic

                def stamp_batch(batch):
                    return monotonic(), batch
                """
            },
            RULE,
        )
        assert found

    def test_float_drift_on_streaming_clock_flagged(self, flow_hits):
        found = flow_hits(
            {
                "repro/streaming/engine.py": """
                def sample(now):
                    return now + 0.5
                """
            },
            RULE,
        )
        assert found

    def test_serve_loop_without_wall_clock_is_clean(self, flow_hits):
        # The shape of the real daemon: asyncio plumbing, logical ticks
        # incremented per batch, client sim-times passed through verbatim.
        assert not flow_hits(
            {
                "repro/streaming/service.py": """
                import asyncio

                async def worker(queue, plan):
                    tick = 0
                    while True:
                        head = await queue.get()
                        batch = [head]
                        while True:
                            try:
                                batch.append(queue.get_nowait())
                            except asyncio.QueueEmpty:
                                break
                        tick += 1
                        loop = asyncio.get_running_loop()
                        await loop.run_in_executor(None, plan, batch, tick)
                """
            },
            RULE,
        )

    def test_streaming_integer_time_math_clean(self, flow_hits):
        assert not flow_hits(
            {
                "repro/streaming/engine.py": """
                def cutoff(now, horizon):
                    return now + horizon

                def delay(admit_at, arrival):
                    return admit_at - arrival
                """
            },
            RULE,
        )


class TestFederationScope:
    """repro.federation runs on the shared kernel; REP203 must cover it."""

    def test_wall_clock_in_federation_flagged(self, flow_hits):
        found = flow_hits(
            {
                "repro/federation/stealing.py": """
                import time

                def steal_deadline():
                    return time.time()
                """
            },
            RULE,
        )
        assert found and "wall-clock read time.time()" in found[0].message

    def test_float_drift_on_federation_clock_flagged(self, flow_hits):
        # A "soft" steal threshold expressed as a fractional instant is
        # exactly the drift the integer-slot discipline forbids.
        found = flow_hits(
            {
                "repro/federation/engine.py": """
                def steal_at(now):
                    return now + 0.5
                """
            },
            RULE,
        )
        assert found

    def test_monotonic_in_router_flagged(self, flow_hits):
        found = flow_hits(
            {
                "repro/federation/routing.py": """
                from time import monotonic

                def route_stamp(index):
                    return index, monotonic()
                """
            },
            RULE,
        )
        assert found

    def test_integer_federation_time_math_clean(self, flow_hits):
        # The shape of the real stealer/engine: integer loads and instants.
        assert not flow_hits(
            {
                "repro/federation/stealing.py": """
                def gap(loads):
                    return max(loads) - min(loads)

                def settle(now, horizon):
                    return now + horizon
                """
            },
            RULE,
        )


class TestFloatArithmetic:
    def test_float_literal_on_now_flagged(self, flow_hits):
        found = flow_hits(
            {
                "repro/sim/kernel.py": """
                def advance(now):
                    return now + 1.5
                """
            },
            RULE,
        )
        assert found and "float literal" in found[0].message

    def test_true_division_on_time_flagged(self, flow_hits):
        found = flow_hits(
            {
                "repro/sim/kernel.py": """
                def half(sim_time):
                    return sim_time / 2
                """
            },
            RULE,
        )
        assert found and "true division" in found[0].message

    def test_attribute_time_name_flagged(self, flow_hits):
        found = flow_hits(
            {
                "repro/sim/kernel.py": """
                def drift(clock):
                    return clock.now + 0.1
                """
            },
            RULE,
        )
        assert found

    def test_integer_arithmetic_clean(self, flow_hits):
        assert not flow_hits(
            {
                "repro/sim/kernel.py": """
                def advance(now, delta):
                    return now + delta

                def half(now):
                    return now // 2
                """
            },
            RULE,
        )

    def test_float_math_on_non_time_names_clean(self, flow_hits):
        assert not flow_hits(
            {
                "repro/sim/kernel.py": """
                def score(weight):
                    return weight * 0.5
                """
            },
            RULE,
        )
