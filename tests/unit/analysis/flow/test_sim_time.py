"""REP203 — sim-time discipline inside repro.sim/online/cluster."""


RULE = "REP203"


class TestWallClock:
    def test_time_time_in_sim_flagged(self, flow_hits):
        found = flow_hits(
            {
                "repro/sim/engine.py": """
                import time

                def step():
                    return time.time()
                """
            },
            RULE,
        )
        assert found and "wall-clock read time.time()" in found[0].message

    def test_aliased_import_still_resolved(self, flow_hits):
        found = flow_hits(
            {
                "repro/online/executor.py": """
                from time import monotonic as mono

                def step():
                    return mono()
                """
            },
            RULE,
        )
        assert found

    def test_datetime_now_flagged(self, flow_hits):
        found = flow_hits(
            {
                "repro/cluster/state.py": """
                import datetime

                def stamp():
                    return datetime.datetime.now()
                """
            },
            RULE,
        )
        assert found

    def test_wall_clock_outside_scope_is_clean(self, flow_hits):
        # repro.utils.timing is where wall-clock measurement belongs.
        assert not flow_hits(
            {
                "repro/utils/timing.py": """
                import time

                def elapsed(start):
                    return time.monotonic() - start
                """
            },
            RULE,
        )


class TestFloatArithmetic:
    def test_float_literal_on_now_flagged(self, flow_hits):
        found = flow_hits(
            {
                "repro/sim/kernel.py": """
                def advance(now):
                    return now + 1.5
                """
            },
            RULE,
        )
        assert found and "float literal" in found[0].message

    def test_true_division_on_time_flagged(self, flow_hits):
        found = flow_hits(
            {
                "repro/sim/kernel.py": """
                def half(sim_time):
                    return sim_time / 2
                """
            },
            RULE,
        )
        assert found and "true division" in found[0].message

    def test_attribute_time_name_flagged(self, flow_hits):
        found = flow_hits(
            {
                "repro/sim/kernel.py": """
                def drift(clock):
                    return clock.now + 0.1
                """
            },
            RULE,
        )
        assert found

    def test_integer_arithmetic_clean(self, flow_hits):
        assert not flow_hits(
            {
                "repro/sim/kernel.py": """
                def advance(now, delta):
                    return now + delta

                def half(now):
                    return now // 2
                """
            },
            RULE,
        )

    def test_float_math_on_non_time_names_clean(self, flow_hits):
        assert not flow_hits(
            {
                "repro/sim/kernel.py": """
                def score(weight):
                    return weight * 0.5
                """
            },
            RULE,
        )
