"""Project-graph construction: imports, symbols, call resolution."""

import textwrap

from repro.analysis.flow.modgraph import ProjectGraph, dotted_name


def graph(**sources):
    return ProjectGraph.from_sources(
        {
            path.replace("__", "/") + ".py": textwrap.dedent(src)
            for path, src in sources.items()
        }
    )


class TestModuleNaming:
    def test_src_prefix_stripped(self):
        g = graph(src__pkg__mod="X = 1\n")
        assert "pkg.mod" in g.modules

    def test_init_becomes_package(self):
        g = ProjectGraph.from_sources({"pkg/__init__.py": "X = 1\n"})
        assert "pkg" in g.modules


class TestImports:
    def test_plain_import_alias(self):
        g = graph(pkg__a="import numpy as np\n")
        assert g.modules["pkg.a"].imports["np"] == "numpy"

    def test_from_import(self):
        g = graph(pkg__a="from numpy.random import default_rng\n")
        assert (
            g.modules["pkg.a"].imports["default_rng"]
            == "numpy.random.default_rng"
        )

    def test_relative_import_resolves_against_package(self):
        g = graph(pkg__sub__a="from ..helpers import poke\n")
        assert g.modules["pkg.sub.a"].imports["poke"] == "pkg.helpers.poke"


class TestSymbols:
    SRC = """
    from dataclasses import dataclass

    @dataclass(frozen=True)
    class Snapshot:
        x: int

    @dataclass
    class Mutable:
        x: int

    class Plain:
        def method(self):
            return self.x

    def helper():
        return 1
    """

    def test_functions_and_methods_indexed(self):
        g = graph(pkg__a=self.SRC)
        assert "pkg.a.helper" in g.functions
        assert "pkg.a.Plain.method" in g.functions
        assert g.functions["pkg.a.Plain.method"].class_name == "Plain"

    def test_frozen_dataclasses_detected(self):
        g = graph(pkg__a=self.SRC)
        assert g.frozen_class_names() == {"Snapshot"}


class TestResolveCall:
    def test_dotted_chain_through_import(self):
        import ast

        g = graph(pkg__a="import numpy as np\nnp.random.default_rng()\n")
        mod = g.modules["pkg.a"]
        call = next(n for n in ast.walk(mod.tree) if isinstance(n, ast.Call))
        assert g.resolve_call(mod, call.func) == "numpy.random.default_rng"

    def test_imported_function_and_local_function(self):
        import ast

        g = graph(
            pkg__helpers="def poke():\n    pass\n",
            pkg__a="from .helpers import poke\n\ndef own():\n    poke()\n    own()\n",
        )
        mod = g.modules["pkg.a"]
        calls = [n for n in ast.walk(mod.tree) if isinstance(n, ast.Call)]
        resolved = {g.resolve_call(mod, c.func) for c in calls}
        assert resolved == {"pkg.helpers.poke", "pkg.a.own"}

    def test_self_method_resolution(self):
        import ast

        g = graph(
            pkg__a="class C:\n    def f(self):\n        self.g()\n    def g(self):\n        pass\n"
        )
        mod = g.modules["pkg.a"]
        call = next(n for n in ast.walk(mod.tree) if isinstance(n, ast.Call))
        assert g.resolve_call(mod, call.func, self_class="pkg.a.C") == "pkg.a.C.g"

    def test_class_lookup_follows_init(self):
        g = graph(
            pkg__a="class C:\n    def __init__(self, x):\n        self.x = x\n"
        )
        fn = g.function("pkg.a.C")
        assert fn is not None and fn.name == "__init__"

    def test_local_type_inference(self):
        g = graph(
            pkg__a="class C:\n    def run(self):\n        pass\n\ndef use():\n    c = C()\n    c.run()\n"
        )
        fn = g.functions["pkg.a.use"]
        assert g.infer_local_types(fn) == {"c": "pkg.a.C"}

    def test_unknown_target_is_none(self):
        import ast

        g = graph(pkg__a="mystery()\n")
        mod = g.modules["pkg.a"]
        call = next(n for n in ast.walk(mod.tree) if isinstance(n, ast.Call))
        assert g.resolve_call(mod, call.func) is None


class TestDottedName:
    def test_chain(self):
        import ast

        expr = ast.parse("a.b.c", mode="eval").body
        assert dotted_name(expr) == "a.b.c"

    def test_non_name_root(self):
        import ast

        expr = ast.parse("f().b", mode="eval").body
        assert dotted_name(expr) is None
