"""Shared fixture helper: run one flow rule over in-memory sources."""

import textwrap

import pytest

from repro.analysis.flow.engine import analyze_graph
from repro.analysis.flow.modgraph import ProjectGraph


@pytest.fixture
def flow_hits():
    def run(sources, rule_id):
        graph = ProjectGraph.from_sources(
            {path: textwrap.dedent(src) for path, src in sources.items()}
        )
        violations = analyze_graph(graph, select=[rule_id])
        return [v for v in violations if v.rule_id == rule_id]

    return run
