"""Golden RL traces: fixed-seed training runs asserted byte-for-byte.

The committed ``rl_golden.json`` pins the numerics of the differentiable
module stack and both trainers *before* the pluggable-policy refactor:

* ``network`` — a fixed-seed :class:`PolicyNetwork`'s logits, masked
  probabilities and policy-gradient arrays on a deterministic input
  batch (every float serialized via ``float.hex()``, so equality is bit
  equality, not tolerance).
* ``value`` — a fixed-seed :class:`ValueNetwork` fit: per-epoch losses
  and post-fit predictions.
* ``imitation`` — the supervised loss curve of a tiny fixed-seed fit.
* ``reinforce`` — three epochs of fixed-seed REINFORCE: every
  :class:`EpochStats` field plus a SHA-256 digest of the final
  parameters (params are large; the digest pins them exactly).

Any refactor of ``repro.rl`` must leave all of these byte-identical.
Regenerate (only when an intentional numeric change lands) with::

    PYTHONPATH=src python tests/data/make_rl_golden.py
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path

import numpy as np

GOLDEN_PATH = Path(__file__).resolve().parent / "rl_golden.json"


def _hex_array(array: np.ndarray) -> list:
    """Nested lists of ``float.hex()`` strings (bit-exact round trip)."""
    flat = [float(x).hex() for x in np.asarray(array, dtype=np.float64).ravel()]
    return [list(np.asarray(array).shape), flat]


def _params_digest(params: dict) -> str:
    digest = hashlib.sha256()
    for key in sorted(params):
        digest.update(key.encode())
        digest.update(np.ascontiguousarray(params[key], dtype=np.float64).tobytes())
    return digest.hexdigest()


def _network_case() -> dict:
    from repro.config import NetworkConfig
    from repro.rl.network import PolicyNetwork

    config = NetworkConfig(hidden_sizes=(16, 8), max_ready=5)
    network = PolicyNetwork(12, config, seed=123)
    rng = np.random.default_rng(99)
    states = rng.normal(size=(4, 12))
    masks = np.ones((4, config.num_actions), dtype=bool)
    masks[0, 3:] = False
    masks[1, :2] = False
    logits = network.logits(states)
    probs = network.probabilities(states, masks)
    actions = [0, 2, 5, 1]
    weights = [1.0, -0.5, 2.0, 0.25]
    grads, nll = network.policy_gradient(states, masks, actions, weights)
    return {
        "params_digest": _params_digest(network.params),
        "logits": _hex_array(logits),
        "probs": _hex_array(probs),
        "nll": float(nll).hex(),
        "grads": {key: _hex_array(value) for key, value in sorted(grads.items())},
    }


def _value_case() -> dict:
    from repro.rl.value_network import ValueNetwork

    network = ValueNetwork(6, hidden_sizes=(8, 4), seed=7)
    rng = np.random.default_rng(11)
    states = rng.normal(size=(32, 6))
    targets = np.abs(rng.normal(loc=50.0, scale=10.0, size=32))
    losses = network.fit(states, targets, epochs=4, batch_size=8, seed=3)
    predictions = network.predict(states[:5])
    return {
        "params_digest": _params_digest(network.params),
        "losses": [float(x).hex() for x in losses],
        "predictions": _hex_array(predictions),
    }


def _training_setup():
    from repro.config import EnvConfig, TrainingConfig, WorkloadConfig
    from repro.core.pipeline import default_network, training_graphs

    env_config = EnvConfig(process_until_completion=True)
    training = TrainingConfig(
        num_examples=2,
        example_num_tasks=8,
        rollouts_per_example=3,
        epochs=3,
        batch_size=2,
        supervised_epochs=2,
    )
    workload = WorkloadConfig(num_tasks=8, max_runtime=10, max_demand=10)
    graphs = training_graphs(training, workload, seed=2024)
    network = default_network(env_config, seed=17)
    return env_config, training, graphs, network


def _imitation_case() -> dict:
    from repro.rl.imitation import ImitationTrainer

    env_config, training, graphs, network = _training_setup()
    trainer = ImitationTrainer(
        network, env_config=env_config, training=training, seed=5
    )
    losses = trainer.fit(graphs)
    dataset = trainer.collect(graphs)
    return {
        "losses": [float(x).hex() for x in losses],
        "accuracy": float(trainer.accuracy(dataset)).hex(),
        "params_digest": _params_digest(network.params),
    }


def _reinforce_case() -> dict:
    from repro.rl.reinforce import ReinforceTrainer

    env_config, training, graphs, network = _training_setup()
    trainer = ReinforceTrainer(
        network,
        graphs,
        env_config=env_config,
        training=training,
        seed=31,
    )
    history = trainer.train()
    epochs = [
        {
            "epoch": stats.epoch,
            "mean_makespan": float(stats.mean_makespan).hex(),
            "best_makespan": stats.best_makespan,
            "worst_makespan": stats.worst_makespan,
            "mean_entropy": float(stats.mean_entropy).hex(),
            "num_trajectories": stats.num_trajectories,
            "mean_loss": float(stats.mean_loss).hex(),
        }
        for stats in history
    ]
    evaluation = trainer.evaluate(graphs)
    return {
        "epochs": epochs,
        "evaluation": [int(m) for m in evaluation],
        "params_digest": _params_digest(network.params),
    }


def compute_golden() -> dict:
    return {
        "network": _network_case(),
        "value": _value_case(),
        "imitation": _imitation_case(),
        "reinforce": _reinforce_case(),
    }


def serialize(payload: dict) -> str:
    return json.dumps(payload, indent=1, sort_keys=True) + "\n"


def main() -> None:
    GOLDEN_PATH.write_text(serialize(compute_golden()), encoding="utf-8")
    print(f"wrote {GOLDEN_PATH}")


if __name__ == "__main__":
    main()
