"""Golden-trace scenarios for the online simulator, and their regeneration.

The two committed traces (``online_golden_fault_free.json`` and
``online_golden_faulty.json``) pin the *entire observable surface* of a
fixed-seed ``OnlineSimulator.run``: job outcomes, executed schedules,
the ordered fault-event log, the ordered telemetry event stream, and
the end-of-run metric snapshot.  The regression test asserts the
serialized payload byte-for-byte, so any kernel edit that reorders
events — even two events at the same simulated instant — fails loudly.

Regenerate (only when an event-order change is intentional and
documented) with::

    PYTHONPATH=src python tests/data/make_golden.py

This module is imported by the golden test so the test and the
regeneration script can never disagree on the serialization.
"""

from __future__ import annotations

import json
from pathlib import Path

DATA_DIR = Path(__file__).resolve().parent

CAPACITIES = (10, 10)

GOLDEN_FILES = {
    "fault_free": DATA_DIR / "online_golden_fault_free.json",
    "faulty": DATA_DIR / "online_golden_faulty.json",
}


def golden_stream():
    """Six 8-task layered DAGs arriving every 3 slots (fixed seeds)."""
    from repro.config import WorkloadConfig
    from repro.dag.generators import random_layered_dag
    from repro.online import ArrivingJob

    workload = WorkloadConfig(
        num_tasks=8,
        max_runtime=6,
        max_demand=4,
        runtime_mean=3.0,
        demand_mean=2.0,
    )
    return [
        ArrivingJob(3 * i, random_layered_dag(workload, seed=100 + i))
        for i in range(6)
    ]


def golden_faults():
    """Two staggered recoverable crashes + transients/stragglers/noise."""
    from repro.faults import (
        FaultPlan,
        MachineCrash,
        RetryPolicy,
        RuntimeNoise,
        StragglerModel,
        TransientFaults,
    )

    return FaultPlan(
        crashes=(
            MachineCrash(0, 6, (4, 4), recover_at=18),
            MachineCrash(1, 30, (3, 3), recover_at=44),
        ),
        transient=TransientFaults(0.15),
        straggler=StragglerModel(0.1, slowdown=2.0),
        noise=RuntimeNoise(kind="lognormal", scale=0.2),
        retry=RetryPolicy(max_attempts=4, backoff_base=2, backoff_cap=8),
        seed=13,
    )


def golden_rescheduler():
    """Deterministic HEFT replanner with a CP fallback (no wall budget)."""
    from repro.config import ClusterConfig, EnvConfig
    from repro.schedulers import compose_scheduler

    env_config = EnvConfig(
        cluster=ClusterConfig(capacities=CAPACITIES, horizon=8)
    )
    return compose_scheduler("heft", env_config, reschedule=True, fallback="cp")


def _event_row(event):
    """One telemetry event, stripped of wall-clock fields."""
    row = {"kind": event.kind, "name": event.name, "depth": event.depth}
    if event.parent is not None:
        row["parent"] = event.parent
    if event.step is not None:
        row["step"] = event.step
    if event.value is not None:
        row["value"] = event.value
    if event.attrs:
        row["attrs"] = {
            key: value for key, value in sorted(event.attrs.items())
        }
    return row


def _result_payload(result):
    payload = {
        "makespan": result.makespan,
        "mean_utilization": list(result.mean_utilization),
        "nominal_utilization": list(
            getattr(result, "nominal_utilization", result.mean_utilization)
        ),
        "crashes": result.crashes,
        "recoveries": result.recoveries,
        "total_retries": result.total_retries,
        "outcomes": [
            {
                "job_index": o.job_index,
                "arrival_time": o.arrival_time,
                "completion_time": o.completion_time,
                "num_tasks": o.num_tasks,
                "failed": o.failed,
                "retries": o.retries,
                "transient_failures": o.transient_failures,
                "crash_kills": o.crash_kills,
            }
            for o in result.outcomes
        ],
        "fault_events": [
            [e.time, e.kind, e.job, e.task, e.attempt, e.detail]
            for e in result.fault_events
        ],
        "executed": [
            {
                "scheduler": schedule.scheduler,
                "placements": [
                    [p.task_id, p.start, p.finish]
                    for p in schedule.placements
                ],
            }
            for schedule in result.executed
        ],
    }
    return payload


def _metrics_payload(tm):
    jct = tm.metrics.histogram("online.jct")
    return {
        "jct_count": jct.count,
        "jct_mean": jct.mean,
        "jct_max": jct.max,
        "active_jobs_max": tm.metrics.gauge("online.active_jobs").max,
        "ready_tasks_max": tm.metrics.gauge("online.ready_tasks").max,
    }


def run_scenario(name):
    """Run one golden scenario under a fresh telemetry session."""
    from repro.config import ClusterConfig
    from repro.online import OnlineSimulator, cp_ranker
    from repro.telemetry import TelemetryConfig, session

    if name not in GOLDEN_FILES:
        raise ValueError(f"unknown golden scenario {name!r}")
    simulator = OnlineSimulator(
        ClusterConfig(capacities=CAPACITIES, horizon=8)
    )
    stream = golden_stream()
    with session(TelemetryConfig(enabled=True, max_events=100_000)) as tm:
        if name == "faulty":
            result = simulator.run(
                stream,
                cp_ranker,
                faults=golden_faults(),
                rescheduler=golden_rescheduler(),
            )
        else:
            result = simulator.run(stream, cp_ranker)
        events = [_event_row(e) for e in tm.events()]
        metrics = _metrics_payload(tm)
    return {
        "scenario": name,
        "capacities": list(CAPACITIES),
        "result": _result_payload(result),
        "telemetry_events": events,
        "metrics": metrics,
    }


def serialize(payload):
    """The canonical byte layout the golden test compares against."""
    return json.dumps(payload, indent=2, sort_keys=True) + "\n"


def main(argv=None):
    import argparse

    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--out-dir",
        type=Path,
        default=DATA_DIR,
        help="write traces here instead of tests/data (e.g. a CI artifact "
        "directory); the committed goldens are only touched by the default",
    )
    options = parser.parse_args(argv)
    options.out_dir.mkdir(parents=True, exist_ok=True)
    for name, path in GOLDEN_FILES.items():
        payload = run_scenario(name)
        path = options.out_dir / path.name
        path.write_text(serialize(payload), encoding="utf-8")
        events = payload["result"]["fault_events"]
        kinds = sorted({row[1] for row in events})
        print(  # noqa: T201 - regeneration script, not library code
            f"wrote {path.name}: makespan={payload['result']['makespan']} "
            f"fault_events={len(events)} kinds={kinds} "
            f"telemetry={len(payload['telemetry_events'])}"
        )


if __name__ == "__main__":
    main()
