"""Cross-shard work stealing: threshold rebalancing and crash rescue.

After each settled instant the engine asks the stealer whether the
shard loads have drifted past the configured imbalance threshold; if
so, a ``STEAL`` kernel event (class 6 — after any same-instant routing,
before replans see the final population) is scheduled at the current
instant and drained immediately, so every migration is an ordered,
recorded kernel occurrence.

The balancing loop repeatedly moves one job from the most- to the
least-loaded shard (ties to the lowest id) and stops when the gap is
within the threshold or no candidate can move.  Candidates, in order:

1. the donor's **backlog tail** — the newest queued job (FIFO fairness
   keeps the oldest waiting jobs at their original shard);
2. an **admitted job with no attempts started** — nothing has run,
   nothing is running, and no retry/backoff event can reference it, so
   its bookkeeping moves wholesale (the original admission time travels
   with it, keeping queueing-delay accounting honest).

Termination is structural: a move only happens when the donor–thief gap
is at least 2, and each move shrinks that gap by exactly 2, so the sum
of squared loads strictly decreases — the loop cannot ping-pong.

:meth:`WorkStealer.rescue` is the fault-domain escape hatch: when the
whole federation is wedged (nothing runnable anywhere, typically after
a permanent capacity loss), never-started jobs are force-moved off
their shard to any shard whose *current* (post-crash) capacities can
host them, regardless of the threshold.  Jobs that already ran attempts
stay put and fail loudly, exactly as in a standalone streaming run.
"""

from __future__ import annotations

from typing import List, Optional, Sequence

from ..online.execution import ActiveJob
from ..sim import Event, EventClass, SimKernel
from ..streaming.admission import ADMIT, QUEUE, QueuedJob
from .ledger import FROM_ADMITTED, FROM_BACKLOG, RESCUE, FederationLedger, StealRecord
from .shard import Shard

__all__ = ["STEAL_KIND", "WorkStealer"]

STEAL_KIND = "federation.steal"

_BALANCE = "balance"


class WorkStealer:
    """Threshold-triggered migration between a federation's shards.

    Args:
        shards: the shard universe, ascending id.
        threshold: steal when ``max(load) - min(load)`` exceeds this
            (>= 0; the load metric is jobs in system).
        kernel: the shared federation kernel (steals are its events).
        ledger: where migrations are recorded.
    """

    def __init__(
        self,
        shards: Sequence[Shard],
        threshold: int,
        kernel: SimKernel,
        ledger: FederationLedger,
    ) -> None:
        if threshold < 0:
            raise ValueError(f"steal threshold must be >= 0, got {threshold}")
        self.shards = list(shards)
        self.threshold = threshold
        self.kernel = kernel
        self.ledger = ledger
        self._moved = False
        kernel.register(STEAL_KIND, self._on_steal)

    # ------------------------------------------------------------------ #
    # engine entry points
    # ------------------------------------------------------------------ #

    def maybe_rebalance(self) -> None:
        """Schedule and drain a STEAL event if loads drifted too far."""
        if len(self.shards) < 2:
            return
        loads = [shard.load() for shard in self.shards]
        gap = max(loads) - min(loads)
        if gap <= self.threshold or gap < 2:
            return
        self.kernel.schedule(
            self.kernel.now, EventClass.STEAL, STEAL_KIND, _BALANCE
        )
        self.kernel.drain_due()

    def rescue(self) -> bool:
        """Force-move never-started jobs off a wedged federation.

        Returns:
            True when at least one job migrated (the engine retries the
            dispatch loop); False when nothing could move (the engine
            falls through to per-shard ``fail_stuck``).
        """
        if len(self.shards) < 2:
            return False
        self._moved = False
        self.kernel.schedule(self.kernel.now, EventClass.STEAL, STEAL_KIND, RESCUE)
        self.kernel.drain_due()
        return self._moved

    # ------------------------------------------------------------------ #
    # the STEAL event handler
    # ------------------------------------------------------------------ #

    def _on_steal(self, event: Event) -> None:
        if event.payload == RESCUE:
            self._rescue_round()
        else:
            self._balance_round()

    def _balance_round(self) -> None:
        now = self.kernel.now
        while True:
            donor = min(self.shards, key=lambda s: (-s.load(), s.id))
            thief = min(self.shards, key=lambda s: (s.load(), s.id))
            gap = donor.load() - thief.load()
            if donor.id == thief.id or gap <= self.threshold or gap < 2:
                return
            if not self._move_one(donor, thief, now):
                return

    def _move_one(self, donor: Shard, thief: Shard, now: int) -> bool:
        if donor.admission.backlog:
            return self._steal_backlog(donor, thief, now)
        return self._steal_admitted(donor, thief, now)

    def _steal_backlog(self, donor: Shard, thief: Shard, now: int) -> bool:
        queued = donor.admission.backlog.pop()
        if thief.feasibility(queued.graph) is not None:
            donor.admission.backlog.append(queued)
            return False
        decision = thief.admission.offer(queued, len(thief.execution.active))
        if decision == ADMIT:
            thief.admit(queued, now)
        elif decision == QUEUE:
            thief.reporting.record_queued(
                queued.index, now, len(thief.admission.backlog)
            )
        else:  # thief backlog full: undo, stop stealing this instant
            donor.admission.backlog.append(queued)
            return False
        self._record(donor, thief, queued.index, now, FROM_BACKLOG)
        return True

    def _steal_admitted(self, donor: Shard, thief: Shard, now: int) -> bool:
        candidates = [
            job for job in donor.execution.active.values() if not job.attempts
        ]
        if not candidates:
            return False
        # Newest arrival first: it has accrued the least shard locality.
        job = max(candidates, key=lambda j: (j.arrival, j.index))
        if thief.feasibility(job.graph) is not None or not thief.would_admit():
            return False
        self._migrate_admitted(donor, thief, job, now, FROM_ADMITTED)
        return True

    def _rescue_round(self) -> None:
        now = self.kernel.now
        for donor in self.shards:
            movable: List[ActiveJob] = sorted(
                (j for j in donor.execution.active.values() if not j.attempts),
                key=lambda j: j.index,
            )
            for job in movable:
                thief = self._rescue_target(donor, job)
                if thief is not None:
                    self._migrate_admitted(donor, thief, job, now, RESCUE)
                    self._moved = True

    def _rescue_target(self, donor: Shard, job: ActiveJob) -> Optional[Shard]:
        for shard in self.shards:
            if shard.id == donor.id:
                continue
            if shard.can_host_now(job.graph) and shard.would_admit():
                return shard
        return None

    # ------------------------------------------------------------------ #
    # migration mechanics
    # ------------------------------------------------------------------ #

    def _migrate_admitted(
        self, donor: Shard, thief: Shard, job: ActiveJob, now: int, source: str
    ) -> None:
        """Move an admitted, never-started job's bookkeeping wholesale."""
        del donor.execution.active[job.index]
        donor.policy.forget(job.index)
        admitted_at = donor.reporting.admit_times[job.index]
        fresh = thief.execution.admit(job.index, job.arrival, job.graph)
        thief.reporting.record_admission(job.index, admitted_at)
        thief.policy.on_admit(fresh)
        self._record(donor, thief, job.index, now, source)

    def _record(
        self, donor: Shard, thief: Shard, index: int, now: int, source: str
    ) -> None:
        donor.stolen_out += 1
        thief.stolen_in += 1
        self.ledger.record_steal(
            StealRecord(
                time=now,
                job_index=index,
                from_shard=donor.id,
                to_shard=thief.id,
                source=source,
            )
        )
