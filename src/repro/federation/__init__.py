"""Sharded multi-scheduler federation over the :mod:`repro.sim` kernel.

One cluster, many schedulers: the capacity vector is partitioned into
**shards**, each owned by a full online scheduling stack (any ranker /
registry-spec rescheduler / admission configuration of its own), and a
**routing layer** places every arrival on one shard while a **work
stealer** migrates jobs across shards when load drifts past a
threshold.  All shards cooperate on a single shared deterministic event
kernel — ``ROUTE`` and ``STEAL`` are ordinary event classes interleaved
with crashes, completions and arrivals — so a federated run is exactly
as reproducible as a single-scheduler one.

Layout:

* :mod:`~repro.federation.shard` — :class:`ShardSpec` (declarative
  configuration), :class:`Shard` (the live stack), capacity splitting;
* :mod:`~repro.federation.kernelview` — kind-namespaced kernel views
  that let N online stacks share one kernel without handler collisions;
* :mod:`~repro.federation.routing` — the :class:`Router` protocol and
  the round-robin / least-load / hash / affinity policies behind
  ``"policy:key=val"`` spec strings;
* :mod:`~repro.federation.stealing` — threshold rebalancing and crash
  rescue as ``STEAL`` kernel events;
* :mod:`~repro.federation.workload` — one arrival stream fanned across
  shards via ``ROUTE`` events;
* :mod:`~repro.federation.engine` — the federated streaming loop;
* :mod:`~repro.federation.results` — per-shard reports, the
  streaming-equivalent aggregate, the global-baseline comparison.

The load-bearing invariant, pinned by the property suite: a 1-shard
federation is a *strict superset* of
:class:`repro.streaming.StreamingSimulator` — same arrivals, same
ranker, same faults produce an **equal** result object.
"""

from .engine import FederatedStreamingSimulator
from .ledger import FROM_ADMITTED, FROM_BACKLOG, RESCUE, FederationLedger, StealRecord
from .results import (
    FederationComparison,
    FederationResult,
    ShardReport,
    aggregate_result,
)
from .routing import (
    AffinityRouter,
    HashRouter,
    LeastLoadedRouter,
    RoundRobinRouter,
    Router,
    parse_router_spec,
)
from .shard import Shard, ShardSpec, split_capacities
from .stealing import STEAL_KIND, WorkStealer
from .workload import ROUTE_KIND, FederationWorkloadLayer

__all__ = [
    "AffinityRouter",
    "FROM_ADMITTED",
    "FROM_BACKLOG",
    "FederatedStreamingSimulator",
    "FederationComparison",
    "FederationLedger",
    "FederationResult",
    "FederationWorkloadLayer",
    "HashRouter",
    "LeastLoadedRouter",
    "RESCUE",
    "ROUTE_KIND",
    "RoundRobinRouter",
    "Router",
    "STEAL_KIND",
    "Shard",
    "ShardReport",
    "ShardSpec",
    "StealRecord",
    "WorkStealer",
    "aggregate_result",
    "parse_router_spec",
    "split_capacities",
]
