"""Federation-level run ledger: arrivals, routes, steals, samples.

Per-shard accounting lives in each shard's
:class:`~repro.streaming.reporting.StreamingReportingLayer` (admissions,
outcomes, utilization integrals).  What no single shard can own lands
here: the global arrival count, rejections decided *above* the shards
(infeasible-everywhere, horizon cut-off), the aggregate jobs-in-system
step series, per-shard route counts, and the steal record.

The ledger mirrors the streaming reporting layer's semantics exactly
(same sampling compression, same no-silent-loss rejection records) so
the aggregate result a federation assembles is a genuine
:class:`~repro.streaming.results.StreamingResult` — which is what lets
the 1-shard equivalence property compare them for *equality*.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..streaming.results import RejectedJob
from ..telemetry import runtime as _telemetry

__all__ = ["FederationLedger", "StealRecord"]

#: Steal candidate origins.
FROM_BACKLOG = "backlog"
FROM_ADMITTED = "admitted"
RESCUE = "rescue"

__all__ += ["FROM_ADMITTED", "FROM_BACKLOG", "RESCUE"]


@dataclass(frozen=True)
class StealRecord:
    """One cross-shard job migration.

    Attributes:
        time: the settled instant the move happened at.
        job_index: the migrated job's arrival index.
        from_shard: donor shard id.
        to_shard: thief shard id.
        source: where the job was taken from — ``"backlog"`` (a queued
            job), ``"admitted"`` (admitted but no attempt started), or
            ``"rescue"`` (moved off a permanently-stuck shard).
    """

    time: int
    job_index: int
    from_shard: int
    to_shard: int
    source: str


class FederationLedger:
    """Mutable federation-level bookkeeping for one run."""

    def __init__(self, tm: _telemetry.TelemetryLike) -> None:
        self.tm = tm
        self.tm_enabled = tm.enabled
        self.arrivals_seen = 0
        self.rejections: List[RejectedJob] = []
        self.in_system_series: List[Tuple[int, int]] = []
        self.horizon_cutoff: Optional[int] = None
        self.routed: Dict[int, int] = {}
        self.steals: List[StealRecord] = []

    # ------------------------------------------------------------------ #
    # arrival / rejection ledger (mirrors StreamingReportingLayer)
    # ------------------------------------------------------------------ #

    def record_arrival(self) -> None:
        """One arrival was offered to the federation."""
        self.arrivals_seen += 1

    def record_rejection(self, index: int, at: int, reason: str) -> None:
        """An arrival no shard will run; reported, never silently lost."""
        self.rejections.append(RejectedJob(index, at, reason))
        if self.tm_enabled:
            self.tm.event("federation.reject", job=index, at=at, reason=reason)

    def record_cutoff(self, at: int) -> None:
        """The run horizon was reached; later arrivals are shed."""
        if self.horizon_cutoff is None:
            self.horizon_cutoff = at
            if self.tm_enabled:
                self.tm.event("federation.horizon_cutoff", at=at)

    def sample_in_system(self, at: int, count: int) -> None:
        """Append to the aggregate step series; duplicates compress."""
        series = self.in_system_series
        if series and series[-1][1] == count:
            return
        if series and series[-1][0] == at:
            series[-1] = (at, count)
            return
        series.append((at, count))
        if self.tm_enabled:
            self.tm.gauge("federation.in_system", float(count))

    # ------------------------------------------------------------------ #
    # routing / stealing ledger
    # ------------------------------------------------------------------ #

    def record_route(self, index: int, shard_id: int, at: int) -> None:
        """Job ``index`` was placed on shard ``shard_id``."""
        self.routed[shard_id] = self.routed.get(shard_id, 0) + 1
        if self.tm_enabled:
            self.tm.event("federation.route", job=index, shard=shard_id, at=at)

    def record_steal(self, record: StealRecord) -> None:
        """One job migrated between shards."""
        self.steals.append(record)
        if self.tm_enabled:
            self.tm.event(
                "federation.steal",
                job=record.job_index,
                at=record.time,
                source=record.source,
                from_shard=record.from_shard,
                to_shard=record.to_shard,
            )
