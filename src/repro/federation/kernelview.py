"""Shard-local kernel views: kind namespacing over one shared kernel.

Every shard of a federation reuses the online stack unchanged —
:class:`~repro.online.execution.ExecutionLayer`,
:class:`~repro.online.policy.PolicyLayer`,
:class:`~repro.cluster.sim_adapter.ClusterProcess` — but all shards
share **one** :class:`~repro.sim.SimKernel` (a single clock, a single
totally-ordered event queue, so cross-shard interleavings are
deterministic).  Those layers register fixed kind strings
(``cluster.completion``, ``fault.timeline``, ``policy.replan``, …) and
:meth:`SimKernel.register` rejects duplicates, so two shards cannot
coexist on the raw kernel.

:class:`ShardKernelView` solves this with namespacing: every kind a
shard registers, schedules, or pushes is prefixed ``shard<K>.``.  The
rewrite has to happen at the *queue*, not just the kernel facade,
because :class:`SimProcess` sources (the cluster adapter, the execution
layer's deferred retries) push events straight into the queue handed to
``advance_to`` — so added processes are wrapped to receive a namespacing
queue adapter over the same underlying heap.

Event *times and classes* are untouched: a shard's crash still drains
before another shard's completion at the same instant, exactly per the
:class:`~repro.sim.EventClass` table, with the shared push-sequence
counter breaking (time, class) ties across shards in schedule order.
"""

from __future__ import annotations

from typing import Any, Callable, Optional

from ..sim import Event, EventClass, EventQueue, SimKernel, SimProcess
from ..sim.events import default_kind

__all__ = ["ShardKernelView"]


class _NamespacedQueue:
    """An :class:`EventQueue` facade rewriting kinds into one namespace."""

    __slots__ = ("_queue", "_prefix")

    def __init__(self, queue: EventQueue, prefix: str) -> None:
        self._queue = queue
        self._prefix = prefix

    def push(
        self,
        time: int,
        klass: EventClass,
        kind: Optional[str] = None,
        payload: Any = None,
    ) -> Event:
        base = kind if kind is not None else default_kind(klass)
        return self._queue.push(time, klass, self._prefix + base, payload)

    def cancel(self, event: Event) -> None:
        self._queue.cancel(event)


class _NamespacedProcess:
    """Wrap a :class:`SimProcess` so its pushes land in the namespace."""

    __slots__ = ("_process", "_queue")

    def __init__(self, process: SimProcess, queue: _NamespacedQueue) -> None:
        self._process = process
        self._queue = queue

    def next_event_time(self) -> Optional[int]:
        return self._process.next_event_time()

    def advance_to(self, now: int, queue: EventQueue) -> None:
        del queue  # the namespaced adapter wraps the same heap
        self._process.advance_to(now, self._queue)  # type: ignore[arg-type]


class ShardKernelView:
    """One shard's private window onto the shared federation kernel.

    Duck-type compatible with the :class:`SimKernel` surface the online
    layers use (``now``, ``register``, ``schedule``, ``add_process``,
    ``queue``), but every kind string is transparently prefixed
    ``shard<K>.`` so any number of shards can wire their full online
    stacks onto one kernel without handler collisions.

    Args:
        kernel: the shared federation kernel.
        shard_id: namespace key; must be unique per federation.
    """

    __slots__ = ("kernel", "prefix", "queue")

    def __init__(self, kernel: SimKernel, shard_id: int) -> None:
        self.kernel = kernel
        self.prefix = f"shard{shard_id}."
        self.queue = _NamespacedQueue(kernel.queue, self.prefix)

    @property
    def now(self) -> int:
        """The shared simulation clock (shards never have private time)."""
        return self.kernel.now

    def register(self, kind: str, handler: Callable[[Event], None]) -> None:
        """Bind ``handler`` to this shard's namespaced ``kind``."""
        self.kernel.register(self.prefix + kind, handler)

    def add_process(self, process: SimProcess) -> None:
        """Attach an event source whose pushes are namespaced."""
        self.kernel.add_process(_NamespacedProcess(process, self.queue))

    def schedule(
        self,
        time: int,
        klass: EventClass,
        kind: Optional[str] = None,
        payload: Any = None,
    ) -> Event:
        """Enqueue a namespaced event on the shared queue."""
        return self.queue.push(time, klass, kind, payload)
