"""One shard: a full online scheduling stack over a capacity slice.

A :class:`Shard` owns everything a standalone
:class:`~repro.streaming.StreamingSimulator` run owns — execution,
policy, streaming reporting, admission backpressure — wired onto a
:class:`~repro.federation.kernelview.ShardKernelView` instead of a
private kernel, so the federation's shards cooperate on one shared
deterministic event loop.  The shard is also the fault domain boundary:
its :class:`~repro.faults.plan.FaultPlan` is validated against (and its
crashes can only shrink) this shard's capacities.

:class:`ShardSpec` is the declarative form (capacities, ranker,
optional rescheduler/admission/faults) the engine instantiates per run;
:func:`split_capacities` partitions a global capacity vector into
near-equal shard slices (remainder slots to the low shard ids).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple, cast

from ..cluster.resources import validate_demands
from ..dag.graph import TaskGraph
from ..errors import CapacityError, ConfigError
from ..faults.plan import FaultPlan
from ..online.execution import ActiveJob, ExecutionLayer
from ..online.policy import PolicyLayer
from ..online.rankers import Ranker
from ..schedulers.base import Scheduler
from ..sim import SimKernel
from ..streaming.admission import AdmissionConfig, AdmissionController, QueuedJob
from ..streaming.reporting import StreamingReportingLayer
from ..telemetry import runtime as _telemetry
from .kernelview import ShardKernelView

__all__ = ["Shard", "ShardSpec", "split_capacities"]


@dataclass(frozen=True)
class ShardSpec:
    """Declarative configuration of one shard.

    Attributes:
        capacities: this shard's slice of the cluster, per resource.
        ranker: base dispatch order inside the shard.
        rescheduler: optional context-aware scheduler replanning the
            shard's residual DAGs (any registry spec composition).
        admission: shard-local backpressure; ``None`` admits everything.
        faults: shard-local fault plan — the fault *domain*: its crashes
            shrink only this shard's capacity.
    """

    capacities: Tuple[int, ...]
    ranker: Ranker
    rescheduler: Optional[Scheduler] = None
    admission: Optional[AdmissionConfig] = None
    faults: Optional[FaultPlan] = None

    def __post_init__(self) -> None:
        if not self.capacities or any(c < 1 for c in self.capacities):
            raise ConfigError(
                f"shard capacities must be positive, got {self.capacities}"
            )


def split_capacities(total: Sequence[int], shards: int) -> List[Tuple[int, ...]]:
    """Partition ``total`` into ``shards`` near-equal slices.

    Each dimension is divided evenly; the remainder goes one slot at a
    time to the lowest shard ids.  Every slice must keep at least one
    slot per dimension (a zero-capacity shard can run nothing).

    Raises:
        ConfigError: if ``shards`` < 1 or any dimension is too small to
            give every shard a slot.
    """
    if shards < 1:
        raise ConfigError(f"need at least one shard, got {shards}")
    caps = tuple(int(c) for c in total)
    if any(c < shards for c in caps):
        raise ConfigError(
            f"cannot split capacities {caps} into {shards} shards: "
            "every shard needs >= 1 slot per dimension"
        )
    slices = []
    for k in range(shards):
        slices.append(
            tuple(c // shards + (1 if k < c % shards else 0) for c in caps)
        )
    return slices


class Shard:
    """The live state of one scheduling domain inside a federation.

    Args:
        shard_id: stable identity; also the kind-namespace key and every
            deterministic tie-break's last resort.
        spec: the shard's declarative configuration.
        kernel: the shared federation kernel.
        tm: telemetry pipeline facade.
        start: the stream's first arrival (reporting origin).
        offset: global task-handle stride (shared across shards so a
            job keeps its handle identity when stolen).
    """

    def __init__(
        self,
        shard_id: int,
        spec: ShardSpec,
        kernel: SimKernel,
        tm: _telemetry.TelemetryLike,
        start: int,
        offset: int,
    ) -> None:
        self.id = shard_id
        self.spec = spec
        self.capacities = spec.capacities
        self.view = ShardKernelView(kernel, shard_id)
        # The online layers only use the SimKernel surface the view
        # reproduces (now/register/schedule/add_process/queue).
        view = cast(SimKernel, self.view)
        self.reporting = StreamingReportingLayer(spec.capacities, tm, start_time=start)
        self.execution = ExecutionLayer(
            spec.capacities, view, self.reporting, offset, spec.faults
        )
        self.policy = PolicyLayer(spec.ranker, spec.rescheduler, view, self.execution)
        self.execution.policy = self.policy
        self.reporting.exec_label = self.policy.exec_label
        self.admission = AdmissionController(spec.admission)
        self.routed = 0
        self.stolen_in = 0
        self.stolen_out = 0

    # ------------------------------------------------------------------ #
    # load metrics (router and stealer inputs)
    # ------------------------------------------------------------------ #

    def load(self) -> int:
        """Jobs bound to this shard: active plus backlogged."""
        return len(self.execution.active) + len(self.admission.backlog)

    def task_load(self) -> int:
        """Remaining tasks bound to this shard (finer-grained load)."""
        active = sum(job.remaining for job in self.execution.active.values())
        backlog = sum(q.graph.num_tasks for q in self.admission.backlog)
        return active + backlog

    def in_system(self) -> int:
        """Alias of :meth:`load` named for the sampling ledger."""
        return self.load()

    # ------------------------------------------------------------------ #
    # admission plumbing (mirrors the streaming workload layer)
    # ------------------------------------------------------------------ #

    def feasibility(self, graph: TaskGraph) -> Optional[str]:
        """Reason this shard can never run ``graph``, or ``None`` if it can.

        Checked against *nominal* capacities — the placement contract —
        exactly as the streaming workload layer checks arrivals.
        """
        if graph.num_resources != len(self.capacities):
            return (
                f"job has {graph.num_resources} resource dims, "
                f"cluster has {len(self.capacities)}"
            )
        try:
            for task in graph:
                validate_demands(task.demands, self.capacities, label=task.label())
        except (CapacityError, ConfigError) as exc:
            return str(exc)
        return None

    def can_host_now(self, graph: TaskGraph) -> bool:
        """True when every task fits this shard's *current* capacities.

        The rescue check: after a permanent crash the nominal contract
        may hold while the realized pool cannot run the job (or vice
        versa on another, intact shard).
        """
        capacities = tuple(self.execution.state.capacities)
        if graph.num_resources != len(capacities):
            return False
        try:
            for task in graph:
                validate_demands(task.demands, capacities, label=task.label())
        except (CapacityError, ConfigError):
            return False
        return True

    def admit(self, queued: QueuedJob, admit_at: int) -> ActiveJob:
        """Admit a job into this shard's execution layer."""
        job = self.execution.admit(queued.index, queued.arrival_time, queued.graph)
        self.reporting.record_admission(queued.index, admit_at)
        self.policy.on_admit(job)
        return job

    def release_backlog(self, now: int) -> None:
        """Admit backlogged jobs freed by departures at the settled instant."""
        if not self.admission.backlog:
            return
        released = self.admission.release(len(self.execution.active))
        for queued in released:
            self.admit(queued, now)

    def would_admit(self) -> bool:
        """True when an offer right now would be an immediate ADMIT."""
        limit = self.admission.config.max_concurrent
        return limit is None or (
            len(self.execution.active) < limit and not self.admission.backlog
        )
