"""Federation results: per-shard views, the aggregate, the comparison.

The aggregate of a federated run is assembled as a genuine
:class:`~repro.streaming.results.StreamingResult` — same outcome
ordering, same utilization formulas over the summed slot-time
integrals, same rejection/arrival ledger semantics — so everything that
consumes streaming results (metrics schema, gates, reports) consumes
federation results unchanged, and the 1-shard equivalence property can
pin the federation as a strict superset by comparing results for
*equality*.

:class:`FederationResult` wraps the aggregate with the federation-only
accounting: one :class:`ShardReport` per shard (its shard-local
streaming view plus routing/stealing counters) and the full ordered
steal record.  :class:`FederationComparison` pairs a federated run with
an equal-total-capacity single-scheduler baseline for the
``--compare-global`` CLI artifact.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, List, Sequence, Tuple

from ..faults.events import FaultEvent
from ..online.results import OnlineResult
from ..streaming.results import RejectedJob, StreamingResult
from .ledger import FROM_ADMITTED, FROM_BACKLOG, RESCUE, FederationLedger, StealRecord
from .shard import Shard

__all__ = [
    "FederationComparison",
    "FederationResult",
    "ShardReport",
    "aggregate_result",
]


@dataclass(frozen=True)
class ShardReport:
    """One shard's view of a federated run.

    Attributes:
        shard_id: stable shard identity.
        capacities: the shard's nominal capacity slice.
        result: the shard-local streaming result (outcomes, utilization
            integrals, fault record of *this* fault domain).  Its
            ``arrivals`` field is 0 — arrivals are federation-level.
        routed: jobs the router placed here.
        stolen_in: jobs migrated in by the work stealer.
        stolen_out: jobs migrated away by the work stealer.
    """

    shard_id: int
    capacities: Tuple[int, ...]
    result: StreamingResult
    routed: int
    stolen_in: int
    stolen_out: int


def aggregate_result(
    shards: Sequence[Shard],
    ledger: FederationLedger,
    makespan: int,
    start: int,
) -> StreamingResult:
    """Merge the shards' ledgers into one streaming-equivalent result.

    Every formula mirrors
    :meth:`repro.online.reporting.ReportingLayer.finalize` /
    :meth:`~repro.streaming.reporting.StreamingReportingLayer.finalize_streaming`
    over the *summed* busy/capacity integrals, which is what makes the
    1-shard aggregate equal (not merely equivalent) to a standalone
    streaming run.
    """
    dims = len(shards[0].capacities)
    nominal_caps = [0] * dims
    busy = [0] * dims
    cap_area = [0] * dims
    outcomes = []
    executed_by_index: Dict[int, Any] = {}
    admit_times: Dict[int, int] = {}
    tagged_faults: List[Tuple[int, int, int, FaultEvent]] = []
    rejections: List[RejectedJob] = list(ledger.rejections)
    crashes = recoveries = retries = 0

    for shard in shards:
        reporting = shard.reporting
        reporting.account(shard.execution.state, makespan)
        for r in range(dims):
            nominal_caps[r] += reporting.nominal_capacities[r]
            busy[r] += reporting.busy_area[r]
            cap_area[r] += reporting.capacity_area[r]
        outcomes.extend(reporting.outcomes)
        executed_by_index.update(reporting.executed)
        admit_times.update(reporting.admit_times)
        for idx, event in enumerate(reporting.fault_events):
            tagged_faults.append((event.time, shard.id, idx, event))
        rejections.extend(reporting.rejections)
        fstate = shard.execution.fstate
        if fstate is not None:
            crashes += fstate.crashes
            recoveries += fstate.recoveries
            retries += fstate.total_retries

    horizon = max(1, makespan - start)
    nominal = tuple(busy[r] / (horizon * nominal_caps[r]) for r in range(dims))
    effective = tuple(
        busy[r] / cap_area[r] if cap_area[r] > 0 else nominal[r]
        for r in range(dims)
    )
    outcomes.sort(key=lambda o: o.job_index)
    tagged_faults.sort(key=lambda t: (t[0], t[1], t[2]))
    rejections.sort(key=lambda r: r.index)
    online = OnlineResult(
        outcomes=tuple(outcomes),
        makespan=makespan,
        mean_utilization=effective,
        nominal_utilization=nominal,
        crashes=crashes,
        recoveries=recoveries,
        total_retries=retries,
        fault_events=tuple(event for _, _, _, event in tagged_faults),
        executed=tuple(executed_by_index[o.job_index] for o in outcomes),
    )
    delays = tuple(admit_times[o.job_index] - o.arrival_time for o in outcomes)
    return StreamingResult(
        online=online,
        queueing_delays=delays,
        rejected=tuple(rejections),
        in_system=tuple(ledger.in_system_series),
        arrivals=ledger.arrivals_seen,
        start_time=start,
        horizon_cutoff=(
            ledger.horizon_cutoff if ledger.horizon_cutoff is not None else -1
        ),
    )


@dataclass(frozen=True)
class FederationResult:
    """Aggregate outcome of one federated run.

    Attributes:
        aggregate: the federation-wide streaming-equivalent result.
        shards: per-shard views, ascending shard id.
        steals: every cross-shard migration, in occurrence order.
        router: the routing policy's name.
        steal_threshold: the configured imbalance threshold, or -1 when
            stealing was disabled.
    """

    aggregate: StreamingResult
    shards: Tuple[ShardReport, ...]
    steals: Tuple[StealRecord, ...]
    router: str
    steal_threshold: int = -1

    def steal_counts(self) -> Dict[str, int]:
        """Migration counts by candidate source."""
        counts = {FROM_BACKLOG: 0, FROM_ADMITTED: 0, RESCUE: 0}
        for steal in self.steals:
            counts[steal.source] = counts.get(steal.source, 0) + 1
        return counts

    def metrics_dict(self) -> Dict[str, Any]:
        """Deterministic JSON-ready summary: streaming schema + shards."""
        base = self.aggregate.metrics_dict()
        base["federation"] = {
            "router": self.router,
            "steal_threshold": self.steal_threshold,
            "steals": {"total": len(self.steals), **self.steal_counts()},
            "shards": [
                {
                    "id": report.shard_id,
                    "capacities": list(report.capacities),
                    "routed": report.routed,
                    "admitted": report.result.admitted,
                    "completed": report.result.online.completed_jobs,
                    "failed": report.result.online.failed_jobs,
                    "rejected": len(report.result.rejected),
                    "stolen_in": report.stolen_in,
                    "stolen_out": report.stolen_out,
                    "utilization": list(report.result.online.mean_utilization),
                    "p99_jct": report.result.p99_jct,
                }
                for report in self.shards
            ],
        }
        return base

    def report(self) -> str:
        """Plain-text operator summary: aggregate plus per-shard lines."""
        lines = [self.aggregate.report()]
        counts = self.steal_counts()
        lines.append(
            f"federation: {len(self.shards)} shards, router {self.router}, "
            f"steals {len(self.steals)} "
            f"(backlog {counts[FROM_BACKLOG]}, admitted {counts[FROM_ADMITTED]}, "
            f"rescue {counts[RESCUE]})"
        )
        for report in self.shards:
            util = "/".join(
                f"{u:.0%}" for u in report.result.online.mean_utilization
            )
            lines.append(
                f"  shard {report.shard_id} {report.capacities}: "
                f"routed {report.routed} admitted {report.result.admitted} "
                f"completed {report.result.online.completed_jobs} "
                f"failed {report.result.online.failed_jobs} "
                f"steal +{report.stolen_in}/-{report.stolen_out} "
                f"util {util} p99 {report.result.p99_jct:.0f}"
            )
        return "\n".join(lines)


@dataclass(frozen=True)
class FederationComparison:
    """A federated run against its equal-capacity global baseline.

    The baseline is a single :class:`~repro.streaming.StreamingSimulator`
    over the *total* capacity vector, same arrival stream, same fault
    spec — the "one big scheduler" the federation trades against.
    """

    federation: FederationResult
    global_run: StreamingResult

    def metrics_dict(self) -> Dict[str, Any]:
        fed = self.federation.aggregate
        glob = self.global_run
        return {
            "schema": 1,
            "mode": "federation_vs_global",
            "federation": self.federation.metrics_dict(),
            "global": glob.metrics_dict(),
            "delta": {
                "p99_jct": fed.p99_jct - glob.p99_jct,
                "mean_jct": (
                    (fed.online.mean_jct if fed.online.outcomes else 0.0)
                    - (glob.online.mean_jct if glob.online.outcomes else 0.0)
                ),
                "throughput_jobs_per_slot": fed.throughput - glob.throughput,
                "completed": fed.online.completed_jobs - glob.online.completed_jobs,
            },
        }

    def report(self) -> str:
        fed = self.federation.aggregate
        glob = self.global_run
        return "\n".join(
            [
                "== federation ==",
                self.federation.report(),
                "== global baseline ==",
                glob.report(),
                "== delta (federation - global) ==",
                f"p99 JCT {fed.p99_jct - glob.p99_jct:+.0f} slots | "
                f"throughput {fed.throughput - glob.throughput:+.4f} jobs/slot | "
                f"completed {fed.online.completed_jobs - glob.online.completed_jobs:+d}",
            ]
        )
