"""Routing policies: which shard an arriving job is placed on.

A :class:`Router` maps each routable arrival to one of the shards that
can feasibly run it.  Routing fires as a ``ROUTE`` kernel event (class
5 — after every same-instant ``ARRIVAL``, before ``STEAL`` and
``REPLAN``), so a policy reads fully settled shard loads and two runs
of the same spec route identically.

Policies, selectable by ``"policy:key=val,..."`` spec strings via
:func:`parse_router_spec`:

* ``round-robin`` — cycle through the feasible shards in arrival
  order; the trivial policy (and the 1-shard equivalence pin's router);
* ``least-load:metric=jobs|tasks`` — the shard with the lowest load
  (jobs in system, or remaining tasks), lowest id on ties;
* ``hash:salt=N`` — stateless deterministic spreading by a Knuth
  multiplicative mix of the arrival index (never Python's ``hash()``,
  which is process-randomized);
* ``affinity:spill=N`` — locality: arrival ``i`` homes on shard
  ``i % num_shards``; with ``spill=`` set, a home already carrying at
  least ``N`` jobs overflows to the least-loaded feasible shard.

No policy ever invents randomness: every choice is a pure function of
(arrival index, shard loads, shard ids).
"""

from __future__ import annotations

from typing import Dict, Optional, Protocol, Sequence

from ..errors import ConfigError
from ..online.results import ArrivingJob
from .shard import Shard

__all__ = [
    "AffinityRouter",
    "HashRouter",
    "LeastLoadedRouter",
    "RoundRobinRouter",
    "Router",
    "parse_router_spec",
]


class Router(Protocol):
    """Placement policy: pick one feasible shard per routable arrival."""

    name: str

    def route(
        self,
        index: int,
        job: ArrivingJob,
        feasible: Sequence[Shard],
        num_shards: int,
    ) -> Shard:
        """Choose among ``feasible`` (nonempty, ascending shard id).

        Args:
            index: arrival index of the job (the stream position).
            job: the arriving job (graph and arrival time).
            feasible: shards whose capacities can run every task.
            num_shards: size of the whole shard universe (affinity
                homes are computed over it, not the feasible subset).
        """


class RoundRobinRouter:
    """Cycle through feasible shards; position advances per routed job."""

    name = "round-robin"

    def __init__(self) -> None:
        self._next = 0

    def route(
        self,
        index: int,
        job: ArrivingJob,
        feasible: Sequence[Shard],
        num_shards: int,
    ) -> Shard:
        del index, job, num_shards
        shard = feasible[self._next % len(feasible)]
        self._next += 1
        return shard


class LeastLoadedRouter:
    """Lowest load wins; ties break to the lowest shard id.

    Args:
        metric: ``"jobs"`` counts jobs in system (active + backlog);
            ``"tasks"`` counts remaining tasks, which weighs wide DAGs
            more honestly under heterogeneous job sizes.
    """

    name = "least-load"

    def __init__(self, metric: str = "jobs") -> None:
        if metric not in ("jobs", "tasks"):
            raise ConfigError(
                f"least-load metric must be jobs or tasks, got {metric!r}"
            )
        self.metric = metric

    def _load(self, shard: Shard) -> int:
        return shard.load() if self.metric == "jobs" else shard.task_load()

    def route(
        self,
        index: int,
        job: ArrivingJob,
        feasible: Sequence[Shard],
        num_shards: int,
    ) -> Shard:
        del index, job, num_shards
        return min(feasible, key=lambda s: (self._load(s), s.id))


class HashRouter:
    """Stateless spreading by a multiplicative hash of the arrival index.

    Args:
        salt: mixed into the hash so distinct federations decorrelate.
    """

    name = "hash"

    _KNUTH = 2654435761  # golden-ratio multiplier, 2**32 scale

    def __init__(self, salt: int = 0) -> None:
        self.salt = int(salt)

    def route(
        self,
        index: int,
        job: ArrivingJob,
        feasible: Sequence[Shard],
        num_shards: int,
    ) -> Shard:
        del job, num_shards
        mixed = ((index + self.salt) * self._KNUTH) % (2**32)
        return feasible[mixed % len(feasible)]


class AffinityRouter:
    """Locality first: arrival ``i`` homes on shard ``i % num_shards``.

    Args:
        spill: when set, a home shard already at ``spill`` or more jobs
            in system overflows the arrival to the least-loaded feasible
            shard (load-aware escape hatch for hot homes).
    """

    name = "affinity"

    def __init__(self, spill: Optional[int] = None) -> None:
        if spill is not None and spill < 1:
            raise ConfigError(f"affinity spill must be >= 1, got {spill}")
        self.spill = spill

    def route(
        self,
        index: int,
        job: ArrivingJob,
        feasible: Sequence[Shard],
        num_shards: int,
    ) -> Shard:
        del job
        home_id = index % num_shards
        home = next((s for s in feasible if s.id == home_id), None)
        if home is not None and (self.spill is None or home.load() < self.spill):
            return home
        return min(feasible, key=lambda s: (s.load(), s.id))


def _parse_options(raw: str, spec: str) -> Dict[str, str]:
    options: Dict[str, str] = {}
    for part in [p.strip() for p in raw.split(",") if p.strip()]:
        if "=" not in part:
            raise ConfigError(
                f"router option {part!r} in {spec!r} is not key=value"
            )
        key, _, value = part.partition("=")
        options[key.strip()] = value.strip()
    return options


def _pop_int(options: Dict[str, str], key: str, spec: str) -> int:
    try:
        return int(options.pop(key))
    except ValueError as exc:
        raise ConfigError(f"router spec {spec!r}: bad integer for {key}") from exc


def parse_router_spec(spec: str) -> Router:
    """Build a :class:`Router` from a ``policy:key=value,...`` spec.

    Supported policies::

        round-robin                 cycle through feasible shards
        least-load:metric=jobs      lowest load (metric: jobs|tasks)
        hash:salt=7                 stateless index hashing
        affinity:spill=4            index % shards, spill when hot

    Raises:
        ConfigError: on unknown policies, unknown keys, or bad values.
    """
    kind, _, raw = spec.partition(":")
    kind = kind.strip()
    options = _parse_options(raw, spec)
    router: Router
    if kind == "round-robin":
        router = RoundRobinRouter()
    elif kind == "least-load":
        router = LeastLoadedRouter(metric=options.pop("metric", "jobs"))
    elif kind == "hash":
        salt = _pop_int(options, "salt", spec) if "salt" in options else 0
        router = HashRouter(salt=salt)
    elif kind == "affinity":
        spill = _pop_int(options, "spill", spec) if "spill" in options else None
        router = AffinityRouter(spill=spill)
    else:
        raise ConfigError(
            f"unknown router policy {kind!r}; expected round-robin, "
            "least-load, hash or affinity"
        )
    if options:
        raise ConfigError(
            f"unknown router option(s) {sorted(options)} in {spec!r}"
        )
    return router
