"""Routing policies: which shard an arriving job is placed on.

A :class:`Router` maps each routable arrival to one of the shards that
can feasibly run it.  Routing fires as a ``ROUTE`` kernel event (class
5 — after every same-instant ``ARRIVAL``, before ``STEAL`` and
``REPLAN``), so a policy reads fully settled shard loads and two runs
of the same spec route identically.

Policies, selectable by ``"policy:key=val,..."`` spec strings via
:func:`parse_router_spec`:

* ``round-robin`` — cycle through the feasible shards in arrival
  order; the trivial policy (and the 1-shard equivalence pin's router);
* ``least-load:metric=jobs|tasks`` — the shard with the lowest load
  (jobs in system, or remaining tasks), lowest id on ties;
* ``hash:salt=N`` — stateless deterministic spreading by a Knuth
  multiplicative mix of the arrival index (never Python's ``hash()``,
  which is process-randomized);
* ``affinity:spill=N`` — locality: arrival ``i`` homes on shard
  ``i % num_shards``; with ``spill=`` set, a home already carrying at
  least ``N`` jobs overflows to the least-loaded feasible shard.

No policy ever invents randomness: every choice is a pure function of
(arrival index, shard loads, shard ids).
"""

from __future__ import annotations

from typing import Any, Optional, Protocol, Sequence

from ..errors import ConfigError
from ..online.results import ArrivingJob
from ..specs import (
    ROUTER_GRAMMAR,
    ROUTER_SPEC_SCHEMAS,
    pop_option,
    reject_unknown_options,
    tokenize_spec,
    unknown_kind_error,
)
from .shard import Shard

__all__ = [
    "AffinityRouter",
    "HashRouter",
    "LeastLoadedRouter",
    "RoundRobinRouter",
    "Router",
    "parse_router_spec",
]


class Router(Protocol):
    """Placement policy: pick one feasible shard per routable arrival."""

    name: str

    def route(
        self,
        index: int,
        job: ArrivingJob,
        feasible: Sequence[Shard],
        num_shards: int,
    ) -> Shard:
        """Choose among ``feasible`` (nonempty, ascending shard id).

        Args:
            index: arrival index of the job (the stream position).
            job: the arriving job (graph and arrival time).
            feasible: shards whose capacities can run every task.
            num_shards: size of the whole shard universe (affinity
                homes are computed over it, not the feasible subset).
        """


class RoundRobinRouter:
    """Cycle through feasible shards; position advances per routed job."""

    name = "round-robin"

    def __init__(self) -> None:
        self._next = 0

    def route(
        self,
        index: int,
        job: ArrivingJob,
        feasible: Sequence[Shard],
        num_shards: int,
    ) -> Shard:
        del index, job, num_shards
        shard = feasible[self._next % len(feasible)]
        self._next += 1
        return shard


class LeastLoadedRouter:
    """Lowest load wins; ties break to the lowest shard id.

    Args:
        metric: ``"jobs"`` counts jobs in system (active + backlog);
            ``"tasks"`` counts remaining tasks, which weighs wide DAGs
            more honestly under heterogeneous job sizes.
    """

    name = "least-load"

    def __init__(self, metric: str = "jobs") -> None:
        if metric not in ("jobs", "tasks"):
            raise ConfigError(
                f"least-load metric must be jobs or tasks, got {metric!r}"
            )
        self.metric = metric

    def _load(self, shard: Shard) -> int:
        return shard.load() if self.metric == "jobs" else shard.task_load()

    def route(
        self,
        index: int,
        job: ArrivingJob,
        feasible: Sequence[Shard],
        num_shards: int,
    ) -> Shard:
        del index, job, num_shards
        return min(feasible, key=lambda s: (self._load(s), s.id))


class HashRouter:
    """Stateless spreading by a multiplicative hash of the arrival index.

    Args:
        salt: mixed into the hash so distinct federations decorrelate.
    """

    name = "hash"

    _KNUTH = 2654435761  # golden-ratio multiplier, 2**32 scale

    def __init__(self, salt: int = 0) -> None:
        self.salt = int(salt)

    def route(
        self,
        index: int,
        job: ArrivingJob,
        feasible: Sequence[Shard],
        num_shards: int,
    ) -> Shard:
        del job, num_shards
        mixed = ((index + self.salt) * self._KNUTH) % (2**32)
        return feasible[mixed % len(feasible)]


class AffinityRouter:
    """Locality first: arrival ``i`` homes on shard ``i % num_shards``.

    Args:
        spill: when set, a home shard already at ``spill`` or more jobs
            in system overflows the arrival to the least-loaded feasible
            shard (load-aware escape hatch for hot homes).
    """

    name = "affinity"

    def __init__(self, spill: Optional[int] = None) -> None:
        if spill is not None and spill < 1:
            raise ConfigError(f"affinity spill must be >= 1, got {spill}")
        self.spill = spill

    def route(
        self,
        index: int,
        job: ArrivingJob,
        feasible: Sequence[Shard],
        num_shards: int,
    ) -> Shard:
        del job
        home_id = index % num_shards
        home = next((s for s in feasible if s.id == home_id), None)
        if home is not None and (self.spill is None or home.load() < self.spill):
            return home
        return min(feasible, key=lambda s: (s.load(), s.id))


def parse_router_spec(spec: str) -> Router:
    """Build a :class:`Router` from a ``policy:key=value,...`` spec.

    Supported policies::

        round-robin                 cycle through feasible shards
        least-load:metric=jobs      lowest load (metric: jobs|tasks)
        hash:salt=7                 stateless index hashing
        affinity:spill=4            index % shards, spill when hot

    Shared-grammar parsing (:mod:`repro.specs`): option schemas live in
    :data:`repro.specs.ROUTER_SPEC_SCHEMAS` and unknown policies/keys
    come back with did-you-mean suggestions.

    Raises:
        ConfigError: on unknown policies, unknown keys, or bad values.
    """
    kind, options = tokenize_spec(spec, ROUTER_GRAMMAR)

    def _pop(key: str, typ: type, default: Any = None) -> Any:
        return pop_option(
            options, key, typ, spec=spec, grammar=ROUTER_GRAMMAR,
            default=default,
        )

    router: Router
    if kind == "round-robin":
        router = RoundRobinRouter()
    elif kind == "least-load":
        router = LeastLoadedRouter(metric=_pop("metric", str, default="jobs"))
    elif kind == "hash":
        router = HashRouter(salt=_pop("salt", int, default=0))
    elif kind == "affinity":
        router = AffinityRouter(spill=_pop("spill", int))
    else:
        raise unknown_kind_error(kind, ROUTER_SPEC_SCHEMAS, ROUTER_GRAMMAR)
    reject_unknown_options(
        options, ROUTER_SPEC_SCHEMAS[kind], spec=spec, grammar=ROUTER_GRAMMAR
    )
    return router
