"""Federated workload layer: one arrival stream, routed across shards.

The single-scheduler :class:`~repro.streaming.workload.StreamingWorkloadLayer`
couples three decisions at each ``ARRIVAL`` event: feasibility,
admission, execution entry.  A federation splits the first off into its
own kernel event: the ``ARRIVAL`` handler only records the arrival and
schedules a ``ROUTE`` event (class 5) at the same instant.  Because
ROUTE orders *after* ARRIVAL within an instant, every same-instant
arrival is offered before the first placement runs — a load-aware
router sees the settled load picture, never a half-delivered burst.

Placement then works shard-relative:

* a job **no** shard can feasibly run is rejected federation-wide (the
  reason reported is shard 0's, which for equal shards — and for the
  1-shard equivalence pin — is the exact streaming reason string);
* otherwise the configured :class:`~repro.federation.routing.Router`
  picks one feasible shard and the job is offered to *that shard's*
  admission controller: ADMIT enters its execution layer, QUEUE joins
  its backlog, REJECT is shard-local backpressure.

The stream plumbing — exactly one pending scheduled arrival, horizon
``close`` via queue tombstone — is copied from the streaming layer
verbatim so the chained schedule stays order-equivalent.
"""

from __future__ import annotations

from typing import Iterator, List, Optional, Sequence

from ..errors import ConfigError
from ..online.results import ArrivingJob
from ..online.workload import ARRIVAL_KIND
from ..sim import Event, EventClass, SimKernel
from .ledger import FederationLedger
from .routing import Router
from .shard import Shard
from ..streaming.admission import ADMIT, QUEUE, QueuedJob

__all__ = ["ROUTE_KIND", "FederationWorkloadLayer"]

ROUTE_KIND = "federation.route"


class FederationWorkloadLayer:
    """Feeds one open arrival stream through routing into the shards.

    Args:
        first: the already-pulled first job (anchors the kernel clock).
        rest: iterator over the remaining stream, nondecreasing times.
        kernel: the shared federation kernel (unnamespaced: arrivals and
            routes are federation-level events, not shard-level ones).
        shards: the shard universe, ascending id.
        router: placement policy over feasible shards.
        ledger: federation-level bookkeeping.
    """

    def __init__(
        self,
        first: ArrivingJob,
        rest: Iterator[ArrivingJob],
        kernel: SimKernel,
        shards: Sequence[Shard],
        router: Router,
        ledger: FederationLedger,
    ) -> None:
        self.kernel = kernel
        self.shards = list(shards)
        self.router = router
        self.ledger = ledger
        self._rest = rest
        self._next_index = 0
        self._last_arrival = first.arrival_time
        self._pending: Optional[Event] = None
        self._closed = False
        kernel.register(ARRIVAL_KIND, self._on_arrival)
        kernel.register(ROUTE_KIND, self._on_route)
        self._schedule(first)

    # ------------------------------------------------------------------ #
    # stream plumbing (mirrors StreamingWorkloadLayer)
    # ------------------------------------------------------------------ #

    def _schedule(self, job: ArrivingJob) -> None:
        if job.arrival_time < self._last_arrival:
            raise ConfigError(
                f"arrival process went backwards: job {self._next_index} at "
                f"{job.arrival_time} after {self._last_arrival}"
            )
        self._last_arrival = job.arrival_time
        self._pending = self.kernel.schedule(
            job.arrival_time,
            EventClass.ARRIVAL,
            ARRIVAL_KIND,
            (self._next_index, job),
        )
        self._next_index += 1

    def _schedule_next(self) -> None:
        if self._closed:
            return
        job = next(self._rest, None)
        if job is None:
            self._closed = True
            return
        self._schedule(job)

    def close(self, at: int) -> None:
        """Horizon cut-off: tombstone the pending arrival, stop pulling."""
        if self._pending is not None and not self._pending.cancelled:
            self.kernel.queue.cancel(self._pending)
            self.ledger.record_arrival()
            self.ledger.record_rejection(
                self._pending.payload[0],
                self._pending.payload[1].arrival_time,
                "horizon",
            )
        self._pending = None
        self._closed = True
        self.ledger.record_cutoff(at)

    @property
    def pending_arrival_time(self) -> Optional[int]:
        """Due time of the scheduled (not yet fired) arrival, if any."""
        if self._pending is None or self._pending.cancelled:
            return None
        return self._pending.time

    @property
    def has_pending(self) -> bool:
        """Work remains outside the execution layers (stream or backlogs)."""
        if self.pending_arrival_time is not None:
            return True
        return any(shard.admission.backlog for shard in self.shards)

    # ------------------------------------------------------------------ #
    # arrival -> route
    # ------------------------------------------------------------------ #

    def _on_arrival(self, event: Event) -> None:
        self._pending = None
        index, job = event.payload
        self.ledger.record_arrival()
        self.kernel.schedule(
            job.arrival_time, EventClass.ROUTE, ROUTE_KIND, (index, job)
        )
        self._schedule_next()

    def _on_route(self, event: Event) -> None:
        index, job = event.payload
        feasible: List[Shard] = []
        reasons: List[str] = []
        for shard in self.shards:
            reason = shard.feasibility(job.graph)
            if reason is None:
                feasible.append(shard)
            else:
                reasons.append(reason)
        if not feasible:
            # Shard 0's reason: with homogeneous shards every reason is
            # identical, and the 1-shard pin needs the streaming string.
            self.ledger.record_rejection(index, job.arrival_time, reasons[0])
            return
        shard = self.router.route(index, job, feasible, len(self.shards))
        self.ledger.record_route(index, shard.id, job.arrival_time)
        shard.routed += 1
        queued = QueuedJob(index, job.arrival_time, job.graph)
        decision = shard.admission.offer(queued, len(shard.execution.active))
        if decision == ADMIT:
            shard.admit(queued, job.arrival_time)
        elif decision == QUEUE:
            shard.reporting.record_queued(
                index, job.arrival_time, len(shard.admission.backlog)
            )
        else:
            shard.reporting.record_rejection(index, job.arrival_time, "backpressure")
