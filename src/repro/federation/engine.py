"""The federated open-system simulator: shards on one shared kernel.

:class:`FederatedStreamingSimulator` is the multi-scheduler sibling of
:class:`repro.streaming.StreamingSimulator`.  The cluster is partitioned
into shards — each a full online scheduling stack (execution, policy,
reporting, admission) built from a :class:`~repro.federation.shard.ShardSpec`
and wired onto a shard-namespaced view of **one** shared
:class:`~repro.sim.SimKernel` — so all cross-shard interleavings ride
the kernel's total event order and two runs of the same spec are
byte-identical.

The event loop is the streaming loop verbatim, with the per-run
singletons replaced by per-shard iterations (always in ascending shard
id) and two federation-only steps that are exact no-ops for a single
shard:

* **rebalance** — after each settled instant's backlog release, the
  :class:`~repro.federation.stealing.WorkStealer` may migrate jobs from
  the most- to the least-loaded shard (a ``STEAL`` kernel event) before
  the dispatch rounds fill the machines;
* **rescue** — when the federation wedges with a faulted shard
  (``next_event_time() is None`` and some shard carries a permanent
  capacity loss), never-started jobs are moved to shards that can still
  host them before any job is failed.

Because both are no-ops with one shard, a 1-shard federation with the
trivial router reproduces :class:`~repro.streaming.StreamingSimulator`
result-for-result — equality, not similarity — which the property suite
pins across rankers, seeds and fault plans.
"""

from __future__ import annotations

from typing import List, Optional, Sequence, Union

from ..errors import ConfigError, EnvironmentStateError
from ..sim import SimKernel
from ..streaming.arrivals import ArrivalProcess
from ..telemetry import runtime as _telemetry
from ..telemetry.config import TelemetryConfig
from .ledger import FederationLedger
from .results import FederationResult, ShardReport, aggregate_result
from .routing import Router, parse_router_spec
from .shard import Shard, ShardSpec
from .stealing import WorkStealer
from .workload import FederationWorkloadLayer

__all__ = ["FederatedStreamingSimulator"]


class FederatedStreamingSimulator:
    """Continuous-arrival simulation over a sharded federation.

    Args:
        shards: one spec per shard; shard ``k`` gets id ``k``.  All
            shards must agree on the resource dimensionality.
        router: placement policy — a :class:`Router` instance or a
            ``"policy:key=val"`` spec string.
        steal_threshold: migrate work when the jobs-in-system gap
            between the most- and least-loaded shard exceeds this;
            ``None`` disables stealing (and crash rescue) entirely.
        max_steps: global safety cap on settled instants.
        telemetry: where ``federation.*`` events and gauges report;
            ``None`` defers to the globally active pipeline.
    """

    def __init__(
        self,
        shards: Sequence[ShardSpec],
        router: Union[Router, str] = "least-load",
        steal_threshold: Optional[int] = None,
        max_steps: int = 5_000_000,
        telemetry: Optional[TelemetryConfig] = None,
    ) -> None:
        if not shards:
            raise ConfigError("a federation needs at least one shard")
        dims = {len(spec.capacities) for spec in shards}
        if len(dims) > 1:
            raise ConfigError(
                f"shards disagree on resource dimensionality: {sorted(dims)}"
            )
        if steal_threshold is not None and steal_threshold < 0:
            raise ConfigError(
                f"steal threshold must be >= 0, got {steal_threshold}"
            )
        self.specs = list(shards)
        self.router: Router = (
            parse_router_spec(router) if isinstance(router, str) else router
        )
        self.steal_threshold = steal_threshold
        self.max_steps = max_steps
        self.telemetry = telemetry

    def run(
        self,
        arrivals: ArrivalProcess,
        horizon: Optional[int] = None,
    ) -> FederationResult:
        """Run the arrival process to completion (or the horizon).

        Args:
            arrivals: the open workload source, routed across shards.
            horizon: run length in slots from the first arrival; the
                stream is cut off past it (in-flight work drains).

        Raises:
            ConfigError: on an empty stream or invalid limits.
            EnvironmentStateError: if the step cap is exceeded or the
                federation wedges with work it can never place.
        """
        if horizon is not None and horizon < 0:
            raise ConfigError(f"horizon must be >= 0, got {horizon}")
        tm = _telemetry.for_config(self.telemetry)
        with tm.span(
            "federation.run",
            shards=len(self.specs),
            router=self.router.name,
            stealing=self.steal_threshold is not None,
            horizon=-1 if horizon is None else horizon,
        ) as span:
            result = self._run(arrivals, tm, horizon)
            if tm.enabled:
                aggregate = result.aggregate
                span.set(
                    arrivals=aggregate.arrivals,
                    admitted=aggregate.admitted,
                    rejected=len(aggregate.rejected),
                    steals=len(result.steals),
                    makespan=aggregate.online.makespan,
                    p50_jct=aggregate.p50_jct,
                    p99_jct=aggregate.p99_jct,
                )
                tm.inc("federation.jobs", aggregate.arrivals)
        return result

    def _run(
        self,
        arrivals: ArrivalProcess,
        tm: _telemetry.TelemetryLike,
        horizon: Optional[int],
    ) -> FederationResult:
        for spec in self.specs:
            if spec.faults is not None and not spec.faults.is_null:
                spec.faults.validate_against(spec.capacities)

        stream = arrivals.jobs()
        first = next(stream, None)
        if first is None:
            raise ConfigError("arrival process yielded no jobs")
        # One global task-handle stride shared by every shard, so a
        # job's handles survive a cross-shard migration unchanged.
        offset = max(1, arrivals.task_id_bound)
        start = first.arrival_time

        kernel = SimKernel(start=start)
        shards: List[Shard] = [
            Shard(k, spec, kernel, tm, start, offset)
            for k, spec in enumerate(self.specs)
        ]
        ledger = FederationLedger(tm)
        workload = FederationWorkloadLayer(
            first, stream, kernel, shards, self.router, ledger
        )
        stealer = (
            WorkStealer(shards, self.steal_threshold, kernel, ledger)
            if self.steal_threshold is not None and len(shards) > 1
            else None
        )
        cutoff = None if horizon is None else start + horizon

        def any_active() -> bool:
            return any(shard.execution.active for shard in shards)

        def in_system() -> int:
            return sum(shard.in_system() for shard in shards)

        def settle_instant() -> None:
            """Backlog release, rebalance, dispatch — ascending shard id."""
            for shard in shards:
                shard.release_backlog(kernel.now)
            if stealer is not None:
                stealer.maybe_rebalance()
            for shard in shards:
                shard.policy.dispatch_round()
            ledger.sample_in_system(kernel.now, in_system())

        # Settle the opening instant (first arrivals routed, pre-history
        # faults) and fill every shard once before the loop gauges.
        kernel.drain_due()
        if stealer is not None:
            stealer.maybe_rebalance()
        for shard in shards:
            shard.policy.dispatch_round()
        ledger.sample_in_system(kernel.now, in_system())

        steps = 0
        while any_active() or workload.has_pending:
            steps += 1
            if steps > self.max_steps:
                raise EnvironmentStateError("federated simulation exceeded step cap")
            for shard in shards:
                shard.reporting.gauges(shard.execution)
            if cutoff is not None:
                due = workload.pending_arrival_time
                if due is not None and due > cutoff:
                    workload.close(cutoff)
                    if not any_active() and not workload.has_pending:
                        break
            target = kernel.next_event_time()
            if target is None:
                if not any_active() and workload.has_pending:
                    # Everything in flight drained at the last instant;
                    # only shard backlogs remain.  Admit from them now.
                    settle_instant()
                    continue
                if any(shard.execution.fstate is not None for shard in shards):
                    if stealer is not None and stealer.rescue():
                        # Migrated jobs need a dispatch round to start.
                        for shard in shards:
                            shard.policy.dispatch_round()
                        continue
                    # Permanently stuck (e.g. unrecovered capacity loss
                    # below some task's demand): report, don't lose.
                    for shard in shards:
                        if shard.execution.fstate is not None:
                            shard.execution.fail_stuck()
                    continue
                raise EnvironmentStateError(
                    "idle cluster with active jobs but nothing ready: "
                    "inconsistent DAG state"
                )
            for shard in shards:
                shard.reporting.account(shard.execution.state, target)
            kernel.tick_to(target)
            settle_instant()

        makespan = kernel.now
        aggregate = aggregate_result(shards, ledger, makespan, start)
        reports = tuple(
            ShardReport(
                shard_id=shard.id,
                capacities=shard.capacities,
                result=shard.reporting.finalize_streaming(
                    makespan, shard.execution.fstate
                ),
                routed=shard.routed,
                stolen_in=shard.stolen_in,
                stolen_out=shard.stolen_out,
            )
            for shard in shards
        )
        return FederationResult(
            aggregate=aggregate,
            shards=reports,
            steals=tuple(ledger.steals),
            router=self.router.name,
            steal_threshold=(
                self.steal_threshold if self.steal_threshold is not None else -1
            ),
        )
