"""MCTS tree introspection and debugging aids.

``render_tree`` prints the search tree's most-visited spine with per-node
statistics — the practical tool for answering "why did the search commit
this action?" — and ``tree_statistics`` aggregates structural counters
used by tests and tuning sessions.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional

from ..env.actions import PROCESS
from .node import Node

__all__ = ["render_tree", "tree_statistics", "TreeStatistics"]


def _action_label(action: Optional[int]) -> str:
    if action is None:
        return "root"
    if action == PROCESS:
        return "process"
    return f"schedule[{action}]"


def render_tree(
    node: Node,
    max_depth: int = 3,
    max_children: int = 4,
    _indent: str = "",
) -> str:
    """Render the subtree under ``node`` as an indented text outline.

    Children are shown best-max-value first, at most ``max_children`` per
    node, down to ``max_depth`` levels; elided siblings are summarized.
    """

    lines: List[str] = []
    max_v = "-inf" if node.visits == 0 else f"{node.max_value:.1f}"
    lines.append(
        f"{_indent}{_action_label(node.action)}: visits={node.visits} "
        f"max={max_v} mean={node.mean_value:.1f} "
        f"untried={len(node.untried)}"
    )
    if max_depth <= 0 or not node.children:
        return "\n".join(lines)
    ranked = sorted(
        node.children.values(),
        key=lambda ch: (ch.max_value, ch.visits),
        reverse=True,
    )
    for child in ranked[:max_children]:
        lines.append(
            render_tree(child, max_depth - 1, max_children, _indent + "  ")
        )
    hidden = len(ranked) - max_children
    if hidden > 0:
        lines.append(f"{_indent}  ... {hidden} more children")
    return "\n".join(lines)


@dataclass(frozen=True)
class TreeStatistics:
    """Structural counters of one search tree."""

    nodes: int
    max_depth: int
    total_visits: int
    fully_expanded: int
    terminals: int


def tree_statistics(root: Node) -> TreeStatistics:
    """Aggregate counters over the subtree rooted at ``root``."""

    nodes = 0
    max_depth = 0
    fully_expanded = 0
    terminals = 0
    stack = [(root, 0)]
    while stack:
        node, depth = stack.pop()
        nodes += 1
        max_depth = max(max_depth, depth)
        if node.fully_expanded:
            fully_expanded += 1
        if node.is_terminal:
            terminals += 1
        for child in node.children.values():
            stack.append((child, depth + 1))
    return TreeStatistics(
        nodes=nodes,
        max_depth=max_depth,
        total_visits=root.visits,
        fully_expanded=fully_expanded,
        terminals=terminals,
    )
