"""The MCTS scheduler: iterate select / expand / simulate / backpropagate.

For every decision of the episode the search spends the Eq. (4) budget
building (or extending — the chosen child becomes the next root, so the
relevant subtree is reused) a tree of states, then commits the action with
the best exploitation score.  Per Sec. III-C/IV:

* **Selection** descends via Eq. (5) UCB — max value plus a scaled
  exploration term, mean value as tiebreaker.
* **Expansion** pops the highest-priority untried action; the candidate
  set is the environment's filtered action set, and the priority order is
  the pluggable expansion policy (random for pure MCTS, the DRL network
  for Spear).
* **Simulation** plays the pluggable rollout policy to termination; the
  value of the outcome is the *negative makespan*.
* **Backpropagation** folds the value into every ancestor (max + mean).
* The exploration constant is ``exploration_scale x`` a greedy-packing
  makespan estimate of the instance, putting the exploration term on the
  same scale as the exploitation score.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional

from ..config import EnvConfig, MctsConfig
from ..dag.graph import TaskGraph
from ..env.scheduling_env import SchedulingEnv
from ..envarr.backend import AnyEnv, make_env
from ..envarr.batch import BatchedPlayouts
from ..errors import ConfigError
from ..metrics.schedule import Schedule
from ..schedulers.base import Scheduler, ScheduleRequest, _planning_config
from ..telemetry import runtime as _telemetry
from ..utils.rng import SeedLike, as_generator
from ..utils.timing import Stopwatch
from .budget import budget_at_depth
from .introspection import tree_statistics
from .node import Node
from .policies import (
    ExpansionPolicy,
    GreedyRollout,
    RandomExpansion,
    RandomRollout,
    RolloutPolicy,
)

__all__ = ["MctsScheduler", "SearchStatistics"]


@dataclass
class SearchStatistics:
    """Telemetry of one :meth:`MctsScheduler.plan` call."""

    decisions: int = 0
    iterations: int = 0
    rollouts: int = 0
    max_tree_depth: int = 0
    exploration_constant: float = 0.0
    budgets: List[int] = field(default_factory=list)


class MctsScheduler(Scheduler):
    """Monte Carlo Tree Search scheduling (pure MCTS when the policies are
    random; Spear plugs in network-guided policies).

    Args:
        config: search parameters (budgets, filters, UCB variant).
        env_config: cluster shape; ``process_until_completion`` defaults to
            ``True`` here, implementing the Sec. III-C depth reduction
            ("only proceed until at least one task finishes").
        expansion: expansion-ordering policy (default: random).
        rollout: rollout policy (default: random work-conserving play).
        seed: seeds the default policies when they are not given.
        name: report label (default ``"mcts"``).
    """

    def __init__(
        self,
        config: MctsConfig | None = None,
        env_config: EnvConfig | None = None,
        expansion: Optional[ExpansionPolicy] = None,
        rollout: Optional[RolloutPolicy] = None,
        seed: SeedLike = None,
        name: str = "mcts",
        leaf_network=None,
    ) -> None:
        self.config = config if config is not None else MctsConfig()
        if env_config is None:
            env_config = EnvConfig(process_until_completion=True)
        self.env_config = env_config
        rng = as_generator(seed)
        self.expansion = expansion if expansion is not None else RandomExpansion(rng)
        self.rollout = rollout if rollout is not None else RandomRollout(rng)
        #: Policy network whose batched evaluation sets leaf priors in
        #: batched mode (``config.leaf_policy="auto"``); ``None`` keeps
        #: leaf ordering with the expansion policy.
        self.leaf_network = leaf_network
        self.name = name
        self.last_statistics: Optional[SearchStatistics] = None
        # Telemetry scratch state, live only inside one schedule() call.
        self._tm_enabled = False
        self._filter_hits = 0

    # ------------------------------------------------------------------ #

    def plan(self, request: ScheduleRequest) -> Schedule:
        """Search a full schedule for ``request``; statistics are kept in
        :attr:`last_statistics`.

        Replan requests are honoured via their cluster snapshot: when the
        request carries current (e.g. crash-degraded) capacities the
        search plans against them, so the plan stays executable on the
        degraded cluster (see
        :func:`repro.schedulers.base._planning_config` for the fallback
        rules).  ``schedule(graph)`` remains available through the base
        shim.

        When telemetry is active (:mod:`repro.telemetry`), the search
        emits one ``mcts.schedule`` span, one ``mcts.decision`` span per
        committed action (budget spent, tree size/depth, chosen action),
        and the ``mcts.iterations`` / ``mcts.rollouts`` /
        ``mcts.expansion_filter_hits`` counters.  Disabled telemetry
        costs one no-op span per decision — the tree-walk statistics are
        only computed behind the ``enabled`` guard.
        """
        graph = request.graph
        env_config = _planning_config(self.env_config, request)
        stats = SearchStatistics()
        watch = Stopwatch()
        undo_mode = self.config.state_restore == "undo"
        tm = _telemetry.active()
        self._tm_enabled = tm.enabled
        self._filter_hits = 0
        with watch, tm.span(
            "mcts.schedule",
            tasks=graph.num_tasks,
            state_restore=self.config.state_restore,
            scheduler=self.name,
        ) as search_span:
            env = make_env(graph, env_config)
            exploration = self._exploration_constant(graph, stats, env_config)
            # Batched leaf evaluation: collect ``rollout_batch`` leaves
            # under virtual loss, then play all their rollouts in one
            # batched call — the lockstep kernel for the random rollout
            # policy (the kernel implements exactly that policy), or the
            # rollout policy's own ``rollout_many`` (network rollouts
            # amortize their forward passes across the wave the same
            # way).  Requires the array backend; any other combination
            # falls back to the sequential one-leaf-one-rollout loop.
            # Batched collection always works on clone-mode nodes (leaf
            # lanes must be materialized environments), so it overrides
            # ``state_restore="undo"``.
            random_rollout = isinstance(self.rollout, RandomRollout)
            batched = (
                self.config.rollout_batch > 1
                and env_config.backend == "array"
                and (random_rollout or hasattr(self.rollout, "rollout_many"))
            )
            if batched:
                undo_mode = False
            kernel: Optional[BatchedPlayouts] = None
            evaluator = None
            rollout_limit = 0
            if batched:
                if random_rollout:
                    kernel = BatchedPlayouts(
                        env.arrays,
                        env_config.cluster.capacities,
                        until_completion=env_config.process_until_completion,
                        max_ready=env_config.max_ready,
                    )
                rollout_limit = self.rollout._step_limit(env)
                if (
                    self.leaf_network is not None
                    and self.config.leaf_policy == "auto"
                ):
                    from ..rl.evaluator import PolicyEvaluator

                    evaluator = PolicyEvaluator(
                        self.leaf_network,
                        env_config,
                        env.arrays,
                        work_conserving=self.config.use_expansion_filters,
                    )
            root = Node(
                None if undo_mode else env.clone(),
                untried=self._candidates(env),
            )
            depth = 1
            while not env.done:
                budget = (
                    budget_at_depth(
                        self.config.initial_budget, self.config.min_budget, depth
                    )
                    if self.config.use_budget_decay
                    else self.config.initial_budget
                )
                stats.budgets.append(budget)
                with tm.span(
                    "mcts.decision", depth=depth, budget=budget
                ) as decision_span:
                    if batched:
                        self._run_budget_batched(
                            root,
                            exploration,
                            stats,
                            budget,
                            kernel,
                            rollout_limit,
                            evaluator,
                        )
                    elif undo_mode:
                        for _ in range(budget):
                            self._iterate_undo(root, env, exploration, stats)
                            stats.iterations += 1
                    else:
                        for _ in range(budget):
                            self._iterate(root, exploration, stats)
                            stats.iterations += 1
                    if not root.children:
                        # All candidates exhausted without one expansion —
                        # cannot happen while the env is live, but guard.
                        raise ConfigError("MCTS made no progress; zero candidates")
                    chosen = root.exploitation_child(self.config.use_max_value_ucb)
                    if self._tm_enabled:
                        tree = tree_statistics(root)
                        decision_span.set(
                            action=chosen.action,
                            tree_nodes=tree.nodes,
                            tree_depth=tree.max_depth,
                            tree_visits=tree.total_visits,
                        )
                    env.step(chosen.action)
                root = chosen
                root.parent = None  # detach: the subtree is reused
                stats.decisions += 1
                depth += 1
            search_span.set(
                decisions=stats.decisions,
                iterations=stats.iterations,
                rollouts=stats.rollouts,
                budget_spent=sum(stats.budgets),
                max_tree_depth=stats.max_tree_depth,
            )
        if self._tm_enabled:
            tm.inc("mcts.searches")
            tm.inc("mcts.iterations", stats.iterations)
            tm.inc("mcts.rollouts", stats.rollouts)
            tm.inc("mcts.expansion_filter_hits", self._filter_hits)
        self._tm_enabled = False
        self.last_statistics = stats
        stats.exploration_constant = exploration
        return env.to_schedule(scheduler=self.name, wall_time=watch.elapsed)

    # ------------------------------------------------------------------ #

    def _candidates(self, env: AnyEnv) -> List[int]:
        """Expansion candidates after the (configurable) Sec. III-C filters."""
        actions = env.expansion_actions(
            work_conserving=self.config.use_expansion_filters
        )
        if self._tm_enabled and self.config.use_expansion_filters:
            if len(env.legal_actions()) > len(actions):
                self._filter_hits += 1
        return actions

    def _exploration_constant(
        self,
        graph: TaskGraph,
        stats: SearchStatistics,
        env_config: EnvConfig | None = None,
    ) -> float:
        """Scale ``c`` to the instance: greedy-packing makespan estimate
        times the configured multiplier (Sec. IV)."""
        probe = make_env(
            graph, env_config if env_config is not None else self.env_config
        )
        estimate = GreedyRollout().rollout(probe)
        return self.config.exploration_scale * max(1, estimate)

    def _iterate_undo(
        self,
        root: Node,
        env: AnyEnv,
        exploration: float,
        stats: SearchStatistics,
    ) -> None:
        """One budget unit in undo-log mode: the single search environment
        walks down the selected path via ``apply`` and is restored to the
        root state via LIFO ``undo`` — no clone per tree edge.

        Behaviourally identical to :meth:`_iterate` (same node visit
        sequence, same policy/RNG consumption), so the two state-restore
        modes produce bit-identical schedules.
        """
        node = root
        undo_stack = []
        use_max = self.config.use_max_value_ucb
        # Selection: descend while fully expanded and non-terminal.
        while not node.terminal and not node.untried and node.children:
            node = node.best_child(exploration, use_max)
            undo_stack.append(env.apply(node.action))
        # Expansion: realize the most promising untried action.
        if not node.terminal and node.untried:
            if len(node.untried) > 1:
                node.untried = self.expansion.prioritize(env, node.untried)
            action = node.untried.pop(0)
            undo_stack.append(env.apply(action))
            done = env.done
            child = Node(
                None,
                parent=node,
                action=action,
                untried=self._candidates(env) if not done else [],
                terminal=done,
            )
            node.children[action] = child
            node = child
        # Simulation: value = negative makespan.
        if node.terminal:
            value = float(-env.makespan)
        else:
            sim = env.clone()
            value = float(-self.rollout.rollout(sim))
            stats.rollouts += 1
        # Backpropagation.
        depth = 0
        walker: Optional[Node] = node
        while walker is not None:
            walker.update(value)
            walker = walker.parent
            depth += 1
        stats.max_tree_depth = max(stats.max_tree_depth, depth)
        # Restore the environment to the root state.
        while undo_stack:
            env.undo(undo_stack.pop())

    # ----------------------- batched leaf evaluation ------------------ #

    def _run_budget_batched(
        self,
        root: Node,
        exploration: float,
        stats: SearchStatistics,
        budget: int,
        kernel: Optional[BatchedPlayouts],
        rollout_limit: int,
        evaluator=None,
    ) -> None:
        """Spend one decision's budget ``rollout_batch`` leaves at a time.

        Each round collects up to ``rollout_batch`` distinct leaves by
        descending under virtual loss (each selected edge's pending count
        rises, steering later descents elsewhere), then plays every
        non-terminal leaf's rollout in one batched call — the lockstep
        kernel (random rollouts) or the rollout policy's ``rollout_many``
        — and backpropagates the values, clearing the virtual losses on
        the way up.  One collected leaf costs one budget unit, exactly
        like one sequential iteration.

        With a leaf ``evaluator``, each wave's fresh leaves also get
        their ``untried`` candidates ordered by the policy's batched
        priors before the rollouts run (the lanes still hold the leaf
        states then) — one forward pass replaces per-node expansion
        calls.
        """
        spent = 0
        while spent < budget:
            want = min(self.config.rollout_batch, budget - spent)
            leaves: List[Node] = []
            lanes: List[AnyEnv] = []
            while want > 0:
                taken = self._collect_wave(
                    root, exploration, want, leaves, lanes, stats
                )
                spent += taken
                want -= taken
            if lanes:
                if evaluator is not None:
                    priors = evaluator.action_probabilities(lanes)
                    for node, prior in zip(leaves, priors):
                        if len(node.untried) > 1:
                            node.untried.sort(
                                key=lambda a: (-prior.get(a, 0.0), a)
                            )
                        node.ordered = True
                if kernel is not None:
                    rollout_rng = self.rollout._rng  # type: ignore[attr-defined]
                    makespans, _starts = kernel.run(
                        lanes, rollout_rng, rollout_limit
                    )
                else:
                    makespans = self.rollout.rollout_many(lanes, rollout_limit)
                stats.rollouts += len(lanes)
                for node, makespan in zip(leaves, makespans):
                    self._backpropagate(node, float(-int(makespan)), stats)

    def _collect_wave(
        self,
        root: Node,
        exploration: float,
        want: int,
        leaves: List[Node],
        lanes: List[AnyEnv],
        stats: SearchStatistics,
    ) -> int:
        """One virtual-loss descent collecting up to ``want`` leaves.

        Descends to the most promising expandable node, then expands up to
        ``want`` of its untried actions as sibling leaves in one go — the
        same frontier repeated single-leaf descents would reach (virtual
        loss steers consecutive descents into a node's remaining untried
        actions anyway), at one descent's cost instead of ``k``.  Terminal
        leaves are evaluated and backpropagated immediately; the rest are
        appended to ``leaves`` / ``lanes`` for the batched rollout.
        Returns the number of budget units consumed (= leaves collected).
        """
        use_max = self.config.use_max_value_ucb
        node = root
        path: List[Node] = []  # nodes whose vloss this descent incremented
        while not node.terminal and not node.untried and node.children:
            node = node.best_child(exploration, use_max, virtual_loss=True)
            node.vloss += 1
            path.append(node)
        if node.terminal:
            # Re-selected terminal node: one more (immediate) evaluation.
            stats.iterations += 1
            self._backpropagate(node, float(-node.env.makespan), stats)
            return 1
        if not node.untried:
            # Dead end without being terminal cannot happen on a live
            # environment; guard so a livelock is loud, not silent.
            raise ConfigError("MCTS selection reached a non-terminal dead end")
        if len(node.untried) > 1 and not node.ordered:
            node.untried = self.expansion.prioritize(node.env, node.untried)
        taken = 0
        parent_env = node.env
        terminal_children: List[Node] = []
        while node.untried and taken < want:
            action = node.untried.pop(0)
            child_env = parent_env.clone()
            child_env.step(action)
            done = child_env.done
            child = Node(
                child_env,
                parent=node,
                action=action,
                untried=self._candidates(child_env) if not done else [],
                terminal=done,
            )
            node.children[action] = child
            taken += 1
            stats.iterations += 1
            if done:
                terminal_children.append(child)
            else:
                child.vloss += 1
                leaves.append(child)
                lanes.append(child_env)
        # Each of the ``taken`` eventual backpropagations decrements every
        # path node once; the descent incremented them once, so top the
        # path up to keep pending counts balanced across the round.
        if taken > 1 and path:
            extra = taken - 1
            for ancestor in path:
                ancestor.vloss += extra
        for child in terminal_children:
            self._backpropagate(child, float(-child.env.makespan), stats)
        return taken

    def _backpropagate(
        self, node: Node, value: float, stats: SearchStatistics
    ) -> None:
        """Fold one simulation value into the leaf's path, releasing the
        virtual losses the collection pass placed there.

        The statistics fold is ``Node.update`` inlined: this loop runs
        once per tree edge per simulation, and the method call alone is
        measurable at batched-search rates.
        """
        depth = 0
        walker: Optional[Node] = node
        while walker is not None:
            walker.visits += 1
            walker.sum_value += value
            if value > walker.max_value:
                walker.max_value = value
            if walker.vloss:
                walker.vloss -= 1
            walker = walker.parent
            depth += 1
        stats.max_tree_depth = max(stats.max_tree_depth, depth)

    def _iterate(self, root: Node, exploration: float, stats: SearchStatistics) -> None:
        """One budget unit: select, expand, simulate, backpropagate."""
        node = root
        # Selection: descend while fully expanded and non-terminal.
        while not node.is_terminal and node.fully_expanded and node.children:
            node = node.best_child(exploration, self.config.use_max_value_ucb)
        # Expansion: realize the most promising untried action.
        if not node.is_terminal and node.untried:
            if len(node.untried) > 1 and not node.ordered:
                node.untried = self.expansion.prioritize(node.env, node.untried)
            action = node.untried.pop(0)
            child_env = node.env.clone()
            child_env.step(action)
            child = Node(
                child_env,
                parent=node,
                action=action,
                untried=self._candidates(child_env) if not child_env.done else [],
            )
            node.children[action] = child
            node = child
        # Simulation: value = negative makespan.
        if node.is_terminal:
            value = float(-node.env.makespan)
        else:
            sim = node.env.clone()
            value = float(-self.rollout.rollout(sim))
            stats.rollouts += 1
        # Backpropagation.
        depth = 0
        walker: Optional[Node] = node
        while walker is not None:
            walker.update(value)
            walker = walker.parent
            depth += 1
        stats.max_tree_depth = max(stats.max_tree_depth, depth)
