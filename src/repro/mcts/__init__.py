"""Monte Carlo Tree Search for dependency-aware scheduling (Sec. III-C).

The search tree's nodes are environment states (unique action histories);
edges are scheduling/processing actions.  Sec. III-C's adaptations are all
here: event-skipping process transitions, expansion filters, max-value UCB
with mean tiebreak (Eq. 5), an exploration constant scaled by a greedy
makespan estimate, and per-depth budget decay (Eq. 4).
"""

from .node import Node
from .budget import budget_at_depth
from .policies import (
    ExpansionPolicy,
    RolloutPolicy,
    RandomExpansion,
    RandomRollout,
    GreedyRollout,
)
from .search import MctsScheduler, SearchStatistics
from .parallel import RootParallelMcts
from .introspection import render_tree, tree_statistics, TreeStatistics

__all__ = [
    "Node",
    "budget_at_depth",
    "ExpansionPolicy",
    "RolloutPolicy",
    "RandomExpansion",
    "RandomRollout",
    "GreedyRollout",
    "MctsScheduler",
    "SearchStatistics",
    "RootParallelMcts",
    "render_tree",
    "tree_statistics",
    "TreeStatistics",
]
