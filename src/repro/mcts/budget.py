"""The per-depth budget decay of Eq. (4).

"Our strategy is to make the available budget inversely proportional to
the depth of the current node.  Additionally, we also guarantee a minimum
budget for the deeper nodes": ``max(b_initial / d, b_min)``.
"""

from __future__ import annotations

from ..errors import ConfigError

__all__ = ["budget_at_depth"]


def budget_at_depth(initial_budget: int, min_budget: int, depth: int) -> int:
    """Iterations available for the decision at ``depth`` (1-based).

    Args:
        initial_budget: the root decision's budget ``b_initial``.
        min_budget: the floor ``b_min``.
        depth: 1 for the first decision of the episode.

    Raises:
        ConfigError: for a depth below 1 or non-positive budgets.
    """

    if depth < 1:
        raise ConfigError(f"depth must be >= 1, got {depth}")
    if initial_budget < 1 or min_budget < 1:
        raise ConfigError("budgets must be >= 1")
    return max(initial_budget // depth, min_budget)
