"""Search-tree nodes.

Each node represents the environment state reached by a unique action
history ("given the same initial state, we can always reach the same state
given the same sequence of actions", Sec. III-C).  Per Sec. IV, every node
tracks **both** the maximum and the mean of the rollout values observed
through it: selection exploits the maximum (Eq. 5) and breaks ties on the
mean.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional

from ..env.actions import Action
from ..env.scheduling_env import SchedulingEnv

__all__ = ["Node"]


class Node:
    """One state in the MCTS tree.

    Args:
        env: the environment state this node represents (owned: callers
            must pass a clone they will not mutate).  ``None`` in the
            undo-log search mode, where the single search environment is
            re-materialized at a node by replaying the action path — pass
            ``terminal`` explicitly in that case.
        parent: parent node, ``None`` for the root.
        action: the action that led here from the parent.
        untried: expansion candidates not yet turned into children, in
            priority order (the expansion policy decides the order; the
            search pops from the front).
        terminal: whether the node's state is terminal; required (and only
            used) when ``env`` is ``None``.
    """

    __slots__ = (
        "env",
        "parent",
        "action",
        "children",
        "untried",
        "visits",
        "max_value",
        "sum_value",
        "terminal",
        "vloss",
        "ordered",
    )

    def __init__(
        self,
        env: Optional[SchedulingEnv] = None,
        parent: Optional["Node"] = None,
        action: Optional[Action] = None,
        untried: Optional[List[Action]] = None,
        terminal: bool = False,
    ) -> None:
        self.env = env
        self.parent = parent
        self.action = action
        self.children: Dict[Action, "Node"] = {}
        self.untried: List[Action] = list(untried) if untried is not None else []
        self.visits: int = 0
        self.max_value: float = -math.inf
        self.sum_value: float = 0.0
        self.terminal: bool = terminal
        #: Pending virtual losses: number of in-flight (collected but not
        #: yet backpropagated) batched simulations through this node.
        self.vloss: int = 0
        #: True once ``untried`` has been priority-ordered (batched leaf
        #: evaluation sets priors for a whole wave at once; the flag stops
        #: the expansion policy from re-ordering per node).
        self.ordered: bool = False

    # ------------------------------------------------------------------ #

    @property
    def is_terminal(self) -> bool:
        """True iff the underlying episode has finished."""
        if self.env is not None:
            return self.env.done
        return self.terminal

    @property
    def fully_expanded(self) -> bool:
        """True iff every candidate action has a child node."""
        return not self.untried

    @property
    def mean_value(self) -> float:
        """Average rollout value through this node (0 before any visit)."""
        if self.visits == 0:
            return 0.0
        return self.sum_value / self.visits

    def depth(self) -> int:
        """Distance from the tree root (root = 0)."""
        node, distance = self, 0
        while node.parent is not None:
            node = node.parent
            distance += 1
        return distance

    def ucb_score(self, child: "Node", c: float, use_max: bool = True) -> float:
        """Eq. (5): ``max_i + c * sqrt(ln n / n_i)``.

        With ``use_max=False`` falls back to the classic mean-value UCB of
        Eq. (1) (the ablation baseline).  An unvisited child scores
        infinity so it is selected first.
        """
        if child.visits == 0:
            return math.inf
        exploit = child.max_value if use_max else child.mean_value
        explore = c * math.sqrt(math.log(max(self.visits, 1)) / child.visits)
        return exploit + explore

    def best_child(
        self, c: float, use_max: bool = True, virtual_loss: bool = False
    ) -> "Node":
        """Child maximizing :meth:`ucb_score`; mean value breaks ties,
        then visit count, then action id (determinism).

        Hand-rolled argmax over the same key tuple a ``max(..., key=...)``
        would build: ``log(visits)`` is hoisted out of the child loop and
        no per-child lambda frame is allocated — this runs once per edge
        of every selection descent.

        With ``virtual_loss`` (batched leaf collection) each child's
        pending in-flight count depresses its score: in-flight simulations
        inflate the exploration denominator, an unvisited child with
        in-flight work scores ``-inf`` instead of ``inf`` (so one batch
        fans out over distinct leaves), and each pending loss subtracts one
        exploration-scale unit from the exploitation term.  With the flag
        off (every sequential search path) the scoring is bit-identical to
        the pre-virtual-loss implementation.
        """
        if not self.children:
            raise ValueError("node has no children")
        if len(self.children) == 1:
            # Forced move (single-candidate chains are common deep in the
            # tree): the argmax over one child is that child.
            return next(iter(self.children.values()))
        log_n = math.log(self.visits) if self.visits > 1 else 0.0
        sqrt = math.sqrt
        best: Optional["Node"] = None
        best_score = best_mean = -math.inf
        best_visits = 0
        best_neg_action = 0
        for child in self.children.values():
            visits = child.visits
            pending = child.vloss if virtual_loss else 0
            if visits == 0:
                score = -math.inf if pending else math.inf
                mean = 0.0
            else:
                mean = child.sum_value / visits
                exploit = child.max_value if use_max else mean
                score = exploit + c * sqrt(log_n / (visits + pending))
                if pending:
                    score -= c * pending
            # Ordered comparison on (score, mean, visits, -action) without
            # building the key tuple: scores almost always differ, so the
            # tie-break fields are only touched on exact score ties.
            if best is not None:
                if score < best_score:
                    continue
                if score == best_score:
                    if mean < best_mean:
                        continue
                    if mean == best_mean:
                        if visits < best_visits:
                            continue
                        if visits == best_visits:
                            action = child.action
                            neg = -(action if action is not None else 0)
                            if neg <= best_neg_action:
                                continue
            best = child
            best_score = score
            best_mean = mean
            best_visits = visits
            action = child.action
            best_neg_action = -(action if action is not None else 0)
        assert best is not None
        return best

    def exploitation_child(self, use_max: bool = True) -> "Node":
        """Child with the best exploitation score (no exploration term) —
        the action actually committed after the budget is spent."""
        if not self.children:
            raise ValueError("node has no children")
        return max(
            self.children.values(),
            key=lambda ch: (
                (ch.max_value if use_max else ch.mean_value),
                ch.mean_value,
                ch.visits,
                -(ch.action if ch.action is not None else 0),
            ),
        )

    def update(self, value: float) -> None:
        """Fold one rollout outcome into this node's statistics.

        "For each node, the value is updated to be the maximum of current
        value and new value ... we also keep track of the average of all
        relevant simulations to use as a tiebreaker." (Sec. III-C)
        """
        self.visits += 1
        self.sum_value += value
        if value > self.max_value:
            self.max_value = value

    def tree_size(self) -> int:
        """Number of nodes in the subtree rooted here (including self)."""
        total = 1
        for child in self.children.values():
            total += child.tree_size()
        return total

    def __repr__(self) -> str:
        return (
            f"Node(action={self.action}, visits={self.visits}, "
            f"max={self.max_value:.1f}, mean={self.mean_value:.1f}, "
            f"children={len(self.children)}, untried={len(self.untried)})"
        )
