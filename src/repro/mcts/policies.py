"""Expansion and rollout policies for MCTS.

Classic MCTS expands a random untried action and rolls out with a random
policy; Spear replaces both with a trained DRL agent (Sec. III).  The two
protocols here are the seam: :class:`RandomExpansion` / :class:`RandomRollout`
give the pure-MCTS baseline of Sec. V-B2, :class:`GreedyRollout` wraps any
heuristic policy (used both as a rollout and to produce the greedy
makespan estimate that scales the exploration constant), and
:mod:`repro.core.spear` provides the network-guided implementations.
"""

from __future__ import annotations

import abc
from typing import Callable, List

from ..env.actions import Action
from ..env.scheduling_env import SchedulingEnv
from ..schedulers.base import Policy
from ..utils.rng import SeedLike, as_generator

__all__ = [
    "ExpansionPolicy",
    "RolloutPolicy",
    "RandomExpansion",
    "RandomRollout",
    "GreedyRollout",
]


class ExpansionPolicy(abc.ABC):
    """Orders a node's untried actions from most to least promising.

    The search pops candidates from the front of the returned list, so the
    first element is the action expanded next ("the DRL agent will be able
    to choose the best unexplored node").
    """

    @abc.abstractmethod
    def prioritize(self, env: SchedulingEnv, actions: List[Action]) -> List[Action]:
        """Return ``actions`` reordered by descending priority."""


class RolloutPolicy(abc.ABC):
    """Simulates an episode to termination and returns its makespan."""

    @abc.abstractmethod
    def rollout(self, env: SchedulingEnv) -> int:
        """Play ``env`` (mutating it) until done; return the makespan."""


class RandomExpansion(ExpansionPolicy):
    """Classic MCTS: expand untried actions in uniformly random order."""

    def __init__(self, seed: SeedLike = None) -> None:
        self._rng = as_generator(seed)

    def prioritize(self, env: SchedulingEnv, actions: List[Action]) -> List[Action]:
        order = list(actions)
        self._rng.shuffle(order)
        return order


class _PolicyRollout(RolloutPolicy):
    """Shared machinery: run a :class:`Policy` to termination."""

    def __init__(self, policy_factory: Callable[[], Policy], max_steps_factor: int = 50) -> None:
        self._factory = policy_factory
        self._max_steps_factor = max_steps_factor
        self._limit_cache: tuple[object, int] | None = None  # (graph, limit)

    def _step_limit(self, env: SchedulingEnv) -> int:
        """Livelock cap for one episode, memoized per graph instance (MCTS
        runs thousands of rollouts over the same graph)."""
        cached = self._limit_cache
        if cached is not None and cached[0] is env.graph:
            return cached[1]
        limit = self._max_steps_factor * (
            sum(task.runtime for task in env.graph) + env.graph.num_tasks
        )
        self._limit_cache = (env.graph, limit)
        return limit

    def rollout(self, env: SchedulingEnv) -> int:
        policy = self._factory()
        policy.begin_episode(env)
        # Generous cap: a livelocked rollout policy is a bug, not a result.
        limit = self._step_limit(env)
        steps = 0
        while not env.done:
            if steps >= limit:
                raise RuntimeError("rollout exceeded step limit; livelocked policy")
            env.step(policy.select(env))
            steps += 1
        return env.makespan


class RandomRollout(_PolicyRollout):
    """Classic MCTS rollout: uniformly random work-conserving play."""

    def __init__(self, seed: SeedLike = None) -> None:
        from ..schedulers.policies import RandomPolicy

        rng = as_generator(seed)
        self._rng = rng
        super().__init__(lambda: RandomPolicy(seed=rng))

    def rollout(self, env: SchedulingEnv) -> int:
        """Delegate to the environment's fused random-playout loop.

        :meth:`SchedulingEnv.random_playout` is semantically identical to
        the generic :class:`_PolicyRollout` loop over
        ``RandomPolicy(work_conserving=True)`` — same action trajectory
        and the exact same RNG stream — but fuses the whole episode into
        one call (the equivalence tests compare final states and generator
        states).  MCTS runs thousands of these per decision; it is the
        single hottest path in the library.
        """
        return env.random_playout(self._rng, self._step_limit(env))


class GreedyRollout(_PolicyRollout):
    """Rollout with a deterministic heuristic policy.

    Used for the greedy-packing makespan estimate that scales the UCB
    exploration constant (Sec. IV), and available as a stronger-than-random
    rollout in ablations.

    Args:
        policy_factory: builds the heuristic (default: Tetris packing).
    """

    def __init__(self, policy_factory: Callable[[], Policy] | None = None) -> None:
        if policy_factory is None:
            from ..schedulers.tetris import TetrisPolicy

            policy_factory = TetrisPolicy
        super().__init__(policy_factory)
