"""Root-parallel MCTS.

Sec. V-B1 notes that scheduling time "can also use multiprocessing
techniques ... as MCTS can easily be parallelized [16]".  This module
implements the standard *root parallelization*: ``workers`` independent
searches run over the same instance with derived seeds (in separate
processes when ``use_processes`` is set, else sequentially — useful for
deterministic tests), and the best schedule found is returned.

Root parallelization is embarrassingly parallel and, unlike tree
parallelization, requires no locking; with k workers it explores k times
the budget in roughly constant wall-clock, trading diversity for depth
exactly as Chaslot et al. [16] describe.
"""

from __future__ import annotations

from typing import Tuple

from ..config import EnvConfig, MctsConfig
from ..dag.io import graph_from_dict, graph_to_dict
from ..errors import ConfigError
from ..metrics.schedule import Schedule
from ..schedulers.base import Scheduler, ScheduleRequest, _planning_config
from ..telemetry import runtime as _telemetry
from ..utils.rng import SeedLike, as_generator, derive_seed
from ..utils.timing import Stopwatch
from .search import MctsScheduler

__all__ = ["RootParallelMcts"]


def _worker(
    payload: Tuple[dict, MctsConfig, EnvConfig, int]
) -> Tuple[int, dict]:
    """Process-pool entry point: run one search, return (makespan, starts).

    The graph travels as its JSON dict (cheap, and avoids pickling custom
    classes across fork/spawn differences).
    """
    graph_dict, config, env_config, seed = payload
    graph = graph_from_dict(graph_dict)
    scheduler = MctsScheduler(config, env_config, seed=seed)
    schedule = scheduler.plan(ScheduleRequest(graph))
    return schedule.makespan, {
        p.task_id: p.start for p in schedule.placements
    }


class RootParallelMcts(Scheduler):
    """Best-of-k independent MCTS searches.

    Args:
        config: per-worker search parameters (each worker gets the full
            budget; total work is ``workers x budget``).
        env_config: cluster shape.
        workers: number of independent searches (>= 1).
        seed: master seed; workers get derived independent seeds.
        use_processes: run workers in a multiprocessing pool. Defaults to
            ``False`` (sequential), which is deterministic and dependable
            in test environments; set ``True`` for wall-clock speedup.
    """

    name = "mcts-parallel"

    def __init__(
        self,
        config: MctsConfig | None = None,
        env_config: EnvConfig | None = None,
        workers: int = 4,
        seed: SeedLike = None,
        use_processes: bool = False,
    ) -> None:
        if workers < 1:
            raise ConfigError("workers must be >= 1")
        self.config = config if config is not None else MctsConfig()
        self.env_config = (
            env_config
            if env_config is not None
            else EnvConfig(process_until_completion=True)
        )
        self.workers = workers
        self.use_processes = use_processes
        self._rng = as_generator(seed)

    def plan(self, request: ScheduleRequest) -> Schedule:
        """Run all workers and return the best schedule found.

        The canonical entrypoint (``schedule(graph)`` routes here through
        the base shim).  Replan context is honoured the same way
        :class:`MctsScheduler` honours it: the request's cluster snapshot
        resolves the planning capacities, and every worker searches
        against them.  Workers inherit the full search/env configuration —
        including ``EnvConfig.backend`` and ``MctsConfig.rollout_batch``,
        so each process runs the array backend's batched-leaf search under
        virtual loss when those are set.

        With telemetry active, wraps the fan-out in one
        ``mcts.parallel_schedule`` span and emits an ``mcts.worker``
        point event per worker outcome (makespan + derived seed) from
        the parent — workers in separate processes have their own
        (default-disabled) pipelines, so all reporting is parent-side.
        """
        graph = request.graph
        env_config = _planning_config(self.env_config, request)
        tm = _telemetry.active()
        watch = Stopwatch()
        with watch, tm.span(
            "mcts.parallel_schedule",
            workers=self.workers,
            tasks=graph.num_tasks,
            processes=self.use_processes,
        ) as span:
            seeds = [derive_seed(self._rng) for _ in range(self.workers)]
            payloads = [
                (graph_to_dict(graph), self.config, env_config, seed)
                for seed in seeds
            ]
            if self.use_processes and self.workers > 1:
                import multiprocessing

                with multiprocessing.Pool(self.workers) as pool:
                    outcomes = pool.map(_worker, payloads)
            else:
                outcomes = [_worker(p) for p in payloads]
            best_makespan, best_starts = min(outcomes, key=lambda o: o[0])
            if tm.enabled:
                for seed, (makespan, _) in zip(seeds, outcomes):
                    tm.event(
                        "mcts.worker",
                        seed=seed,
                        makespan=makespan,
                        best=makespan == best_makespan,
                    )
                span.set(best_makespan=best_makespan)
        return Schedule.from_starts(
            best_starts, graph, scheduler=self.name, wall_time=watch.elapsed
        )
