"""The scheduling environment (Sec. III-B).

:class:`SchedulingEnv` is a deterministic, clonable MDP:

* **State** — cluster occupancy + the job's ready / pending / finished
  bookkeeping.  Ready tasks beyond the ``max_ready`` visibility window wait
  in a FIFO backlog ("if there are more ready tasks, the remaining tasks
  will be placed in a backlog queue", Sec. V-A).
* **Actions** — ``PROCESS`` advances time (one slot, or — in the MCTS
  event-skipping mode — until the next task completion); index ``i``
  starts the ``i``-th visible ready task *now* without advancing time.
* **Reward** — ``-dt`` per processing action, so an episode's return is
  exactly the negative makespan (Sec. III-D).
* **Termination** — every task has finished.

Determinism + cheap :meth:`clone` are what make the same class usable as
the MCTS simulation model and the DRL training environment.
"""

from __future__ import annotations

import heapq  # repro: noqa[REP107] -- audited rollout hot loop; kernel dispatch measured too slow
from typing import Dict, List, NamedTuple, Optional, Sequence, Tuple

from ..cluster.state import ClusterState, RunningTask
from ..cluster.resources import validate_demands
from ..config import EnvConfig
from ..dag.graph import TaskGraph
from ..errors import CapacityError, EnvironmentStateError
from ..metrics.schedule import Schedule
from ..telemetry import runtime as _telemetry
from .actions import PROCESS, Action

__all__ = ["SchedulingEnv", "StepResult", "StepUndo"]


class StepResult(NamedTuple):
    """Outcome of one :meth:`SchedulingEnv.step` call.

    A ``NamedTuple`` rather than a dataclass: one is allocated per step on
    the rollout hot path, and tuple construction is several times cheaper.
    """

    reward: int
    done: bool
    completed: Tuple[int, ...]
    scheduled: Optional[int] = None


class StepUndo:
    """Undo record for one :meth:`SchedulingEnv.apply` call.

    Opaque to callers: hand it back to :meth:`SchedulingEnv.undo` (in
    strict LIFO order) to restore the pre-step state exactly.  Every record
    snapshots the cluster's running-heap list and free-capacity list as
    they were *before* the step — restoring them is then two O(1) rebinds
    instead of heap surgery, and the heap layout is reproduced bit-exactly
    (``heapify`` after an interior removal can produce a different — if
    equally valid — layout).  The remaining payload depends on the step
    kind:

    * a *schedule* step stores the :class:`RunningTask` entry it pushed and
      the ready-queue index it removed the task from;
    * a *process* step stores the time delta, the released entries, and the
      ready-queue length before newly ready tasks were appended.
    """

    __slots__ = (
        "result",
        "entry",
        "ready_index",
        "dt",
        "released",
        "ready_len",
        "running",
        "available",
    )

    def __init__(
        self,
        result: StepResult,
        running: List[RunningTask],
        available: List[int],
        entry: Optional[RunningTask] = None,
        ready_index: int = 0,
        dt: int = 0,
        released: Optional[List[RunningTask]] = None,
        ready_len: int = 0,
    ) -> None:
        self.result = result
        self.running = running
        self.available = available
        self.entry = entry
        self.ready_index = ready_index
        self.dt = dt
        self.released = released
        self.ready_len = ready_len


class SchedulingEnv:
    """Deterministic scheduling MDP over one job DAG.

    Args:
        graph: the job to schedule.  Every task's demand vector must fit
            within cluster capacity or construction fails fast.
        config: environment shape (cluster capacities, visibility window,
            processing granularity).

    Example:
        >>> from repro.dag import chain_dag
        >>> from repro.config import EnvConfig, ClusterConfig
        >>> env = SchedulingEnv(
        ...     chain_dag([2, 3]),
        ...     EnvConfig(cluster=ClusterConfig(capacities=(4, 4), horizon=8)),
        ... )
        >>> env.step(0).scheduled  # start the chain head
        0
        >>> while not env.done:
        ...     _ = env.step(PROCESS) if 0 not in env.visible_ready() \
        ...         else env.step(env.visible_ready().index(0))
        >>> env.makespan
        5
    """

    def __init__(self, graph: TaskGraph, config: EnvConfig | None = None) -> None:
        self.graph = graph
        self.config = config if config is not None else EnvConfig()
        capacities = self.config.cluster.capacities
        if len(capacities) != graph.num_resources:
            raise EnvironmentStateError(
                f"cluster has {len(capacities)} resource dims, graph has "
                f"{graph.num_resources}"
            )
        for task in graph:
            validate_demands(task.demands, capacities, label=task.label())
        # Hot-path lookup tables, shared by reference across clones (the
        # graph is immutable, so these never change after construction).
        self._demands: Dict[int, Tuple[int, ...]] = {
            task.task_id: task.demands for task in graph
        }
        self._runtimes: Dict[int, int] = {
            task.task_id: task.runtime for task in graph
        }
        self._num_tasks: int = graph.num_tasks
        # Schedule-step results are fully determined by the started task id,
        # so one immutable StepResult per task covers every schedule step of
        # every clone — no allocation on that branch of the hot path.
        self._sched_results: Dict[int, StepResult] = {
            tid: StepResult(0, False, (), tid) for tid in graph.task_ids
        }
        self.reset()

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #

    def reset(self) -> None:
        """Return the environment to the initial state of the episode."""
        graph = self.graph
        # Hoisted config scalars: one attribute hop instead of two on the
        # rollout hot path.
        self._max_ready: int = self.config.max_ready
        self._until_completion: bool = self.config.process_until_completion
        self._verify_terminal: bool = self.config.verify_terminal
        self.cluster = ClusterState(self.config.cluster.capacities)
        self._unmet: Dict[int, int] = {
            tid: len(graph.parents(tid)) for tid in graph.task_ids
        }
        # Ready queue holds *all* ready tasks in arrival order; the visible
        # window is its first ``max_ready`` entries.
        self._ready: List[int] = [
            tid for tid in graph.topological_order() if self._unmet[tid] == 0
        ]
        self._finished: set[int] = set()
        self._running: set[int] = set()
        self._starts: Dict[int, int] = {}
        self.steps_taken: int = 0
        # Plain-int instrumentation counters: incremented unconditionally
        # (an integer add is far below timer noise on these paths) and
        # flushed to the telemetry pipeline once per episode by
        # :meth:`to_schedule` — never per step.
        self.undos_taken: int = 0
        self.clones_made: int = 0
        # State-version counter for the memoized legal-action set: bumped by
        # every mutation (step, apply, undo), so a cached computation is
        # reused only while the state is untouched.
        self._version: int = 0
        self._actions_cache: List[Action] = []
        self._actions_version: int = -1

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #

    @property
    def done(self) -> bool:
        """True iff every task in the graph has finished."""
        return len(self._finished) == self._num_tasks

    @property
    def now(self) -> int:
        """Current simulation time (slots)."""
        return self.cluster.now

    @property
    def makespan(self) -> int:
        """Completion time of the job; only meaningful once :attr:`done`."""
        if not self.done:
            raise EnvironmentStateError("episode not finished")
        return self.cluster.now

    @property
    def num_finished(self) -> int:
        """Number of completed tasks."""
        return len(self._finished)

    @property
    def backlog_size(self) -> int:
        """Ready tasks hidden beyond the visibility window."""
        return max(0, len(self._ready) - self.config.max_ready)

    def visible_ready(self) -> List[int]:
        """Task ids in the visibility window, in backlog arrival order."""
        return self._ready[: self._max_ready]

    def all_ready(self) -> List[int]:
        """All ready task ids (visible + backlog)."""
        return list(self._ready)

    def running_ids(self) -> List[int]:
        """Ids of currently running tasks in completion order."""
        return self.cluster.running_ids()

    def finished_ids(self) -> List[int]:
        """Ids of completed tasks (sorted)."""
        return sorted(self._finished)

    def unfinished_ids(self) -> List[int]:
        """Ids of tasks not yet completed (running, ready or pending)."""
        return [tid for tid in self.graph.task_ids if tid not in self._finished]

    def start_times(self) -> Dict[int, int]:
        """Start slot of every task started so far."""
        return dict(self._starts)

    def legal_actions(self) -> List[Action]:
        """Actions valid in the current state.

        A schedule action is legal when the task fits in currently free
        capacity; ``PROCESS`` is legal whenever at least one task is
        running (processing an idle cluster is the "superficial action"
        Sec. III-A excludes from the search space).

        The computation is memoized per state version: repeated queries of
        an unchanged state (policies typically ask two or three times per
        decision) cost one list copy.  ``PROCESS``, when legal, is always
        the last element.
        """
        if self._actions_version != self._version:
            self._refresh_actions()
        return list(self._actions_cache)

    def _refresh_actions(self) -> None:
        """Recompute the memoized legal-action list for the current state."""
        actions: List[Action] = []
        cluster = self.cluster
        available = cluster._available
        demands_of = self._demands
        append = actions.append
        index = 0
        for tid in self._ready[: self._max_ready]:
            for demand, free in zip(demands_of[tid], available):
                if demand > free:
                    break
            else:
                append(index)
            index += 1
        if cluster._running:
            append(PROCESS)
        self._actions_cache = actions
        self._actions_version = self._version

    def action_mask(self) -> List[bool]:
        """Legality mask over the fixed action space.

        Entry ``i < max_ready`` is True iff scheduling visible slot ``i``
        is legal now; the final entry is True iff ``PROCESS`` is legal.
        Useful for masking network logits without materializing per-state
        action lists.
        """
        mask = [False] * (self.config.max_ready + 1)
        for action in self.legal_actions():
            mask[action] = True  # PROCESS == -1 lands on the last entry
        return mask

    def expansion_actions(self, work_conserving: bool = True) -> List[Action]:
        """Candidate actions for MCTS expansion (Sec. III-C filters).

        The two breadth filters of Sec. III-C map onto this environment's
        immediate-start semantics as follows:

        * "if there are no tasks in the cluster, then the processing action
          is redundant" — structural here: ``PROCESS`` is only legal with
          running tasks, in both modes.
        * "we only consider the tasks that can be scheduled to start before
          the earliest finish time of tasks in the cluster" — a task starts
          the moment it is placed, so the startable-now set is exactly the
          fitting set; the bite of the filter is that whenever *some* task
          fits, deferring every placement via ``PROCESS`` wastes a
          scheduling opportunity: with ``work_conserving=True`` (Spear's
          setting) ``PROCESS`` is therefore dropped unless no visible ready
          task fits.

        With ``work_conserving=False`` (the raw-space ablation) the full
        legal action set is returned and the search may idle capacity on
        purpose.
        """
        if self._actions_version != self._version:
            self._refresh_actions()
        actions = self._actions_cache
        if work_conserving and len(actions) > 1 and actions[-1] == PROCESS:
            # PROCESS, when present, is always the last element of the
            # legal action list, so the work-conserving filter is a
            # constant-time truncation instead of a scan.
            return actions[:-1]
        return list(actions)

    # ------------------------------------------------------------------ #
    # dynamics
    # ------------------------------------------------------------------ #

    def step(self, action: Action) -> StepResult:
        """Apply ``action``; return reward, termination and side effects.

        The non-recording twin of :meth:`apply`: identical dynamics (the
        undo-equivalence property tests pin this down), but no undo record
        is allocated — this is the rollout hot path.

        Raises:
            EnvironmentStateError: on an illegal action (episode done,
                index out of window, task does not fit, or PROCESS on an
                idle cluster).
        """
        finished = self._finished
        if len(finished) == self._num_tasks:
            raise EnvironmentStateError("episode already finished")
        self.steps_taken += 1
        if action == PROCESS:
            cluster = self.cluster
            if cluster.is_idle:
                raise EnvironmentStateError("PROCESS on an idle cluster")
            if self._until_completion:
                dt, released = cluster.advance_to_next_event_entries()
            else:
                dt = 1
                released = cluster.advance_entries(1)
            # Inlined _on_completions (same dynamics, fused id collection):
            # this is the busiest branch of the rollout hot path.
            completed = []
            running = self._running
            ready = self._ready
            unmet = self._unmet
            children = self.graph.children
            for entry in released:
                tid = entry.task_id
                completed.append(tid)
                running.discard(tid)
                finished.add(tid)
                newly_ready = []
                for child in children(tid):
                    remaining = unmet[child] - 1
                    unmet[child] = remaining
                    if remaining == 0:
                        newly_ready.append(child)
                if newly_ready:
                    # Deterministic arrival order within one completion.
                    newly_ready.sort()
                    ready.extend(newly_ready)
            self._version += 1
            done = len(finished) == self._num_tasks
            if done and self._verify_terminal:
                self.verify_terminal_state()
            return StepResult(-dt, done, tuple(completed))
        ready = self._ready
        num_visible = len(ready)
        if num_visible > self._max_ready:
            num_visible = self._max_ready
        if not 0 <= action < num_visible:
            raise EnvironmentStateError(
                f"schedule index {action} out of range (visible={num_visible})"
            )
        tid = ready[action]
        # Inlined ClusterState.start (precleared: demand shapes and runtime
        # were validated once at construction); the free-capacity fit check
        # always runs and raises the same CapacityError.
        cluster = self.cluster
        demands = self._demands[tid]
        available = cluster._available
        for demand, free in zip(demands, available):
            if demand > free:
                raise CapacityError(
                    f"task {tid}: demands {demands} exceed free "
                    f"capacity {cluster.available}"
                )
        for r, demand in enumerate(demands):
            available[r] -= demand
        heapq.heappush(
            cluster._running,
            RunningTask(cluster.now + self._runtimes[tid], tid, demands),
        )
        del ready[action]
        self._running.add(tid)
        self._starts[tid] = cluster.now
        self._version += 1
        return self._sched_results[tid]

    def apply(self, action: Action) -> StepUndo:
        """Like :meth:`step`, but also return an undo record.

        Handing the record back to :meth:`undo` (strict LIFO order when
        several are outstanding) restores the pre-step state exactly —
        same :meth:`signature`, same legal actions, same start times.
        This is the state-restore primitive behind the clone-free MCTS
        search: applying and undoing an action is far cheaper than cloning
        the whole environment per tree edge.

        Raises:
            EnvironmentStateError: on an illegal action, as :meth:`step`.
        """
        if self.done:
            raise EnvironmentStateError("episode already finished")
        self.steps_taken += 1
        if action == PROCESS:
            return self._process()
        return self._schedule(action)

    def undo(self, record: StepUndo) -> None:
        """Revert one :meth:`apply` call.

        Records must be undone in reverse application order; handing back
        anything else corrupts the state (this is an internal search
        primitive, so no cross-checking is done on the hot path).
        """
        cluster = self.cluster
        cluster._running = record.running
        cluster._available = record.available
        entry = record.entry
        if entry is not None:  # schedule step
            tid = entry.task_id
            self._ready.insert(record.ready_index, tid)
            self._running.discard(tid)
            del self._starts[tid]
        else:  # process step
            cluster.now -= record.dt
            released = record.released or ()
            del self._ready[record.ready_len:]
            unmet = self._unmet
            children = self.graph.children
            for released_entry in released:
                tid = released_entry.task_id
                self._finished.discard(tid)
                self._running.add(tid)
                for child in children(tid):
                    unmet[child] += 1
        self.steps_taken -= 1
        self.undos_taken += 1
        self._version += 1

    def _schedule(self, index: int) -> StepUndo:
        ready = self._ready
        num_visible = min(len(ready), self._max_ready)
        if not 0 <= index < num_visible:
            raise EnvironmentStateError(
                f"schedule index {index} out of range (visible={num_visible})"
            )
        tid = ready[index]
        # Inlined ClusterState.start, mirroring :meth:`step`'s schedule
        # branch exactly (the undo-equivalence tests pin the two together);
        # the pre-step heap/capacity snapshots become the undo payload.
        cluster = self.cluster
        demands = self._demands[tid]
        available = cluster._available
        for demand, free in zip(demands, available):
            if demand > free:
                raise CapacityError(
                    f"task {tid}: demands {demands} exceed free "
                    f"capacity {cluster.available}"
                )
        running_snapshot = list(cluster._running)
        available_snapshot = list(available)
        for r, demand in enumerate(demands):
            available[r] -= demand
        entry = RunningTask(cluster.now + self._runtimes[tid], tid, demands)
        heapq.heappush(cluster._running, entry)
        del ready[index]
        self._running.add(tid)
        self._starts[tid] = cluster.now
        self._version += 1
        return StepUndo(
            self._sched_results[tid],
            running_snapshot,
            available_snapshot,
            entry=entry,
            ready_index=index,
        )

    def _process(self) -> StepUndo:
        cluster = self.cluster
        if cluster.is_idle:
            raise EnvironmentStateError("PROCESS on an idle cluster")
        ready_len = len(self._ready)
        running_snapshot = list(cluster._running)
        available_snapshot = list(cluster._available)
        if self._until_completion:
            dt, released = cluster.advance_to_next_event_entries()
        else:
            dt = 1
            released = cluster.advance_entries(1)
        completed = [released_entry.task_id for released_entry in released]
        self._on_completions(completed)
        self._version += 1
        done = len(self._finished) == self._num_tasks
        if done and self._verify_terminal:
            self.verify_terminal_state()
        return StepUndo(
            StepResult(-dt, done, tuple(completed)),
            running_snapshot,
            available_snapshot,
            dt=dt,
            released=released,
            ready_len=ready_len,
        )

    def random_playout(self, rng, limit: int) -> int:
        """Play uniformly random work-conserving actions until done.

        The fully fused rollout loop: one method call per *episode* instead
        of per step, with the dynamics of :meth:`step` inlined and every
        loop-invariant attribute hoisted into a local.  Semantically this
        is exactly ``while not done: step(choice(expansion_actions()))``
        with choices drawn as ``rng.integers(0, n)`` — the same draw count,
        bounds and order as ``RandomPolicy(work_conserving=True)``, so the
        RNG stream and the trajectory are bit-identical to the unfused
        loop (the equivalence tests compare final states *and* generator
        states).  MCTS runs one of these per budget unit; it is the
        hottest loop in the library.

        Args:
            rng: ``numpy.random.Generator`` to draw action choices from.
            limit: step cap; exceeding it raises ``RuntimeError`` (a
                livelocked rollout is a bug, not a result).

        Returns:
            The episode makespan.
        """
        cluster = self.cluster
        heap = cluster._running
        available = cluster._available
        ready = self._ready
        finished = self._finished
        running = self._running
        unmet = self._unmet
        starts = self._starts
        demands_of = self._demands
        runtimes = self._runtimes
        children = self.graph.children
        num_tasks = self._num_tasks
        max_ready = self._max_ready
        until_completion = self._until_completion
        two_dim = len(available) == 2
        integers = rng.integers
        heappush = heapq.heappush
        heappop = heapq.heappop
        steps = 0
        while len(finished) != num_tasks:
            if steps >= limit:
                raise RuntimeError("rollout exceeded step limit; livelocked policy")
            steps += 1
            # Fitting visible-window indices (the work-conserving candidate
            # set); free capacity is loop-invariant within one decision.
            visible = ready if len(ready) <= max_ready else ready[:max_ready]
            actions: List[int] = []
            index = 0
            if two_dim:
                free0, free1 = available
                for tid in visible:
                    demands = demands_of[tid]
                    if demands[0] <= free0 and demands[1] <= free1:
                        actions.append(index)
                    index += 1
            else:
                for tid in visible:
                    for demand, free in zip(demands_of[tid], available):
                        if demand > free:
                            break
                    else:
                        actions.append(index)
                    index += 1
            n = len(actions)
            if n:
                # Schedule a uniformly random fitting task (PROCESS is
                # filtered out whenever something fits: work conservation).
                chosen = actions[int(integers(0, n))]
                tid = ready[chosen]
                demands = demands_of[tid]
                for r, demand in enumerate(demands):
                    available[r] -= demand
                heappush(heap, RunningTask(cluster.now + runtimes[tid], tid, demands))
                del ready[chosen]
                running.add(tid)
                starts[tid] = cluster.now
                continue
            # Nothing fits: PROCESS is the only candidate (the draw still
            # happens so the stream matches the unfused policy loop).
            if not heap:
                raise EnvironmentStateError("no legal actions")
            integers(0, 1)
            now = heap[0][0] if until_completion else cluster.now + 1
            cluster.now = now
            while heap and heap[0][0] <= now:
                finish, tid, demands = heappop(heap)
                for r, demand in enumerate(demands):
                    available[r] += demand
                running.discard(tid)
                finished.add(tid)
                newly_ready = []
                for child in children(tid):
                    remaining = unmet[child] - 1
                    unmet[child] = remaining
                    if remaining == 0:
                        newly_ready.append(child)
                if newly_ready:
                    newly_ready.sort()
                    ready.extend(newly_ready)
        self.steps_taken += steps
        self._version += steps
        if self._verify_terminal:
            self.verify_terminal_state()
        return cluster.now

    def _on_completions(self, completed: Sequence[int]) -> None:
        unmet = self._unmet
        children = self.graph.children
        for tid in completed:
            self._running.discard(tid)
            self._finished.add(tid)
            newly_ready = []
            for child in children(tid):
                remaining = unmet[child] - 1
                unmet[child] = remaining
                if remaining == 0:
                    newly_ready.append(child)
            if newly_ready:
                # Deterministic arrival order within one completion.
                newly_ready.sort()
                self._ready.extend(newly_ready)

    # ------------------------------------------------------------------ #
    # copying / export
    # ------------------------------------------------------------------ #

    def clone(self) -> "SchedulingEnv":
        """Cheap independent copy sharing the immutable graph/config."""
        copy = SchedulingEnv.__new__(SchedulingEnv)
        copy.graph = self.graph
        copy.config = self.config
        copy.cluster = self.cluster.clone()
        copy._unmet = dict(self._unmet)
        copy._ready = list(self._ready)
        copy._finished = set(self._finished)
        copy._running = set(self._running)
        copy._starts = dict(self._starts)
        copy.steps_taken = self.steps_taken
        copy.undos_taken = self.undos_taken
        copy.clones_made = 0
        self.clones_made += 1
        copy._max_ready = self._max_ready
        copy._until_completion = self._until_completion
        copy._verify_terminal = self._verify_terminal
        # Immutable per-graph tables: shared by reference.
        copy._demands = self._demands
        copy._runtimes = self._runtimes
        copy._num_tasks = self._num_tasks
        copy._sched_results = self._sched_results
        # The memoized action list is valid for the identical state; cache
        # entries are replaced wholesale (never mutated in place), so
        # sharing the current one is safe.
        copy._version = self._version
        copy._actions_cache = self._actions_cache
        copy._actions_version = self._actions_version
        return copy

    def signature(self) -> Tuple:
        """Hashable snapshot for transposition/uniqueness checks."""
        return (
            self.cluster.signature(),
            tuple(self._ready),
            frozenset(self._finished),
        )

    def verify_terminal_state(self) -> None:
        """Assert every schedule invariant on the finished episode.

        The hook behind ``EnvConfig(verify_terminal=True)``: exports the
        episode's start times and runs the full
        :mod:`repro.analysis.verifier` invariant set (precedence,
        capacity, completeness, time domain) against them.

        Raises:
            EnvironmentStateError: if the episode has not terminated, or
                if the terminal state violates any schedule invariant —
                which would mean the environment dynamics themselves have
                drifted, so failing loudly beats learning from bad data.
        """
        from ..analysis.verifier import verify_placements  # local: avoids a cycle

        if not self.done:
            raise EnvironmentStateError("episode not finished")
        placements = [
            (tid, start, start + self.graph.task(tid).runtime)
            for tid, start in self._starts.items()
        ]
        report = verify_placements(
            placements, self.graph, self.config.cluster.capacities
        )
        if not report.ok:
            raise EnvironmentStateError(
                "terminal state violates schedule invariants:\n"
                + report.summary()
            )

    def to_schedule(self, scheduler: str = "unknown", wall_time: float = 0.0) -> Schedule:
        """Export the finished episode as a validated-shape :class:`Schedule`.

        The per-episode telemetry flush point: the environment's plain-int
        counters (steps, undos, clones) land in the active pipeline here,
        once per completed episode, so the step/undo hot paths carry no
        emit-time work at all.

        Raises:
            EnvironmentStateError: if the episode has not terminated.
        """
        if not self.done:
            raise EnvironmentStateError("episode not finished")
        tm = _telemetry.for_config(self.config.telemetry)
        if tm.enabled:
            tm.inc("env.episodes")
            tm.inc("env.steps", self.steps_taken)
            tm.inc("env.undos", self.undos_taken)
            tm.inc("env.clones", self.clones_made)
            tm.event(
                "env.episode",
                scheduler=scheduler,
                makespan=self.cluster.now,
                steps=self.steps_taken,
                undos=self.undos_taken,
                clones=self.clones_made,
                tasks=self._num_tasks,
            )
        return Schedule.from_starts(
            self._starts, self.graph, scheduler=scheduler, wall_time=wall_time
        )

    def __repr__(self) -> str:
        return (
            f"SchedulingEnv(now={self.now}, ready={len(self._ready)}, "
            f"running={len(self._running)}, finished={len(self._finished)}/"
            f"{self.graph.num_tasks})"
        )
