"""The scheduling environment (Sec. III-B).

:class:`SchedulingEnv` is a deterministic, clonable MDP:

* **State** — cluster occupancy + the job's ready / pending / finished
  bookkeeping.  Ready tasks beyond the ``max_ready`` visibility window wait
  in a FIFO backlog ("if there are more ready tasks, the remaining tasks
  will be placed in a backlog queue", Sec. V-A).
* **Actions** — ``PROCESS`` advances time (one slot, or — in the MCTS
  event-skipping mode — until the next task completion); index ``i``
  starts the ``i``-th visible ready task *now* without advancing time.
* **Reward** — ``-dt`` per processing action, so an episode's return is
  exactly the negative makespan (Sec. III-D).
* **Termination** — every task has finished.

Determinism + cheap :meth:`clone` are what make the same class usable as
the MCTS simulation model and the DRL training environment.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from ..cluster.resources import fits, validate_demands
from ..cluster.state import ClusterState
from ..config import EnvConfig
from ..dag.graph import TaskGraph
from ..errors import EnvironmentStateError
from ..metrics.schedule import Schedule
from .actions import PROCESS, Action

__all__ = ["SchedulingEnv", "StepResult"]


@dataclass(frozen=True)
class StepResult:
    """Outcome of one :meth:`SchedulingEnv.step` call."""

    reward: int
    done: bool
    completed: Tuple[int, ...]
    scheduled: Optional[int] = None


class SchedulingEnv:
    """Deterministic scheduling MDP over one job DAG.

    Args:
        graph: the job to schedule.  Every task's demand vector must fit
            within cluster capacity or construction fails fast.
        config: environment shape (cluster capacities, visibility window,
            processing granularity).

    Example:
        >>> from repro.dag import chain_dag
        >>> from repro.config import EnvConfig, ClusterConfig
        >>> env = SchedulingEnv(
        ...     chain_dag([2, 3]),
        ...     EnvConfig(cluster=ClusterConfig(capacities=(4, 4), horizon=8)),
        ... )
        >>> env.step(0).scheduled  # start the chain head
        0
        >>> while not env.done:
        ...     _ = env.step(PROCESS) if 0 not in env.visible_ready() \
        ...         else env.step(env.visible_ready().index(0))
        >>> env.makespan
        5
    """

    def __init__(self, graph: TaskGraph, config: EnvConfig | None = None) -> None:
        self.graph = graph
        self.config = config if config is not None else EnvConfig()
        capacities = self.config.cluster.capacities
        if len(capacities) != graph.num_resources:
            raise EnvironmentStateError(
                f"cluster has {len(capacities)} resource dims, graph has "
                f"{graph.num_resources}"
            )
        for task in graph:
            validate_demands(task.demands, capacities, label=task.label())
        self.reset()

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #

    def reset(self) -> None:
        """Return the environment to the initial state of the episode."""
        graph = self.graph
        self.cluster = ClusterState(self.config.cluster.capacities)
        self._unmet: Dict[int, int] = {
            tid: len(graph.parents(tid)) for tid in graph.task_ids
        }
        # Ready queue holds *all* ready tasks in arrival order; the visible
        # window is its first ``max_ready`` entries.
        self._ready: List[int] = [
            tid for tid in graph.topological_order() if self._unmet[tid] == 0
        ]
        self._finished: set[int] = set()
        self._running: set[int] = set()
        self._starts: Dict[int, int] = {}
        self.steps_taken: int = 0

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #

    @property
    def done(self) -> bool:
        """True iff every task in the graph has finished."""
        return len(self._finished) == self.graph.num_tasks

    @property
    def now(self) -> int:
        """Current simulation time (slots)."""
        return self.cluster.now

    @property
    def makespan(self) -> int:
        """Completion time of the job; only meaningful once :attr:`done`."""
        if not self.done:
            raise EnvironmentStateError("episode not finished")
        return self.cluster.now

    @property
    def num_finished(self) -> int:
        """Number of completed tasks."""
        return len(self._finished)

    @property
    def backlog_size(self) -> int:
        """Ready tasks hidden beyond the visibility window."""
        return max(0, len(self._ready) - self.config.max_ready)

    def visible_ready(self) -> List[int]:
        """Task ids in the visibility window, in backlog arrival order."""
        return self._ready[: self.config.max_ready]

    def all_ready(self) -> List[int]:
        """All ready task ids (visible + backlog)."""
        return list(self._ready)

    def running_ids(self) -> List[int]:
        """Ids of currently running tasks in completion order."""
        return self.cluster.running_ids()

    def finished_ids(self) -> List[int]:
        """Ids of completed tasks (sorted)."""
        return sorted(self._finished)

    def unfinished_ids(self) -> List[int]:
        """Ids of tasks not yet completed (running, ready or pending)."""
        return [tid for tid in self.graph.task_ids if tid not in self._finished]

    def start_times(self) -> Dict[int, int]:
        """Start slot of every task started so far."""
        return dict(self._starts)

    def legal_actions(self) -> List[Action]:
        """Actions valid in the current state.

        A schedule action is legal when the task fits in currently free
        capacity; ``PROCESS`` is legal whenever at least one task is
        running (processing an idle cluster is the "superficial action"
        Sec. III-A excludes from the search space).
        """
        actions: List[Action] = []
        available = self.cluster.available
        for index, tid in enumerate(self.visible_ready()):
            if fits(self.graph.task(tid).demands, available):
                actions.append(index)
        if not self.cluster.is_idle:
            actions.append(PROCESS)
        return actions

    def expansion_actions(self, work_conserving: bool = True) -> List[Action]:
        """Candidate actions for MCTS expansion (Sec. III-C filters).

        The two breadth filters of Sec. III-C map onto this environment's
        immediate-start semantics as follows:

        * "if there are no tasks in the cluster, then the processing action
          is redundant" — structural here: ``PROCESS`` is only legal with
          running tasks, in both modes.
        * "we only consider the tasks that can be scheduled to start before
          the earliest finish time of tasks in the cluster" — a task starts
          the moment it is placed, so the startable-now set is exactly the
          fitting set; the bite of the filter is that whenever *some* task
          fits, deferring every placement via ``PROCESS`` wastes a
          scheduling opportunity: with ``work_conserving=True`` (Spear's
          setting) ``PROCESS`` is therefore dropped unless no visible ready
          task fits.

        With ``work_conserving=False`` (the raw-space ablation) the full
        legal action set is returned and the search may idle capacity on
        purpose.
        """
        actions = self.legal_actions()
        if not work_conserving:
            return actions
        schedule_actions = [a for a in actions if a != PROCESS]
        if schedule_actions:
            return schedule_actions
        return actions

    # ------------------------------------------------------------------ #
    # dynamics
    # ------------------------------------------------------------------ #

    def step(self, action: Action) -> StepResult:
        """Apply ``action``; return reward, termination and side effects.

        Raises:
            EnvironmentStateError: on an illegal action (episode done,
                index out of window, task does not fit, or PROCESS on an
                idle cluster).
        """
        if self.done:
            raise EnvironmentStateError("episode already finished")
        self.steps_taken += 1
        if action == PROCESS:
            return self._process()
        return self._schedule(action)

    def _schedule(self, index: int) -> StepResult:
        visible = self.visible_ready()
        if not 0 <= index < len(visible):
            raise EnvironmentStateError(
                f"schedule index {index} out of range (visible={len(visible)})"
            )
        tid = visible[index]
        task = self.graph.task(tid)
        # ClusterState.start re-checks capacity and raises CapacityError.
        self.cluster.start(tid, task.demands, task.runtime)
        self._ready.remove(tid)
        self._running.add(tid)
        self._starts[tid] = self.cluster.now
        return StepResult(reward=0, done=False, completed=(), scheduled=tid)

    def _process(self) -> StepResult:
        if self.cluster.is_idle:
            raise EnvironmentStateError("PROCESS on an idle cluster")
        if self.config.process_until_completion:
            before = self.cluster.now
            _, completed = self.cluster.advance_to_next_event()
            dt = self.cluster.now - before
        else:
            completed = self.cluster.advance(1)
            dt = 1
        self._on_completions(completed)
        if self.done and self.config.verify_terminal:
            self.verify_terminal_state()
        return StepResult(
            reward=-dt, done=self.done, completed=tuple(completed)
        )

    def _on_completions(self, completed: Sequence[int]) -> None:
        for tid in completed:
            self._running.discard(tid)
            self._finished.add(tid)
            newly_ready = []
            for child in self.graph.children(tid):
                self._unmet[child] -= 1
                if self._unmet[child] == 0:
                    newly_ready.append(child)
            # Deterministic arrival order within one completion.
            self._ready.extend(sorted(newly_ready))

    # ------------------------------------------------------------------ #
    # copying / export
    # ------------------------------------------------------------------ #

    def clone(self) -> "SchedulingEnv":
        """Cheap independent copy sharing the immutable graph/config."""
        copy = SchedulingEnv.__new__(SchedulingEnv)
        copy.graph = self.graph
        copy.config = self.config
        copy.cluster = self.cluster.clone()
        copy._unmet = dict(self._unmet)
        copy._ready = list(self._ready)
        copy._finished = set(self._finished)
        copy._running = set(self._running)
        copy._starts = dict(self._starts)
        copy.steps_taken = self.steps_taken
        return copy

    def signature(self) -> Tuple:
        """Hashable snapshot for transposition/uniqueness checks."""
        return (
            self.cluster.signature(),
            tuple(self._ready),
            frozenset(self._finished),
        )

    def verify_terminal_state(self) -> None:
        """Assert every schedule invariant on the finished episode.

        The hook behind ``EnvConfig(verify_terminal=True)``: exports the
        episode's start times and runs the full
        :mod:`repro.analysis.verifier` invariant set (precedence,
        capacity, completeness, time domain) against them.

        Raises:
            EnvironmentStateError: if the episode has not terminated, or
                if the terminal state violates any schedule invariant —
                which would mean the environment dynamics themselves have
                drifted, so failing loudly beats learning from bad data.
        """
        from ..analysis.verifier import verify_placements  # local: avoids a cycle

        if not self.done:
            raise EnvironmentStateError("episode not finished")
        placements = [
            (tid, start, start + self.graph.task(tid).runtime)
            for tid, start in self._starts.items()
        ]
        report = verify_placements(
            placements, self.graph, self.config.cluster.capacities
        )
        if not report.ok:
            raise EnvironmentStateError(
                "terminal state violates schedule invariants:\n"
                + report.summary()
            )

    def to_schedule(self, scheduler: str = "unknown", wall_time: float = 0.0) -> Schedule:
        """Export the finished episode as a validated-shape :class:`Schedule`.

        Raises:
            EnvironmentStateError: if the episode has not terminated.
        """
        if not self.done:
            raise EnvironmentStateError("episode not finished")
        return Schedule.from_starts(
            self._starts, self.graph, scheduler=scheduler, wall_time=wall_time
        )

    def __repr__(self) -> str:
        return (
            f"SchedulingEnv(now={self.now}, ready={len(self._ready)}, "
            f"running={len(self._running)}, finished={len(self._finished)}/"
            f"{self.graph.num_tasks})"
        )
