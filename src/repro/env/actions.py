"""Action encoding for the scheduling MDP.

The paper defines the action set ``{-1, 1, 2, ..., n}`` for ``n`` ready
tasks: ``-1`` processes the cluster (time moves forward) and ``i``
schedules the ``i``-th ready task (time does not move).  We encode the
same set 0-based: ``PROCESS == -1`` and ``0 <= a < n`` schedules the
``a``-th *visible* ready task.  This keeps the action space at ``n + 1``
instead of ``2^n`` — the paper's key search-space reduction.
"""

from __future__ import annotations

__all__ = ["PROCESS", "Action", "is_process", "schedule_action"]

#: The processing action: advance time; all running tasks make progress.
PROCESS: int = -1

#: An action is just an int: PROCESS or a visible-ready-list index.
Action = int


def is_process(action: Action) -> bool:
    """True iff ``action`` is the processing action."""

    return action == PROCESS


def schedule_action(index: int) -> Action:
    """Return the action scheduling the ``index``-th visible ready task.

    Raises:
        ValueError: for negative indices (which would collide with PROCESS).
    """

    if index < 0:
        raise ValueError(f"ready-task index must be >= 0, got {index}")
    return index
