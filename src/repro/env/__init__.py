"""The dependency-aware scheduling MDP of Sec. III-B.

States pair a :class:`repro.cluster.ClusterState` with the job's ready /
pending / finished bookkeeping; actions either place one ready task or
process the cluster; the return of an episode is the negative makespan.
"""

from .actions import PROCESS, Action, is_process, schedule_action
from .scheduling_env import SchedulingEnv, StepResult
from .observation import ObservationBuilder, observation_size

__all__ = [
    "PROCESS",
    "Action",
    "is_process",
    "schedule_action",
    "SchedulingEnv",
    "StepResult",
    "ObservationBuilder",
    "observation_size",
]
