"""State featurization for the DRL agent (Sec. III-D).

The observation concatenates:

1. **Cluster image** — for every resource, the occupied fraction of each of
   the next ``horizon`` slots, computed from the remaining runtimes of the
   running tasks (the "resource-time space" rendered as rectangles).
2. **Ready-task block** — for each of the ``max_ready`` visible slots, the
   task's normalized demands, runtime, and the graph features the paper
   adds on top of Tetris-style demand-only states: **b-level**,
   **#children**, and **b-load** per resource.  Empty slots are zero.
3. **Scalars** — normalized backlog length and completed fraction, giving
   the network the context the visibility window hides.

All features are normalized to roughly [0, 1] using per-graph constants
(critical path, total work, max runtime), so one trained network transfers
across DAG instances of similar scale — the property Fig. 8(b) relies on
(train on 25-task DAGs, deploy inside Spear on 100-task DAGs).
"""

from __future__ import annotations

import numpy as np

from ..config import EnvConfig
from ..dag.features import GraphFeatures, compute_features
from ..dag.graph import TaskGraph
from .scheduling_env import SchedulingEnv

__all__ = ["ObservationBuilder", "observation_size"]

#: Feature count per visible ready-task slot, excluding demands and b-loads
#: (runtime, b-level, #children).
_PER_TASK_SCALARS = 3

#: Trailing global scalars (backlog fill, completed fraction).
_GLOBAL_SCALARS = 2


def observation_size(config: EnvConfig, num_resources: int | None = None) -> int:
    """Dimensionality of observations produced under ``config``.

    Args:
        config: environment configuration.
        num_resources: defaults to the configured cluster's dimensionality.
    """

    resources = (
        num_resources
        if num_resources is not None
        else config.cluster.num_resources
    )
    per_task = resources + _PER_TASK_SCALARS + resources  # demands + scalars + b-loads
    return (
        resources * config.cluster.horizon
        + config.max_ready * per_task
        + _GLOBAL_SCALARS
    )


class ObservationBuilder:
    """Renders :class:`SchedulingEnv` states as fixed-size float vectors.

    Graph features are computed once per graph and cached; building an
    observation is then O(horizon * resources + max_ready).

    Args:
        graph: the job the environment schedules.
        config: environment configuration (must match the env's).
    """

    def __init__(self, graph: TaskGraph, config: EnvConfig) -> None:
        self.graph = graph
        self.config = config
        self.features: GraphFeatures = compute_features(graph)
        self._capacities = config.cluster.capacities
        self._horizon = config.cluster.horizon
        # Normalizers (>= 1 so zero-division is impossible).
        self._max_runtime = max(task.runtime for task in graph)
        self._critical_path = max(1, self.features.critical_path)
        self._max_children = max(
            1, max(self.features.num_children.values(), default=1)
        )
        self._max_bload = tuple(
            max(1, max(bl[r] for bl in self.features.b_load.values()))
            for r in range(graph.num_resources)
        )
        self.size = observation_size(config, graph.num_resources)
        # task_features is pure per (graph, config): memoize per task id.
        self._task_feature_cache: dict[int, np.ndarray] = {}

    # ------------------------------------------------------------------ #

    def cluster_image(self, env: SchedulingEnv) -> np.ndarray:
        """Occupancy image of shape ``(num_resources, horizon)`` in [0, 1]."""
        resources = len(self._capacities)
        image = np.zeros((resources, self._horizon), dtype=np.float64)
        now = env.cluster.now
        for entry in env.cluster.running_tasks():
            remaining = min(entry.finish_time - now, self._horizon)
            if remaining <= 0:
                continue
            for r, demand in enumerate(entry.demands):
                image[r, :remaining] += demand
        caps = np.asarray(self._capacities, dtype=np.float64)[:, None]
        return image / caps

    def task_features(self, task_id: int) -> np.ndarray:
        """Normalized feature vector for one ready task.

        Layout: demands (per resource) | runtime | b-level | #children |
        b-load (per resource).

        The vector depends only on the (immutable) graph and config, so it
        is computed once per task and cached; treat the returned array as
        read-only — it is shared across calls.
        """
        cached = self._task_feature_cache.get(task_id)
        if cached is not None:
            return cached
        task = self.graph.task(task_id)
        demands = [
            d / c for d, c in zip(task.demands, self._capacities)
        ]
        if self.config.include_graph_features:
            scalars = [
                task.runtime / self._max_runtime,
                self.features.b_level[task_id] / self._critical_path,
                self.features.num_children[task_id] / self._max_children,
            ]
            bloads = [
                self.features.b_load[task_id][r] / self._max_bload[r]
                for r in range(self.graph.num_resources)
            ]
        else:
            # Demand-only ablation: the runtime stays (Tetris-style states
            # know durations) but every graph-topology feature is zeroed.
            scalars = [task.runtime / self._max_runtime, 0.0, 0.0]
            bloads = [0.0] * self.graph.num_resources
        vector = np.asarray(demands + scalars + bloads, dtype=np.float64)
        self._task_feature_cache[task_id] = vector
        return vector

    def build(self, env: SchedulingEnv) -> np.ndarray:
        """Full observation vector for the env's current state."""
        parts = [self.cluster_image(env).ravel()]
        per_task = self.graph.num_resources * 2 + _PER_TASK_SCALARS
        block = np.zeros((self.config.max_ready, per_task), dtype=np.float64)
        for slot, tid in enumerate(env.visible_ready()):
            block[slot] = self.task_features(tid)
        parts.append(block.ravel())
        backlog_norm = env.backlog_size / max(1, self.graph.num_tasks)
        finished_norm = env.num_finished / self.graph.num_tasks
        parts.append(np.asarray([backlog_norm, finished_norm], dtype=np.float64))
        observation = np.concatenate(parts)
        if observation.shape[0] != self.size:
            raise AssertionError(
                f"observation size mismatch: {observation.shape[0]} != {self.size}"
            )
        return observation
