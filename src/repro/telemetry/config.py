"""Telemetry configuration.

:class:`TelemetryConfig` is a frozen value object, like every other
config in :mod:`repro.config`: it describes *what* a telemetry pipeline
captures and where events go, never holds run-time state, and is safe to
share between components (the runtime memoizes one pipeline per distinct
enabled config — see :func:`repro.telemetry.runtime.for_config`).

The default is **disabled**: a component handed the default config emits
nothing and pays only a flag check, which is what keeps the instrumented
hot paths inside the bench budgets.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..errors import ConfigError

__all__ = ["TelemetryConfig"]


@dataclass(frozen=True)
class TelemetryConfig:
    """Shape of one telemetry pipeline.

    Attributes:
        enabled: master switch.  ``False`` (the default) makes every
            instrumentation point a no-op.
        jsonl_path: stream every event to this JSONL file (see
            :mod:`repro.telemetry.analyze` for the reader).  ``None``
            keeps events in memory only.
        stderr_summary: echo ``log`` events to stderr as they arrive and
            write a one-block run summary when the pipeline closes.
        capture_memory: keep events in an in-memory ring (required for
            :meth:`repro.telemetry.runtime.Telemetry.events` and for
            post-run export when no ``jsonl_path`` is set).
        max_events: capacity of the in-memory ring; the oldest events are
            dropped first once it is full.
    """

    enabled: bool = False
    jsonl_path: Optional[str] = None
    stderr_summary: bool = False
    capture_memory: bool = True
    max_events: int = 200_000

    def __post_init__(self) -> None:
        if self.max_events < 1:
            raise ConfigError("max_events must be >= 1")
        if self.enabled and not (
            self.capture_memory or self.jsonl_path or self.stderr_summary
        ):
            raise ConfigError(
                "enabled telemetry needs at least one sink "
                "(capture_memory, jsonl_path or stderr_summary)"
            )
