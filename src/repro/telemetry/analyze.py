"""Offline trace analysis: load, summarize, export.

The reader consumes the JSONL layout written by
:class:`repro.telemetry.sinks.JsonlSink` (header object, then one event
per line), validates the schema version, and rebuilds
:class:`~repro.telemetry.events.TelemetryEvent` records — the write →
load round-trip is exact, which the unit tests pin down.

:func:`summarize` folds a trace into the numbers an operator asks for
first: per-span-name counts and p50/p99/max durations (exact, computed
from the raw samples — the fixed-bucket estimator in
:mod:`repro.telemetry.metrics` is for *online* aggregation), counter
totals, and per-series point counts.  ``repro trace summary`` and
``repro trace top-spans`` are thin renderers over this module.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, List, Optional, Sequence, Tuple, Union

from ..errors import ConfigError
from .events import SCHEMA_VERSION, TelemetryEvent

__all__ = [
    "LoadedTrace",
    "SpanStats",
    "TraceSummary",
    "load_trace",
    "write_trace",
    "summarize",
    "top_spans",
]


@dataclass(frozen=True)
class LoadedTrace:
    """A parsed JSONL trace: header metadata plus the event list."""

    schema: int
    meta: Dict[str, Any]
    events: Tuple[TelemetryEvent, ...]

    def __len__(self) -> int:
        return len(self.events)


def load_trace(path: Union[str, Path]) -> LoadedTrace:
    """Parse a JSONL trace file.

    Raises:
        ConfigError: on an unreadable file, a malformed line, a missing
            header, or an unsupported schema version.
    """
    try:
        text = Path(path).read_text(encoding="utf-8")
    except OSError as exc:
        raise ConfigError(f"cannot read trace {path}: {exc}") from exc
    lines = [line for line in text.splitlines() if line.strip()]
    if not lines:
        raise ConfigError(f"trace {path} is empty")
    try:
        header = json.loads(lines[0])
    except ValueError as exc:
        raise ConfigError(f"trace {path}: bad header line: {exc}") from exc
    if not isinstance(header, dict) or header.get("kind") != "header":
        raise ConfigError(f"trace {path}: first line is not a trace header")
    schema = header.get("schema")
    if schema != SCHEMA_VERSION:
        raise ConfigError(
            f"trace {path}: schema {schema!r} unsupported "
            f"(this reader speaks {SCHEMA_VERSION})"
        )
    events: List[TelemetryEvent] = []
    for number, line in enumerate(lines[1:], start=2):
        try:
            payload = json.loads(line)
        except ValueError as exc:
            raise ConfigError(
                f"trace {path}: line {number} is not JSON: {exc}"
            ) from exc
        events.append(TelemetryEvent.from_dict(payload))
    return LoadedTrace(
        schema=int(schema),
        meta=dict(header.get("meta", {})),
        events=tuple(events),
    )


def write_trace(
    path: Union[str, Path],
    events: Sequence[TelemetryEvent],
    meta: Optional[Dict[str, Any]] = None,
) -> Path:
    """Write ``events`` in the versioned JSONL layout; returns the path.

    ``write_trace(load_trace(p).events)`` reproduces ``p`` up to header
    metadata — the import/export round-trip the acceptance tests check.
    """
    target = Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    header: Dict[str, Any] = {"schema": SCHEMA_VERSION, "kind": "header"}
    if meta:
        header["meta"] = meta
    with target.open("w", encoding="utf-8") as handle:
        handle.write(json.dumps(header) + "\n")
        for event in events:
            handle.write(json.dumps(event.as_dict()) + "\n")
    return target


# --------------------------------------------------------------------- #
# summaries
# --------------------------------------------------------------------- #


def _exact_percentile(sorted_samples: List[float], q: float) -> float:
    """Nearest-rank percentile over pre-sorted samples."""
    if not sorted_samples:
        return 0.0
    rank = max(0, min(len(sorted_samples) - 1, round(q * (len(sorted_samples) - 1))))
    return sorted_samples[rank]


@dataclass(frozen=True)
class SpanStats:
    """Aggregate timing of every completion of one span name."""

    name: str
    count: int
    total_us: float
    p50_us: float
    p99_us: float
    max_us: float

    @property
    def mean_us(self) -> float:
        """Mean duration per completion."""
        return self.total_us / self.count if self.count else 0.0


@dataclass(frozen=True)
class TraceSummary:
    """Everything ``repro trace summary`` reports."""

    num_events: int
    spans: Dict[str, SpanStats] = field(default_factory=dict)
    counters: Dict[str, float] = field(default_factory=dict)
    series: Dict[str, int] = field(default_factory=dict)
    points: Dict[str, int] = field(default_factory=dict)

    def report(self) -> str:
        """Plain-text rendering."""
        lines = [f"trace: {self.num_events} events"]
        if self.spans:
            lines.append("spans:")
            for name in sorted(self.spans):
                s = self.spans[name]
                lines.append(
                    f"  {name:<32} n={s.count:<6} mean={s.mean_us:>10.1f}us "
                    f"p50={s.p50_us:>10.1f}us p99={s.p99_us:>10.1f}us "
                    f"max={s.max_us:>10.1f}us"
                )
        if self.counters:
            lines.append("counters:")
            for name in sorted(self.counters):
                lines.append(f"  {name:<32} total={self.counters[name]:g}")
        if self.series:
            lines.append("series:")
            for name in sorted(self.series):
                lines.append(f"  {name:<32} points={self.series[name]}")
        if self.points:
            lines.append("events:")
            for name in sorted(self.points):
                lines.append(f"  {name:<32} n={self.points[name]}")
        return "\n".join(lines)


def summarize(events: Sequence[TelemetryEvent]) -> TraceSummary:
    """Fold a trace (or live event list) into a :class:`TraceSummary`."""
    durations: Dict[str, List[float]] = {}
    counters: Dict[str, float] = {}
    series: Dict[str, int] = {}
    points: Dict[str, int] = {}
    for event in events:
        if event.kind == "span" and event.duration_us is not None:
            durations.setdefault(event.name, []).append(event.duration_us)
        elif event.kind == "series":
            series[event.name] = series.get(event.name, 0) + 1
        elif event.kind in ("point", "log"):
            points[event.name] = points.get(event.name, 0) + 1
        elif event.kind == "metric":
            if event.attrs.get("type") == "counter" and event.value is not None:
                counters[event.name] = counters.get(event.name, 0.0) + event.value
    spans: Dict[str, SpanStats] = {}
    for name, samples in durations.items():
        samples.sort()
        spans[name] = SpanStats(
            name=name,
            count=len(samples),
            total_us=sum(samples),
            p50_us=_exact_percentile(samples, 0.50),
            p99_us=_exact_percentile(samples, 0.99),
            max_us=samples[-1],
        )
    return TraceSummary(
        num_events=len(events),
        spans=spans,
        counters=counters,
        series=series,
        points=points,
    )


def top_spans(
    events: Sequence[TelemetryEvent], limit: int = 10
) -> List[SpanStats]:
    """Span names ranked by total time spent, heaviest first."""
    summary = summarize(events)
    ranked = sorted(
        summary.spans.values(), key=lambda s: s.total_us, reverse=True
    )
    return ranked[: max(0, limit)]
