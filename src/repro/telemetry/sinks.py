"""Event sinks: where a pipeline's records go.

Three built-ins cover the use cases in this repository:

* :class:`InMemorySink` — bounded ring; backs programmatic access and
  post-run export, and is the default capture target.
* :class:`JsonlSink` — streams the versioned JSONL layout of
  :mod:`repro.telemetry.events` to a file (header object first, one
  event per line).  Written incrementally so a crashed run still leaves
  a readable prefix.
* :class:`StderrSummarySink` — echoes ``log`` events as they arrive and
  prints a compact aggregate (span counts and timings, counter totals)
  when the pipeline closes.  This is the sink behind
  ``ReinforceTrainer.train(log_every=...)``.

Sinks are deliberately synchronous and unbuffered-by-default: traces in
this repository are produced by single-process experiments where the
interesting failure mode is "the run died and took the trace with it",
not sink throughput.
"""

from __future__ import annotations

import abc
import json
import sys
from collections import deque
from pathlib import Path
from typing import Any, Deque, Dict, List, Optional, TextIO, Union

from .events import SCHEMA_VERSION, TelemetryEvent

__all__ = [
    "Sink",
    "InMemorySink",
    "JsonlSink",
    "StderrSummarySink",
    "stderr_line",
]


def stderr_line(message: str) -> None:
    """Write one line to stderr (the sink-shared low-level writer)."""
    sys.stderr.write(message + "\n")


class Sink(abc.ABC):
    """One destination for telemetry events."""

    @abc.abstractmethod
    def handle(self, event: TelemetryEvent) -> None:
        """Consume one event."""

    def flush(self) -> None:
        """Force buffered output out (no-op by default)."""

    def close(self) -> None:
        """Release resources; the sink receives no further events."""


class InMemorySink(Sink):
    """Bounded in-memory event ring (oldest events drop first)."""

    def __init__(self, max_events: int = 200_000) -> None:
        self._ring: Deque[TelemetryEvent] = deque(maxlen=max_events)
        self.dropped = 0

    def handle(self, event: TelemetryEvent) -> None:
        if len(self._ring) == self._ring.maxlen:
            self.dropped += 1
        self._ring.append(event)

    def events(self) -> List[TelemetryEvent]:
        """The retained events, oldest first."""
        return list(self._ring)

    def __len__(self) -> int:
        return len(self._ring)


class JsonlSink(Sink):
    """Stream events to a JSONL file, header line first."""

    def __init__(
        self,
        path: Union[str, Path],
        meta: Optional[Dict[str, Any]] = None,
    ) -> None:
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._file: Optional[TextIO] = self.path.open("w", encoding="utf-8")
        header: Dict[str, Any] = {"schema": SCHEMA_VERSION, "kind": "header"}
        if meta:
            header["meta"] = meta
        self._file.write(json.dumps(header) + "\n")

    def handle(self, event: TelemetryEvent) -> None:
        if self._file is not None:
            self._file.write(json.dumps(event.as_dict()) + "\n")

    def flush(self) -> None:
        if self._file is not None:
            self._file.flush()

    def close(self) -> None:
        if self._file is not None:
            self._file.close()
            self._file = None


class StderrSummarySink(Sink):
    """Echo ``log`` events live; print an aggregate block on close.

    The close-time block reports, per span name, the completion count and
    mean duration, plus every counter-style increment observed — enough
    to answer "what did this run spend its time on" without opening the
    JSONL trace.
    """

    def __init__(self, label: str = "telemetry") -> None:
        self.label = label
        self._span_count: Dict[str, int] = {}
        self._span_total_us: Dict[str, float] = {}
        self._event_count: Dict[str, int] = {}
        self._closed = False

    def handle(self, event: TelemetryEvent) -> None:
        if event.kind == "log":
            message = event.attrs.get("message")
            stderr_line(str(message) if message is not None else event.name)
        elif event.kind == "span" and event.duration_us is not None:
            self._span_count[event.name] = self._span_count.get(event.name, 0) + 1
            self._span_total_us[event.name] = (
                self._span_total_us.get(event.name, 0.0) + event.duration_us
            )
        elif event.kind in ("point", "series"):
            self._event_count[event.name] = self._event_count.get(event.name, 0) + 1

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        if not (self._span_count or self._event_count):
            return
        stderr_line(f"[{self.label}] run summary:")
        for name in sorted(self._span_count):
            count = self._span_count[name]
            mean_us = self._span_total_us[name] / count
            stderr_line(
                f"[{self.label}]   span {name}: n={count} mean={mean_us:.1f}us"
            )
        for name in sorted(self._event_count):
            stderr_line(
                f"[{self.label}]   events {name}: n={self._event_count[name]}"
            )
