"""Span-based tracing: ``with tracer.span("mcts.select"): ...``.

A span is a timed region with structured attributes; nesting is tracked
with an explicit stack on the tracer (the library is single-threaded by
design — parallel MCTS workers are separate *processes* with their own
pipelines), so every completed span knows its depth and enclosing span
name without thread-local machinery.

The disabled path matters more than the enabled one here: when the
owning pipeline is off, ``span()`` returns one shared pre-allocated
no-op object whose ``__enter__``/``__exit__`` do nothing — no
allocation, no clock read — which is what keeps instrumented hot loops
inside their bench budgets (see the ``telemetry.span_disabled``
benchmark).
"""

from __future__ import annotations

import time
from typing import Any, Callable, Dict, List, Optional

from .events import TelemetryEvent

__all__ = ["Span", "NoopSpan", "NOOP_SPAN", "Tracer"]


class NoopSpan:
    """Shared do-nothing stand-in returned while telemetry is disabled."""

    __slots__ = ()

    def __enter__(self) -> "NoopSpan":
        return self

    def __exit__(self, *exc_info: Any) -> None:
        return None

    def set(self, **attrs: Any) -> "NoopSpan":
        """Discard attributes (API-compatible with :class:`Span`)."""
        return self


#: The singleton every disabled ``span()`` call returns.
NOOP_SPAN = NoopSpan()


class Span:
    """One live timed region; emits a ``span`` event when it exits."""

    __slots__ = ("_tracer", "name", "attrs", "_start", "_depth", "_parent")

    def __init__(self, tracer: "Tracer", name: str, attrs: Dict[str, Any]) -> None:
        self._tracer = tracer
        self.name = name
        self.attrs = attrs
        self._start = 0.0
        self._depth = 0
        self._parent: Optional[str] = None

    def set(self, **attrs: Any) -> "Span":
        """Attach/overwrite attributes; chainable inside the region."""
        self.attrs.update(attrs)
        return self

    def __enter__(self) -> "Span":
        stack = self._tracer._stack
        self._depth = len(stack)
        self._parent = stack[-1] if stack else None
        stack.append(self.name)
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info: Any) -> None:
        duration_us = (time.perf_counter() - self._start) * 1e6
        self._tracer._stack.pop()
        self._tracer._complete(self, duration_us)
        return None


class Tracer:
    """Span factory bound to one pipeline's emit function."""

    def __init__(self, emit: Callable[[TelemetryEvent], None]) -> None:
        self._emit = emit
        self._stack: List[str] = []

    def span(self, name: str, **attrs: Any) -> Span:
        """Open a new span (use as a context manager)."""
        return Span(self, name, attrs)

    @property
    def depth(self) -> int:
        """Number of currently open spans."""
        return len(self._stack)

    def _complete(self, span: Span, duration_us: float) -> None:
        self._emit(
            TelemetryEvent(
                kind="span",
                name=span.name,
                seq=-1,  # assigned by the pipeline at emit time
                wall_time=time.time(),
                duration_us=duration_us,
                depth=span._depth,
                parent=span._parent,
                attrs=span.attrs,
            )
        )
