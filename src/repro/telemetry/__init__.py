"""repro.telemetry — structured tracing + metrics, zero dependencies.

The observability layer behind the instrumented search, training and
serving paths (DESIGN.md Sec. 9).  Quick tour::

    from repro.telemetry import TelemetryConfig, session, active

    with session(TelemetryConfig(enabled=True, jsonl_path="run.jsonl")):
        MctsScheduler(...).schedule(graph)      # spans + counters land
    # run.jsonl now holds the versioned JSONL trace

    # library code (always on, no-op while disabled):
    tm = active()
    with tm.span("mcts.decision", depth=3):
        ...
    tm.inc("mcts.rollouts")

Offline, ``repro trace summary run.jsonl`` (see
:mod:`repro.telemetry.analyze`) reports span counts, p50/p99 timings and
training-curve series.
"""

from .analyze import (
    LoadedTrace,
    SpanStats,
    TraceSummary,
    load_trace,
    summarize,
    top_spans,
    write_trace,
)
from .config import TelemetryConfig
from .events import SCHEMA_VERSION, TelemetryEvent
from .metrics import Counter, Gauge, Histogram, MetricsRegistry, Series
from .runtime import (
    DISABLED,
    DisabledTelemetry,
    Telemetry,
    active,
    configure,
    disable,
    for_config,
    session,
)
from .sinks import InMemorySink, JsonlSink, Sink, StderrSummarySink, stderr_line
from .tracing import NOOP_SPAN, NoopSpan, Span, Tracer

__all__ = [
    "SCHEMA_VERSION",
    "TelemetryConfig",
    "TelemetryEvent",
    "Telemetry",
    "DisabledTelemetry",
    "DISABLED",
    "active",
    "configure",
    "disable",
    "session",
    "for_config",
    "Counter",
    "Gauge",
    "Histogram",
    "Series",
    "MetricsRegistry",
    "Sink",
    "InMemorySink",
    "JsonlSink",
    "StderrSummarySink",
    "stderr_line",
    "Span",
    "NoopSpan",
    "NOOP_SPAN",
    "Tracer",
    "LoadedTrace",
    "SpanStats",
    "TraceSummary",
    "load_trace",
    "write_trace",
    "summarize",
    "top_spans",
]
