"""The structured event record and its JSONL wire format.

Everything a pipeline observes — span completions, point events, log
lines, metric samples and end-of-run metric snapshots — is normalized
into one flat :class:`TelemetryEvent` record, so sinks and the offline
analyzer never branch on producer-specific shapes.  The JSONL layout is
versioned (:data:`SCHEMA_VERSION`): a file starts with one header object
and then carries one event object per line, and the reader rejects
schema versions it does not understand instead of mis-parsing them.

Event kinds:

* ``span`` — a completed timed region (``duration_us`` set, ``depth`` /
  ``parent`` describe nesting at completion time).
* ``point`` — an instantaneous structured event (attributes only).
* ``log`` — a human-readable line (``message`` attribute) that the
  stderr-summary sink echoes as it arrives.
* ``series`` — one sample of a step-indexed metric series (``step`` and
  ``value`` set), e.g. a per-epoch training curve.
* ``metric`` — an end-of-run snapshot of a counter / gauge / histogram,
  emitted when the pipeline flushes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any, Dict, Mapping, Optional

from ..errors import ConfigError

__all__ = ["SCHEMA_VERSION", "EVENT_KINDS", "TelemetryEvent"]

#: Version of the JSONL trace layout; bump on incompatible change.
SCHEMA_VERSION = 1

EVENT_KINDS = ("span", "point", "log", "series", "metric")

#: Scalar attribute types allowed on events (everything else is repr()d
#: at emit time so a trace is always serializable).
_SCALARS = (str, int, float, bool, type(None))


def _clean_attrs(attrs: Mapping[str, Any]) -> Dict[str, Any]:
    return {
        key: value if isinstance(value, _SCALARS) else repr(value)
        for key, value in attrs.items()
    }


@dataclass(frozen=True)
class TelemetryEvent:
    """One record of the structured event log.

    Attributes:
        kind: one of :data:`EVENT_KINDS`.
        name: dotted event name, e.g. ``"mcts.decision"``.
        seq: per-pipeline monotonically increasing sequence number —
            the total order of the trace (wall clocks can tie).
        wall_time: absolute UNIX timestamp at emit time.
        duration_us: span duration in microseconds (``span`` only).
        depth: span nesting depth at completion (``span`` only).
        parent: name of the enclosing span, if any (``span`` only).
        step: series index, e.g. the training epoch (``series`` only).
        value: sample value (``series`` / ``metric``).
        attrs: structured scalar attributes.
    """

    kind: str
    name: str
    seq: int
    wall_time: float
    duration_us: Optional[float] = None
    depth: int = 0
    parent: Optional[str] = None
    step: Optional[int] = None
    value: Optional[float] = None
    attrs: Dict[str, Any] = field(default_factory=dict)

    def as_dict(self) -> Dict[str, Any]:
        """Compact JSON object: unset optional fields are omitted."""
        payload: Dict[str, Any] = {
            "kind": self.kind,
            "name": self.name,
            "seq": self.seq,
            "t": self.wall_time,
        }
        if self.duration_us is not None:
            payload["dur_us"] = self.duration_us
        if self.depth:
            payload["depth"] = self.depth
        if self.parent is not None:
            payload["parent"] = self.parent
        if self.step is not None:
            payload["step"] = self.step
        if self.value is not None:
            payload["value"] = self.value
        if self.attrs:
            payload["attrs"] = _clean_attrs(self.attrs)
        return payload

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "TelemetryEvent":
        """Inverse of :meth:`as_dict`.

        Raises:
            ConfigError: on a malformed record (unknown kind or missing
                required fields) — the analyzer surfaces the bad line.
        """
        try:
            kind = payload["kind"]
            name = payload["name"]
            seq = int(payload["seq"])
            wall_time = float(payload["t"])
        except (KeyError, TypeError, ValueError) as exc:
            raise ConfigError(f"malformed telemetry event {payload!r}") from exc
        if kind not in EVENT_KINDS:
            raise ConfigError(f"unknown telemetry event kind {kind!r}")
        duration = payload.get("dur_us")
        step = payload.get("step")
        value = payload.get("value")
        return cls(
            kind=kind,
            name=str(name),
            seq=seq,
            wall_time=wall_time,
            duration_us=float(duration) if duration is not None else None,
            depth=int(payload.get("depth", 0)),
            parent=payload.get("parent"),
            step=int(step) if step is not None else None,
            value=float(value) if value is not None else None,
            attrs=dict(payload.get("attrs", {})),
        )
