"""The telemetry pipeline and the global default-off switch.

One :class:`Telemetry` object owns a tracer, a metrics registry and a
set of sinks.  The module-level *active* pipeline (default: a shared
:data:`DISABLED` instance) is what instrumented library code talks to:

    from ..telemetry import runtime as telemetry

    tm = telemetry.active()
    with tm.span("mcts.decision", depth=d):
        ...
    tm.inc("mcts.rollouts", stats.rollouts)

Every method on the disabled pipeline is a no-op returning immediately,
so instrumentation points cost one attribute load and one call when
telemetry is off — cheap enough for the bench gate (the enabled/disabled
delta is itself benchmarked as ``telemetry.span_*``).

Activation models:

* :func:`configure` — install a pipeline globally (CLI long-running
  runs); :func:`disable` restores the no-op.
* :func:`session` — context-managed activation that exports and restores
  on exit (experiments, tests).
* :func:`for_config` — per-component resolution: an *enabled*
  :class:`TelemetryConfig` maps to one memoized pipeline per distinct
  config (so every ``SchedulingEnv`` sharing an ``EnvConfig`` reports to
  the same place), anything else resolves to the global active pipeline.
"""

from __future__ import annotations

import time
from contextlib import contextmanager
from dataclasses import replace
from typing import Any, Dict, Iterator, List, Optional, Sequence, Union

from .config import TelemetryConfig
from .events import TelemetryEvent
from .metrics import MetricsRegistry, Series
from .sinks import InMemorySink, JsonlSink, Sink, StderrSummarySink
from .tracing import NOOP_SPAN, NoopSpan, Span, Tracer

__all__ = [
    "Telemetry",
    "DisabledTelemetry",
    "DISABLED",
    "active",
    "configure",
    "disable",
    "session",
    "for_config",
]


class Telemetry:
    """One live telemetry pipeline (tracer + metrics + sinks)."""

    enabled = True

    def __init__(
        self,
        config: Optional[TelemetryConfig] = None,
        sinks: Optional[Sequence[Sink]] = None,
    ) -> None:
        self.config = (
            config if config is not None else TelemetryConfig(enabled=True)
        )
        self.metrics = MetricsRegistry()
        self.tracer = Tracer(self._emit)
        self._seq = 0
        self._memory: Optional[InMemorySink] = None
        self._closed = False
        if sinks is not None:
            self.sinks: List[Sink] = list(sinks)
            for sink in self.sinks:
                if isinstance(sink, InMemorySink):
                    self._memory = sink
        else:
            self.sinks = []
            if self.config.capture_memory:
                self._memory = InMemorySink(self.config.max_events)
                self.sinks.append(self._memory)
            if self.config.jsonl_path:
                self.sinks.append(JsonlSink(self.config.jsonl_path))
            if self.config.stderr_summary:
                self.sinks.append(StderrSummarySink())

    # ------------------------------------------------------------------ #
    # emission primitives
    # ------------------------------------------------------------------ #

    def _emit(self, event: TelemetryEvent) -> None:
        self._seq += 1
        if event.seq != self._seq:
            event = replace(event, seq=self._seq)
        for sink in self.sinks:
            sink.handle(event)

    def span(self, name: str, **attrs: Any) -> Union[Span, NoopSpan]:
        """A live span; time a region with ``with tm.span(...) as sp:``."""
        return self.tracer.span(name, **attrs)

    def event(self, name: str, **attrs: Any) -> None:
        """Emit an instantaneous ``point`` event."""
        self._emit(
            TelemetryEvent(
                kind="point",
                name=name,
                seq=0,
                wall_time=time.time(),
                attrs=attrs,
            )
        )

    def log(self, name: str, message: str, **attrs: Any) -> None:
        """Emit a ``log`` event (echoed live by the stderr-summary sink)."""
        attrs["message"] = message
        self._emit(
            TelemetryEvent(
                kind="log",
                name=name,
                seq=0,
                wall_time=time.time(),
                attrs=attrs,
            )
        )

    # ------------------------------------------------------------------ #
    # metric helpers (the shapes instrumented code actually calls)
    # ------------------------------------------------------------------ #

    def inc(self, name: str, amount: float = 1) -> None:
        """Increment the counter ``name``."""
        self.metrics.counter(name).inc(amount)

    def gauge(self, name: str, value: float) -> None:
        """Set the gauge ``name``."""
        self.metrics.gauge(name).set(value)

    def observe(self, name: str, value: float) -> None:
        """Record one sample into the histogram ``name``."""
        self.metrics.histogram(name).observe(value)

    def record(self, name: str, step: int, value: float) -> None:
        """Append to the series ``name`` and stream the sample as an event."""
        self.metrics.series(name).record(step, value)
        self._emit(
            TelemetryEvent(
                kind="series",
                name=name,
                seq=0,
                wall_time=time.time(),
                step=step,
                value=float(value),
            )
        )

    # ------------------------------------------------------------------ #
    # lifecycle / access
    # ------------------------------------------------------------------ #

    def events(self) -> List[TelemetryEvent]:
        """Events retained in memory (empty without a memory sink)."""
        return self._memory.events() if self._memory is not None else []

    def flush(self) -> None:
        """Emit one ``metric`` snapshot per registered metric; flush sinks.

        Series are skipped — their samples were already streamed by
        :meth:`record`, and a snapshot would double-count them.
        """
        for name, snapshot in self.metrics.snapshots():
            if snapshot.get("type") == "series":
                continue
            self._emit(
                TelemetryEvent(
                    kind="metric",
                    name=name,
                    seq=0,
                    wall_time=time.time(),
                    value=snapshot.get("total", snapshot.get("value")),
                    attrs=snapshot,
                )
            )
        for sink in self.sinks:
            sink.flush()

    def close(self) -> None:
        """Flush metric snapshots (once) and close every sink."""
        if self._closed:
            return
        self.flush()
        self._closed = True
        for sink in self.sinks:
            sink.close()

    def series_dict(self) -> Dict[str, Series]:
        """Every recorded series, keyed by name."""
        return {
            name: metric
            for name, metric in self.metrics.all_metrics().items()
            if isinstance(metric, Series)
        }


class DisabledTelemetry:
    """The no-op pipeline: every method returns immediately.

    API-compatible with :class:`Telemetry`; the single shared instance
    (:data:`DISABLED`) is what :func:`active` returns by default.
    """

    enabled = False
    sinks: List[Sink] = []

    def span(self, name: str, **attrs: Any) -> NoopSpan:
        """The shared no-op span."""
        return NOOP_SPAN

    def event(self, name: str, **attrs: Any) -> None:
        """Discard."""

    def log(self, name: str, message: str, **attrs: Any) -> None:
        """Discard."""

    def inc(self, name: str, amount: float = 1) -> None:
        """Discard."""

    def gauge(self, name: str, value: float) -> None:
        """Discard."""

    def observe(self, name: str, value: float) -> None:
        """Discard."""

    def record(self, name: str, step: int, value: float) -> None:
        """Discard."""

    def events(self) -> List[TelemetryEvent]:
        """Always empty."""
        return []

    def flush(self) -> None:
        """No-op."""

    def close(self) -> None:
        """No-op."""

    def series_dict(self) -> Dict[str, Series]:
        """Always empty."""
        return {}


#: The shared disabled pipeline.
DISABLED = DisabledTelemetry()

#: Type alias for "any pipeline" — instrumented code accepts either.
TelemetryLike = Union[Telemetry, DisabledTelemetry]

_active: TelemetryLike = DISABLED

#: One pipeline per distinct enabled config handed to components.
_per_config: Dict[TelemetryConfig, Telemetry] = {}


def active() -> TelemetryLike:
    """The globally active pipeline (the disabled singleton by default)."""
    return _active


def configure(config: TelemetryConfig) -> TelemetryLike:
    """Install (and return) a global pipeline built from ``config``.

    A disabled config restores the no-op singleton.  The previous
    pipeline is *not* closed — callers that created it own its lifecycle.
    """
    global _active
    _active = Telemetry(config) if config.enabled else DISABLED
    return _active


def disable() -> None:
    """Restore the global no-op pipeline."""
    global _active
    _active = DISABLED


@contextmanager
def session(config: TelemetryConfig) -> Iterator[TelemetryLike]:
    """Activate a pipeline for a ``with`` block; close and restore after.

    The pipeline is flushed and closed on exit (writing the JSONL trace
    and the stderr summary, when configured), and the previously active
    pipeline is restored even on error.
    """
    global _active
    previous = _active
    pipeline: TelemetryLike = Telemetry(config) if config.enabled else DISABLED
    _active = pipeline
    try:
        yield pipeline
    finally:
        _active = previous
        pipeline.close()


def for_config(config: Optional[TelemetryConfig]) -> TelemetryLike:
    """Resolve a component-level config to a pipeline.

    ``None`` or a disabled config defers to the global active pipeline;
    an enabled config maps to one shared pipeline per distinct config
    value (memoized), so all components constructed with the same config
    aggregate into the same registry.
    """
    if config is None or not config.enabled:
        return _active
    pipeline = _per_config.get(config)
    if pipeline is None:
        pipeline = Telemetry(config)
        _per_config[config] = pipeline
    return pipeline
