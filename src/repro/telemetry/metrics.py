"""The metrics registry: counters, gauges, histograms and series.

Metric objects are plain mutable accumulators — incrementing a counter
is one integer add, observing a histogram sample is one bisect — so the
*enabled* instrumentation cost stays far below the hot-path budgets in
``benchmarks/baselines.json``.  The registry snapshots everything into
:class:`~repro.telemetry.events.TelemetryEvent` records when the owning
pipeline flushes; series samples are additionally emitted as they are
recorded so training curves appear in a streamed JSONL trace in order.

Histograms use *fixed* buckets (configurable bounds) and estimate
percentiles by linear interpolation inside the bucket that contains the
requested rank — the classic Prometheus-style estimator: O(1) memory per
histogram regardless of sample count, exact for the bucket edges, and
within one bucket's width everywhere else.
"""

from __future__ import annotations

from bisect import bisect_left
from typing import Any, Dict, List, Optional, Sequence, Tuple

from ..errors import ConfigError

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "Series",
    "MetricsRegistry",
    "DEFAULT_BUCKETS",
]

#: Default histogram bucket upper bounds: a 1-2.5-5 ladder wide enough
#: for both microsecond span durations and slot-valued JCTs.  Samples
#: above the last bound land in an implicit +inf overflow bucket.
DEFAULT_BUCKETS: Tuple[float, ...] = (
    1.0, 2.5, 5.0,
    10.0, 25.0, 50.0,
    100.0, 250.0, 500.0,
    1_000.0, 2_500.0, 5_000.0,
    10_000.0, 25_000.0, 50_000.0,
    100_000.0, 250_000.0, 500_000.0,
    1_000_000.0,
)


class Counter:
    """Monotonically increasing total."""

    __slots__ = ("name", "total")

    def __init__(self, name: str) -> None:
        self.name = name
        self.total: float = 0

    def inc(self, amount: float = 1) -> None:
        """Add ``amount`` (must be >= 0) to the total."""
        if amount < 0:
            raise ConfigError(f"counter {self.name!r} cannot decrease")
        self.total += amount

    def snapshot(self) -> Dict[str, Any]:
        """Snapshot attributes for a ``metric`` event."""
        return {"type": "counter", "total": self.total}


class Gauge:
    """Last-value metric with running min/max and update count."""

    __slots__ = ("name", "value", "min", "max", "updates")

    def __init__(self, name: str) -> None:
        self.name = name
        self.value: float = 0.0
        self.min: float = float("inf")
        self.max: float = float("-inf")
        self.updates: int = 0

    def set(self, value: float) -> None:
        """Record a new current value."""
        self.value = value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value
        self.updates += 1

    def snapshot(self) -> Dict[str, Any]:
        """Snapshot attributes for a ``metric`` event."""
        return {
            "type": "gauge",
            "value": self.value,
            "min": self.min if self.updates else None,
            "max": self.max if self.updates else None,
            "updates": self.updates,
        }


class Histogram:
    """Fixed-bucket distribution with interpolated percentile estimates."""

    __slots__ = ("name", "bounds", "counts", "count", "total", "min", "max")

    def __init__(
        self, name: str, bounds: Optional[Sequence[float]] = None
    ) -> None:
        chosen = tuple(bounds) if bounds is not None else DEFAULT_BUCKETS
        if not chosen or list(chosen) != sorted(set(chosen)):
            raise ConfigError(
                f"histogram {name!r} bounds must be strictly increasing"
            )
        self.name = name
        self.bounds = chosen
        # counts[i] covers (bounds[i-1], bounds[i]]; the final slot is
        # the +inf overflow bucket.
        self.counts = [0] * (len(chosen) + 1)
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = float("-inf")

    def observe(self, value: float) -> None:
        """Record one sample."""
        self.counts[bisect_left(self.bounds, value)] += 1
        self.count += 1
        self.total += value
        if value < self.min:
            self.min = value
        if value > self.max:
            self.max = value

    @property
    def mean(self) -> float:
        """Exact mean of every observed sample."""
        return self.total / self.count if self.count else 0.0

    def percentile(self, q: float) -> float:
        """Estimate the ``q``-quantile (``0 <= q <= 1``) from buckets.

        Linear interpolation inside the containing bucket, clamped to the
        exact observed ``min`` / ``max`` so estimates never leave the
        sample range (the overflow bucket has no finite upper bound).
        """
        if not 0.0 <= q <= 1.0:
            raise ConfigError("percentile q must lie in [0, 1]")
        if self.count == 0:
            return 0.0
        rank = q * self.count
        cumulative = 0
        lower = 0.0
        for index, bucket_count in enumerate(self.counts):
            if bucket_count == 0:
                if index < len(self.bounds):
                    lower = self.bounds[index]
                continue
            if cumulative + bucket_count >= rank:
                upper = (
                    self.bounds[index] if index < len(self.bounds) else self.max
                )
                fraction = (rank - cumulative) / bucket_count
                estimate = lower + (upper - lower) * max(0.0, fraction)
                return min(max(estimate, self.min), self.max)
            cumulative += bucket_count
            if index < len(self.bounds):
                lower = self.bounds[index]
        return self.max

    def snapshot(self) -> Dict[str, Any]:
        """Snapshot attributes for a ``metric`` event."""
        return {
            "type": "histogram",
            "count": self.count,
            "mean": self.mean,
            "min": self.min if self.count else None,
            "max": self.max if self.count else None,
            "p50": self.percentile(0.5),
            "p99": self.percentile(0.99),
        }


class Series:
    """Step-indexed sample sequence (training curves, sweeps)."""

    __slots__ = ("name", "steps", "values")

    def __init__(self, name: str) -> None:
        self.name = name
        self.steps: List[int] = []
        self.values: List[float] = []

    def record(self, step: int, value: float) -> None:
        """Append one ``(step, value)`` sample."""
        self.steps.append(step)
        self.values.append(value)

    def __len__(self) -> int:
        return len(self.steps)

    def snapshot(self) -> Dict[str, Any]:
        """Snapshot attributes for a ``metric`` event."""
        return {
            "type": "series",
            "points": len(self.steps),
            "last_step": self.steps[-1] if self.steps else None,
            "last_value": self.values[-1] if self.values else None,
        }


class MetricsRegistry:
    """Name-keyed store of every metric a pipeline owns.

    Accessors create on first use (the common telemetry idiom), so call
    sites never pre-declare; asking for an existing name with a
    different metric type raises — silent aliasing would corrupt data.
    """

    def __init__(self) -> None:
        self._metrics: Dict[str, Any] = {}

    def _get(self, name: str, cls: type, *args: Any) -> Any:
        metric = self._metrics.get(name)
        if metric is None:
            metric = cls(name, *args)
            self._metrics[name] = metric
            return metric
        if not isinstance(metric, cls):
            raise ConfigError(
                f"metric {name!r} is a {type(metric).__name__}, "
                f"not a {cls.__name__}"
            )
        return metric

    def counter(self, name: str) -> Counter:
        """The counter named ``name``, created on first use."""
        return self._get(name, Counter)

    def gauge(self, name: str) -> Gauge:
        """The gauge named ``name``, created on first use."""
        return self._get(name, Gauge)

    def histogram(
        self, name: str, bounds: Optional[Sequence[float]] = None
    ) -> Histogram:
        """The histogram named ``name``, created on first use."""
        if name not in self._metrics and bounds is not None:
            metric = Histogram(name, bounds)
            self._metrics[name] = metric
            return metric
        return self._get(name, Histogram)

    def series(self, name: str) -> Series:
        """The series named ``name``, created on first use."""
        return self._get(name, Series)

    def all_metrics(self) -> Dict[str, Any]:
        """Every registered metric, keyed by name."""
        return dict(self._metrics)

    def snapshots(self) -> List[Tuple[str, Dict[str, Any]]]:
        """(name, snapshot attrs) for every metric, name-sorted."""
        return [
            (name, self._metrics[name].snapshot())
            for name in sorted(self._metrics)
        ]
