"""Production-trace substrate (Sec. V-C).

The paper replays 99 Hive MapReduce jobs from a production cluster.  That
trace is proprietary, so this package provides a synthetic generator
calibrated to every statistic the paper reports (job counts, map/reduce
task-count medians and maxima, per-job mean-runtime ranges), plus the
filtering, serialization and summary tooling the experiments need.
"""

from .job import TraceJob, Trace
from .synthetic import TraceConfig, generate_production_trace, synthesize_job
from .filters import filter_jobs
from .stats import TraceStatistics, trace_statistics
from .arrivals import poisson_arrivals, uniform_arrivals

__all__ = [
    "TraceJob",
    "Trace",
    "TraceConfig",
    "generate_production_trace",
    "synthesize_job",
    "filter_jobs",
    "TraceStatistics",
    "trace_statistics",
    "poisson_arrivals",
    "uniform_arrivals",
]
