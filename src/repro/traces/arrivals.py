"""Turning a trace into an arrival stream for the online simulator.

The paper replays jobs one at a time; a deployed cluster sees them arrive
over time.  These helpers attach arrival times to trace jobs:

* :func:`poisson_arrivals` — memoryless arrivals at a target rate (the
  standard open-loop workload model);
* :func:`uniform_arrivals` — fixed inter-arrival spacing (closed-form
  load control, handy for tests).
"""

from __future__ import annotations

from typing import List

import numpy as np

from ..errors import ConfigError
from ..online.simulator import ArrivingJob
from ..utils.rng import SeedLike, as_generator
from .job import Trace

__all__ = ["poisson_arrivals", "uniform_arrivals"]


def poisson_arrivals(
    trace: Trace,
    mean_interarrival: float,
    seed: SeedLike = None,
) -> List[ArrivingJob]:
    """Exponential inter-arrival times with the given mean (slots).

    Jobs keep their trace order; arrival times are the cumulative sums of
    exponential draws, rounded to integer slots.

    Raises:
        ConfigError: for an empty trace or non-positive mean.
    """

    if len(trace) == 0:
        raise ConfigError("cannot schedule arrivals for an empty trace")
    if mean_interarrival <= 0:
        raise ConfigError("mean_interarrival must be positive")
    rng = as_generator(seed)
    gaps = rng.exponential(mean_interarrival, size=len(trace))
    arrivals = np.floor(np.cumsum(gaps)).astype(int)
    return [
        ArrivingJob(arrival_time=int(t), graph=job.graph)
        for t, job in zip(arrivals, trace)
    ]


def uniform_arrivals(trace: Trace, interarrival: int) -> List[ArrivingJob]:
    """Fixed spacing: job ``k`` arrives at ``k * interarrival``.

    Raises:
        ConfigError: for an empty trace or negative spacing.
    """

    if len(trace) == 0:
        raise ConfigError("cannot schedule arrivals for an empty trace")
    if interarrival < 0:
        raise ConfigError("interarrival must be >= 0")
    return [
        ArrivingJob(arrival_time=index * interarrival, graph=job.graph)
        for index, job in enumerate(trace)
    ]
