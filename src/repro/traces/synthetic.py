"""Synthetic production-trace generator calibrated to Sec. V-C.

The paper reports, for its (proprietary) 99-job Hive workload:

* jobs with <= 5 map or <= 5 reduce tasks are filtered out;
* maxima: 29 map tasks, 38 reduce tasks;
* medians: 14 map tasks, 17 reduce tasks;
* per-job mean map runtime spans roughly 2..17 seconds, per-job mean
  reduce runtime spans roughly 17..141 seconds (reduce tasks are heavier).

(The paper also quotes overall median task runtimes of 73/32 seconds,
which is mutually inconsistent with the mean ranges above; we calibrate to
the per-job mean ranges and document the discrepancy in EXPERIMENTS.md.)

:func:`generate_production_trace` over-generates raw jobs — including
small ones — and applies the paper's filter until the requested number of
qualifying jobs (default 99) is reached, so the filtering code path is a
real part of the pipeline, exactly as in the paper.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from ..dag.mapreduce import mapreduce_dag
from ..errors import ConfigError, TraceError
from ..utils.rng import SeedLike, as_generator
from .filters import filter_jobs
from .job import Trace, TraceJob

__all__ = ["TraceConfig", "synthesize_job", "generate_production_trace"]


@dataclass(frozen=True)
class TraceConfig:
    """Calibration knobs for the synthetic production trace.

    The defaults reproduce every trace statistic the paper reports; see the
    module docstring.  Task-count marginals are log-normal (the classic
    shape of production job-size distributions) clipped to the observed
    minima/maxima.
    """

    num_jobs: int = 99
    min_map: int = 6
    max_map: int = 29
    median_map: int = 14
    min_reduce: int = 6
    max_reduce: int = 38
    median_reduce: int = 17
    map_mean_runtime_range: Tuple[float, float] = (2.0, 17.0)
    reduce_mean_runtime_range: Tuple[float, float] = (17.0, 141.0)
    runtime_cv: float = 0.3
    small_job_fraction: float = 0.25
    map_cpu_demand: Tuple[float, float] = (6.0, 2.0)
    map_mem_demand: Tuple[float, float] = (3.0, 1.5)
    reduce_cpu_demand: Tuple[float, float] = (4.0, 2.0)
    reduce_mem_demand: Tuple[float, float] = (8.0, 3.0)
    max_demand: int = 20
    runtime_scale: float = 1.0

    def __post_init__(self) -> None:
        if self.num_jobs < 1:
            raise ConfigError("num_jobs must be >= 1")
        if not 1 <= self.min_map <= self.median_map <= self.max_map:
            raise ConfigError("map count calibration must be ordered")
        if not 1 <= self.min_reduce <= self.median_reduce <= self.max_reduce:
            raise ConfigError("reduce count calibration must be ordered")
        for low, high in (self.map_mean_runtime_range, self.reduce_mean_runtime_range):
            if not 0 < low <= high:
                raise ConfigError("runtime ranges must be positive and ordered")
        if self.runtime_cv < 0:
            raise ConfigError("runtime_cv must be >= 0")
        if not 0.0 <= self.small_job_fraction < 1.0:
            raise ConfigError("small_job_fraction must lie in [0, 1)")
        if self.max_demand < 1:
            raise ConfigError("max_demand must be >= 1")
        if self.runtime_scale <= 0:
            raise ConfigError("runtime_scale must be positive")


def _lognormal_count(
    rng: np.random.Generator, median: int, low: int, high: int
) -> int:
    """Draw a task count with the given median, clipped to [low, high]."""
    mu = math.log(median)
    sigma = 0.45  # spread chosen so the clipped maxima are actually reached
    draw = rng.lognormal(mean=mu, sigma=sigma)
    return int(np.clip(round(draw), low, high))


def _stage_runtimes(
    rng: np.random.Generator, count: int, mean: float, cv: float, scale: float
) -> List[int]:
    """Per-task runtimes: normal around the job's stage mean, >= 1 slot."""
    std = cv * mean
    draws = rng.normal(mean, std, size=count) * scale
    return [max(1, int(round(r))) for r in draws]


def _stage_demands(
    rng: np.random.Generator,
    count: int,
    cpu: Tuple[float, float],
    mem: Tuple[float, float],
    max_demand: int,
) -> List[Tuple[int, int]]:
    """Per-task (cpu, mem) demands, clipped to [1, max_demand] slots."""
    cpus = np.clip(np.rint(rng.normal(cpu[0], cpu[1], size=count)), 1, max_demand)
    mems = np.clip(np.rint(rng.normal(mem[0], mem[1], size=count)), 1, max_demand)
    return [(int(c), int(m)) for c, m in zip(cpus, mems)]


def synthesize_job(
    job_id: int,
    config: TraceConfig,
    rng: np.random.Generator,
    force_small: bool = False,
) -> TraceJob:
    """Generate one MapReduce job.

    Args:
        job_id: identifier recorded in the job.
        config: calibration parameters.
        rng: randomness source.
        force_small: produce a job below the filter threshold (used to
            exercise the paper's filtering step on the raw trace).
    """
    if force_small:
        num_map = int(rng.integers(1, config.min_map))
        num_reduce = int(rng.integers(1, max(2, config.min_reduce)))
    else:
        num_map = _lognormal_count(
            rng, config.median_map, config.min_map, config.max_map
        )
        num_reduce = _lognormal_count(
            rng, config.median_reduce, config.min_reduce, config.max_reduce
        )

    map_mean = rng.uniform(*config.map_mean_runtime_range)
    reduce_mean = rng.uniform(*config.reduce_mean_runtime_range)
    map_runtimes = _stage_runtimes(
        rng, num_map, map_mean, config.runtime_cv, config.runtime_scale
    )
    reduce_runtimes = _stage_runtimes(
        rng, num_reduce, reduce_mean, config.runtime_cv, config.runtime_scale
    )
    map_demands = _stage_demands(
        rng, num_map, config.map_cpu_demand, config.map_mem_demand, config.max_demand
    )
    reduce_demands = _stage_demands(
        rng,
        num_reduce,
        config.reduce_cpu_demand,
        config.reduce_mem_demand,
        config.max_demand,
    )
    graph = mapreduce_dag(
        map_runtimes,
        reduce_runtimes,
        map_demands=map_demands,
        reduce_demands=reduce_demands,
    )
    return TraceJob(
        job_id=job_id,
        graph=graph,
        num_map=num_map,
        num_reduce=num_reduce,
        map_runtimes=tuple(map_runtimes),
        reduce_runtimes=tuple(reduce_runtimes),
    )


def generate_production_trace(
    config: TraceConfig | None = None,
    *,
    seed: SeedLike = None,
    include_filtered: bool = False,
) -> Trace:
    """Generate the calibrated synthetic production trace.

    Raw jobs are drawn (a configurable fraction deliberately below the
    size filter), then the Sec. V-C filter ("filtered out the jobs with no
    more than 5 map tasks or 5 reduce tasks") is applied until
    ``config.num_jobs`` qualifying jobs exist.

    Args:
        config: calibration; defaults reproduce the paper's statistics.
        seed: RNG seed or generator.
        include_filtered: return the *raw* trace (qualifying and small jobs
            interleaved) instead of the filtered one — used by tests of the
            filtering step itself.

    Returns:
        A :class:`Trace` of exactly ``num_jobs`` jobs (unless
        ``include_filtered`` is set, in which case it is larger).
    """
    cfg = config if config is not None else TraceConfig()
    rng = as_generator(seed)
    raw: List[TraceJob] = []
    qualifying = 0
    job_id = 0
    # Hard cap to keep a mis-calibrated config from spinning forever.
    max_attempts = 50 * cfg.num_jobs + 100
    while qualifying < cfg.num_jobs:
        if job_id >= max_attempts:
            raise TraceError(
                "trace generation did not reach the requested job count; "
                "check the calibration"
            )
        force_small = rng.random() < cfg.small_job_fraction
        job = synthesize_job(job_id, cfg, rng, force_small=force_small)
        raw.append(job)
        if job.num_map > 5 and job.num_reduce > 5:
            qualifying += 1
        job_id += 1
    if include_filtered:
        return Trace(jobs=raw, name="production-raw")
    kept = filter_jobs(Trace(jobs=raw, name="production-raw"))
    kept.jobs = kept.jobs[: cfg.num_jobs]
    kept.name = "production"
    return kept
