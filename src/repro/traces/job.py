"""Trace containers and JSON round-tripping.

A :class:`Trace` is an ordered collection of :class:`TraceJob` entries,
each wrapping one MapReduce :class:`TaskGraph` plus its stage metadata
(how many map/reduce tasks, their runtimes) so workload characterization
does not have to re-derive stages from task names.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Iterator, List, Union

from ..dag.graph import TaskGraph
from ..dag.io import graph_from_dict, graph_to_dict
from ..errors import TraceError

__all__ = ["TraceJob", "Trace"]

_SCHEMA_VERSION = 1


@dataclass(frozen=True)
class TraceJob:
    """One MapReduce job from a (synthetic) production trace.

    Attributes:
        job_id: unique identifier within the trace.
        graph: the two-stage task graph (map ids first, then reduce ids).
        num_map: number of map tasks.
        num_reduce: number of reduce tasks.
        map_runtimes: per-map-task runtimes (slots == seconds here).
        reduce_runtimes: per-reduce-task runtimes.
    """

    job_id: int
    graph: TaskGraph
    num_map: int
    num_reduce: int
    map_runtimes: tuple
    reduce_runtimes: tuple

    def __post_init__(self) -> None:
        if self.num_map != len(self.map_runtimes):
            raise TraceError(f"job {self.job_id}: map runtime count mismatch")
        if self.num_reduce != len(self.reduce_runtimes):
            raise TraceError(f"job {self.job_id}: reduce runtime count mismatch")
        if self.graph.num_tasks != self.num_map + self.num_reduce:
            raise TraceError(
                f"job {self.job_id}: graph has {self.graph.num_tasks} tasks, "
                f"metadata says {self.num_map + self.num_reduce}"
            )

    @property
    def num_tasks(self) -> int:
        """Total task count."""
        return self.num_map + self.num_reduce

    def mean_map_runtime(self) -> float:
        """Mean runtime of the map stage."""
        return sum(self.map_runtimes) / self.num_map

    def mean_reduce_runtime(self) -> float:
        """Mean runtime of the reduce stage."""
        return sum(self.reduce_runtimes) / self.num_reduce


@dataclass
class Trace:
    """An ordered collection of trace jobs with JSON persistence."""

    jobs: List[TraceJob] = field(default_factory=list)
    name: str = "trace"

    def __len__(self) -> int:
        return len(self.jobs)

    def __iter__(self) -> Iterator[TraceJob]:
        return iter(self.jobs)

    def __getitem__(self, index: int) -> TraceJob:
        return self.jobs[index]

    def graphs(self) -> List[TaskGraph]:
        """Task graphs of every job, in trace order."""
        return [job.graph for job in self.jobs]

    # ------------------------------------------------------------------ #
    # persistence
    # ------------------------------------------------------------------ #

    def to_dict(self) -> Dict[str, Any]:
        """JSON-compatible representation."""
        return {
            "version": _SCHEMA_VERSION,
            "name": self.name,
            "jobs": [
                {
                    "job_id": job.job_id,
                    "num_map": job.num_map,
                    "num_reduce": job.num_reduce,
                    "map_runtimes": list(job.map_runtimes),
                    "reduce_runtimes": list(job.reduce_runtimes),
                    "graph": graph_to_dict(job.graph),
                }
                for job in self.jobs
            ],
        }

    @staticmethod
    def from_dict(payload: Dict[str, Any]) -> "Trace":
        """Inverse of :meth:`to_dict`.

        Raises:
            TraceError: on schema mismatches or malformed entries.
        """
        if not isinstance(payload, dict):
            raise TraceError("trace payload must be a dict")
        if payload.get("version") != _SCHEMA_VERSION:
            raise TraceError(
                f"unsupported trace schema version {payload.get('version')!r}"
            )
        jobs = []
        try:
            for entry in payload["jobs"]:
                jobs.append(
                    TraceJob(
                        job_id=int(entry["job_id"]),
                        graph=graph_from_dict(entry["graph"]),
                        num_map=int(entry["num_map"]),
                        num_reduce=int(entry["num_reduce"]),
                        map_runtimes=tuple(entry["map_runtimes"]),
                        reduce_runtimes=tuple(entry["reduce_runtimes"]),
                    )
                )
        except (KeyError, TypeError) as exc:
            raise TraceError(f"malformed trace job entry: {exc}") from exc
        return Trace(jobs=jobs, name=str(payload.get("name", "trace")))

    def save(self, path: Union[str, Path]) -> None:
        """Write the trace as JSON."""
        Path(path).write_text(json.dumps(self.to_dict()))

    @staticmethod
    def load(path: Union[str, Path]) -> "Trace":
        """Load a trace written by :meth:`save`."""
        try:
            payload = json.loads(Path(path).read_text())
        except json.JSONDecodeError as exc:
            raise TraceError(f"invalid JSON in {path}: {exc}") from exc
        return Trace.from_dict(payload)
