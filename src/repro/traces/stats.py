"""Trace workload characterization (Fig. 9(a) and 9(b)).

Fig. 9(a) plots the CDFs of per-job map/reduce task counts; Fig. 9(b)
plots the CDFs of individual task runtimes per stage.  The statistics
object exposes both the raw series (for CDF reports) and the headline
numbers the paper quotes (medians, maxima).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from ..metrics.cdf import empirical_cdf, percentile
from .job import Trace

__all__ = ["TraceStatistics", "trace_statistics"]


@dataclass(frozen=True)
class TraceStatistics:
    """Summary of a trace's map/reduce structure and runtimes."""

    num_jobs: int
    map_counts: Tuple[int, ...]
    reduce_counts: Tuple[int, ...]
    map_runtimes: Tuple[int, ...]
    reduce_runtimes: Tuple[int, ...]

    # -------------------------- headline numbers ---------------------- #

    @property
    def median_map_count(self) -> float:
        """Median number of map tasks per job (paper: 14)."""
        return percentile(self.map_counts, 50)

    @property
    def median_reduce_count(self) -> float:
        """Median number of reduce tasks per job (paper: 17)."""
        return percentile(self.reduce_counts, 50)

    @property
    def max_map_count(self) -> int:
        """Maximum map tasks in any job (paper: 29)."""
        return max(self.map_counts)

    @property
    def max_reduce_count(self) -> int:
        """Maximum reduce tasks in any job (paper: 38)."""
        return max(self.reduce_counts)

    @property
    def median_map_runtime(self) -> float:
        """Median runtime over all map tasks."""
        return percentile(self.map_runtimes, 50)

    @property
    def median_reduce_runtime(self) -> float:
        """Median runtime over all reduce tasks."""
        return percentile(self.reduce_runtimes, 50)

    def mean_map_runtime_range(self) -> Tuple[float, float]:
        """(min, max) of per-job mean map runtimes — not exposed per job
        here, so computed from the pooled series bounds; see
        :func:`trace_statistics` for the per-job variant."""
        return (min(self.map_runtimes), max(self.map_runtimes))

    # ----------------------------- CDFs ------------------------------- #

    def count_cdfs(self) -> Tuple[List[Tuple[float, float]], List[Tuple[float, float]]]:
        """(map, reduce) task-count CDFs — the two Fig. 9(a) curves."""
        return empirical_cdf(self.map_counts), empirical_cdf(self.reduce_counts)

    def runtime_cdfs(
        self,
    ) -> Tuple[List[Tuple[float, float]], List[Tuple[float, float]]]:
        """(map, reduce) task-runtime CDFs — the two Fig. 9(b) curves."""
        return empirical_cdf(self.map_runtimes), empirical_cdf(self.reduce_runtimes)


def trace_statistics(trace: Trace) -> TraceStatistics:
    """Compute :class:`TraceStatistics` for ``trace``.

    Raises:
        ValueError: for an empty trace.
    """

    if len(trace) == 0:
        raise ValueError("cannot characterize an empty trace")
    map_counts = tuple(job.num_map for job in trace)
    reduce_counts = tuple(job.num_reduce for job in trace)
    map_runtimes = tuple(r for job in trace for r in job.map_runtimes)
    reduce_runtimes = tuple(r for job in trace for r in job.reduce_runtimes)
    return TraceStatistics(
        num_jobs=len(trace),
        map_counts=map_counts,
        reduce_counts=reduce_counts,
        map_runtimes=map_runtimes,
        reduce_runtimes=reduce_runtimes,
    )
