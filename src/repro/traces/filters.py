"""Trace filtering (Sec. V-C).

"As we are only interested in the tasks with dependencies, we filtered out
the jobs with no more than 5 map tasks or 5 reduce tasks."
"""

from __future__ import annotations

from .job import Trace

__all__ = ["filter_jobs"]


def filter_jobs(trace: Trace, min_map: int = 6, min_reduce: int = 6) -> Trace:
    """Keep only jobs with at least ``min_map`` map and ``min_reduce``
    reduce tasks (paper defaults: more than 5 of each).

    Returns a new :class:`Trace`; the input is not modified.
    """

    kept = [
        job
        for job in trace.jobs
        if job.num_map >= min_map and job.num_reduce >= min_reduce
    ]
    return Trace(jobs=kept, name=f"{trace.name}-filtered")
