"""One grammar for every ``name:key=value,...`` spec string.

``repro.specs`` unifies the three spec families users type at the CLI —
scheduler specs, arrival-process specs and federation-router specs —
behind a single tokenizer, typed option schemas and uniform
:class:`~repro.errors.ConfigError` messages with did-you-mean
suggestions.  The family entry points keep their historical homes and
signatures:

* :func:`repro.schedulers.registry.parse_scheduler_spec`
* :func:`repro.streaming.arrivals.parse_arrival_spec`
* :func:`repro.federation.routing.parse_router_spec`

Import from here to *extend* a grammar (a new arrival kind, a new router
policy) or to build a new spec family on the shared machinery.  The
closed-kind schemas in :mod:`repro.specs.catalog` are also read
statically by the REP204 flow rule, which checks every spec-looking
string literal in the codebase against them.
"""

from .catalog import (
    ARRIVAL_REQUIRED_KEYS,
    ARRIVAL_SPEC_SCHEMAS,
    ROUTER_SPEC_SCHEMAS,
)
from .grammar import (
    ARRIVAL_GRAMMAR,
    FALSE_WORDS,
    ROUTER_GRAMMAR,
    SCHEDULER_GRAMMAR,
    TRUE_WORDS,
    SpecGrammar,
    coerce_option,
    pop_option,
    reject_unknown_options,
    suggest,
    tokenize_spec,
    unknown_kind_error,
)

__all__ = [
    "SpecGrammar",
    "SCHEDULER_GRAMMAR",
    "ARRIVAL_GRAMMAR",
    "ROUTER_GRAMMAR",
    "tokenize_spec",
    "coerce_option",
    "pop_option",
    "reject_unknown_options",
    "unknown_kind_error",
    "suggest",
    "TRUE_WORDS",
    "FALSE_WORDS",
    "ARRIVAL_SPEC_SCHEMAS",
    "ARRIVAL_REQUIRED_KEYS",
    "ROUTER_SPEC_SCHEMAS",
]
