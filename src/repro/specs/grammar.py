"""The shared ``name:key=value,...`` spec grammar.

Three user-facing string grammars grew up independently — scheduler
specs (``"mcts:budget=200,seed=3"``), arrival specs
(``"poisson:rate=0.05,n=1000"``) and router specs
(``"least-load:metric=jobs"``) — each with its own tokenizer and its own
error phrasing.  This module is the single implementation all three now
share: one tokenizer, one value-coercion table, one did-you-mean
helper.  A :class:`SpecGrammar` instance carries the per-family wording
so every historical error message (the strings tests and scripts match
against) is preserved verbatim; new behaviour is additive — duplicate
keys are now rejected uniformly, and unknown kinds/keys suggest the
closest known name.

The family entry points stay where users import them from
(:func:`repro.schedulers.registry.parse_scheduler_spec`,
:func:`repro.streaming.arrivals.parse_arrival_spec`,
:func:`repro.federation.routing.parse_router_spec`); they are thin
layers over this grammar plus the schemas in
:mod:`repro.specs.catalog`.
"""

from __future__ import annotations

import difflib
from dataclasses import dataclass
from typing import Any, Callable, Dict, Iterable, Optional, Tuple

from ..errors import ConfigError

__all__ = [
    "SpecGrammar",
    "SCHEDULER_GRAMMAR",
    "ARRIVAL_GRAMMAR",
    "ROUTER_GRAMMAR",
    "tokenize_spec",
    "coerce_option",
    "pop_option",
    "reject_unknown_options",
    "unknown_kind_error",
    "suggest",
]

#: Spellings accepted for boolean option values (case-insensitive).
TRUE_WORDS = ("1", "true", "yes", "on")
FALSE_WORDS = ("0", "false", "no", "off")

#: How a type is named in value errors ("bad integer for n").
_TYPE_WORDS: Dict[type, str] = {
    int: "integer",
    float: "number",
    bool: "flag",
    str: "string",
}


@dataclass(frozen=True)
class SpecGrammar:
    """Per-family wording of the shared grammar.

    Args:
        noun: the family name used in ``"{noun} spec ..."`` messages.
        kind_noun: how the name segment is referred to in unknown-kind
            errors (``"scheduler"``, ``"arrival kind"``, ``"router
            policy"``).
        entry_message: :meth:`str.format` template for a non-``key=value``
            entry; may reference ``{part}`` and ``{spec}``.
        require_name: reject an empty name segment at tokenize time
            (families with a closed kind set instead report an unknown
            kind, matching their historical behaviour).
    """

    noun: str
    kind_noun: str
    entry_message: str
    require_name: bool = False


SCHEDULER_GRAMMAR = SpecGrammar(
    noun="scheduler",
    kind_noun="scheduler",
    entry_message="scheduler spec entry {part!r} is not key=value",
    require_name=True,
)

ARRIVAL_GRAMMAR = SpecGrammar(
    noun="arrival",
    kind_noun="arrival kind",
    entry_message="arrival option {part!r} is not key=value",
)

ROUTER_GRAMMAR = SpecGrammar(
    noun="router",
    kind_noun="router policy",
    entry_message="router option {part!r} in {spec!r} is not key=value",
)


def suggest(word: str, candidates: Iterable[str]) -> str:
    """A ``"; did you mean 'x'?"`` suffix, or ``""`` when nothing is close."""
    close = difflib.get_close_matches(word, list(candidates), n=1, cutoff=0.6)
    return f"; did you mean {close[0]!r}?" if close else ""


def tokenize_spec(spec: str, grammar: SpecGrammar) -> Tuple[str, Dict[str, str]]:
    """Split ``"name:key=val,key=val"`` into ``(name, raw options)``.

    A bare name tokenizes to ``(name, {})``; values stay strings —
    callers coerce them against a schema (:func:`pop_option` or
    :func:`coerce_option`).  Empty entries (``"a:,x=1,"``) are skipped,
    matching the historical tokenizers.

    Raises:
        ConfigError: on an empty name (grammars with ``require_name``),
            a non-``key=value`` entry, or a duplicated key.
    """
    name, sep, rest = spec.partition(":")
    name = name.strip()
    if grammar.require_name and not name:
        raise ConfigError(f"{grammar.noun} spec {spec!r} has an empty name")
    options: Dict[str, str] = {}
    if sep and rest.strip():
        for part in rest.split(","):
            part = part.strip()
            if not part:
                continue
            if "=" not in part:
                raise ConfigError(
                    grammar.entry_message.format(part=part, spec=spec)
                )
            key, _, raw = part.partition("=")
            key = key.strip()
            if key in options:
                raise ConfigError(
                    f"{grammar.noun} spec repeats key {key!r}"
                )
            options[key] = raw.strip()
    return name, options


def coerce_option(
    context: str, key: str, raw: Any, typ: Callable[[str], Any]
) -> Any:
    """Coerce one option value to its declared type (schema-table style).

    Used where the schema is a ``key -> type`` mapping resolved by name
    (the scheduler registry): errors read ``"{context}: option
    {key}={raw!r} is not a {type}"``.  Accepts non-string values too —
    programmatic kwargs arrive pre-typed (an int where a float is
    declared is widened; custom-typed options pass through untouched).
    """
    if not isinstance(raw, str):
        if typ not in (int, float, bool, str):
            return raw
        if typ is float and isinstance(raw, int) and not isinstance(raw, bool):
            return float(raw)
        if typ is bool and not isinstance(raw, bool):
            raise ConfigError(f"{context}: option {key}={raw!r} is not a bool")
        if isinstance(raw, typ):  # type: ignore[arg-type]
            return raw
        raise ConfigError(
            f"{context}: option {key}={raw!r} is not a {typ.__name__}"
        )
    if typ is bool:
        lowered = raw.lower()
        if lowered in TRUE_WORDS:
            return True
        if lowered in FALSE_WORDS:
            return False
        raise ConfigError(
            f"{context}: option {key}={raw!r} is not a bool (use true/false)"
        )
    try:
        return typ(raw)
    except (TypeError, ValueError):
        raise ConfigError(
            f"{context}: option {key}={raw!r} is not a {typ.__name__}"
        ) from None


def pop_option(
    options: Dict[str, str],
    key: str,
    typ: type,
    *,
    spec: str,
    grammar: SpecGrammar,
    required: bool = False,
    default: Any = None,
) -> Any:
    """Pop ``key`` from tokenized ``options`` and coerce it to ``typ``.

    Used by the closed-kind families (arrival, router): errors read
    ``"{noun} spec {spec!r} is missing {key}="`` and ``"{noun} spec
    {spec!r}: bad integer for {key}"``.  Absent non-required keys return
    ``default``.
    """
    if key not in options:
        if required:
            raise ConfigError(
                f"{grammar.noun} spec {spec!r} is missing {key}="
            )
        return default
    raw = options.pop(key)
    if typ is str:
        return raw
    if typ is bool:
        lowered = raw.lower()
        if lowered in TRUE_WORDS:
            return True
        if lowered in FALSE_WORDS:
            return False
        raise ConfigError(
            f"{grammar.noun} spec {spec!r}: bad flag for {key} "
            f"(use true/false)"
        )
    try:
        return typ(raw)
    except (TypeError, ValueError) as exc:
        word = _TYPE_WORDS.get(typ, typ.__name__)
        raise ConfigError(
            f"{grammar.noun} spec {spec!r}: bad {word} for {key}"
        ) from exc


def reject_unknown_options(
    options: Dict[str, str],
    known: Iterable[str],
    *,
    spec: str,
    grammar: SpecGrammar,
) -> None:
    """Raise on leftover keys, suggesting the closest known one."""
    if not options:
        return
    extra = sorted(options)
    hint = suggest(extra[0], known)
    raise ConfigError(
        f"unknown {grammar.noun} option(s) {extra} in {spec!r}{hint}"
    )


def unknown_kind_error(
    kind: str, kinds: Iterable[str], grammar: SpecGrammar
) -> ConfigError:
    """An unknown-kind error enumerating the family's kinds in order."""
    names = list(kinds)
    if len(names) > 1:
        phrase = ", ".join(names[:-1]) + " or " + names[-1]
    else:
        phrase = names[0] if names else "nothing"
    return ConfigError(
        f"unknown {grammar.kind_noun} {kind!r}; expected {phrase}"
        f"{suggest(kind, names)}"
    )
