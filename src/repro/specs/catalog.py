"""Declarative option schemas for the fixed spec families.

Scheduler schemas are *dynamic* — declared per name at
:func:`repro.schedulers.registry.register` time — but the arrival-process
and federation-router grammars have a closed set of kinds, so their
schemas live here as plain literals.  Three consumers read them:

* the parsers (:func:`repro.streaming.arrivals.parse_arrival_spec`,
  :func:`repro.federation.routing.parse_router_spec`) validate option
  keys and coerce values against these tables;
* ``repro.specs.grammar`` derives did-you-mean suggestions and the
  ``expected ...`` phrase of unknown-kind errors from the insertion
  order;
* the REP204 flow rule reads the dict literals **statically** (AST) and
  cross-checks every ``"kind:key=value"`` string literal in the codebase
  against them — drift between a docstring example and the parser is a
  lint failure, not a runtime surprise.

Keep the dicts literal (string keys, bare type names) so the AST reader
keeps working, and keep kinds in their documented order — error messages
enumerate them in insertion order.
"""

from __future__ import annotations

from typing import Dict, Tuple

__all__ = [
    "ARRIVAL_SPEC_SCHEMAS",
    "ARRIVAL_REQUIRED_KEYS",
    "ROUTER_SPEC_SCHEMAS",
]

#: Arrival-process kinds (``repro.streaming.arrivals``): option key -> type.
ARRIVAL_SPEC_SCHEMAS: Dict[str, Dict[str, type]] = {
    "poisson": {"rate": float, "n": int},
    "uniform": {"interarrival": int, "n": int},
    "trace": {"path": str, "mean": float, "interarrival": int},
}

#: Keys a kind cannot parse without.  ``trace`` additionally requires
#: exactly one of ``mean``/``interarrival``, which a flat table cannot
#: express; the parser enforces that choice.
ARRIVAL_REQUIRED_KEYS: Dict[str, Tuple[str, ...]] = {
    "poisson": ("rate", "n"),
    "uniform": ("interarrival", "n"),
    "trace": ("path",),
}

#: Federation router policies (``repro.federation.routing``).
ROUTER_SPEC_SCHEMAS: Dict[str, Dict[str, type]] = {
    "round-robin": {},
    "least-load": {"metric": str},
    "hash": {"salt": int},
    "affinity": {"spill": int},
}
