"""Command-line interface: ``python -m repro`` or the ``repro`` script.

Subcommands::

    repro simulate   --scheduler tetris|mcts:budget=200 --tasks 50 --seed 0
    repro schedulers [--json]     (registry names + typed spec options)
    repro train      --epochs 50 --out spear.npz --seed 0 [--trace-out t.jsonl]
    repro trace      --out trace.json --seed 0 [--stats]
    repro trace      summary|export|top-spans run.jsonl   (telemetry traces)
    repro experiment fig6a|fig6b|fig7|fig8a|fig8b|fig9ab|fig9c|table1 \
                     [--paper-scale] [--seed N] [--trace-out run.jsonl]
    repro ablation   expansion-filters|budget-decay|max-value-ucb|...
    repro motivating
    repro online     --jobs 10 --faults crashes=2,transient=0.05 \
                     --reschedule heft [--verify-executed] [--check-recoveries]
    repro stream     --arrival poisson:rate=0.05,n=1000 --seed 0 \
                     [--max-concurrent 32 --max-queue 64] [--horizon 5000] \
                     [--metrics-out m.json] [--gate-p99 400] [--verify-executed]
    repro serve      --scheduler tetris --port 7077 [--batch-max 16]
    repro serve      --smoke --requests 3 [--frames-out frames.jsonl]
    repro verify     schedule.json --graph graph.json [--capacities 20,20]
    repro lint       src/repro [--flow] [--format json|sarif]
                     [--select REP101,REP205] [--baseline lint-baseline.json]
    repro bench      [--quick] [--filter mcts] [--baseline benchmarks/baselines.json]

Every command prints a plain-text report to stdout and exits non-zero on
error.
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from .config import EnvConfig, TrainingConfig, WorkloadConfig

__all__ = ["main", "build_parser"]


def build_parser() -> argparse.ArgumentParser:
    """Construct the top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Spear (ICDCS 2019) reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    simulate = sub.add_parser("simulate", help="schedule one random DAG")
    simulate.add_argument(
        "--scheduler",
        default="tetris",
        help="registry spec, e.g. tetris, mcts:budget=200, "
        "spear:budget=100,verify=true (see: repro schedulers)",
    )
    simulate.add_argument("--tasks", type=int, default=50)
    simulate.add_argument("--seed", type=int, default=0)
    simulate.add_argument("--budget", type=int, default=100)
    simulate.add_argument("--min-budget", type=int, default=20)

    schedulers = sub.add_parser(
        "schedulers", help="list registered schedulers and their spec options"
    )
    schedulers.add_argument("--json", action="store_true", help="JSON output")

    train = sub.add_parser("train", help="train a Spear policy network")
    train.add_argument("--epochs", type=int, default=50)
    train.add_argument("--examples", type=int, default=24)
    train.add_argument("--example-tasks", type=int, default=15)
    train.add_argument("--rollouts", type=int, default=8)
    train.add_argument("--seed", type=int, default=0)
    train.add_argument("--out", default="spear-network.npz")
    train.add_argument("--log-every", type=int, default=10)
    train.add_argument(
        "--algo",
        choices=("reinforce", "ppo"),
        default="reinforce",
        help="rollout trainer (default: the paper's REINFORCE)",
    )
    train.add_argument(
        "--policy",
        choices=("mlp", "gnn"),
        default="mlp",
        help="model family: windowed MLP or scale-invariant graph policy",
    )
    train.add_argument(
        "--grad-clip",
        type=float,
        default=0.0,
        help="global-norm gradient clipping threshold (0 = off)",
    )
    train.add_argument(
        "--trace-out",
        default=None,
        help="run with telemetry enabled; write the JSONL trace here",
    )

    trace = sub.add_parser(
        "trace",
        help="generate/characterize a workload trace, or inspect a "
        "telemetry trace (summary/export/top-spans)",
    )
    trace.add_argument("--out", default=None)
    trace.add_argument("--seed", type=int, default=0)
    trace.add_argument("--jobs", type=int, default=99)
    trace.add_argument("--stats", action="store_true")
    trace_sub = trace.add_subparsers(dest="trace_command")
    trace_summary = trace_sub.add_parser(
        "summary", help="span/counter/series report of a telemetry JSONL trace"
    )
    trace_summary.add_argument("path", help="telemetry JSONL trace file")
    trace_export = trace_sub.add_parser(
        "export", help="re-export a telemetry trace (validating round-trip)"
    )
    trace_export.add_argument("path", help="telemetry JSONL trace file")
    trace_export.add_argument(
        "--out", required=True, dest="export_out", help="destination JSONL path"
    )
    trace_top = trace_sub.add_parser(
        "top-spans", help="span names ranked by total time spent"
    )
    trace_top.add_argument("path", help="telemetry JSONL trace file")
    trace_top.add_argument("--limit", type=int, default=10)

    experiment = sub.add_parser("experiment", help="run a paper experiment")
    experiment.add_argument(
        "name",
        choices=[
            "fig6a",
            "fig6b",
            "fig7",
            "fig8a",
            "fig8b",
            "fig9ab",
            "fig9c",
            "table1",
            "generalization",
        ],
    )
    experiment.add_argument("--paper-scale", action="store_true")
    experiment.add_argument("--seed", type=int, default=0)
    experiment.add_argument(
        "--trace-out",
        default=None,
        help="run with telemetry enabled; write the JSONL trace here",
    )

    ablation = sub.add_parser("ablation", help="run a design-choice ablation")
    ablation.add_argument("name")
    ablation.add_argument("--paper-scale", action="store_true")
    ablation.add_argument("--seed", type=int, default=0)

    sub.add_parser("motivating", help="run the Fig. 3 motivating example")

    compare = sub.add_parser(
        "compare", help="round-robin tournament over random DAGs"
    )
    compare.add_argument(
        "--schedulers",
        default="tetris,sjf,cp,graphene,heft",
        help="comma-separated registry names (plus 'mcts')",
    )
    compare.add_argument("--jobs", type=int, default=5)
    compare.add_argument("--tasks", type=int, default=30)
    compare.add_argument("--seed", type=int, default=0)
    compare.add_argument("--budget", type=int, default=50)
    compare.add_argument("--min-budget", type=int, default=10)
    compare.add_argument("--reference", default=None)
    compare.add_argument(
        "--trace-out",
        default=None,
        help="run with telemetry enabled; write the JSONL trace here",
    )

    online = sub.add_parser(
        "online", help="multi-job arrival-stream simulation on a trace"
    )
    online.add_argument("--jobs", type=int, default=10)
    online.add_argument("--seed", type=int, default=0)
    online.add_argument("--mean-interarrival", type=float, default=25.0)
    online.add_argument("--runtime-scale", type=float, default=0.2)
    online.add_argument(
        "--rankers", default="fifo,sjf,cp,tetris", help="comma-separated"
    )
    online.add_argument(
        "--faults",
        default=None,
        help="fault spec, e.g. crashes=2,transient=0.05,straggler=0.1 "
        "(see repro.faults.parse_fault_spec)",
    )
    online.add_argument(
        "--fault-horizon",
        type=int,
        default=None,
        help="crash-time horizon in slots (default: jobs x interarrival x 2)",
    )
    online.add_argument(
        "--reschedule",
        default=None,
        help="scheduler spec replanning each job's residual DAG on every "
        "fault event, e.g. heft or mcts:budget=50",
    )
    online.add_argument(
        "--fallback",
        default=None,
        help="heuristic spec the rescheduler degrades to on errors or "
        "budget overruns (e.g. heft)",
    )
    online.add_argument(
        "--replan-budget",
        type=float,
        default=None,
        help="per-replan wall-clock budget in seconds",
    )
    online.add_argument(
        "--verify-executed",
        action="store_true",
        help="verify every executed schedule against the realized DAGs "
        "(exit 1 on any violation)",
    )
    online.add_argument(
        "--check-recoveries",
        action="store_true",
        help="exit 1 unless the run recovered capacity at least once "
        "(CI fault-smoke gate)",
    )
    online.add_argument(
        "--trace-out",
        default=None,
        help="run with telemetry enabled; write the JSONL trace here",
    )

    stream = sub.add_parser(
        "stream",
        help="continuous-arrival steady-state simulation (open system)",
    )
    stream.add_argument(
        "--arrival",
        default="poisson:rate=0.05,n=200",
        help="arrival spec: poisson:rate=R,n=N | uniform:interarrival=K,n=N "
        "| trace:path=t.json,mean=M (see repro.streaming.parse_arrival_spec)",
    )
    stream.add_argument("--seed", type=int, default=0)
    stream.add_argument(
        "--ranker", default="sjf", help="dispatch order: fifo|sjf|cp|tetris"
    )
    stream.add_argument(
        "--tasks", type=int, default=8, help="tasks per generated job DAG"
    )
    stream.add_argument(
        "--max-concurrent",
        type=int,
        default=None,
        help="admission limit on jobs in the cluster (default: unbounded)",
    )
    stream.add_argument(
        "--max-queue",
        type=int,
        default=None,
        help="backlog capacity once --max-concurrent is hit; a full "
        "backlog sheds (rejects) new arrivals",
    )
    stream.add_argument(
        "--horizon",
        type=int,
        default=None,
        help="run length in slots from the first arrival; later arrivals "
        "are cut off (in-flight work drains)",
    )
    stream.add_argument(
        "--faults",
        default=None,
        help="fault spec, e.g. crashes=2,transient=0.05 "
        "(see repro.faults.parse_fault_spec)",
    )
    stream.add_argument(
        "--fault-horizon",
        type=int,
        default=None,
        help="crash-time horizon in slots (default: --horizon or 1000)",
    )
    stream.add_argument(
        "--reschedule",
        default=None,
        help="scheduler spec replanning residual DAGs (e.g. heft)",
    )
    stream.add_argument(
        "--fallback", default=None, help="degradation spec for --reschedule"
    )
    stream.add_argument(
        "--replan-budget",
        type=float,
        default=None,
        help="per-replan wall-clock budget in seconds",
    )
    stream.add_argument(
        "--metrics-out",
        default=None,
        help="write the deterministic steady-state metrics JSON here "
        "(byte-identical across runs of the same spec+seed)",
    )
    stream.add_argument(
        "--verify-executed",
        action="store_true",
        help="verify every executed schedule against the realized DAGs "
        "(exit 1 on any violation)",
    )
    stream.add_argument(
        "--gate-p99",
        type=float,
        default=None,
        help="exit 1 if the p99 JCT exceeds this many slots (CI gate)",
    )
    stream.add_argument(
        "--trace-out",
        default=None,
        help="run with telemetry enabled; write the JSONL trace here",
    )

    federate = sub.add_parser(
        "federate",
        help="sharded multi-scheduler federation with routing and stealing",
    )
    federate.add_argument(
        "--shards",
        type=int,
        default=2,
        help="number of shards the cluster capacity is split into",
    )
    federate.add_argument(
        "--router",
        default="least-load",
        help="placement policy spec: round-robin | least-load:metric=jobs|tasks"
        " | hash:salt=N | affinity:spill=N "
        "(see repro.federation.parse_router_spec)",
    )
    federate.add_argument(
        "--steal-threshold",
        type=int,
        default=None,
        help="migrate work when the jobs-in-system gap between the most- "
        "and least-loaded shard exceeds this (default: stealing off)",
    )
    federate.add_argument(
        "--scheduler",
        action="append",
        default=None,
        help="rescheduler spec replanning residual DAGs (e.g. heft). Give "
        "once for all shards, or once per shard for a heterogeneous "
        "federation; 'none' leaves a shard ranker-only",
    )
    federate.add_argument(
        "--arrival",
        default="poisson:rate=0.05,n=200",
        help="arrival spec: poisson:rate=R,n=N | uniform:interarrival=K,n=N "
        "| trace:path=t.json,mean=M (see repro.streaming.parse_arrival_spec)",
    )
    federate.add_argument("--seed", type=int, default=0)
    federate.add_argument(
        "--ranker", default="sjf", help="dispatch order: fifo|sjf|cp|tetris"
    )
    federate.add_argument(
        "--tasks", type=int, default=8, help="tasks per generated job DAG"
    )
    federate.add_argument(
        "--max-concurrent",
        type=int,
        default=None,
        help="per-shard admission limit on jobs in the shard "
        "(default: unbounded)",
    )
    federate.add_argument(
        "--max-queue",
        type=int,
        default=None,
        help="per-shard backlog capacity once --max-concurrent is hit",
    )
    federate.add_argument(
        "--horizon",
        type=int,
        default=None,
        help="run length in slots from the first arrival; later arrivals "
        "are cut off (in-flight work drains)",
    )
    federate.add_argument(
        "--faults",
        default=None,
        help="per-shard fault spec, e.g. crashes=1,transient=0.05; each "
        "shard gets its own seeded plan validated against its slice "
        "(the shard is the fault domain)",
    )
    federate.add_argument(
        "--fault-horizon",
        type=int,
        default=None,
        help="crash-time horizon in slots (default: --horizon or 1000)",
    )
    federate.add_argument(
        "--metrics-out",
        default=None,
        help="write the deterministic federation metrics JSON here "
        "(byte-identical across runs of the same spec+seed)",
    )
    federate.add_argument(
        "--gate-p99",
        type=float,
        default=None,
        help="exit 1 if the aggregate p99 JCT exceeds this many slots",
    )
    federate.add_argument(
        "--compare-global",
        action="store_true",
        help="also run an equal-total-capacity single-scheduler baseline "
        "on the same stream and report the deltas",
    )
    federate.add_argument(
        "--trace-out",
        default=None,
        help="run with telemetry enabled; write the JSONL trace here",
    )

    serve = sub.add_parser(
        "serve", help="scheduling daemon speaking newline-delimited JSON"
    )
    serve.add_argument(
        "--scheduler",
        default="tetris",
        help="registry spec served to clients (see: repro schedulers)",
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port", type=int, default=0, help="0 picks an ephemeral port"
    )
    serve.add_argument(
        "--batch-max",
        type=int,
        default=16,
        help="most requests planned in one serving tick",
    )
    serve.add_argument(
        "--smoke",
        action="store_true",
        help="in-process round trip: start the daemon, submit --requests "
        "concurrent requests, drain, and exit (CI gate)",
    )
    serve.add_argument(
        "--requests", type=int, default=3, help="--smoke request count"
    )
    serve.add_argument("--seed", type=int, default=0)
    serve.add_argument(
        "--frames-out",
        default=None,
        help="--smoke: write every exchanged frame here as JSONL",
    )

    verify = sub.add_parser(
        "verify", help="check a schedule JSON against its DAG and capacities"
    )
    verify.add_argument("schedule", help="schedule JSON (repro.metrics.export)")
    verify.add_argument(
        "--graph", required=True, help="task-graph JSON (repro.dag.io)"
    )
    verify.add_argument(
        "--capacities",
        default=None,
        help="comma-separated per-resource capacities (default: cluster default)",
    )
    verify.add_argument("--json", action="store_true", help="JSON report")

    lint = sub.add_parser("lint", help="run the repro-specific AST lint rules")
    lint.add_argument("paths", nargs="*", help="files or directories to lint")
    lint.add_argument("--format", choices=["text", "json", "sarif"], default="text")
    lint.add_argument("--select", default=None, help="comma-separated rule ids")
    lint.add_argument("--ignore", default=None, help="comma-separated rule ids")
    lint.add_argument(
        "--flow",
        action="store_true",
        help="also run the whole-program dataflow rules (REP201-REP205)",
    )
    lint.add_argument(
        "--baseline",
        default=None,
        metavar="FILE",
        help="suppress violations recorded in this baseline file; "
        "only new findings fail the run",
    )
    lint.add_argument(
        "--update-baseline",
        default=None,
        metavar="FILE",
        help="write the current findings to FILE as the new baseline and exit 0",
    )
    lint.add_argument(
        "--list-rules", action="store_true", help="list rules and exit"
    )

    bench = sub.add_parser(
        "bench", help="run hot-path microbenchmarks; export BENCH_*.json"
    )
    bench.add_argument(
        "--quick", action="store_true", help="few repeats (CI smoke setting)"
    )
    bench.add_argument(
        "--filter", default=None, help="substring filter on benchmark names"
    )
    bench.add_argument("--out-dir", default=".", help="BENCH_*.json directory")
    bench.add_argument("--seed", type=int, default=0)
    bench.add_argument(
        "--baseline",
        default=None,
        help="baselines JSON to gate against (exit 1 on regression)",
    )
    bench.add_argument(
        "--max-regression",
        type=float,
        default=0.25,
        help="allowed fraction above a baseline budget (default 0.25)",
    )
    bench.add_argument(
        "--update-baselines",
        action="store_true",
        help="rewrite the --baseline file from this run's means",
    )
    bench.add_argument(
        "--json", action="store_true", help="print the full run as JSON"
    )
    bench.add_argument(
        "--list", action="store_true", help="list benchmarks and exit"
    )
    return parser


# ---------------------------------------------------------------------- #
# command implementations
# ---------------------------------------------------------------------- #


def _split_spec_list(raw: str) -> List[str]:
    """Split a comma-separated scheduler-spec list.

    Commas also separate options *inside* a spec, so a ``key=value`` part
    following a spec that already has a ``:`` belongs to that spec:
    ``"mcts:budget=50,seed=2,tetris"`` → ``["mcts:budget=50,seed=2",
    "tetris"]``.
    """
    specs: List[str] = []
    for part in [p.strip() for p in raw.split(",") if p.strip()]:
        if "=" in part and ":" not in part and specs and ":" in specs[-1]:
            specs[-1] += f",{part}"
        else:
            specs.append(part)
    return specs


def _default_mcts_spec(spec: str, args: argparse.Namespace) -> str:
    """Expand a bare ``mcts`` spec with the legacy budget flags."""
    if spec == "mcts":
        return (
            f"mcts:budget={args.budget},min_budget={args.min_budget},"
            f"seed={args.seed}"
        )
    return spec


def _cmd_simulate(args: argparse.Namespace) -> int:
    from .dag.generators import random_layered_dag
    from .errors import ConfigError
    from .metrics.schedule import validate_schedule
    from .schedulers.base import ScheduleRequest
    from .schedulers.registry import make_scheduler

    graph = random_layered_dag(WorkloadConfig(num_tasks=args.tasks), seed=args.seed)
    env_config = EnvConfig(process_until_completion=True)
    try:
        scheduler = make_scheduler(
            _default_mcts_spec(args.scheduler, args), env_config
        )
    except ConfigError as exc:
        print(f"simulate: {exc}", file=sys.stderr)
        return 2
    schedule = scheduler.plan(ScheduleRequest(graph))
    validate_schedule(schedule, graph, env_config.cluster.capacities)
    print(
        f"{args.scheduler}: {graph.num_tasks} tasks, makespan "
        f"{schedule.makespan} slots, planned in {schedule.wall_time:.2f}s"
    )
    return 0


def _cmd_schedulers(args: argparse.Namespace) -> int:
    import json

    from .schedulers.registry import scheduler_options

    options = scheduler_options()
    wrapper_help = {
        "verify": "bool — machine-check every emitted schedule",
        "telemetry": "bool — wrap plans in scheduler.plan spans",
        "fallback": "spec — degrade to this scheduler on errors/overruns",
        "replan_budget": "float — per-replan wall-clock budget (seconds)",
    }
    if args.json:
        print(json.dumps({"schedulers": options, "wrapper_keys": wrapper_help},
                         indent=2))
        return 0
    print("registered schedulers (spec: name[:key=value,...]):")
    for name, schema in options.items():
        if schema:
            keys = ", ".join(f"{key}={typ}" for key, typ in schema.items())
            print(f"  {name:<10} {keys}")
        else:
            print(f"  {name}")
    print("wrapper keys (valid on every spec):")
    for key, text in wrapper_help.items():
        print(f"  {key:<14} {text}")
    return 0


def _cmd_train(args: argparse.Namespace) -> int:
    from .core.pipeline import train_spear_network
    from .rl.checkpoints import save_checkpoint

    training = TrainingConfig(
        num_examples=args.examples,
        example_num_tasks=args.example_tasks,
        rollouts_per_example=args.rollouts,
        epochs=args.epochs,
        max_grad_norm=args.grad_clip,
    )
    network, history = train_spear_network(
        env_config=EnvConfig(process_until_completion=True),
        training=training,
        seed=args.seed,
        log_every=args.log_every,
        algo=args.algo,
        policy=args.policy,
    )
    save_checkpoint(network, args.out)
    final = history[-1].mean_makespan if history else float("nan")
    print(
        f"trained {args.epochs} epochs ({args.algo}, {args.policy}); "
        f"final mean makespan {final:.1f}"
    )
    print(f"checkpoint written to {args.out}")
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    if getattr(args, "trace_command", None):
        return _cmd_trace_telemetry(args)
    from .experiments.reporting import format_cdf
    from .traces.stats import trace_statistics
    from .traces.synthetic import TraceConfig, generate_production_trace

    trace = generate_production_trace(
        TraceConfig(num_jobs=args.jobs), seed=args.seed
    )
    if args.out:
        trace.save(args.out)
        print(f"wrote {len(trace)} jobs to {args.out}")
    if args.stats or not args.out:
        stats = trace_statistics(trace)
        print(
            f"{stats.num_jobs} jobs | map tasks median "
            f"{stats.median_map_count:.0f} max {stats.max_map_count} | "
            f"reduce tasks median {stats.median_reduce_count:.0f} max "
            f"{stats.max_reduce_count}"
        )
        map_cdf, reduce_cdf = stats.runtime_cdfs()
        print(format_cdf(map_cdf, "map runtime", title="Fig 9(b) map stage"))
        print(format_cdf(reduce_cdf, "reduce runtime", title="Fig 9(b) reduce stage"))
    return 0


def _cmd_trace_telemetry(args: argparse.Namespace) -> int:
    """``repro trace summary|export|top-spans`` over a telemetry JSONL."""
    from .errors import ConfigError
    from .telemetry import load_trace, summarize, top_spans, write_trace

    try:
        loaded = load_trace(args.path)
    except ConfigError as exc:
        print(f"trace: {exc}", file=sys.stderr)
        return 2
    if args.trace_command == "summary":
        print(summarize(loaded.events).report())
    elif args.trace_command == "export":
        target = write_trace(args.export_out, loaded.events, meta=loaded.meta)
        print(f"wrote {len(loaded.events)} events to {target}")
    elif args.trace_command == "top-spans":
        ranked = top_spans(loaded.events, limit=args.limit)
        if not ranked:
            print("no spans in trace")
        for stats in ranked:
            print(
                f"{stats.name:<32} n={stats.count:<6} "
                f"total={stats.total_us / 1e6:>8.3f}s "
                f"mean={stats.mean_us:>10.1f}us p99={stats.p99_us:>10.1f}us"
            )
    else:  # pragma: no cover - argparse restricts choices
        return 2
    return 0


def _cmd_experiment(args: argparse.Namespace) -> int:
    from . import experiments
    from .experiments.reporting import format_cdf

    scale = args.paper_scale or None
    name = args.name
    if name == "fig6a":
        print(experiments.makespan_comparison(scale, seed=args.seed).report())
    elif name == "fig6b":
        times = experiments.runtime_comparison(scale, seed=args.seed)
        for scheduler, series in times.items():
            mean = sum(series) / len(series)
            print(f"{scheduler}: mean {mean:.2f}s, max {max(series):.2f}s")
    elif name == "fig7":
        print(experiments.budget_sweep(scale, seed=args.seed).report())
    elif name == "fig8a":
        print(experiments.budget_reduction(scale, seed=args.seed).report())
    elif name == "fig8b":
        print(experiments.learning_curve(scale, seed=args.seed).report())
    elif name == "fig9ab":
        stats = experiments.trace_characteristics(scale, seed=args.seed)
        map_cdf, reduce_cdf = stats.count_cdfs()
        print(format_cdf(map_cdf, "#map", title="Fig 9(a) map tasks"))
        print(format_cdf(reduce_cdf, "#reduce", title="Fig 9(a) reduce tasks"))
    elif name == "fig9c":
        print(experiments.reduction_cdf(scale, seed=args.seed).report())
    elif name == "table1":
        print(experiments.runtime_grid(scale, seed=args.seed).report())
    elif name == "generalization":
        print(experiments.generalization_study(scale, seed=args.seed).report())
    else:  # pragma: no cover - argparse restricts choices
        return 2
    return 0


def _cmd_ablation(args: argparse.Namespace) -> int:
    from .experiments.ablations import ABLATIONS, feature_ablation, run_ablation

    scale = args.paper_scale or None
    if args.name == "graph-features":
        print(feature_ablation(scale, seed=args.seed).report())
        return 0
    if args.name not in ABLATIONS:
        print(
            f"unknown ablation {args.name!r}; choose from "
            f"{sorted(ABLATIONS) + ['graph-features']}",
            file=sys.stderr,
        )
        return 2
    print(run_ablation(args.name, scale, seed=args.seed).report())
    return 0


def _cmd_motivating(_: argparse.Namespace) -> int:
    from .config import ClusterConfig
    from .dag.examples import MOTIVATING_CAPACITY, MOTIVATING_T, motivating_example
    from .metrics.schedule import validate_schedule
    from .schedulers.base import ScheduleRequest
    from .schedulers.registry import make_scheduler

    graph = motivating_example()
    env_config = EnvConfig(
        cluster=ClusterConfig(capacities=MOTIVATING_CAPACITY, horizon=20)
    )
    print("Fig. 3 motivating example (T =", MOTIVATING_T, "slots):")
    for name in ("optimal", "tetris", "sjf", "cp", "graphene"):
        schedule = make_scheduler(name, env_config).plan(ScheduleRequest(graph))
        validate_schedule(schedule, graph, MOTIVATING_CAPACITY)
        print(f"  {name:<9} makespan {schedule.makespan} "
              f"({schedule.makespan / MOTIVATING_T:.0f}T)")
    return 0


def _cmd_compare(args: argparse.Namespace) -> int:
    from .dag.generators import random_layered_dag
    from .errors import ConfigError
    from .experiments.tournament import run_tournament
    from .schedulers.registry import make_scheduler, parse_scheduler_spec
    from .utils.rng import as_generator, spawn

    env_config = EnvConfig(process_until_completion=True)
    schedulers = {}
    for spec in _split_spec_list(args.schedulers):
        try:
            label = parse_scheduler_spec(spec)[0]
            schedulers[label] = make_scheduler(
                _default_mcts_spec(spec, args), env_config
            )
        except ConfigError as exc:
            print(f"compare: {exc}", file=sys.stderr)
            return 2
    rng = as_generator(args.seed)
    graphs = [
        random_layered_dag(WorkloadConfig(num_tasks=args.tasks), seed=child)
        for child in spawn(rng, args.jobs)
    ]
    result = run_tournament(
        schedulers, graphs, env_config, reference=args.reference
    )
    print(result.report())
    return 0


def _cmd_online(args: argparse.Namespace) -> int:
    from .errors import ConfigError
    from .experiments.reporting import format_table
    from .online import OnlineSimulator, resolve_ranker, verify_execution
    from .traces.arrivals import poisson_arrivals
    from .traces.synthetic import TraceConfig, generate_production_trace

    names = [n.strip() for n in args.rankers.split(",") if n.strip()]
    known = {}
    unknown = []
    for name in names:
        try:
            known[name] = resolve_ranker(name)
        except KeyError:
            unknown.append(name)
    if unknown:
        print(
            f"unknown rankers {unknown}; choose from "
            "['cp', 'fifo', 'sjf', 'tetris']",
            file=sys.stderr,
        )
        return 2

    trace = generate_production_trace(
        TraceConfig(num_jobs=args.jobs, runtime_scale=args.runtime_scale),
        seed=args.seed,
    )
    stream = poisson_arrivals(trace, args.mean_interarrival, seed=args.seed)
    env_config = EnvConfig(process_until_completion=True)
    capacities = env_config.cluster.capacities

    faults = None
    if args.faults:
        from .faults import parse_fault_spec

        horizon = (
            args.fault_horizon
            if args.fault_horizon is not None
            else max(2, int(args.jobs * args.mean_interarrival * 2))
        )
        try:
            faults = parse_fault_spec(
                args.faults, capacities, horizon, seed=args.seed
            )
        except ConfigError as exc:
            print(f"online: {exc}", file=sys.stderr)
            return 2

    def build_rescheduler():
        """Fresh per-ranker wrapper so degradation state never leaks."""
        if not args.reschedule:
            if args.fallback or args.replan_budget is not None:
                raise ConfigError(
                    "--fallback/--replan-budget require --reschedule"
                )
            return None
        from .schedulers.registry import compose_scheduler

        return compose_scheduler(
            args.reschedule,
            env_config,
            reschedule=True,
            fallback=args.fallback,
            replan_budget=args.replan_budget,
        )

    simulator = OnlineSimulator(telemetry=None)
    rows = []
    violations = 0
    recovered = 0
    for name in names:
        try:
            rescheduler = build_rescheduler()
            result = simulator.run(
                stream, known[name], faults=faults, rescheduler=rescheduler
            )
        except ConfigError as exc:
            print(f"online: {exc}", file=sys.stderr)
            return 2
        cpu, mem = result.mean_utilization
        row = [name, result.mean_jct, result.max_jct, result.makespan,
               f"{cpu:.0%}/{mem:.0%}"]
        if faults is not None:
            # Effective (realized-capacity) vs nominal utilization: the
            # gap is the share of nominal capacity lost to crashes.
            nom_cpu, nom_mem = result.nominal_utilization
            row += [
                f"{nom_cpu:.0%}/{nom_mem:.0%}",
                f"{result.crashes}/{result.recoveries}",
                result.total_retries,
                result.failed_jobs,
            ]
            recovered += result.recoveries
        rows.append(tuple(row))
        if args.verify_executed:
            reports = verify_execution(result, stream, capacities)
            bad = [r for r in reports if r is not None and not r.ok]
            for report in bad:
                print(f"online[{name}]: {report.summary()}", file=sys.stderr)
            violations += len(bad)
    headers = ["ranker", "mean JCT", "max JCT", "makespan", "util cpu/mem"]
    if faults is not None:
        headers += ["nom util", "crash/recov", "retries", "failed"]
    title = (
        f"Online: {len(stream)} jobs, Poisson mean interarrival "
        f"{args.mean_interarrival:g} slots"
    )
    if faults is not None:
        title += f" | faults: {args.faults}"
    if args.reschedule:
        title += f" | reschedule: {args.reschedule}"
    print(format_table(headers, rows, title=title))
    if args.verify_executed:
        print(
            "executed-schedule verification: "
            + ("clean" if not violations else f"{violations} job(s) violated")
        )
        if violations:
            return 1
    if args.check_recoveries and faults is not None and recovered == 0:
        print("online: no capacity recovery occurred", file=sys.stderr)
        return 1
    return 0


def _cmd_stream(args: argparse.Namespace) -> int:
    import json
    from pathlib import Path

    from .errors import ConfigError
    from .online import resolve_ranker, verify_execution
    from .streaming import (
        AdmissionConfig,
        StreamingSimulator,
        layered_job_factory,
        parse_arrival_spec,
        streaming_workload,
    )

    try:
        ranker = resolve_ranker(args.ranker)
    except KeyError as exc:
        print(f"stream: {exc.args[0]}", file=sys.stderr)
        return 2
    env_config = EnvConfig(process_until_completion=True)
    capacities = env_config.cluster.capacities
    try:
        factory = layered_job_factory(streaming_workload(num_tasks=args.tasks))
        arrivals = parse_arrival_spec(args.arrival, factory, seed=args.seed)
        admission = None
        if args.max_concurrent is not None or args.max_queue is not None:
            admission = AdmissionConfig(
                max_concurrent=args.max_concurrent, max_queue=args.max_queue
            )
        faults = None
        if args.faults:
            from .faults import parse_fault_spec

            fault_horizon = (
                args.fault_horizon
                if args.fault_horizon is not None
                else (args.horizon if args.horizon is not None else 1000)
            )
            faults = parse_fault_spec(
                args.faults, capacities, fault_horizon, seed=args.seed
            )
        rescheduler = None
        if args.reschedule:
            from .schedulers.registry import compose_scheduler

            rescheduler = compose_scheduler(
                args.reschedule,
                env_config,
                reschedule=True,
                fallback=args.fallback,
                replan_budget=args.replan_budget,
            )
        elif args.fallback or args.replan_budget is not None:
            raise ConfigError("--fallback/--replan-budget require --reschedule")
        simulator = StreamingSimulator(cluster=env_config.cluster)
        result = simulator.run(
            arrivals,
            ranker,
            admission=admission,
            horizon=args.horizon,
            faults=faults,
            rescheduler=rescheduler,
        )
    except ConfigError as exc:
        print(f"stream: {exc}", file=sys.stderr)
        return 2
    print(f"Streaming: {args.arrival} | ranker {args.ranker} | seed {args.seed}")
    print(result.report())
    if args.metrics_out:
        Path(args.metrics_out).write_text(
            json.dumps(result.metrics_dict(), sort_keys=True, indent=2) + "\n",
            encoding="utf-8",
        )
        print(f"wrote metrics to {args.metrics_out}")
    if args.verify_executed:
        # The process is restartable, so re-materializing it recovers
        # each outcome's original graph by stream index.
        jobs = list(arrivals.jobs())
        reports = verify_execution(result.online, jobs, capacities)
        bad = [r for r in reports if r is not None and not r.ok]
        for report in bad:
            print(f"stream: {report.summary()}", file=sys.stderr)
        print(
            "executed-schedule verification: "
            + ("clean" if not bad else f"{len(bad)} job(s) violated")
        )
        if bad:
            return 1
    if args.gate_p99 is not None and result.p99_jct > args.gate_p99:
        print(
            f"stream: p99 JCT {result.p99_jct:.0f} exceeds the "
            f"--gate-p99 bound {args.gate_p99:g}",
            file=sys.stderr,
        )
        return 1
    return 0


def _cmd_federate(args: argparse.Namespace) -> int:
    import json
    from pathlib import Path

    from .errors import ConfigError
    from .federation import (
        FederatedStreamingSimulator,
        FederationComparison,
        ShardSpec,
        parse_router_spec,
        split_capacities,
    )
    from .online import resolve_ranker
    from .streaming import (
        AdmissionConfig,
        StreamingSimulator,
        layered_job_factory,
        parse_arrival_spec,
        streaming_workload,
    )

    try:
        ranker = resolve_ranker(args.ranker)
    except KeyError as exc:
        print(f"federate: {exc.args[0]}", file=sys.stderr)
        return 2
    env_config = EnvConfig(process_until_completion=True)
    total = env_config.cluster.capacities
    try:
        router = parse_router_spec(args.router)
        slices = split_capacities(total, args.shards)
        scheduler_specs = list(args.scheduler or [])
        if len(scheduler_specs) not in (0, 1, args.shards):
            raise ConfigError(
                f"--scheduler given {len(scheduler_specs)} times; give it "
                f"once for all shards or once per shard ({args.shards})"
            )
        if len(scheduler_specs) == 1:
            scheduler_specs = scheduler_specs * args.shards
        admission = None
        if args.max_concurrent is not None or args.max_queue is not None:
            admission = AdmissionConfig(
                max_concurrent=args.max_concurrent, max_queue=args.max_queue
            )
        fault_horizon = (
            args.fault_horizon
            if args.fault_horizon is not None
            else (args.horizon if args.horizon is not None else 1000)
        )

        def build_rescheduler(spec_str, capacities):
            if not spec_str or spec_str == "none":
                return None
            import dataclasses

            from .config import ClusterConfig
            from .schedulers.registry import compose_scheduler

            shard_env = dataclasses.replace(
                env_config,
                cluster=ClusterConfig(
                    capacities=capacities, horizon=env_config.cluster.horizon
                ),
            )
            return compose_scheduler(spec_str, shard_env, reschedule=True)

        def build_faults(capacities, seed):
            if not args.faults:
                return None
            from .faults import parse_fault_spec

            return parse_fault_spec(args.faults, capacities, fault_horizon, seed=seed)

        specs = []
        for k, capacities in enumerate(slices):
            specs.append(
                ShardSpec(
                    capacities=capacities,
                    ranker=ranker,
                    rescheduler=build_rescheduler(
                        scheduler_specs[k] if scheduler_specs else None, capacities
                    ),
                    admission=admission,
                    # seed + k: each shard is its own seeded fault domain.
                    faults=build_faults(capacities, args.seed + k),
                )
            )
        factory = layered_job_factory(streaming_workload(num_tasks=args.tasks))
        arrivals = parse_arrival_spec(args.arrival, factory, seed=args.seed)
        simulator = FederatedStreamingSimulator(
            specs, router=router, steal_threshold=args.steal_threshold
        )
        result = simulator.run(arrivals, horizon=args.horizon)

        comparison = None
        if args.compare_global:
            # Equal-total-capacity single scheduler on the *same* stream:
            # per-shard admission limits scale by the shard count so the
            # two systems admit the same aggregate load.
            global_admission = None
            if admission is not None:
                global_admission = AdmissionConfig(
                    max_concurrent=(
                        None
                        if admission.max_concurrent is None
                        else admission.max_concurrent * args.shards
                    ),
                    max_queue=(
                        None
                        if admission.max_queue is None
                        else admission.max_queue * args.shards
                    ),
                )
            global_run = StreamingSimulator(cluster=env_config.cluster).run(
                parse_arrival_spec(args.arrival, factory, seed=args.seed),
                ranker,
                admission=global_admission,
                horizon=args.horizon,
                faults=build_faults(total, args.seed),
                rescheduler=build_rescheduler(
                    scheduler_specs[0] if scheduler_specs else None, total
                ),
            )
            comparison = FederationComparison(result, global_run)
    except ConfigError as exc:
        print(f"federate: {exc}", file=sys.stderr)
        return 2
    print(
        f"Federation: {args.shards} shards of {total} | router {args.router} "
        f"| ranker {args.ranker} | seed {args.seed}"
    )
    if comparison is not None:
        print(comparison.report())
    else:
        print(result.report())
    if args.metrics_out:
        payload = (
            comparison.metrics_dict()
            if comparison is not None
            else result.metrics_dict()
        )
        Path(args.metrics_out).write_text(
            json.dumps(payload, sort_keys=True, indent=2) + "\n",
            encoding="utf-8",
        )
        print(f"wrote metrics to {args.metrics_out}")
    if args.gate_p99 is not None and result.aggregate.p99_jct > args.gate_p99:
        print(
            f"federate: p99 JCT {result.aggregate.p99_jct:.0f} exceeds the "
            f"--gate-p99 bound {args.gate_p99:g}",
            file=sys.stderr,
        )
        return 1
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import json
    from pathlib import Path

    from .errors import ConfigError, ProtocolError
    from .schedulers.registry import make_scheduler
    from .streaming.service import run_serve, run_smoke

    env_config = EnvConfig(process_until_completion=True)
    try:
        scheduler = make_scheduler(args.scheduler, env_config)
    except ConfigError as exc:
        print(f"serve: {exc}", file=sys.stderr)
        return 2
    if args.smoke:
        try:
            summary = run_smoke(
                scheduler,
                requests=args.requests,
                batch_max=args.batch_max,
                seed=args.seed,
                capacities=env_config.cluster.capacities,
            )
        except ProtocolError as exc:
            print(f"serve: smoke failed: {exc}", file=sys.stderr)
            return 1
        if args.frames_out:
            lines = [json.dumps(r, sort_keys=True) for r in summary["replies"]]
            lines.append(json.dumps(summary["drain"], sort_keys=True))
            Path(args.frames_out).write_text(
                "\n".join(lines) + "\n", encoding="utf-8"
            )
            print(f"wrote {len(lines)} frames to {args.frames_out}")
        stats = summary["stats"]
        print(
            f"serve smoke: {len(summary['replies'])} replies over "
            f"{stats['batches']} batch(es) (max batch {stats['max_batch']}), "
            f"drained clean ({stats['served']} served, {stats['errors']} errors)"
        )
        return 0
    stats = run_serve(
        scheduler,
        host=args.host,
        port=args.port,
        batch_max=args.batch_max,
        on_ready=lambda addr: print(
            f"serving {args.scheduler} on {addr[0]}:{addr[1]} "
            "(send a drain frame to stop)",
            flush=True,
        ),
    )
    print(
        f"drained: served {stats.served}, errors {stats.errors}, "
        f"batches {stats.batches}"
    )
    return 0


def _cmd_verify(args: argparse.Namespace) -> int:
    import json
    from pathlib import Path

    from .analysis.verifier import verify_payload
    from .config import ClusterConfig
    from .dag.io import load_graph
    from .errors import ReproError

    try:
        graph = load_graph(args.graph)
        payload = json.loads(Path(args.schedule).read_text(encoding="utf-8"))
    except (OSError, ValueError, ReproError) as exc:
        print(f"verify: cannot load inputs: {exc}", file=sys.stderr)
        return 2
    if args.capacities:
        try:
            capacities = tuple(
                int(c) for c in args.capacities.split(",") if c.strip()
            )
        except ValueError:
            print(
                f"verify: bad --capacities {args.capacities!r}", file=sys.stderr
            )
            return 2
    else:
        capacities = ClusterConfig().capacities
    try:
        report = verify_payload(payload, graph, capacities)
    except ReproError as exc:
        print(f"verify: {exc}", file=sys.stderr)
        return 2
    if args.json:
        print(json.dumps(report.as_dict(), indent=2))
    else:
        print(report.summary())
    return 0 if report.ok else 1


def _cmd_lint(args: argparse.Namespace) -> int:
    from .analysis.baseline import apply_baseline, load_baseline, write_baseline
    from .analysis.linter import (
        LintInternalError,
        available_rules,
        format_json,
        format_text,
        lint_paths,
    )
    from .analysis.sarif import format_sarif
    from .errors import ConfigError

    if args.list_rules:
        for rule_id, description in available_rules().items():
            print(f"{rule_id}  {description}")
        return 0
    if not args.paths:
        print("lint: no paths given (try: repro lint src/repro)", file=sys.stderr)
        return 2
    def split(raw: Optional[str]) -> Optional[List[str]]:
        if not raw:
            return None
        return [r.strip() for r in raw.split(",") if r.strip()]

    try:
        violations = lint_paths(
            args.paths,
            select=split(args.select),
            ignore=split(args.ignore),
            flow=args.flow,
        )
        if args.update_baseline:
            write_baseline(violations, args.update_baseline)
            print(
                f"lint: wrote baseline with {len(violations)} violation(s) "
                f"to {args.update_baseline}"
            )
            return 0
        if args.baseline:
            violations = apply_baseline(violations, load_baseline(args.baseline))
    except ConfigError as exc:
        print(f"lint: {exc}", file=sys.stderr)
        return 2
    except LintInternalError as exc:
        print(f"lint: internal error: {exc}", file=sys.stderr)
        return 2
    if args.format == "json":
        print(format_json(violations))
    elif args.format == "sarif":
        print(format_sarif(violations))
    else:
        print(format_text(violations))
    return 1 if violations else 0


def _cmd_bench(args: argparse.Namespace) -> int:
    import json

    from .bench import (
        compare_to_baselines,
        default_suite,
        export_groups,
        load_baselines,
        run_benchmarks,
        write_baselines,
    )
    from .errors import ConfigError

    suite = default_suite()
    if args.list:
        for spec in suite:
            print(f"{spec.name:<32} group={spec.group}")
        return 0
    if args.update_baselines and not args.baseline:
        print("bench: --update-baselines requires --baseline", file=sys.stderr)
        return 2
    try:
        run = run_benchmarks(
            suite,
            seed=args.seed,
            quick=args.quick,
            name_filter=args.filter,
            progress=None if args.json else print,
        )
    except ConfigError as exc:
        print(f"bench: {exc}", file=sys.stderr)
        return 2
    paths = export_groups(run, args.out_dir)
    if args.json:
        print(
            json.dumps(
                {
                    "meta": run.meta,
                    "results": [result.as_dict() for result in run.results],
                },
                indent=2,
            )
        )
    else:
        print("wrote " + ", ".join(str(path) for path in paths))
    if args.update_baselines:
        target = write_baselines(run, args.baseline)
        print(f"updated baselines in {target}")
        return 0
    if args.baseline:
        try:
            baselines = load_baselines(args.baseline)
        except ConfigError as exc:
            print(f"bench: {exc}", file=sys.stderr)
            return 2
        comparisons = compare_to_baselines(
            run, baselines, max_regression=args.max_regression
        )
        for comparison in comparisons:
            print(comparison.line())
        if any(not comparison.ok for comparison in comparisons):
            print("bench: performance regression detected", file=sys.stderr)
            return 1
    return 0


_COMMANDS = {
    "simulate": _cmd_simulate,
    "schedulers": _cmd_schedulers,
    "train": _cmd_train,
    "trace": _cmd_trace,
    "experiment": _cmd_experiment,
    "ablation": _cmd_ablation,
    "motivating": _cmd_motivating,
    "compare": _cmd_compare,
    "online": _cmd_online,
    "stream": _cmd_stream,
    "federate": _cmd_federate,
    "serve": _cmd_serve,
    "verify": _cmd_verify,
    "lint": _cmd_lint,
    "bench": _cmd_bench,
}


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns the process exit code.

    Commands exposing ``--trace-out`` run inside a telemetry session
    (:func:`repro.telemetry.session`) and leave a JSONL span/metric
    trace at the given path; everything else runs with telemetry off.
    """
    args = build_parser().parse_args(argv)
    handler = _COMMANDS[args.command]
    trace_out = getattr(args, "trace_out", None)
    if trace_out:
        from .telemetry import TelemetryConfig, session

        config = TelemetryConfig(enabled=True, jsonl_path=trace_out)
        with session(config):
            code = handler(args)
        print(f"wrote telemetry trace to {trace_out}", file=sys.stderr)
        return code
    return handler(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
