"""Frozen configuration dataclasses shared across the library.

Every tunable in the paper is captured here with its published default:

* :class:`WorkloadConfig` — Sec. V-A simulation workload (100-task DAGs,
  width 2..5, truncated-normal runtimes and demands).
* :class:`ClusterConfig` — the resource-time space (two resource types,
  20 slots each, horizon of 20 slots for the DRL state image).
* :class:`MctsConfig` — Sec. III-C (initial budget 1000, minimum budget 100,
  exploration constant scaled by a greedy makespan estimate, budget decay of
  Eq. (4)).
* :class:`NetworkConfig` / :class:`TrainingConfig` — Sec. IV (hidden layers
  256/32/32, rmsprop with alpha=1e-4, rho=0.9, eps=1e-9, 20 rollouts per
  example for the baseline, supervised pre-training on the critical-path
  heuristic).
* :class:`GrapheneConfig` — Sec. V-A (troublesome thresholds 0.2/0.4/0.6/0.8).

All dataclasses are frozen: configurations are values, never mutated after
construction.  ``validate()`` raises :class:`repro.errors.ConfigError` on
out-of-range values and is invoked in ``__post_init__``.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Optional, Tuple

from .errors import ConfigError
from .telemetry.config import TelemetryConfig

__all__ = [
    "ClusterConfig",
    "WorkloadConfig",
    "MctsConfig",
    "NetworkConfig",
    "GnnConfig",
    "TrainingConfig",
    "GrapheneConfig",
    "EnvConfig",
    "TelemetryConfig",
    "paper_scale",
]


def _require(condition: bool, message: str) -> None:
    if not condition:
        raise ConfigError(message)


@dataclass(frozen=True)
class ClusterConfig:
    """Shape of the simulated cluster's resource-time space.

    Attributes:
        capacities: total slots per resource dimension.  The paper uses two
            resource types (CPU, memory) with 20 slots each ("the total
            number of resource slots in the cluster is 20r").
        horizon: number of future time slots rendered in the DRL state image
            ("the time horizon is set to be 20t").
    """

    capacities: Tuple[int, ...] = (20, 20)
    horizon: int = 20

    def __post_init__(self) -> None:
        _require(len(self.capacities) >= 1, "at least one resource dimension")
        _require(all(c > 0 for c in self.capacities), "capacities must be positive")
        _require(self.horizon > 0, "horizon must be positive")

    @property
    def num_resources(self) -> int:
        """Number of resource dimensions."""
        return len(self.capacities)


@dataclass(frozen=True)
class WorkloadConfig:
    """Random layered-DAG workload of Sec. V-A.

    ``num_tasks=100``, layer width uniform in ``[min_width, max_width]``
    (paper: 2..5), task runtime and per-resource demand drawn from normal
    distributions truncated to ``[1, max_runtime]`` and ``[1, max_demand]``
    slots respectively (paper: max runtime 20t, max demand 20r).
    """

    num_tasks: int = 100
    min_width: int = 2
    max_width: int = 5
    max_runtime: int = 20
    max_demand: int = 20
    runtime_mean: float = 10.0
    runtime_std: float = 5.0
    demand_mean: float = 10.0
    demand_std: float = 5.0
    edge_probability: float = 0.5

    def __post_init__(self) -> None:
        _require(self.num_tasks >= 1, "num_tasks must be >= 1")
        _require(1 <= self.min_width <= self.max_width, "invalid width range")
        _require(self.max_runtime >= 1, "max_runtime must be >= 1")
        _require(self.max_demand >= 1, "max_demand must be >= 1")
        _require(self.runtime_std >= 0, "runtime_std must be >= 0")
        _require(self.demand_std >= 0, "demand_std must be >= 0")
        _require(0.0 <= self.edge_probability <= 1.0, "edge_probability in [0, 1]")


@dataclass(frozen=True)
class MctsConfig:
    """Monte Carlo Tree Search parameters (Sec. III-C, Eq. 4 and 5).

    Attributes:
        initial_budget: iterations available at the root decision.
        min_budget: floor of the per-depth budget decay
            ``max(initial_budget / depth, min_budget)``.
        exploration_scale: multiple of the greedy-makespan estimate used as
            the exploration constant ``c`` ("we set the value of c in the
            same order of the makespan of the DAG").
        use_expansion_filters: enable the two Sec. III-C breadth filters
            (skip redundant process actions; only expand tasks startable
            before the earliest finish time in the cluster).
        use_budget_decay: enable Eq. (4); with ``False`` every decision gets
            ``initial_budget`` iterations (ablation 3 in DESIGN.md).
        use_max_value_ucb: Eq. (5) max-value exploitation with mean tiebreak;
            ``False`` falls back to classic mean-value UCB (ablation 4).
        state_restore: how the search re-materializes tree states.
            ``"undo"`` (default) keeps a single environment and walks it
            with ``apply``/``undo`` along the selection path — no clone per
            expansion; ``"clone"`` stores an environment clone in every
            node (the original, memory-hungrier design).  Both produce
            bit-identical schedules; see DESIGN.md.
        rollout_batch: number of random rollouts fused into one vectorized
            playout call (DESIGN.md Sec. 15).  ``1`` (default) keeps the
            sequential, bit-identical search; ``> 1`` collects that many
            leaves per round under virtual loss and simulates them with
            :func:`repro.envarr.batch_random_playouts` — a throughput mode
            whose schedules remain valid and seed-deterministic but are not
            draw-for-draw identical to the sequential search.  Requires the
            array environment backend and a random rollout policy; other
            configurations fall back to sequential simulation.

    Rollout truncation is a property of the rollout policy, not the
    search: see :class:`repro.core.guidance.TruncatedRollout`.
    """

    initial_budget: int = 1000
    min_budget: int = 100
    exploration_scale: float = 1.0
    use_expansion_filters: bool = True
    use_budget_decay: bool = True
    use_max_value_ucb: bool = True
    state_restore: str = "undo"
    rollout_batch: int = 1
    #: Batched leaf guidance (DESIGN.md Sec. 16): ``"auto"`` lets a
    #: network-guided search batch-evaluate each wave's fresh leaves with
    #: a :class:`repro.rl.evaluator.PolicyEvaluator` (one forward pass
    #: orders every new leaf's expansion candidates); ``"off"`` keeps the
    #: per-node sequential prioritization.  Only takes effect in the
    #: batched collection mode (``rollout_batch > 1``, array backend)
    #: when the scheduler carries a leaf network; sequential searches are
    #: unaffected either way.
    leaf_policy: str = "auto"

    def __post_init__(self) -> None:
        _require(self.initial_budget >= 1, "initial_budget must be >= 1")
        _require(1 <= self.min_budget, "min_budget must be >= 1")
        _require(self.exploration_scale > 0, "exploration_scale must be > 0")
        _require(
            self.state_restore in ("undo", "clone"),
            f"state_restore must be 'undo' or 'clone', got {self.state_restore!r}",
        )
        _require(self.rollout_batch >= 1, "rollout_batch must be >= 1")
        _require(
            self.leaf_policy in ("auto", "off"),
            f"leaf_policy must be 'auto' or 'off', got {self.leaf_policy!r}",
        )


@dataclass(frozen=True)
class NetworkConfig:
    """Policy network architecture of Sec. IV.

    Three hidden layers of widths 256, 32 and 32 with rectified-linear
    activations and a softmax output over the ``max_ready + 1`` actions.
    """

    hidden_sizes: Tuple[int, ...] = (256, 32, 32)
    max_ready: int = 15

    def __post_init__(self) -> None:
        _require(len(self.hidden_sizes) >= 1, "need at least one hidden layer")
        _require(all(h > 0 for h in self.hidden_sizes), "hidden sizes positive")
        _require(self.max_ready >= 1, "max_ready must be >= 1")

    @property
    def num_actions(self) -> int:
        """Output dimensionality: one logit per visible ready slot + process."""
        return self.max_ready + 1


@dataclass(frozen=True)
class GnnConfig:
    """Graph policy architecture (DESIGN.md Sec. 16).

    Per-node embeddings over the DAG: a linear+ReLU encoder over static
    and dynamic node features, ``rounds`` of parent/child message
    passing on the CSR adjacency, a mean-pooled global readout joined
    with cluster features, and a scale-invariant per-ready-task score
    head (shared weights, no ``max_ready`` window — the same parameters
    score a 10-task and a 250-task DAG).
    """

    hidden_size: int = 32
    rounds: int = 2
    head_hidden: int = 16
    global_hidden: int = 32

    def __post_init__(self) -> None:
        _require(self.hidden_size >= 1, "hidden_size must be >= 1")
        _require(self.rounds >= 0, "rounds must be >= 0")
        _require(self.head_hidden >= 1, "head_hidden must be >= 1")
        _require(self.global_hidden >= 1, "global_hidden must be >= 1")


@dataclass(frozen=True)
class TrainingConfig:
    """REINFORCE + imitation training parameters (Sec. IV, Fig. 8(b)).

    The paper trains on 144 random 25-task examples for 7000 epochs with 20
    rollouts per example to estimate the baseline, using rmsprop with
    ``alpha=1e-4``, ``rho=0.9`` and ``eps=1e-9``.
    """

    learning_rate: float = 1e-4
    rho: float = 0.9
    eps: float = 1e-9
    rollouts_per_example: int = 20
    num_examples: int = 144
    example_num_tasks: int = 25
    epochs: int = 7000
    batch_size: int = 16
    supervised_epochs: int = 50
    entropy_bonus: float = 0.0
    max_episode_steps: int = 5000
    seed: int = 0
    #: Global-norm gradient clipping (0 disables; every trainer honors it).
    max_grad_norm: float = 0.0
    # PPO (repro train --algo ppo): clipped-surrogate hyper-parameters.
    ppo_clip: float = 0.2
    ppo_epochs: int = 4
    ppo_minibatch: int = 64
    gae_lambda: float = 0.95
    gamma: float = 1.0
    value_learning_rate: float = 1e-3
    value_epochs: int = 3
    normalize_advantages: bool = True

    def __post_init__(self) -> None:
        _require(self.learning_rate > 0, "learning_rate must be > 0")
        _require(0.0 <= self.rho < 1.0, "rho must be in [0, 1)")
        _require(self.eps > 0, "eps must be > 0")
        _require(self.rollouts_per_example >= 1, "rollouts_per_example >= 1")
        _require(self.num_examples >= 1, "num_examples >= 1")
        _require(self.example_num_tasks >= 1, "example_num_tasks >= 1")
        _require(self.epochs >= 0, "epochs >= 0")
        _require(self.batch_size >= 1, "batch_size >= 1")
        _require(self.supervised_epochs >= 0, "supervised_epochs >= 0")
        _require(self.entropy_bonus >= 0, "entropy_bonus >= 0")
        _require(self.max_episode_steps >= 1, "max_episode_steps >= 1")
        _require(self.max_grad_norm >= 0, "max_grad_norm >= 0")
        _require(self.ppo_clip > 0, "ppo_clip must be > 0")
        _require(self.ppo_epochs >= 1, "ppo_epochs >= 1")
        _require(self.ppo_minibatch >= 1, "ppo_minibatch >= 1")
        _require(0.0 <= self.gae_lambda <= 1.0, "gae_lambda in [0, 1]")
        _require(0.0 < self.gamma <= 1.0, "gamma in (0, 1]")
        _require(self.value_learning_rate > 0, "value_learning_rate > 0")
        _require(self.value_epochs >= 1, "value_epochs >= 1")


@dataclass(frozen=True)
class GrapheneConfig:
    """Graphene baseline parameters (Sec. V-A).

    ``thresholds`` define the troublesome-task runtime cut-offs tried per
    DAG; the best resulting schedule is kept.  Both the forward and the
    backward space-time placement strategies are always evaluated.
    """

    thresholds: Tuple[float, ...] = (0.2, 0.4, 0.6, 0.8)
    demand_threshold: float = 0.5
    space_time_horizon_factor: float = 4.0

    def __post_init__(self) -> None:
        _require(len(self.thresholds) >= 1, "need at least one threshold")
        _require(
            all(0.0 < t <= 1.0 for t in self.thresholds),
            "thresholds must lie in (0, 1]",
        )
        _require(0.0 < self.demand_threshold <= 1.0, "demand_threshold in (0, 1]")
        _require(self.space_time_horizon_factor >= 1.0, "horizon factor >= 1")


@dataclass(frozen=True)
class EnvConfig:
    """Scheduling-MDP parameters (Sec. III-B, III-D).

    Attributes:
        cluster: resource-time space shape.
        max_ready: visible ready-task slots; excess tasks wait in a backlog
            queue (paper: 15).
        process_until_completion: if ``True`` the process action advances
            time until at least one running task finishes (the MCTS tree
            adaptation of Sec. III-C); if ``False`` it advances exactly one
            slot (the DRL training granularity of Sec. III-D).
        include_graph_features: feed b-level / #children / b-load to the
            DRL state (Sec. III-D).  ``False`` zeroes them, reproducing the
            demand-only ablation the paper says "can only obtain suboptimal
            performance like Tetris".
        verify_terminal: assert the full schedule-invariant set (see
            :mod:`repro.analysis.verifier`) whenever an episode reaches a
            terminal state; opt-in because it costs an event sweep per
            episode.
        telemetry: where episode counters (steps, undos, clones) report.
            ``None`` (the default) defers to the globally active pipeline
            (:func:`repro.telemetry.active`); an enabled config binds all
            environments sharing this ``EnvConfig`` to one dedicated
            pipeline (see :func:`repro.telemetry.for_config`).
        backend: which environment implementation
            :func:`repro.envarr.make_env` constructs — ``"object"`` (the
            original :class:`repro.env.SchedulingEnv`) or ``"array"``
            (:class:`repro.envarr.ArraySchedulingEnv`, the vectorized core
            of DESIGN.md Sec. 15).  Both produce bit-identical schedules;
            the array backend additionally supports batched playouts.
    """

    cluster: ClusterConfig = field(default_factory=ClusterConfig)
    max_ready: int = 15
    process_until_completion: bool = False
    include_graph_features: bool = True
    verify_terminal: bool = False
    telemetry: Optional[TelemetryConfig] = None
    backend: str = "object"

    def __post_init__(self) -> None:
        _require(self.max_ready >= 1, "max_ready must be >= 1")
        _require(
            self.backend in ("object", "array"),
            f"backend must be 'object' or 'array', got {self.backend!r}",
        )


def paper_scale(enabled: bool = True) -> Tuple[WorkloadConfig, MctsConfig]:
    """Return (workload, mcts) configs at the paper's published scale.

    With ``enabled=False`` returns a laptop-friendly scale (25-task DAGs and
    a 50/10 budget) that preserves every qualitative relationship; this is
    the default scale of the benchmark harness.
    """

    if enabled:
        return WorkloadConfig(), MctsConfig()
    small_workload = replace(WorkloadConfig(), num_tasks=25)
    small_mcts = replace(MctsConfig(), initial_budget=50, min_budget=10)
    return small_workload, small_mcts
