"""Wall-clock measurement helpers used by the runtime experiments.

Table I and Fig. 6(b) in the paper report scheduler runtimes; the harness
measures them with :class:`Stopwatch`, which is also usable as a context
manager, and :func:`timed`, which returns ``(result, seconds)``.
"""

from __future__ import annotations

import time
from typing import Any, Callable, Tuple, TypeVar

T = TypeVar("T")

__all__ = ["Stopwatch", "timed"]


class Stopwatch:
    """Accumulating wall-clock stopwatch based on ``time.perf_counter``.

    Example:
        >>> watch = Stopwatch()
        >>> with watch:
        ...     sum(range(10))
        45
        >>> watch.elapsed >= 0.0
        True
    """

    def __init__(self) -> None:
        self._elapsed = 0.0
        self._started_at: float | None = None

    @property
    def elapsed(self) -> float:
        """Total accumulated seconds (including a currently running span)."""
        total = self._elapsed
        if self._started_at is not None:
            total += time.perf_counter() - self._started_at
        return total

    @property
    def running(self) -> bool:
        """Whether a span is currently open."""
        return self._started_at is not None

    def start(self) -> "Stopwatch":
        """Open a timing span.  Raises if one is already open."""
        if self._started_at is not None:
            raise RuntimeError("stopwatch already running")
        self._started_at = time.perf_counter()
        return self

    def stop(self) -> float:
        """Close the current span and return total elapsed seconds."""
        if self._started_at is None:
            raise RuntimeError("stopwatch is not running")
        self._elapsed += time.perf_counter() - self._started_at
        self._started_at = None
        return self._elapsed

    def reset(self) -> None:
        """Zero the accumulator and discard any open span."""
        self._elapsed = 0.0
        self._started_at = None

    def __enter__(self) -> "Stopwatch":
        return self.start()

    def __exit__(self, *exc_info: Any) -> None:
        self.stop()


def timed(fn: Callable[..., T], *args: Any, **kwargs: Any) -> Tuple[T, float]:
    """Call ``fn(*args, **kwargs)`` and return ``(result, seconds)``."""

    start = time.perf_counter()
    result = fn(*args, **kwargs)
    return result, time.perf_counter() - start
