"""Small shared utilities: RNG plumbing, timing, and validation helpers."""

from .rng import as_generator, spawn, derive_seed
from .timing import Stopwatch, timed
from .validation import check_positive, check_non_negative, check_probability

__all__ = [
    "as_generator",
    "spawn",
    "derive_seed",
    "Stopwatch",
    "timed",
    "check_positive",
    "check_non_negative",
    "check_probability",
]
