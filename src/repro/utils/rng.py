"""Random-number-generator plumbing.

Every stochastic component in the library accepts either a seed or a
:class:`numpy.random.Generator`.  These helpers normalize that input and
derive independent child streams, so that experiments are reproducible
bit-for-bit from a single integer seed while components never share a
stream accidentally.
"""

from __future__ import annotations

from typing import Union

import numpy as np

SeedLike = Union[None, int, np.random.Generator]

__all__ = ["as_generator", "spawn", "derive_seed"]


def as_generator(seed: SeedLike = None) -> np.random.Generator:
    """Return a :class:`numpy.random.Generator` for ``seed``.

    Accepts ``None`` (fresh OS entropy), an ``int`` seed, or an existing
    generator (returned unchanged, *not* copied).
    """

    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn(rng: np.random.Generator, count: int) -> list[np.random.Generator]:
    """Split ``rng`` into ``count`` statistically independent children.

    The parent stream is advanced once per child, so repeated calls yield
    fresh families.  Children are independent of each other and of the
    parent's subsequent output.
    """

    if count < 0:
        raise ValueError("count must be non-negative")
    seeds = rng.integers(0, 2**63 - 1, size=count, dtype=np.int64)
    return [np.random.default_rng(int(s)) for s in seeds]


def derive_seed(rng: np.random.Generator) -> int:
    """Draw a fresh integer seed from ``rng`` (for subprocess hand-off)."""

    return int(rng.integers(0, 2**63 - 1, dtype=np.int64))
