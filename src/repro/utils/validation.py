"""Argument-validation helpers raising :class:`repro.errors.ConfigError`."""

from __future__ import annotations

from ..errors import ConfigError

__all__ = ["check_positive", "check_non_negative", "check_probability"]


def check_positive(value: float, name: str) -> float:
    """Return ``value`` if strictly positive, else raise ``ConfigError``."""
    if not value > 0:
        raise ConfigError(f"{name} must be positive, got {value!r}")
    return value


def check_non_negative(value: float, name: str) -> float:
    """Return ``value`` if >= 0, else raise ``ConfigError``."""
    if value < 0:
        raise ConfigError(f"{name} must be non-negative, got {value!r}")
    return value


def check_probability(value: float, name: str) -> float:
    """Return ``value`` if within [0, 1], else raise ``ConfigError``."""
    if not 0.0 <= value <= 1.0:
        raise ConfigError(f"{name} must lie in [0, 1], got {value!r}")
    return value
