"""Exception hierarchy for the :mod:`repro` package.

All errors raised by the library derive from :class:`ReproError`, so callers
can catch a single base class.  Specific subclasses signal distinct failure
modes: malformed DAGs, infeasible placements, invalid schedules, bad
configuration values, and checkpoint/serialization problems.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "GraphError",
    "CycleError",
    "UnknownTaskError",
    "CapacityError",
    "PlacementError",
    "ScheduleError",
    "ConfigError",
    "EnvironmentStateError",
    "CheckpointError",
    "TraceError",
    "ProtocolError",
]


class ReproError(Exception):
    """Base class for all errors raised by the ``repro`` library."""


class GraphError(ReproError):
    """A task graph is structurally invalid (cycle, dangling edge, ...)."""


class CycleError(GraphError):
    """A task graph contains a dependency cycle."""


class UnknownTaskError(GraphError, KeyError):
    """A task id was referenced that does not exist in the graph."""

    def __str__(self) -> str:  # KeyError quotes its message; keep it readable.
        return Exception.__str__(self)


class CapacityError(ReproError):
    """A task demands more of some resource than the cluster's capacity."""


class PlacementError(ReproError):
    """A task could not be placed into the resource-time space."""


class ScheduleError(ReproError):
    """A produced schedule violates dependency or capacity invariants."""


class ConfigError(ReproError, ValueError):
    """A configuration value is out of range or inconsistent."""


class EnvironmentStateError(ReproError):
    """The scheduling environment was driven with an illegal action/state."""


class CheckpointError(ReproError):
    """A model checkpoint could not be saved or restored."""


class TraceError(ReproError):
    """A workload trace file is malformed or inconsistent."""


class ProtocolError(ReproError):
    """A wire frame of the scheduling service protocol is malformed."""
