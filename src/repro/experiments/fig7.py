"""Fig. 7: pure MCTS as a function of search budget.

Fig. 7(a) — mean makespan of pure (random-policy) MCTS decreases as the
iteration budget grows.  Fig. 7(b) — the fraction of DAGs where MCTS beats
Tetris rises with budget (paper: 56% at 600, 67% at 1000, 84% at 2200 —
and below ~500, Tetris wins more often than not).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from ..config import EnvConfig, MctsConfig, WorkloadConfig
from ..dag.generators import random_layered_dag
from ..dag.graph import TaskGraph
from ..mcts.search import MctsScheduler
from ..metrics.comparison import win_rate
from ..metrics.schedule import validate_schedule
from ..schedulers.base import ScheduleRequest
from ..schedulers.registry import make_scheduler
from ..utils.rng import as_generator, spawn
from .reporting import format_table
from .scale import resolve_scale

__all__ = ["BudgetPoint", "Fig7Result", "budget_sweep"]


@dataclass(frozen=True)
class BudgetPoint:
    """One budget setting's aggregate outcome."""

    budget: int
    mean_makespan: float
    mean_tetris_makespan: float
    win_rate_vs_tetris: float
    makespans: Tuple[int, ...]


@dataclass
class Fig7Result:
    """The full sweep (Fig. 7(a) is ``mean_makespan`` per point, Fig. 7(b)
    is ``win_rate_vs_tetris`` per point)."""

    scale: str
    num_dags: int
    points: List[BudgetPoint]

    def mean_makespans(self) -> List[Tuple[int, float]]:
        """(budget, mean makespan) series — the Fig. 7(a) curve."""
        return [(p.budget, p.mean_makespan) for p in self.points]

    def win_rates(self) -> List[Tuple[int, float]]:
        """(budget, win rate vs Tetris) series — the Fig. 7(b) curve."""
        return [(p.budget, p.win_rate_vs_tetris) for p in self.points]

    def report(self) -> str:
        """Text rendering of both panels."""
        rows = [
            (p.budget, p.mean_makespan, p.mean_tetris_makespan, f"{p.win_rate_vs_tetris:.0%}")
            for p in self.points
        ]
        return format_table(
            ["budget", "MCTS mean", "Tetris mean", "MCTS beats Tetris"],
            rows,
            title=f"Fig 7 budget sweep ({self.scale} scale, {self.num_dags} DAGs)",
        )


def budget_sweep(
    paper_scale: Optional[bool] = None,
    seed: int = 0,
    budgets: Optional[Sequence[int]] = None,
    graphs: Optional[Sequence[TaskGraph]] = None,
) -> Fig7Result:
    """Sweep the MCTS initial budget over a fixed batch of DAGs.

    The minimum budget is held at the paper's sweep floor (5) so small
    budgets actually bite; Tetris is evaluated once per DAG as the
    reference.
    """
    scale = resolve_scale(paper_scale)
    env_config = EnvConfig(process_until_completion=True)
    if budgets is None:
        budgets = scale.sweep_budgets
    if graphs is None:
        rng = as_generator(seed)
        workload = WorkloadConfig(num_tasks=scale.num_tasks)
        graphs = [
            random_layered_dag(workload, seed=child)
            for child in spawn(rng, scale.sweep_num_dags)
        ]

    capacities = env_config.cluster.capacities
    tetris = make_scheduler("tetris", env_config)
    tetris_makespans: List[int] = []
    for graph in graphs:
        schedule = tetris.plan(ScheduleRequest(graph))
        validate_schedule(schedule, graph, capacities)
        tetris_makespans.append(schedule.makespan)

    points: List[BudgetPoint] = []
    for budget in budgets:
        mcts = MctsScheduler(
            MctsConfig(initial_budget=budget, min_budget=scale.sweep_min_budget),
            env_config,
            seed=seed + budget,  # independent search noise per setting
        )
        makespans: List[int] = []
        for graph in graphs:
            schedule = mcts.plan(ScheduleRequest(graph))
            validate_schedule(schedule, graph, capacities)
            makespans.append(schedule.makespan)
        points.append(
            BudgetPoint(
                budget=budget,
                mean_makespan=sum(makespans) / len(makespans),
                mean_tetris_makespan=sum(tetris_makespans) / len(tetris_makespans),
                win_rate_vs_tetris=win_rate(makespans, tetris_makespans),
                makespans=tuple(makespans),
            )
        )
    return Fig7Result(scale=scale.label, num_dags=len(graphs), points=points)
