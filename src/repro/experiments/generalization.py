"""Generalization to larger DAGs: the scale-invariant policy's payoff.

The windowed MLP policy is structurally tied to its training shape: the
observation is a fixed-size image over ``max_ready`` visible slots, so a
10x larger DAG is squeezed through the same window and everything
outside it collapses into two backlog scalars.  The graph policy scores
*every* ready task with shared per-node weights over the DAG's own
message-passing structure — nothing in its parameterization mentions the
DAG size.

This experiment makes that difference measurable: train both model
families with an identical recipe on small DAGs, then evaluate the
frozen networks as greedy schedulers on DAGs 5x and 10x larger, against
the classical heuristics as a reference frame.  No retraining, no
fine-tuning — the question is purely what transfers.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from ..config import EnvConfig, GnnConfig, TrainingConfig, WorkloadConfig
from ..dag.generators import random_layered_dag
from ..dag.graph import TaskGraph
from ..envarr.backend import make_env
from ..metrics.comparison import ComparisonRow, compare_makespans
from ..schedulers.base import ScheduleRequest
from ..schedulers.registry import make_scheduler
from ..utils.rng import as_generator, spawn
from .reporting import format_table

__all__ = ["GeneralizationResult", "generalization_study"]

HEURISTICS = ("tetris", "sjf", "cp")


@dataclass
class GeneralizationResult:
    """Frozen-policy makespans per evaluation size."""

    train_tasks: int
    eval_sizes: Tuple[int, ...]
    num_dags: int
    #: eval size -> scheduler name -> per-DAG makespans.
    makespans: Dict[int, Dict[str, List[int]]] = field(default_factory=dict)
    #: model name -> trainable parameter count (the transfer is not free:
    #: the GNN does it with a fraction of the MLP's parameters).
    num_parameters: Dict[str, int] = field(default_factory=dict)

    def rows(self, size: int) -> List[ComparisonRow]:
        """Per-scheduler summary at one evaluation size, best mean first."""
        return compare_makespans(self.makespans[size])

    def gap_to_best_heuristic(self, size: int, name: str) -> float:
        """Mean makespan of ``name`` relative to the best heuristic mean
        at ``size`` (1.0 = parity; lower is better)."""
        data = self.makespans[size]
        heuristic = min(
            sum(data[h]) / len(data[h]) for h in HEURISTICS if h in data
        )
        mean = sum(data[name]) / len(data[name])
        return mean / heuristic

    def report(self) -> str:
        blocks = []
        for size in self.eval_sizes:
            rows = [
                (r.scheduler, r.mean, r.median, r.best, r.worst)
                for r in self.rows(size)
            ]
            blocks.append(
                format_table(
                    ["scheduler", "mean", "median", "best", "worst"],
                    rows,
                    title=(
                        f"{size}-task DAGs ({size // self.train_tasks}x "
                        f"training size, {self.num_dags} DAGs)"
                    ),
                )
            )
            blocks.append(
                "gap to best heuristic: "
                + ", ".join(
                    f"{name} {self.gap_to_best_heuristic(size, name):.3f}"
                    for name in ("drl-gnn", "drl-mlp")
                )
            )
        header = (
            f"Generalization: policies trained on {self.train_tasks}-task "
            f"DAGs, evaluated frozen"
        )
        if self.num_parameters:
            header += " (" + ", ".join(
                f"{name}: {count:,} params"
                for name, count in sorted(self.num_parameters.items())
            ) + ")"
        return "\n".join([header] + blocks)


def _greedy_makespan(policy, graph: TaskGraph, env_config: EnvConfig) -> int:
    env = make_env(graph, env_config)
    while not env.done:
        env.step(policy.select(env))
    return env.makespan


def generalization_study(
    paper_scale: Optional[bool] = None,
    seed: int = 0,
    train_tasks: int = 10,
    eval_factors: Sequence[int] = (5, 10),
    num_dags: int = 5,
    epochs: Optional[int] = None,
) -> GeneralizationResult:
    """Train small, evaluate frozen on ``eval_factors`` x larger DAGs.

    Both model families get the identical recipe (same seeds, same
    imitation pre-training, same REINFORCE epochs on the same
    ``train_tasks``-task examples); evaluation runs the frozen networks
    greedily plus the classical heuristics on fresh larger DAGs.

    Args:
        paper_scale: accepted for CLI symmetry; the study defines its own
            sizes (training shape vs evaluation shape is the variable
            under test, not the global experiment scale).
        seed: master seed for training and the evaluation DAG batch.
        train_tasks: size of the training examples.
        eval_factors: evaluation sizes as multiples of ``train_tasks``.
        num_dags: evaluation DAGs per size.
        epochs: REINFORCE epoch override (default 40).
    """
    del paper_scale  # the train-vs-eval size split is the experiment
    from ..core.pipeline import train_spear_network
    from ..rl.agent import NetworkPolicy
    from ..rl.gnn import GraphNetworkPolicy

    env_config = EnvConfig(process_until_completion=True, backend="array")
    training = TrainingConfig(
        num_examples=8,
        example_num_tasks=train_tasks,
        rollouts_per_example=4,
        epochs=epochs if epochs is not None else 40,
        supervised_epochs=10,
        batch_size=4,
    )
    workload = WorkloadConfig(num_tasks=train_tasks, max_runtime=10, max_demand=10)
    gnn_network, _ = train_spear_network(
        env_config, training, workload, seed=seed, policy="gnn",
        gnn_config=GnnConfig(hidden_size=16, rounds=2, head_hidden=8,
                             global_hidden=16),
    )
    mlp_network, _ = train_spear_network(
        env_config, training, workload, seed=seed, policy="mlp"
    )

    result = GeneralizationResult(
        train_tasks=train_tasks,
        eval_sizes=tuple(train_tasks * f for f in eval_factors),
        num_dags=num_dags,
        num_parameters={
            "drl-gnn": gnn_network.num_parameters(),
            "drl-mlp": mlp_network.num_parameters(),
        },
    )
    rng = as_generator(seed + 1)
    for size in result.eval_sizes:
        eval_workload = WorkloadConfig(
            num_tasks=size, max_runtime=10, max_demand=10
        )
        graphs = [
            random_layered_dag(eval_workload, seed=child)
            for child in spawn(rng, num_dags)
        ]
        data: Dict[str, List[int]] = {
            "drl-gnn": [], "drl-mlp": [],
        }
        for graph in graphs:
            gnn_policy = GraphNetworkPolicy(gnn_network, mode="greedy")
            mlp_policy = NetworkPolicy(mlp_network, mode="greedy")
            data["drl-gnn"].append(
                _greedy_makespan(gnn_policy, graph, env_config)
            )
            data["drl-mlp"].append(
                _greedy_makespan(mlp_policy, graph, env_config)
            )
            for name in HEURISTICS:
                scheduler = make_scheduler(name, env_config)
                outcome = scheduler.plan(ScheduleRequest(graph))
                data.setdefault(name, []).append(outcome.makespan)
        result.makespans[size] = data
    return result
